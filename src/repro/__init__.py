"""HTC: Higher-order Topological Consistency for Unsupervised Network Alignment.

A from-scratch Python reproduction of Sun et al. (ICDE 2023).  The public API
re-exports the pieces most users need; see the subpackages for the full
surface:

* :mod:`repro.core` — the HTC aligner, its configuration, and ablation
  variants,
* :mod:`repro.graph` — the attributed-graph substrate,
* :mod:`repro.orbits` — graphlet edge/node orbit counting,
* :mod:`repro.nn` — the numpy autograd / GCN substrate,
* :mod:`repro.baselines` — IsoRank, FINAL, REGAL, PALE, CENALP, GAlign,
* :mod:`repro.datasets` — synthetic paper-calibrated alignment pairs,
* :mod:`repro.eval` — metrics, protocols, robustness/ablation/sweep runners,
* :mod:`repro.viz` — t-SNE and embedding-overlap statistics.

Example
-------
>>> from repro import HTCAligner, HTCConfig, load_dataset
>>> pair = load_dataset("tiny")
>>> result = HTCAligner(HTCConfig(epochs=20, embedding_dim=16)).align(pair)
>>> result.alignment_matrix.shape == (pair.source.n_nodes, pair.target.n_nodes)
True
"""

from repro.core import (
    ABLATION_VARIANTS,
    AlignmentResult,
    HTCAligner,
    HTCConfig,
    make_variant,
)
from repro.datasets import GraphPair, available_datasets, load_dataset
from repro.eval import evaluate_alignment, mean_reciprocal_rank, precision_at_q
from repro.graph import AttributedGraph
from repro.orbits import build_orbit_matrices, count_edge_orbits

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "HTCAligner",
    "HTCConfig",
    "AlignmentResult",
    "make_variant",
    "ABLATION_VARIANTS",
    "AttributedGraph",
    "GraphPair",
    "load_dataset",
    "available_datasets",
    "count_edge_orbits",
    "build_orbit_matrices",
    "precision_at_q",
    "mean_reciprocal_rank",
    "evaluate_alignment",
]
