"""Ablation variants of HTC (paper Table III plus extra design ablations).

Paper variants
--------------
* **HTC-L** — low-order only (plain adjacency view), no fine-tuning,
* **HTC-H** — all orbits (multi-orbit-aware training), no fine-tuning,
* **HTC-LT** — low-order only, with trusted-pair fine-tuning,
* **HTC-DT** — diffusion matrices instead of GOMs, with fine-tuning,
* **HTC** (a.k.a. HTC-HT) — the full method.

Additional design ablations (DESIGN.md §6)
------------------------------------------
* **HTC-binary** — binary instead of weighted GOMs,
* **HTC-cosine** — raw Pearson similarity instead of LISI in fine-tuning,
* **HTC-GDV** — extension: node attributes augmented with graphlet degree
  vectors before encoding.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.aligner import HTCAligner
from repro.core.config import HTCConfig


def _base(config: Optional[HTCConfig]) -> HTCConfig:
    return config if config is not None else HTCConfig()


def make_variant(name: str, config: Optional[HTCConfig] = None) -> HTCAligner:
    """Instantiate an ablation variant by name.

    ``config`` provides the shared hyper-parameters (embedding size, epochs,
    ...); the variant overrides only the fields it ablates.
    """
    base = _base(config)
    builders = {
        "HTC": lambda: base.updated(topology_mode="orbit", use_refinement=True),
        "HTC-HT": lambda: base.updated(topology_mode="orbit", use_refinement=True),
        "HTC-L": lambda: base.updated(topology_mode="adjacency", use_refinement=False),
        "HTC-H": lambda: base.updated(topology_mode="orbit", use_refinement=False),
        "HTC-LT": lambda: base.updated(topology_mode="adjacency", use_refinement=True),
        "HTC-DT": lambda: base.updated(topology_mode="diffusion", use_refinement=True),
        "HTC-binary": lambda: base.updated(
            topology_mode="orbit", use_refinement=True, weighted_orbits=False
        ),
        "HTC-cosine": lambda: base.updated(
            topology_mode="orbit", use_refinement=True, use_lisi=False
        ),
        "HTC-GDV": lambda: base.updated(
            topology_mode="orbit", use_refinement=True, augment_with_gdv=True
        ),
    }
    try:
        variant_config = builders[name]()
    except KeyError as error:
        raise KeyError(
            f"unknown variant {name!r}; available: {sorted(builders)}"
        ) from error
    aligner = HTCAligner(variant_config)
    aligner.name = name
    return aligner


#: The variant names reported in the paper's Table III, in table order.
ABLATION_VARIANTS = ("HTC-L", "HTC-H", "HTC-LT", "HTC-DT", "HTC")

#: Extra design ablations covered by the extended ablation bench.
EXTRA_ABLATION_VARIANTS = ("HTC-binary", "HTC-cosine", "HTC-GDV")


def all_variants(config: Optional[HTCConfig] = None) -> Dict[str, HTCAligner]:
    """Instantiate every paper variant keyed by name."""
    return {name: make_variant(name, config) for name in ABLATION_VARIANTS}


__all__ = [
    "make_variant",
    "all_variants",
    "ABLATION_VARIANTS",
    "EXTRA_ABLATION_VARIANTS",
]
