"""HTC core: the paper's primary contribution.

* :class:`HTCConfig` — every hyper-parameter of the framework,
* :mod:`repro.core.encoder` — orbit Laplacian construction and orbit-weighted
  encoding (Eq. 2-5),
* :mod:`repro.core.training` — multi-orbit-aware GAE training (Algorithm 1),
* :mod:`repro.core.refinement` — trusted-pair based fine-tuning (Algorithm 2),
* :mod:`repro.core.integration` — posterior importance assignment (Eq. 15),
* :class:`HTCAligner` — the end-to-end pipeline,
* :mod:`repro.core.variants` — the ablation variants of Table III.
"""

from repro.core.aligner import HTCAligner
from repro.core.config import HTCConfig
from repro.core.integration import integrate_alignment_matrices, orbit_importance
from repro.core.result import AlignmentResult
from repro.core.variants import ABLATION_VARIANTS, make_variant

__all__ = [
    "HTCConfig",
    "HTCAligner",
    "AlignmentResult",
    "orbit_importance",
    "integrate_alignment_matrices",
    "make_variant",
    "ABLATION_VARIANTS",
]
