"""Trusted-pair based fine-tuning (paper §IV-D, Algorithm 2).

After training, the per-orbit embeddings are refined independently:

1. compute the LISI alignment matrix of the current embeddings,
2. find the trusted pairs (mutual nearest neighbours under LISI),
3. multiply the reinforcement factor of every trusted node by β (Eq. 13),
4. re-encode both graphs with the reinforced Laplacians ``R ~L R`` (Eq. 14),
5. repeat while the number of trusted pairs keeps growing.

The output per orbit is the final alignment matrix and the maximal trusted
pair count, which later drives the posterior importance assignment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np
import scipy.sparse as sp

from repro.core.config import HTCConfig
from repro.graph.laplacian import reinforced_laplacian
from repro.nn.layers import SharedGCNEncoder
from repro.similarity.lisi import lisi_matrix
from repro.similarity.matching import mutual_nearest_neighbors
from repro.similarity.measures import pearson_similarity
from repro.utils.logging import get_logger

logger = get_logger(__name__)


@dataclass
class RefinementOutput:
    """Per-orbit outcome of the fine-tuning loop."""

    alignment_matrix: np.ndarray
    trusted_pairs: int
    iterations: int
    source_embedding: np.ndarray
    target_embedding: np.ndarray


class TrustedPairRefiner:
    """Runs Algorithm 2 on one orbit view at a time."""

    def __init__(self, config: HTCConfig) -> None:
        self.config = config

    def _score_matrix(
        self, source_embedding: np.ndarray, target_embedding: np.ndarray
    ) -> np.ndarray:
        # ``score_chunk_size`` streams the scoring in row chunks, bounding
        # the temporary memory per view; results are bit-identical.
        # ``compute_dtype``/``backend`` select the precision policy and
        # compute backend of the scoring GEMMs (float64 default = exact).
        chunk_rows = self.config.score_chunk_size
        policy = self.config.precision_policy
        backend = self.config.backend
        if self.config.use_lisi:
            return lisi_matrix(
                source_embedding,
                target_embedding,
                n_neighbors=self.config.n_neighbors,
                chunk_rows=chunk_rows,
                policy=policy,
                backend=backend,
            )
        return pearson_similarity(
            source_embedding,
            target_embedding,
            chunk_rows=chunk_rows,
            policy=policy,
            backend=backend,
        )

    def refine_view(
        self,
        encoder: SharedGCNEncoder,
        source_laplacian: sp.csr_matrix,
        target_laplacian: sp.csr_matrix,
        source_attributes: np.ndarray,
        target_attributes: np.ndarray,
    ) -> RefinementOutput:
        """Fine-tune one orbit view and return its alignment matrix."""
        beta = self.config.reinforcement_rate
        n_source = source_attributes.shape[0]
        n_target = target_attributes.shape[0]
        reinforcement_source = np.ones(n_source)
        reinforcement_target = np.ones(n_target)

        source_embedding = encoder(source_laplacian, source_attributes).detach().numpy()
        target_embedding = encoder(target_laplacian, target_attributes).detach().numpy()

        best_matrix = self._score_matrix(source_embedding, target_embedding)
        best_count = len(mutual_nearest_neighbors(best_matrix))
        best_source, best_target = source_embedding, target_embedding

        if not self.config.use_refinement:
            return RefinementOutput(
                alignment_matrix=best_matrix,
                trusted_pairs=best_count,
                iterations=0,
                source_embedding=best_source,
                target_embedding=best_target,
            )

        max_count = best_count
        current_matrix = best_matrix
        iterations = 0
        for iterations in range(1, self.config.max_refinement_iterations + 1):
            # Reinforce the aggregation coefficients of the trusted nodes.
            pairs = mutual_nearest_neighbors(current_matrix)
            for i, j in pairs:
                reinforcement_source[i] *= beta
                reinforcement_target[j] *= beta

            reinforced_source = reinforced_laplacian(
                source_laplacian, reinforcement_source
            )
            reinforced_target = reinforced_laplacian(
                target_laplacian, reinforcement_target
            )
            source_embedding = (
                encoder(reinforced_source, source_attributes).detach().numpy()
            )
            target_embedding = (
                encoder(reinforced_target, target_attributes).detach().numpy()
            )
            current_matrix = self._score_matrix(source_embedding, target_embedding)
            current_count = len(mutual_nearest_neighbors(current_matrix))
            logger.debug(
                "refinement iteration %d: %d trusted pairs", iterations, current_count
            )

            if current_count <= max_count:
                break
            max_count = current_count
            best_matrix = current_matrix
            best_source, best_target = source_embedding, target_embedding

        return RefinementOutput(
            alignment_matrix=best_matrix,
            trusted_pairs=max_count,
            iterations=iterations,
            source_embedding=best_source,
            target_embedding=best_target,
        )

    def refine_all(
        self,
        encoder: SharedGCNEncoder,
        source_views: Dict[int, sp.csr_matrix],
        target_views: Dict[int, sp.csr_matrix],
        source_attributes: np.ndarray,
        target_attributes: np.ndarray,
    ) -> Dict[int, RefinementOutput]:
        """Fine-tune every view independently (loops do not interact)."""
        outputs: Dict[int, RefinementOutput] = {}
        for view_id in source_views:
            outputs[view_id] = self.refine_view(
                encoder,
                source_views[view_id],
                target_views[view_id],
                source_attributes,
                target_attributes,
            )
        return outputs


__all__ = ["TrustedPairRefiner", "RefinementOutput"]
