"""Configuration of the HTC framework.

The defaults mirror the paper's settings (§V-A) scaled to the CPU-only,
reduced-size datasets shipped with this reproduction: two GCN layers, Adam
with learning rate 0.01, reinforcement rate β = 1.1.  The paper uses an
embedding dimension of 200 and m = 20 nearest neighbours on networks with
thousands of nodes; the defaults here are proportionally smaller but both are
plain configuration fields.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence, Tuple, Union

from repro.backend.compute import resolve_compute_backend
from repro.backend.executor import executor_registry
from repro.backend.precision import PrecisionPolicy, resolve_policy
from repro.orbits.cache import resolve_cache
from repro.orbits.engine import AUTO_BACKEND, orbit_registry
from repro.orbits.graphlets import EDGE_ORBIT_COUNT
from repro.utils.random import RandomStateLike

#: Valid values for :attr:`HTCConfig.topology_mode`.
TOPOLOGY_MODES = ("orbit", "adjacency", "diffusion")

#: Warn-once latch for the ``orbit_backend`` deprecation (PR 5 made the
#: field an alias for the shared ``"orbit"`` registry kind).  Module-level
#: so the warning fires once per process, not once per config.
_ORBIT_BACKEND_WARNED = False


def _warn_orbit_backend_deprecated() -> None:
    global _ORBIT_BACKEND_WARNED
    if _ORBIT_BACKEND_WARNED:
        return
    _ORBIT_BACKEND_WARNED = True
    warnings.warn(
        "HTCConfig.orbit_backend is a deprecated alias for the shared "
        '"orbit" backend registry (repro.backend.get_registry("orbit")); '
        "it keeps resolving through that registry, but new code should "
        "register/select orbit counters via repro.orbits.engine instead",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass
class HTCConfig:
    """Hyper-parameters of :class:`repro.core.HTCAligner`.

    Attributes
    ----------
    orbits:
        Edge-orbit ids to use (``None`` = all 13).  The paper's K-sweep
        (Fig. 10a) corresponds to ``orbits=range(K)``.
    topology_mode:
        ``"orbit"`` (default, the paper's GOMs), ``"adjacency"`` (plain
        edge-indiscriminative topology — the low-order ablation), or
        ``"diffusion"`` (PPR diffusion matrices — the HTC-DT ablation).
    weighted_orbits:
        Weighted (occurrence counts) vs binary GOMs.
    embedding_dim:
        Output dimension ``d`` of the encoder.
    n_layers:
        Number of GCN layers ``L`` (the paper finds 2 is best).
    activation:
        Hidden-layer activation name.
    learning_rate, epochs, weight_decay:
        Adam settings for the multi-orbit-aware training stage.
    n_neighbors:
        Neighbourhood size ``m`` of the LISI hubness correction.
    reinforcement_rate:
        β > 1; trusted nodes' aggregation coefficients are multiplied by it.
    max_refinement_iterations:
        Safety cap on the per-orbit fine-tuning loop.
    use_refinement:
        Enable the trusted-pair fine-tuning stage.
    use_lisi:
        Use LISI (hubness-corrected) scores; if False, raw Pearson similarity
        is used for both trusted-pair detection and the final matrices.
    augment_with_gdv:
        Extension beyond the paper: concatenate each node's log-scaled
        graphlet degree vector (15 node orbits) to its attributes before
        encoding, which injects higher-order structure even into the
        low-order ablations.
    compute_dtype:
        Precision policy of the similarity/serve/shard hot paths:
        ``"float64"`` (default — exact, bit-identical to the historical
        kernels) or ``"float32"`` (half the score-matrix memory, faster
        GEMMs, float64 accumulation for reductions; documented tolerances
        instead of bit-identity).  See :mod:`repro.backend.precision`.
    backend:
        Dense compute backend for the similarity kernels: ``"auto"``
        (default) or a name registered in the shared compute registry
        (:mod:`repro.backend.compute`; ``"numpy"`` is built in).
    orbit_backend:
        Orbit-counting backend: ``"auto"`` (default; the fastest available),
        ``"numpy"`` (vectorized bitset counters), or ``"python"`` (the
        pure-Python reference).  All backends are bit-identical.

        .. deprecated:: PR 5
            This field is now a thin alias for the ``"orbit"`` kind of the
            shared :mod:`repro.backend` registry (where the counters are
            registered); it keeps working unchanged, but new code extending
            the backend set should register through
            :func:`repro.orbits.engine.register_backend` /
            ``repro.backend.get_registry("orbit")`` rather than assume the
            selection logic is private to the orbit engine.
    orbit_cache:
        Orbit-count memoisation spec: ``"memory"`` (default; process-wide
        in-memory cache keyed by graph content hash), ``"off"``, a directory
        path for an on-disk cache, a bool, or an
        :class:`repro.orbits.OrbitCache` instance.
    score_chunk_size:
        Row-chunk size for the similarity/LISI scoring stages.  ``None``
        (default) keeps the fully dense behaviour; an integer streams the
        score matrices in chunks of (about) that many rows, bounding the
        temporary memory per orbit view (see
        :mod:`repro.similarity.chunked`).  Results are bit-identical either
        way.
    shard_count:
        ``None`` (default) aligns the whole pair in one shot.  An integer
        ``N >= 1`` routes alignment through the partition–align–stitch
        subsystem (:mod:`repro.shard`): both graphs are partitioned into
        ``N`` community-consistent shards, shard pairs are aligned
        independently (bounding per-job memory/time by the shard size), and
        the results are stitched into one global sparse alignment.
    shard_overlap:
        BFS hops of boundary overlap added around every shard (sharded mode
        only).  Overlapping shards give the stitcher multiple scored
        opinions about boundary nodes; ``0`` disables the overlap ring.
    executor_backend:
        Job-execution strategy for sharded alignment (and any suite this
        config rides in): ``"auto"`` (default), or a name registered under
        the shared ``"executor"`` kind — ``"serial"``, ``"process-pool"``,
        ``"thread-pool"`` (:mod:`repro.backend.executor`).  Execution-only:
        it never changes results, job spec hashes, or resume artifacts.
    diffusion_orders, diffusion_alpha:
        Settings of the diffusion family used when ``topology_mode ==
        "diffusion"``.
    random_state:
        Seed controlling weight initialisation.
    """

    orbits: Optional[Sequence[int]] = None
    topology_mode: str = "orbit"
    weighted_orbits: bool = True
    embedding_dim: int = 64
    n_layers: int = 2
    activation: str = "relu"
    learning_rate: float = 0.01
    epochs: int = 100
    weight_decay: float = 0.0
    n_neighbors: int = 10
    reinforcement_rate: float = 1.1
    max_refinement_iterations: int = 15
    use_refinement: bool = True
    use_lisi: bool = True
    shared_encoder: bool = True
    augment_with_gdv: bool = False
    compute_dtype: str = "float64"
    backend: str = AUTO_BACKEND
    orbit_backend: str = AUTO_BACKEND
    orbit_cache: Union[bool, str, object] = "memory"
    score_chunk_size: Optional[int] = None
    shard_count: Optional[int] = None
    shard_overlap: int = 1
    executor_backend: str = AUTO_BACKEND
    diffusion_orders: Tuple[int, ...] = (1, 2, 3, 4, 5)
    diffusion_alpha: float = 0.15
    random_state: RandomStateLike = 0
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.topology_mode not in TOPOLOGY_MODES:
            raise ValueError(
                f"topology_mode must be one of {TOPOLOGY_MODES}, "
                f"got {self.topology_mode!r}"
            )
        if self.orbits is not None:
            self.orbits = tuple(int(k) for k in self.orbits)
            if not self.orbits:
                raise ValueError("orbits must be non-empty or None")
            for orbit in self.orbits:
                if not 0 <= orbit < EDGE_ORBIT_COUNT:
                    raise ValueError(
                        f"orbit ids must be in [0, {EDGE_ORBIT_COUNT}), got {orbit}"
                    )
        if self.embedding_dim < 1:
            raise ValueError(f"embedding_dim must be >= 1, got {self.embedding_dim}")
        if self.n_layers < 1:
            raise ValueError(f"n_layers must be >= 1, got {self.n_layers}")
        if self.learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {self.learning_rate}")
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs}")
        if self.n_neighbors < 1:
            raise ValueError(f"n_neighbors must be >= 1, got {self.n_neighbors}")
        if self.reinforcement_rate <= 1.0:
            raise ValueError(
                f"reinforcement_rate must be > 1, got {self.reinforcement_rate}"
            )
        if self.max_refinement_iterations < 1:
            raise ValueError(
                "max_refinement_iterations must be >= 1, "
                f"got {self.max_refinement_iterations}"
            )
        if self.score_chunk_size is not None and self.score_chunk_size < 1:
            raise ValueError(
                f"score_chunk_size must be >= 1 or None, got {self.score_chunk_size}"
            )
        if self.shard_count is not None and self.shard_count < 1:
            raise ValueError(
                f"shard_count must be >= 1 or None, got {self.shard_count}"
            )
        if self.shard_overlap < 0:
            raise ValueError(
                f"shard_overlap must be >= 0, got {self.shard_overlap}"
            )
        registry = orbit_registry()
        valid_backends = (AUTO_BACKEND,) + registry.available()
        if self.orbit_backend not in valid_backends:
            raise ValueError(
                f"orbit_backend must be one of {valid_backends}, "
                f"got {self.orbit_backend!r}"
            )
        if self.orbit_backend != AUTO_BACKEND:
            _warn_orbit_backend_deprecated()
        valid_executors = (AUTO_BACKEND,) + executor_registry().available()
        if self.executor_backend not in valid_executors:
            raise ValueError(
                f"executor_backend must be one of {valid_executors}, "
                f"got {self.executor_backend!r}"
            )
        # Both knobs of the shared backend/precision layer fail fast here so
        # a bad CLI/suite value surfaces before any training happens.
        resolve_policy(self.compute_dtype)
        resolve_compute_backend(self.backend)
        try:
            resolve_cache(self.orbit_cache)
        except TypeError as exc:
            raise ValueError(str(exc)) from exc

    @property
    def resolved_orbits(self) -> Tuple[int, ...]:
        """The orbit ids actually used (all 13 when ``orbits`` is None)."""
        if self.orbits is None:
            return tuple(range(EDGE_ORBIT_COUNT))
        return tuple(self.orbits)

    @property
    def hidden_dims(self) -> Tuple[int, ...]:
        """Per-layer output sizes fed to the shared encoder."""
        return tuple([self.embedding_dim] * self.n_layers)

    @property
    def precision_policy(self) -> PrecisionPolicy:
        """The resolved :class:`PrecisionPolicy` behind ``compute_dtype``."""
        return resolve_policy(self.compute_dtype)

    def updated(self, **changes) -> "HTCConfig":
        """Return a copy of the config with ``changes`` applied."""
        return replace(self, **changes)


__all__ = ["HTCConfig", "TOPOLOGY_MODES"]
