"""Multi-orbit-aware training (paper §IV-C, Algorithm 1).

Without anchor labels, HTC trains its shared GCN encoder in the Graph
Auto-Encoder paradigm: for every orbit view ``k`` and both graphs, the
encoder's embeddings must reconstruct that view's Laplacian through an inner
product decoder.  Because the encoder parameters are shared across *all*
views and both graphs, minimising the summed loss makes the encoder
multi-orbit-aware — it cannot overfit to any single topological pattern,
which is also the mechanism behind HTC's robustness to edge removal.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np
import scipy.sparse as sp

from repro.core.config import HTCConfig
from repro.nn.functional import frobenius_loss
from repro.nn.layers import SharedGCNEncoder
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.utils.logging import get_logger

logger = get_logger(__name__)


def reconstruction_loss(
    encoder: SharedGCNEncoder,
    laplacian: sp.spmatrix,
    attributes: np.ndarray,
    target_dense: np.ndarray,
) -> Tensor:
    """Orbit-reconstruction loss of one graph on one view (Eq. 6-7).

    ``target_dense`` is the densified Laplacian the inner product
    ``H H^T`` must reconstruct.
    """
    embedding = encoder(laplacian, attributes)
    reconstruction = embedding @ embedding.T
    return frobenius_loss(reconstruction, target_dense)


class MultiOrbitTrainer:
    """Trains a shared encoder over all orbit views of two graphs."""

    def __init__(self, config: HTCConfig) -> None:
        self.config = config

    def train(
        self,
        encoder: SharedGCNEncoder,
        source_views: Dict[int, sp.csr_matrix],
        target_views: Dict[int, sp.csr_matrix],
        source_attributes: np.ndarray,
        target_attributes: np.ndarray,
    ) -> List[float]:
        """Run Algorithm 1 and return the per-epoch total losses.

        The encoder is modified in place; embeddings can afterwards be
        obtained with :func:`repro.core.encoder.encode_views`.
        """
        if set(source_views) != set(target_views):
            raise ValueError("source and target must expose the same view ids")

        optimizer = Adam(
            encoder.parameters(),
            lr=self.config.learning_rate,
            weight_decay=self.config.weight_decay,
        )

        # Densify the reconstruction targets once (they are constants).
        source_targets = {k: np.asarray(v.todense()) for k, v in source_views.items()}
        target_targets = {k: np.asarray(v.todense()) for k, v in target_views.items()}

        losses: List[float] = []
        for epoch in range(self.config.epochs):
            optimizer.zero_grad()
            total = None
            for view_id in source_views:
                loss_source = reconstruction_loss(
                    encoder,
                    source_views[view_id],
                    source_attributes,
                    source_targets[view_id],
                )
                loss_target = reconstruction_loss(
                    encoder,
                    target_views[view_id],
                    target_attributes,
                    target_targets[view_id],
                )
                view_loss = loss_source + loss_target
                total = view_loss if total is None else total + view_loss
            total.backward()
            optimizer.step()
            losses.append(total.item())
            if epoch % 25 == 0:
                logger.debug("epoch %d: loss %.4f", epoch, losses[-1])
        return losses


__all__ = ["MultiOrbitTrainer", "reconstruction_loss"]
