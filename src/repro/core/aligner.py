"""The end-to-end HTC pipeline (paper Fig. 3).

``HTCAligner.align(pair)`` runs the five stages and records their wall-clock
decomposition (the Fig. 8 breakdown):

1. *orbit counting* — edge-orbit counts of both graphs,
2. *laplacian construction* — GOMs → modified, normalised orbit Laplacians,
3. *multi-orbit-aware training* — Algorithm 1 on the shared encoder,
4. *trusted-pair fine-tuning* — Algorithm 2 per orbit,
5. *weighted integration* — posterior importance assignment (Eq. 15).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.config import HTCConfig
from repro.core.encoder import (
    build_topology_views,
    count_orbits_if_needed,
    make_encoder,
)
from repro.core.integration import integrate_alignment_matrices
from repro.core.refinement import TrustedPairRefiner
from repro.core.result import AlignmentResult
from repro.core.training import MultiOrbitTrainer
from repro.datasets.pair import GraphPair
from repro.graph.attributed_graph import AttributedGraph
from repro.orbits.cache import resolve_cache
from repro.orbits.engine import graphlet_degree_vectors
from repro.utils.logging import get_logger
from repro.utils.timing import StageTimer

logger = get_logger(__name__)


def _augment_with_gdv(graph: AttributedGraph, config: HTCConfig) -> np.ndarray:
    """Concatenate L2-normalised graphlet degree vectors to the node attributes.

    This is the ``augment_with_gdv`` extension: node orbits are isomorphism
    invariant, so the augmentation preserves the attribute-consistency premise
    of Proposition 1 while injecting higher-order structure into the features.
    The GDV block is normalised per node so its magnitude stays comparable to
    one-hot attributes; even so, raw counts are sensitive to edge removal, and
    the ablation bench shows the augmentation does not improve on HTC's
    orbit-weighted aggregation (see EXPERIMENTS.md).
    """
    gdv = graphlet_degree_vectors(
        graph,
        backend=config.orbit_backend,
        cache=resolve_cache(config.orbit_cache),
    )
    norms = np.linalg.norm(gdv, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    return np.hstack([graph.attributes, gdv / norms])

#: Stage names used in the runtime decomposition (matches the paper's Fig. 8).
STAGE_ORBIT_COUNTING = "orbit_counting"
STAGE_LAPLACIAN = "laplacian_construction"
STAGE_TRAINING = "multi_orbit_training"
STAGE_FINE_TUNING = "trusted_pair_fine_tuning"
STAGE_INTEGRATION = "weighted_integration"
STAGE_OTHER = "other"


class HTCAligner:
    """Higher-order Topological Consistency aligner.

    Parameters
    ----------
    config:
        Hyper-parameters; defaults reproduce the paper's configuration scaled
        to the bundled synthetic datasets.

    Examples
    --------
    >>> from repro.datasets import load_dataset
    >>> from repro.core import HTCAligner, HTCConfig
    >>> pair = load_dataset("tiny")
    >>> aligner = HTCAligner(HTCConfig(epochs=10, embedding_dim=16))
    >>> result = aligner.align(pair)
    >>> result.alignment_matrix.shape == (pair.source.n_nodes, pair.target.n_nodes)
    True
    """

    name = "HTC"
    requires_supervision = False

    def __init__(self, config: Optional[HTCConfig] = None) -> None:
        self.config = config if config is not None else HTCConfig()
        self.encoder_ = None
        self.last_result_: Optional[AlignmentResult] = None

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def align(self, pair: GraphPair, train_anchors=None) -> AlignmentResult:
        """Align ``pair`` and return the full :class:`AlignmentResult`.

        ``train_anchors`` is accepted (and ignored) so HTC can be driven by
        the same experiment protocol as the supervised baselines.
        """
        return self.align_graphs(pair.source, pair.target)

    def align_graphs(
        self, source: AttributedGraph, target: AttributedGraph
    ) -> AlignmentResult:
        """Align two graphs directly (no ground truth needed)."""
        if source.n_attributes != target.n_attributes:
            raise ValueError(
                "source and target must share an attribute space; got "
                f"{source.n_attributes} and {target.n_attributes} dimensions"
            )
        config = self.config
        timer = StageTimer()

        with timer.stage(STAGE_ORBIT_COUNTING):
            source_counts = count_orbits_if_needed(source, config)
            target_counts = count_orbits_if_needed(target, config)

        source_attributes = source.attributes
        target_attributes = target.attributes
        if config.augment_with_gdv:
            with timer.stage(STAGE_OTHER):
                source_attributes = _augment_with_gdv(source, config)
                target_attributes = _augment_with_gdv(target, config)

        with timer.stage(STAGE_LAPLACIAN):
            source_views = build_topology_views(source, config, source_counts)
            target_views = build_topology_views(target, config, target_counts)

        with timer.stage(STAGE_TRAINING):
            encoder = make_encoder(source_attributes.shape[1], config)
            trainer = MultiOrbitTrainer(config)
            losses = trainer.train(
                encoder,
                source_views,
                target_views,
                source_attributes,
                target_attributes,
            )
        self.encoder_ = encoder

        with timer.stage(STAGE_FINE_TUNING):
            refiner = TrustedPairRefiner(config)
            refined = refiner.refine_all(
                encoder,
                source_views,
                target_views,
                source_attributes,
                target_attributes,
            )

        with timer.stage(STAGE_INTEGRATION):
            orbit_matrices = {k: out.alignment_matrix for k, out in refined.items()}
            trusted_counts = {k: out.trusted_pairs for k, out in refined.items()}
            alignment_matrix, importance = integrate_alignment_matrices(
                orbit_matrices,
                trusted_counts,
                chunk_rows=config.score_chunk_size,
                policy=config.precision_policy,
            )

        result = AlignmentResult(
            alignment_matrix=alignment_matrix,
            orbit_matrices=orbit_matrices,
            orbit_importance=importance,
            trusted_pair_counts=trusted_counts,
            source_embeddings={k: out.source_embedding for k, out in refined.items()},
            target_embeddings={k: out.target_embedding for k, out in refined.items()},
            stage_times=timer.as_dict(),
            training_losses=losses,
        )
        self.last_result_ = result
        logger.info(
            "HTC aligned %s -> %s in %.2fs (%d views)",
            source.name,
            target.name,
            result.total_time,
            len(orbit_matrices),
        )
        return result

    def alignment_matrix(self, pair: GraphPair) -> np.ndarray:
        """Convenience wrapper returning only the final alignment matrix."""
        return self.align(pair).alignment_matrix

    def __repr__(self) -> str:
        return f"HTCAligner(config={self.config!r})"


__all__ = [
    "HTCAligner",
    "STAGE_ORBIT_COUNTING",
    "STAGE_LAPLACIAN",
    "STAGE_TRAINING",
    "STAGE_FINE_TUNING",
    "STAGE_INTEGRATION",
    "STAGE_OTHER",
]
