"""Orbit-weighted encoding (paper §IV-B).

This module builds, for one graph, the family of propagation matrices the
shared GCN encoder aggregates over — one per topology *view*:

* ``orbit`` mode: the modified, normalised graphlet-orbit Laplacians
  ``~L_k`` built from the GOMs (Eq. 1-3),
* ``adjacency`` mode: the single classic GCN Laplacian (the low-order
  ablation),
* ``diffusion`` mode: PPR diffusion matrices of increasing order (the HTC-DT
  ablation).

It also provides the forward encoding helper that runs the shared encoder on
every view and returns per-view embeddings (Eq. 4-5).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np
import scipy.sparse as sp

from repro.core.config import HTCConfig
from repro.graph.attributed_graph import AttributedGraph
from repro.graph.diffusion import diffusion_matrix_family
from repro.graph.laplacian import normalized_laplacian, orbit_laplacian
from repro.nn.layers import SharedGCNEncoder
from repro.orbits.cache import resolve_cache
from repro.orbits.edge_orbits import EdgeOrbitCounts
from repro.orbits.engine import count_edge_orbits
from repro.orbits.orbit_matrix import build_orbit_matrices


def build_topology_views(
    graph: AttributedGraph,
    config: HTCConfig,
    orbit_counts: Optional[EdgeOrbitCounts] = None,
) -> Dict[int, sp.csr_matrix]:
    """Return the propagation matrices (views) of ``graph`` keyed by view id.

    In ``orbit`` mode the keys are the orbit ids of ``config.resolved_orbits``;
    in ``adjacency`` mode there is a single view with key 0; in ``diffusion``
    mode keys are the diffusion orders' positions.
    """
    if config.topology_mode == "adjacency":
        return {0: normalized_laplacian(graph.adjacency)}

    if config.topology_mode == "diffusion":
        family = diffusion_matrix_family(
            graph, orders=list(config.diffusion_orders), alpha=config.diffusion_alpha
        )
        return {index: orbit_laplacian(matrix) for index, matrix in enumerate(family)}

    # "orbit" mode.
    orbits = config.resolved_orbits
    matrices = build_orbit_matrices(
        graph, orbits=orbits, weighted=config.weighted_orbits, counts=orbit_counts
    )
    return {orbit: orbit_laplacian(matrix) for orbit, matrix in zip(orbits, matrices)}


def count_orbits_if_needed(
    graph: AttributedGraph, config: HTCConfig
) -> Optional[EdgeOrbitCounts]:
    """Run edge-orbit counting only when the configuration requires it.

    The backend and per-graph memoisation are taken from the config's
    ``orbit_backend`` / ``orbit_cache`` fields, so repeated alignments of the
    same graph (robustness and hyper-parameter sweeps) skip the stage.
    """
    if config.topology_mode != "orbit":
        return None
    return count_edge_orbits(
        graph,
        backend=config.orbit_backend,
        cache=resolve_cache(config.orbit_cache),
    )


def make_encoder(in_features: int, config: HTCConfig) -> SharedGCNEncoder:
    """Instantiate the shared GCN encoder described by ``config``."""
    activations = [config.activation] * (config.n_layers - 1) + ["identity"]
    return SharedGCNEncoder(
        in_features=in_features,
        hidden_dims=config.hidden_dims,
        activations=activations,
        random_state=config.random_state,
    )


def encode_views(
    encoder: SharedGCNEncoder,
    views: Dict[int, sp.csr_matrix],
    attributes: np.ndarray,
) -> Dict[int, np.ndarray]:
    """Forward-encode ``attributes`` through every topology view (no gradients).

    Returns the final-layer embedding per view id, as plain numpy arrays.
    """
    embeddings = {}
    for view_id, laplacian in views.items():
        embeddings[view_id] = encoder(laplacian, attributes).detach().numpy()
    return embeddings


__all__ = [
    "build_topology_views",
    "count_orbits_if_needed",
    "make_encoder",
    "encode_views",
]
