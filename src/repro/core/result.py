"""Result container returned by :class:`repro.core.HTCAligner`."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.similarity.matching import greedy_match, top_k_indices


@dataclass
class AlignmentResult:
    """Everything the HTC pipeline produced for one graph pair.

    Attributes
    ----------
    alignment_matrix:
        ``(n_source, n_target)`` final integrated alignment scores ``M``.
    orbit_matrices:
        Per-orbit alignment matrices ``M_k`` keyed by orbit id.
    orbit_importance:
        Posterior importance weights γ_k keyed by orbit id (sums to 1).
    trusted_pair_counts:
        Maximal number of trusted pairs found per orbit during fine-tuning.
    source_embeddings, target_embeddings:
        Final per-orbit node embeddings keyed by orbit id.
    stage_times:
        Wall-clock seconds per pipeline stage (the Fig. 8 decomposition).
    training_losses:
        Total reconstruction loss per epoch.
    """

    alignment_matrix: np.ndarray
    orbit_matrices: Dict[int, np.ndarray] = field(default_factory=dict)
    orbit_importance: Dict[int, float] = field(default_factory=dict)
    trusted_pair_counts: Dict[int, int] = field(default_factory=dict)
    source_embeddings: Dict[int, np.ndarray] = field(default_factory=dict)
    target_embeddings: Dict[int, np.ndarray] = field(default_factory=dict)
    stage_times: Dict[str, float] = field(default_factory=dict)
    training_losses: List[float] = field(default_factory=list)

    @property
    def total_time(self) -> float:
        """Total wall-clock time across all recorded stages."""
        return float(sum(self.stage_times.values()))

    def predicted_anchors(self) -> List[Tuple[int, int]]:
        """Hard one-to-one alignment obtained by greedy matching on ``M``."""
        return greedy_match(self.alignment_matrix)

    def top_candidates(self, k: int = 10) -> np.ndarray:
        """Top-``k`` target candidates per source node, best first."""
        return top_k_indices(self.alignment_matrix, k)

    def best_match(self, source_node: int) -> int:
        """Highest-scoring target node for ``source_node``."""
        if not 0 <= source_node < self.alignment_matrix.shape[0]:
            raise IndexError(f"source node {source_node} out of range")
        return int(self.alignment_matrix[source_node].argmax())

    def ranked_orbits(self) -> List[Tuple[int, float]]:
        """Orbits sorted by decreasing importance weight (the Fig. 6 ranking)."""
        return sorted(self.orbit_importance.items(), key=lambda kv: -kv[1])

    # ------------------------------------------------------------------
    # serialization hooks (used by :mod:`repro.serve.artifacts`)
    # ------------------------------------------------------------------
    def array_payload(self) -> Dict[str, np.ndarray]:
        """All array-valued fields keyed by flat, filesystem-safe names.

        Orbit-keyed dictionaries are flattened to ``<field>_<orbit_id>``
        entries; :meth:`from_payload` reverses the flattening.
        """
        arrays: Dict[str, np.ndarray] = {
            "alignment_matrix": np.asarray(self.alignment_matrix)
        }
        for orbit, matrix in self.orbit_matrices.items():
            arrays[f"orbit_matrix_{orbit}"] = np.asarray(matrix)
        for orbit, emb in self.source_embeddings.items():
            arrays[f"source_embedding_{orbit}"] = np.asarray(emb)
        for orbit, emb in self.target_embeddings.items():
            arrays[f"target_embedding_{orbit}"] = np.asarray(emb)
        if self.training_losses:
            arrays["training_losses"] = np.asarray(
                self.training_losses, dtype=np.float64
            )
        return arrays

    def scalar_payload(self) -> Dict[str, object]:
        """JSON-serialisable scalar fields (importances, counts, timings)."""
        return {
            "orbit_importance": {str(k): float(v) for k, v in self.orbit_importance.items()},
            "trusted_pair_counts": {
                str(k): int(v) for k, v in self.trusted_pair_counts.items()
            },
            "stage_times": {str(k): float(v) for k, v in self.stage_times.items()},
        }

    @classmethod
    def from_payload(
        cls, arrays: Dict[str, np.ndarray], scalars: Dict[str, object]
    ) -> "AlignmentResult":
        """Rebuild a result from :meth:`array_payload` + :meth:`scalar_payload`.

        Unknown array or scalar keys are ignored so newer writers stay
        loadable by older readers (forward compatibility).
        """
        if "alignment_matrix" not in arrays:
            raise ValueError("payload is missing the alignment_matrix array")
        orbit_matrices: Dict[int, np.ndarray] = {}
        source_embeddings: Dict[int, np.ndarray] = {}
        target_embeddings: Dict[int, np.ndarray] = {}
        for name, array in arrays.items():
            for prefix, bucket in (
                ("orbit_matrix_", orbit_matrices),
                ("source_embedding_", source_embeddings),
                ("target_embedding_", target_embeddings),
            ):
                suffix = name[len(prefix):]
                # Non-numeric suffixes are unknown keys from a newer writer.
                if name.startswith(prefix) and suffix.lstrip("-").isdigit():
                    bucket[int(suffix)] = np.asarray(array)
        losses = arrays.get("training_losses")
        return cls(
            alignment_matrix=np.asarray(arrays["alignment_matrix"]),
            orbit_matrices=orbit_matrices,
            orbit_importance={
                int(k): float(v)
                for k, v in dict(scalars.get("orbit_importance", {})).items()
            },
            trusted_pair_counts={
                int(k): int(v)
                for k, v in dict(scalars.get("trusted_pair_counts", {})).items()
            },
            source_embeddings=source_embeddings,
            target_embeddings=target_embeddings,
            stage_times={
                str(k): float(v)
                for k, v in dict(scalars.get("stage_times", {})).items()
            },
            training_losses=[] if losses is None else [float(x) for x in losses],
        )

    def __repr__(self) -> str:
        shape = self.alignment_matrix.shape
        return (
            f"AlignmentResult(alignment_matrix={shape[0]}x{shape[1]}, "
            f"orbits={sorted(self.orbit_matrices)}, total_time={self.total_time:.2f}s)"
        )


__all__ = ["AlignmentResult"]
