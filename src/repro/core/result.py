"""Result container returned by :class:`repro.core.HTCAligner`."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.similarity.matching import greedy_match, top_k_indices


@dataclass
class AlignmentResult:
    """Everything the HTC pipeline produced for one graph pair.

    Attributes
    ----------
    alignment_matrix:
        ``(n_source, n_target)`` final integrated alignment scores ``M``.
    orbit_matrices:
        Per-orbit alignment matrices ``M_k`` keyed by orbit id.
    orbit_importance:
        Posterior importance weights γ_k keyed by orbit id (sums to 1).
    trusted_pair_counts:
        Maximal number of trusted pairs found per orbit during fine-tuning.
    source_embeddings, target_embeddings:
        Final per-orbit node embeddings keyed by orbit id.
    stage_times:
        Wall-clock seconds per pipeline stage (the Fig. 8 decomposition).
    training_losses:
        Total reconstruction loss per epoch.
    """

    alignment_matrix: np.ndarray
    orbit_matrices: Dict[int, np.ndarray] = field(default_factory=dict)
    orbit_importance: Dict[int, float] = field(default_factory=dict)
    trusted_pair_counts: Dict[int, int] = field(default_factory=dict)
    source_embeddings: Dict[int, np.ndarray] = field(default_factory=dict)
    target_embeddings: Dict[int, np.ndarray] = field(default_factory=dict)
    stage_times: Dict[str, float] = field(default_factory=dict)
    training_losses: List[float] = field(default_factory=list)

    @property
    def total_time(self) -> float:
        """Total wall-clock time across all recorded stages."""
        return float(sum(self.stage_times.values()))

    def predicted_anchors(self) -> List[Tuple[int, int]]:
        """Hard one-to-one alignment obtained by greedy matching on ``M``."""
        return greedy_match(self.alignment_matrix)

    def top_candidates(self, k: int = 10) -> np.ndarray:
        """Top-``k`` target candidates per source node, best first."""
        return top_k_indices(self.alignment_matrix, k)

    def best_match(self, source_node: int) -> int:
        """Highest-scoring target node for ``source_node``."""
        if not 0 <= source_node < self.alignment_matrix.shape[0]:
            raise IndexError(f"source node {source_node} out of range")
        return int(self.alignment_matrix[source_node].argmax())

    def ranked_orbits(self) -> List[Tuple[int, float]]:
        """Orbits sorted by decreasing importance weight (the Fig. 6 ranking)."""
        return sorted(self.orbit_importance.items(), key=lambda kv: -kv[1])

    def __repr__(self) -> str:
        shape = self.alignment_matrix.shape
        return (
            f"AlignmentResult(alignment_matrix={shape[0]}x{shape[1]}, "
            f"orbits={sorted(self.orbit_matrices)}, total_time={self.total_time:.2f}s)"
        )


__all__ = ["AlignmentResult"]
