"""Posterior importance assignment (paper §IV-E, Eq. 15).

Every orbit's fine-tuning loop produces an alignment matrix ``M_k`` and a
trusted-pair count ``T_k``.  The orbit's importance is
``γ_k = T_k / Σ_i T_i`` and the final alignment matrix is the weighted sum
``M = Σ_k γ_k M_k``.  Orbits whose embeddings identified more mutually
consistent pairs are trusted more — which is how HTC adapts to the very
different orbit-importance profiles of dense and sparse networks (Fig. 6).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.backend.precision import PolicyLike, resolve_policy


def orbit_importance(trusted_pair_counts: Dict[int, int]) -> Dict[int, float]:
    """Normalise trusted-pair counts into importance weights γ_k.

    If no orbit found any trusted pair, the weights fall back to uniform.
    """
    if not trusted_pair_counts:
        raise ValueError("trusted_pair_counts must not be empty")
    counts = {k: max(0, int(v)) for k, v in trusted_pair_counts.items()}
    total = sum(counts.values())
    if total == 0:
        uniform = 1.0 / len(counts)
        return {k: uniform for k in counts}
    return {k: v / total for k, v in counts.items()}


def integrate_alignment_matrices(
    orbit_matrices: Dict[int, np.ndarray],
    trusted_pair_counts: Dict[int, int],
    chunk_rows: Optional[int] = None,
    policy: PolicyLike = None,
) -> Tuple[np.ndarray, Dict[int, float]]:
    """Combine per-orbit alignment matrices into the final matrix ``M``.

    ``chunk_rows`` bounds the broadcast temporaries of the weighted
    accumulation to one row chunk at a time (``γ_k · M_k`` otherwise
    materialises a full extra matrix per orbit); the sum is elementwise, so
    the result is bit-identical for every chunking.

    ``policy`` selects the precision (:mod:`repro.backend.precision`).  The
    float64 default performs exactly the historical per-orbit accumulation;
    the float32 policy keeps the *output* in float32 but accumulates each
    row chunk's γ-weighted sum in a float64 buffer (compute-low /
    accumulate-high), so the 13-view reduction does not lose precision to
    the storage dtype.

    Returns
    -------
    alignment_matrix:
        The γ-weighted sum of the per-orbit matrices.
    importance:
        The γ_k weights used.
    """
    if not orbit_matrices:
        raise ValueError("orbit_matrices must not be empty")
    if set(orbit_matrices) != set(trusted_pair_counts):
        raise ValueError(
            "orbit_matrices and trusted_pair_counts must have the same keys"
        )
    shapes = {matrix.shape for matrix in orbit_matrices.values()}
    if len(shapes) != 1:
        raise ValueError(f"alignment matrices have inconsistent shapes: {shapes}")

    importance = orbit_importance(trusted_pair_counts)
    shape = next(iter(shapes))
    policy = resolve_policy(policy)
    n_rows = shape[0]
    step = max(1, n_rows) if chunk_rows is None else max(1, int(chunk_rows))
    if policy.is_exact:
        final = np.zeros(shape, dtype=np.float64)
        for orbit, matrix in orbit_matrices.items():
            matrix = np.asarray(matrix, dtype=np.float64)
            for start in range(0, n_rows, step):
                final[start : start + step] += (
                    importance[orbit] * matrix[start : start + step]
                )
        return final, importance
    # Reduced precision: float32 output, per-chunk float64 accumulator so
    # only one chunk-sized double buffer is live at a time.  Without an
    # explicit chunking the accumulator is still bounded — a full-height
    # float64 buffer would forfeit the policy's memory reduction.
    if chunk_rows is None:
        step = max(1, min(n_rows, 256))
    final = policy.zeros(shape)
    for start in range(0, n_rows, step):
        accumulator = np.zeros(final[start : start + step].shape, dtype=policy.accum_dtype)
        for orbit, matrix in orbit_matrices.items():
            accumulator += importance[orbit] * np.asarray(
                matrix[start : start + step], dtype=policy.accum_dtype
            )
        final[start : start + step] = accumulator
    return final, importance


__all__ = ["orbit_importance", "integrate_alignment_matrices"]
