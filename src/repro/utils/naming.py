"""Filesystem-safe name normalisation shared by the artifact-writing layers.

Job ids (``runner.spec``), artifact ids (``serve.artifacts``) and shard
suite names (``shard.executor``) all embed user-supplied names in directory
names; they must normalise identically so the stores stay predictable.
"""

from __future__ import annotations

import re


def slugify(text: str, fallback: str) -> str:
    """Lower-case ``text`` with every non-alphanumeric run collapsed to ``-``.

    ``fallback`` is returned when nothing survives (empty or all-symbol
    input) — callers pick a noun matching what they are naming.
    """
    slug = re.sub(r"[^A-Za-z0-9]+", "-", text).strip("-").lower()
    return slug or fallback


__all__ = ["slugify"]
