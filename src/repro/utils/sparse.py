"""scipy sparse-matrix helpers shared by the graph and orbit packages."""

from __future__ import annotations

from typing import Iterable, Tuple, Union

import numpy as np
import scipy.sparse as sp

MatrixLike = Union[np.ndarray, sp.spmatrix]


def to_csr(matrix: MatrixLike, dtype: type = np.float64) -> sp.csr_matrix:
    """Convert a dense array or any scipy sparse matrix to CSR format."""
    if sp.issparse(matrix):
        out = matrix.tocsr().astype(dtype)
    else:
        arr = np.asarray(matrix, dtype=dtype)
        if arr.ndim != 2:
            raise ValueError(f"expected a 2-D matrix, got shape {arr.shape}")
        out = sp.csr_matrix(arr)
    out.eliminate_zeros()
    return out


def sparse_from_edges(
    edges: Iterable[Tuple[int, int]],
    n_nodes: int,
    weights: Union[Iterable[float], None] = None,
    symmetric: bool = True,
) -> sp.csr_matrix:
    """Build an ``n_nodes``-square CSR adjacency matrix from an edge list.

    Parameters
    ----------
    edges:
        Iterable of ``(u, v)`` integer pairs with ``0 <= u, v < n_nodes``.
    n_nodes:
        Number of rows/columns of the output matrix.
    weights:
        Optional per-edge weights (defaults to 1.0 each).
    symmetric:
        If True, each edge is inserted in both directions.
    """
    edge_list = list(edges)
    if weights is None:
        weight_list = [1.0] * len(edge_list)
    else:
        weight_list = [float(w) for w in weights]
        if len(weight_list) != len(edge_list):
            raise ValueError(
                f"got {len(edge_list)} edges but {len(weight_list)} weights"
            )

    rows, cols, vals = [], [], []
    for (u, v), w in zip(edge_list, weight_list):
        if not (0 <= u < n_nodes and 0 <= v < n_nodes):
            raise ValueError(f"edge ({u}, {v}) out of range for n_nodes={n_nodes}")
        rows.append(u)
        cols.append(v)
        vals.append(w)
        if symmetric and u != v:
            rows.append(v)
            cols.append(u)
            vals.append(w)

    matrix = sp.coo_matrix(
        (vals, (rows, cols)), shape=(n_nodes, n_nodes), dtype=np.float64
    )
    # Duplicate entries (e.g. an edge listed twice) are summed by COO->CSR;
    # clip back to the max weight so repeated listings stay idempotent.
    csr = matrix.tocsr()
    csr.sum_duplicates()
    return csr


def symmetrize(matrix: MatrixLike) -> sp.csr_matrix:
    """Return ``max(M, M^T)`` as CSR, making an adjacency matrix undirected."""
    csr = to_csr(matrix)
    return csr.maximum(csr.T).tocsr()


def is_symmetric(matrix: MatrixLike, tol: float = 1e-10) -> bool:
    """Check whether ``matrix`` equals its transpose up to ``tol``."""
    csr = to_csr(matrix)
    diff = (csr - csr.T).tocoo()
    if diff.nnz == 0:
        return True
    return bool(np.all(np.abs(diff.data) <= tol))


def row_normalize(matrix: MatrixLike) -> sp.csr_matrix:
    """Normalise each row of ``matrix`` to sum to 1 (zero rows stay zero)."""
    csr = to_csr(matrix)
    row_sums = np.asarray(csr.sum(axis=1)).ravel()
    inv = np.zeros_like(row_sums)
    nonzero = row_sums != 0
    inv[nonzero] = 1.0 / row_sums[nonzero]
    return sp.diags(inv).dot(csr).tocsr()


def safe_inverse_sqrt(values: np.ndarray) -> np.ndarray:
    """Element-wise ``1/sqrt(x)`` with zeros mapped to zero (not inf)."""
    values = np.asarray(values, dtype=np.float64)
    out = np.zeros_like(values)
    positive = values > 0
    out[positive] = 1.0 / np.sqrt(values[positive])
    return out


__all__ = [
    "MatrixLike",
    "to_csr",
    "sparse_from_edges",
    "symmetrize",
    "is_symmetric",
    "row_normalize",
    "safe_inverse_sqrt",
]
