"""Small shared utilities used across the HTC reproduction.

The utilities are deliberately lightweight: deterministic seeding helpers,
wall-clock stage timing, simple structured logging, and a handful of scipy
sparse-matrix helpers that the graph and orbit packages build on.
"""

from repro.utils.logging import get_logger
from repro.utils.random import check_random_state, seed_everything
from repro.utils.sparse import (
    is_symmetric,
    row_normalize,
    sparse_from_edges,
    symmetrize,
    to_csr,
)
from repro.utils.timing import StageTimer, Timer

__all__ = [
    "get_logger",
    "seed_everything",
    "check_random_state",
    "Timer",
    "StageTimer",
    "to_csr",
    "sparse_from_edges",
    "symmetrize",
    "is_symmetric",
    "row_normalize",
]
