"""Library-wide logging configuration.

All modules obtain their logger through :func:`get_logger` so the whole
library shares a single namespace (``repro``) and a single, idempotent
handler setup.  Benchmarks and examples can raise the verbosity with
``set_verbosity``.
"""

from __future__ import annotations

import logging

_ROOT_NAME = "repro"
_configured = False


def _configure_root() -> None:
    global _configured
    if _configured:
        return
    root = logging.getLogger(_ROOT_NAME)
    if not root.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
        )
        root.addHandler(handler)
    root.setLevel(logging.WARNING)
    _configured = True


def get_logger(name: str) -> logging.Logger:
    """Return a logger namespaced under ``repro``.

    ``name`` may be a module ``__name__``; anything not already under the
    ``repro`` namespace is nested beneath it.
    """
    _configure_root()
    if name == _ROOT_NAME or name.startswith(_ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def set_verbosity(level: int) -> None:
    """Set the logging level for the whole library (e.g. ``logging.INFO``)."""
    _configure_root()
    logging.getLogger(_ROOT_NAME).setLevel(level)


__all__ = ["get_logger", "set_verbosity"]
