"""Wall-clock timing helpers.

``Timer`` is a context manager for one measurement; ``StageTimer`` accumulates
named stages and is used by :class:`repro.core.aligner.HTCAligner` to produce
the runtime decomposition reported in the paper's Fig. 8.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional


class Timer:
    """Measure elapsed wall-clock time of a ``with`` block.

    Examples
    --------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._start is not None:
            self.elapsed = time.perf_counter() - self._start
            self._start = None

    def start(self) -> None:
        """Start (or restart) the timer."""
        self._start = time.perf_counter()

    def stop(self) -> float:
        """Stop the timer and return the elapsed time in seconds."""
        if self._start is None:
            raise RuntimeError("Timer.stop() called before start()")
        self.elapsed = time.perf_counter() - self._start
        self._start = None
        return self.elapsed


class StageTimer:
    """Accumulate elapsed time per named stage.

    Stages may be entered repeatedly; their durations accumulate.  The
    ``total`` property and ``as_dict`` output drive the Fig. 8 runtime
    decomposition bench.
    """

    def __init__(self) -> None:
        self._stages: Dict[str, float] = {}

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time the body of the ``with`` block under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._stages[name] = self._stages.get(name, 0.0) + elapsed

    def add(self, name: str, seconds: float) -> None:
        """Manually add ``seconds`` to stage ``name``."""
        if seconds < 0:
            raise ValueError(f"seconds must be non-negative, got {seconds}")
        self._stages[name] = self._stages.get(name, 0.0) + float(seconds)

    def get(self, name: str) -> float:
        """Return the accumulated time of ``name`` (0.0 if never entered)."""
        return self._stages.get(name, 0.0)

    @property
    def total(self) -> float:
        """Total accumulated time across all stages."""
        return sum(self._stages.values())

    def as_dict(self) -> Dict[str, float]:
        """Return a copy of the stage-name to seconds mapping."""
        return dict(self._stages)

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v:.3f}s" for k, v in self._stages.items())
        return f"StageTimer({parts})"


__all__ = ["Timer", "StageTimer"]
