"""Deterministic random-state handling.

Every stochastic component in the library accepts either an integer seed, an
existing :class:`numpy.random.Generator`, or ``None``.  ``check_random_state``
canonicalises all three into a ``Generator`` so experiments are reproducible
end to end.
"""

from __future__ import annotations

import random
from typing import Union

import numpy as np

RandomStateLike = Union[None, int, np.random.Generator]


def check_random_state(random_state: RandomStateLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``random_state``.

    Parameters
    ----------
    random_state:
        ``None`` for a non-deterministic generator, an ``int`` seed, or an
        already constructed :class:`numpy.random.Generator` (returned as-is).

    Raises
    ------
    TypeError
        If ``random_state`` is none of the accepted types.
    """
    if random_state is None:
        return np.random.default_rng()
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, (int, np.integer)):
        return np.random.default_rng(int(random_state))
    raise TypeError(
        "random_state must be None, an int, or a numpy Generator, "
        f"got {type(random_state).__name__}"
    )


def seed_everything(seed: int) -> np.random.Generator:
    """Seed Python's and numpy's global random state and return a Generator.

    Use this at the top of scripts/benchmarks; library code should instead
    thread an explicit generator through ``check_random_state``.
    """
    if not isinstance(seed, (int, np.integer)):
        raise TypeError(f"seed must be an int, got {type(seed).__name__}")
    random.seed(int(seed))
    np.random.seed(int(seed) % (2**32))
    return np.random.default_rng(int(seed))


def spawn_generators(
    random_state: RandomStateLike, count: int
) -> list[np.random.Generator]:
    """Split ``random_state`` into ``count`` independent child generators."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = check_random_state(random_state)
    seeds = parent.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]


__all__ = ["RandomStateLike", "check_random_state", "seed_everything", "spawn_generators"]
