"""Exact t-SNE (van der Maaten & Hinton, 2008) in numpy.

Quadratic in the number of points, which is fine for the few hundred anchor
embeddings the paper visualises in Fig. 11.  Perplexity calibration uses the
standard bisection on the Gaussian bandwidths.
"""

from __future__ import annotations

import numpy as np

from repro.utils.random import RandomStateLike, check_random_state


def _pairwise_squared_distances(points: np.ndarray) -> np.ndarray:
    squared = (points**2).sum(axis=1)
    distances = squared[:, None] + squared[None, :] - 2.0 * points @ points.T
    np.fill_diagonal(distances, 0.0)
    return np.maximum(distances, 0.0)


def _conditional_probabilities(
    distances: np.ndarray, perplexity: float, tol: float = 1e-5, max_iter: int = 50
) -> np.ndarray:
    """Row-wise Gaussian affinities whose entropy matches ``log(perplexity)``."""
    n = distances.shape[0]
    probabilities = np.zeros((n, n))
    target_entropy = np.log(perplexity)
    for i in range(n):
        beta_low, beta_high = 0.0, np.inf
        beta = 1.0
        row = np.delete(distances[i], i)
        for _ in range(max_iter):
            exponents = np.exp(-row * beta)
            total = exponents.sum()
            if total <= 0:
                entropy = 0.0
                conditional = np.zeros_like(row)
            else:
                conditional = exponents / total
                entropy = -(conditional * np.log(np.maximum(conditional, 1e-12))).sum()
            difference = entropy - target_entropy
            if abs(difference) < tol:
                break
            if difference > 0:
                beta_low = beta
                beta = beta * 2.0 if beta_high == np.inf else (beta + beta_high) / 2.0
            else:
                beta_high = beta
                beta = beta / 2.0 if beta_low == 0.0 else (beta + beta_low) / 2.0
        probabilities[i, np.arange(n) != i] = conditional
    return probabilities


def tsne(
    points: np.ndarray,
    n_components: int = 2,
    perplexity: float = 30.0,
    n_iterations: int = 300,
    learning_rate: float = 100.0,
    random_state: RandomStateLike = 0,
) -> np.ndarray:
    """Embed ``points`` into ``n_components`` dimensions with exact t-SNE.

    Parameters
    ----------
    points:
        ``(n, d)`` high-dimensional coordinates.
    perplexity:
        Effective neighbourhood size (clipped to ``(n - 1) / 3``).
    n_iterations, learning_rate:
        Gradient-descent settings (with momentum and early exaggeration).
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError("points must be a 2-D array")
    n = points.shape[0]
    if n < 3:
        raise ValueError("t-SNE needs at least 3 points")
    rng = check_random_state(random_state)
    perplexity = min(perplexity, max((n - 1) / 3.0, 2.0))

    distances = _pairwise_squared_distances(points)
    conditional = _conditional_probabilities(distances, perplexity)
    joint = (conditional + conditional.T) / (2.0 * n)
    joint = np.maximum(joint, 1e-12)

    embedding = rng.normal(0.0, 1e-4, size=(n, n_components))
    velocity = np.zeros_like(embedding)
    exaggeration = 4.0
    momentum = 0.5

    for iteration in range(n_iterations):
        if iteration == 50:
            exaggeration = 1.0
        if iteration == 100:
            momentum = 0.8
        low_d_distances = _pairwise_squared_distances(embedding)
        numerator = 1.0 / (1.0 + low_d_distances)
        np.fill_diagonal(numerator, 0.0)
        q = numerator / max(numerator.sum(), 1e-12)
        q = np.maximum(q, 1e-12)

        pq = (exaggeration * joint - q) * numerator
        gradient = 4.0 * (
            np.diag(pq.sum(axis=1)) @ embedding - pq @ embedding
        )
        velocity = momentum * velocity - learning_rate * gradient
        embedding = embedding + velocity
        embedding = embedding - embedding.mean(axis=0, keepdims=True)
    return embedding


__all__ = ["tsne"]
