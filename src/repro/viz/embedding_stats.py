"""Quantitative embedding-overlap statistics for the Fig. 11 analysis.

The paper's Fig. 11 argues visually that after HTC alignment the source and
target anchor embeddings occupy overlapping regions.  To make that claim
checkable without plots, :func:`anchor_overlap_statistics` reports:

* ``mean_anchor_distance`` — average Euclidean distance between each anchor's
  source and target embeddings,
* ``mean_random_distance`` — the same quantity for randomly mismatched pairs,
* ``overlap_ratio`` — ``mean_random_distance / mean_anchor_distance`` (larger
  than 1 means matched pairs are closer than random pairs, i.e. the clouds
  overlap coherently).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.utils.random import RandomStateLike, check_random_state


def anchor_overlap_statistics(
    source_embeddings: np.ndarray,
    target_embeddings: np.ndarray,
    anchors: List[Tuple[int, int]],
    random_state: RandomStateLike = 0,
) -> Dict[str, float]:
    """Summarise how well anchored embeddings coincide across the two graphs."""
    if not anchors:
        raise ValueError("anchors must be non-empty")
    source_embeddings = np.asarray(source_embeddings, dtype=np.float64)
    target_embeddings = np.asarray(target_embeddings, dtype=np.float64)
    rng = check_random_state(random_state)

    source_idx = np.array([i for i, _ in anchors])
    target_idx = np.array([j for _, j in anchors])
    matched = source_embeddings[source_idx] - target_embeddings[target_idx]
    mean_anchor_distance = float(np.linalg.norm(matched, axis=1).mean())

    shuffled = rng.permutation(target_idx)
    mismatched = source_embeddings[source_idx] - target_embeddings[shuffled]
    mean_random_distance = float(np.linalg.norm(mismatched, axis=1).mean())

    overlap_ratio = mean_random_distance / max(mean_anchor_distance, 1e-12)
    return {
        "mean_anchor_distance": mean_anchor_distance,
        "mean_random_distance": mean_random_distance,
        "overlap_ratio": overlap_ratio,
        "n_anchors": float(len(anchors)),
    }


__all__ = ["anchor_overlap_statistics"]
