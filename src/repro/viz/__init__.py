"""Visualisation utilities.

* :mod:`repro.viz.tsne` — an exact (O(n²)) t-SNE implementation in numpy,
  used to reproduce the qualitative embedding plots of the paper's Fig. 11,
* :mod:`repro.viz.embedding_stats` — quantitative summaries of how well the
  source and target anchor embeddings overlap before/after alignment (so the
  Fig. 11 claim can be checked numerically, without plotting).
"""

from repro.viz.embedding_stats import anchor_overlap_statistics
from repro.viz.tsne import tsne

__all__ = ["tsne", "anchor_overlap_statistics"]
