"""Catalogue of the nine connected graphlets on 2-4 nodes.

Each graphlet template is a small :class:`networkx.Graph` whose nodes carry a
``node_orbit`` attribute and whose edges carry an ``edge_orbit`` attribute.
The numbering follows the layout of the paper's Fig. 4 (9 graphlets, 13 edge
orbits) and the standard Pržulj node-orbit numbering (15 node orbits):

========  =======================  ==================  =====================
Graphlet  Name                     Edge orbits         Node orbits
========  =======================  ==================  =====================
G0        edge                     0                   0
G1        two-edge chain (P3)      1                   1 (end), 2 (middle)
G2        triangle                 2                   3
G3        three-edge chain (P4)    3 (end), 4 (mid)    4 (end), 5 (middle)
G4        star (K1,3)              5                   6 (leaf), 7 (centre)
G5        quadrangle (C4)          6                   8
G6        tailed triangle (paw)    7 (tail),           9 (pendant),
                                   8 (incident),       10 (far triangle),
                                   9 (opposite)        11 (attachment)
G7        diagonal quadrangle      10 (outer),         12 (degree-2),
          (diamond)                11 (diagonal)       13 (degree-3)
G8        clique (K4)              12                  14
========  =======================  ==================  =====================
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import networkx as nx

#: Number of edge orbits over graphlets with 2-4 nodes.
EDGE_ORBIT_COUNT = 13

#: Number of node orbits over graphlets with 2-4 nodes.
NODE_ORBIT_COUNT = 15

#: Human-readable graphlet names, indexed by graphlet id.
GRAPHLET_NAMES: Tuple[str, ...] = (
    "edge",
    "two-edge chain",
    "triangle",
    "three-edge chain",
    "star",
    "quadrangle",
    "tailed triangle",
    "diagonal quadrangle",
    "clique",
)

#: Human-readable edge-orbit descriptions, indexed by edge-orbit id.
EDGE_ORBIT_NAMES: Tuple[str, ...] = (
    "edge of the single-edge graphlet",
    "edge of the two-edge chain",
    "edge of the triangle",
    "end edge of the three-edge chain",
    "middle edge of the three-edge chain",
    "edge of the star",
    "edge of the quadrangle",
    "tail edge of the tailed triangle",
    "triangle edge of the tailed triangle incident to the tailed node",
    "triangle edge of the tailed triangle opposite the tail",
    "outer edge of the diagonal quadrangle",
    "diagonal edge of the diagonal quadrangle",
    "edge of the clique",
)

#: Which graphlet each edge orbit belongs to.
EDGE_ORBIT_GRAPHLET: Tuple[int, ...] = (0, 1, 2, 3, 3, 4, 5, 6, 6, 6, 7, 7, 8)

#: Which graphlet each node orbit belongs to.
NODE_ORBIT_GRAPHLET: Tuple[int, ...] = (0, 1, 1, 2, 3, 3, 4, 4, 5, 6, 6, 6, 7, 7, 8)


def _template(
    edges: List[Tuple[int, int]],
    edge_orbits: Dict[Tuple[int, int], int],
    node_orbits: Dict[int, int],
    name: str,
) -> nx.Graph:
    graph = nx.Graph(name=name)
    nodes = sorted(node_orbits)
    graph.add_nodes_from(nodes)
    for node, orbit in node_orbits.items():
        graph.nodes[node]["node_orbit"] = orbit
    for u, v in edges:
        key = (u, v) if (u, v) in edge_orbits else (v, u)
        graph.add_edge(u, v, edge_orbit=edge_orbits[key])
    return graph


def graphlet_templates() -> List[nx.Graph]:
    """Return the nine annotated graphlet templates (G0 .. G8)."""
    templates = [
        # G0: single edge
        _template(
            edges=[(0, 1)],
            edge_orbits={(0, 1): 0},
            node_orbits={0: 0, 1: 0},
            name="edge",
        ),
        # G1: two-edge chain, middle node is 1
        _template(
            edges=[(0, 1), (1, 2)],
            edge_orbits={(0, 1): 1, (1, 2): 1},
            node_orbits={0: 1, 1: 2, 2: 1},
            name="two-edge chain",
        ),
        # G2: triangle
        _template(
            edges=[(0, 1), (1, 2), (0, 2)],
            edge_orbits={(0, 1): 2, (1, 2): 2, (0, 2): 2},
            node_orbits={0: 3, 1: 3, 2: 3},
            name="triangle",
        ),
        # G3: three-edge chain 0-1-2-3
        _template(
            edges=[(0, 1), (1, 2), (2, 3)],
            edge_orbits={(0, 1): 3, (1, 2): 4, (2, 3): 3},
            node_orbits={0: 4, 1: 5, 2: 5, 3: 4},
            name="three-edge chain",
        ),
        # G4: star with centre 0
        _template(
            edges=[(0, 1), (0, 2), (0, 3)],
            edge_orbits={(0, 1): 5, (0, 2): 5, (0, 3): 5},
            node_orbits={0: 7, 1: 6, 2: 6, 3: 6},
            name="star",
        ),
        # G5: quadrangle 0-1-2-3-0
        _template(
            edges=[(0, 1), (1, 2), (2, 3), (0, 3)],
            edge_orbits={(0, 1): 6, (1, 2): 6, (2, 3): 6, (0, 3): 6},
            node_orbits={0: 8, 1: 8, 2: 8, 3: 8},
            name="quadrangle",
        ),
        # G6: tailed triangle; triangle {0,1,2}, tail edge (2,3)
        _template(
            edges=[(0, 1), (1, 2), (0, 2), (2, 3)],
            edge_orbits={(0, 1): 9, (1, 2): 8, (0, 2): 8, (2, 3): 7},
            node_orbits={0: 10, 1: 10, 2: 11, 3: 9},
            name="tailed triangle",
        ),
        # G7: diagonal quadrangle (diamond); diagonal edge (1, 3)
        _template(
            edges=[(0, 1), (1, 2), (2, 3), (0, 3), (1, 3)],
            edge_orbits={(0, 1): 10, (1, 2): 10, (2, 3): 10, (0, 3): 10, (1, 3): 11},
            node_orbits={0: 12, 1: 13, 2: 12, 3: 13},
            name="diagonal quadrangle",
        ),
        # G8: clique K4
        _template(
            edges=[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)],
            edge_orbits={
                (0, 1): 12,
                (0, 2): 12,
                (0, 3): 12,
                (1, 2): 12,
                (1, 3): 12,
                (2, 3): 12,
            },
            node_orbits={0: 14, 1: 14, 2: 14, 3: 14},
            name="clique",
        ),
    ]
    return templates


def orbits_for_graphlet(graphlet_id: int) -> List[int]:
    """Return the edge-orbit ids belonging to graphlet ``graphlet_id``."""
    if not 0 <= graphlet_id < len(GRAPHLET_NAMES):
        raise ValueError(f"graphlet_id must be in [0, 9), got {graphlet_id}")
    return [k for k, g in enumerate(EDGE_ORBIT_GRAPHLET) if g == graphlet_id]


__all__ = [
    "EDGE_ORBIT_COUNT",
    "NODE_ORBIT_COUNT",
    "GRAPHLET_NAMES",
    "EDGE_ORBIT_NAMES",
    "EDGE_ORBIT_GRAPHLET",
    "NODE_ORBIT_GRAPHLET",
    "graphlet_templates",
    "orbits_for_graphlet",
]
