"""Pluggable orbit-counting engine: backend selection + caching.

This is the single entry point the rest of the system uses for orbit
counting.  Two backends are registered out of the box:

* ``"python"`` — the original pure-Python counters
  (:mod:`repro.orbits.edge_orbits`, :mod:`repro.orbits.node_orbits`), kept as
  the exact reference oracle,
* ``"numpy"`` — the vectorized bitset counters
  (:mod:`repro.orbits.vectorized`), bit-identical and an order of magnitude
  faster (see ``benchmarks/bench_orbit_counting.py``),
* ``"numba"`` — the JIT loop kernel (:mod:`repro.orbits.jit`), registered
  with a lazy availability probe so it only resolves when numba is
  importable; bit-identical by construction (it shares the closed-form
  orbit assembly with the numpy backend).

Backend selection lives in the shared :mod:`repro.backend` registry (kind
``"orbit"``): this module registers its counters there and the
``available_backends`` / ``resolve_backend`` / ``register_backend``
functions below are thin views over that registry, kept for backward
compatibility with PR-1-era callers (``HTCConfig.orbit_backend`` resolves
through the same path).

``backend="auto"`` (the default) resolves to the fastest available backend.
Passing a :class:`repro.orbits.cache.OrbitCache` (or a cache spec via
``HTCConfig.orbit_cache``) memoises results by graph content hash, so
repeated alignments of the same graph — robustness sweeps, hyper-parameter
sweeps, repeated benchmark runs — skip the counting stage entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from repro.backend.registry import AUTO_BACKEND, BackendRegistry, get_registry
from repro.graph.attributed_graph import AttributedGraph
from repro.orbits import edge_orbits as _edge_reference
from repro.orbits import jit as _jit
from repro.orbits import node_orbits as _node_reference
from repro.orbits import vectorized as _vectorized
from repro.orbits.cache import OrbitCache, graph_content_hash
from repro.orbits.edge_orbits import EdgeOrbitCounts

#: Registry kind the orbit counters live under in :mod:`repro.backend`.
ORBIT_KIND = "orbit"

#: The vectorized backend needs ``np.bitwise_count`` (NumPy >= 2.0); on older
#: NumPy it is registered as unavailable and ``"auto"`` falls back to the
#: reference implementation.
_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")


@dataclass(frozen=True)
class OrbitBackend:
    """One orbit-counting implementation: paired edge and node counters."""

    name: str
    count_edge_orbits: Callable[[AttributedGraph], EdgeOrbitCounts]
    count_node_orbits: Callable[[AttributedGraph], np.ndarray]


def orbit_registry() -> BackendRegistry:
    """The shared ``"orbit"`` registry, with the built-ins registered.

    Each built-in is (re-)registered individually if missing, so an
    ``unregister`` of one (e.g. a test tearing down a fake) can never take
    the other down with it for the rest of the process.
    """
    registry = get_registry(ORBIT_KIND)
    if "python" not in registry.names():
        registry.register(
            "python",
            OrbitBackend(
                name="python",
                count_edge_orbits=_edge_reference.count_edge_orbits,
                count_node_orbits=_node_reference.count_node_orbits,
            ),
            priority=0,
        )
    if "numpy" not in registry.names():
        registry.register(
            "numpy",
            OrbitBackend(
                name="numpy",
                count_edge_orbits=_vectorized.count_edge_orbits_numpy,
                count_node_orbits=_vectorized.count_node_orbits_numpy,
            ),
            priority=10,
            available=_HAS_BITWISE_COUNT,
        )
    if "numba" not in registry.names():
        registry.register(
            "numba",
            OrbitBackend(
                name="numba",
                count_edge_orbits=_jit.count_edge_orbits_jit,
                count_node_orbits=_jit.count_node_orbits_jit,
            ),
            priority=20,
            available=_jit.numba_available,
        )
    return registry


#: The spelled-out backend the ``"auto"`` alias resolves to.
DEFAULT_BACKEND = orbit_registry().default()

#: Backends proven bit-identical; only these share cache records.  Externally
#: registered backends get backend-qualified cache keys so an approximate
#: counter can never serve (or be served) another backend's results.
_VERIFIED_BACKENDS = frozenset(("python", "numpy", "numba"))


def _cache_key(graph: AttributedGraph, backend: str) -> str:
    key = graph_content_hash(graph)
    if backend not in _VERIFIED_BACKENDS:
        key = f"{key}:{backend}"
    return key


def available_backends() -> Tuple[str, ...]:
    """Registered backend names (without the ``"auto"`` alias)."""
    return orbit_registry().available()


def resolve_backend(backend: str) -> str:
    """Normalise a backend name, resolving ``"auto"`` to the default."""
    return orbit_registry().resolve(backend)


def register_backend(
    name: str,
    edge_counter: Callable[[AttributedGraph], EdgeOrbitCounts],
    node_counter: Callable[[AttributedGraph], np.ndarray],
    *,
    priority: int = 0,
) -> None:
    """Register an additional orbit-counting backend (e.g. a C extension)."""
    orbit_registry().register(
        name,
        OrbitBackend(
            name=name,
            count_edge_orbits=edge_counter,
            count_node_orbits=node_counter,
        ),
        priority=priority,
    )


def _get(backend: str) -> OrbitBackend:
    implementation = orbit_registry().get(backend)
    if not isinstance(implementation, OrbitBackend):
        raise TypeError(
            f"orbit backend {backend!r} is not an OrbitBackend "
            f"(got {type(implementation).__name__}); register orbit counters "
            "via repro.orbits.engine.register_backend"
        )
    return implementation


def count_edge_orbits(
    graph: AttributedGraph,
    backend: str = AUTO_BACKEND,
    cache: Optional[OrbitCache] = None,
) -> EdgeOrbitCounts:
    """Per-edge counts on all 13 edge orbits, via ``backend``, memoised.

    Backends are bit-identical, so cached results are shared across them.
    """
    backend = resolve_backend(backend)
    if cache is None:
        return _get(backend).count_edge_orbits(graph)
    key = _cache_key(graph, backend)
    cached = cache.get_edge_orbits(key)
    if cached is not None:
        return cached
    counts = _get(backend).count_edge_orbits(graph)
    cache.put_edge_orbits(key, counts)
    return counts


def count_node_orbits(
    graph: AttributedGraph,
    backend: str = AUTO_BACKEND,
    cache: Optional[OrbitCache] = None,
) -> np.ndarray:
    """The ``(n_nodes, 15)`` node-orbit (GDV) matrix, via ``backend``, memoised."""
    backend = resolve_backend(backend)
    if cache is None:
        return _get(backend).count_node_orbits(graph)
    key = _cache_key(graph, backend)
    cached = cache.get_node_orbits(key)
    if cached is not None:
        return cached
    gdv = _get(backend).count_node_orbits(graph)
    cache.put_node_orbits(key, gdv)
    return gdv


def graphlet_degree_vectors(
    graph: AttributedGraph,
    backend: str = AUTO_BACKEND,
    cache: Optional[OrbitCache] = None,
    log_scale: bool = True,
) -> np.ndarray:
    """Node features from GDVs, optionally log-scaled (``log(1 + count)``)."""
    gdv = count_node_orbits(graph, backend=backend, cache=cache).astype(np.float64)
    if log_scale:
        gdv = np.log1p(gdv)
    return gdv


__all__ = [
    "AUTO_BACKEND",
    "DEFAULT_BACKEND",
    "ORBIT_KIND",
    "OrbitBackend",
    "orbit_registry",
    "available_backends",
    "resolve_backend",
    "register_backend",
    "count_edge_orbits",
    "count_node_orbits",
    "graphlet_degree_vectors",
]
