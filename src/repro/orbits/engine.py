"""Pluggable orbit-counting engine: backend selection + caching.

This is the single entry point the rest of the system uses for orbit
counting.  Two backends are registered out of the box:

* ``"python"`` — the original pure-Python counters
  (:mod:`repro.orbits.edge_orbits`, :mod:`repro.orbits.node_orbits`), kept as
  the exact reference oracle,
* ``"numpy"`` — the vectorized bitset counters
  (:mod:`repro.orbits.vectorized`), bit-identical and an order of magnitude
  faster (see ``benchmarks/bench_orbit_counting.py``).

``backend="auto"`` (the default) resolves to the fastest available backend.
Passing a :class:`repro.orbits.cache.OrbitCache` (or a cache spec via
``HTCConfig.orbit_cache``) memoises results by graph content hash, so
repeated alignments of the same graph — robustness sweeps, hyper-parameter
sweeps, repeated benchmark runs — skip the counting stage entirely.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.graph.attributed_graph import AttributedGraph
from repro.orbits import edge_orbits as _edge_reference
from repro.orbits import node_orbits as _node_reference
from repro.orbits import vectorized as _vectorized
from repro.orbits.cache import OrbitCache, graph_content_hash
from repro.orbits.edge_orbits import EdgeOrbitCounts

AUTO_BACKEND = "auto"

#: The vectorized backend needs ``np.bitwise_count`` (NumPy >= 2.0); on older
#: NumPy it is simply not registered and ``"auto"`` falls back to the
#: reference implementation.
_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")

_EDGE_BACKENDS: Dict[str, Callable[[AttributedGraph], EdgeOrbitCounts]] = {
    "python": _edge_reference.count_edge_orbits,
}
_NODE_BACKENDS: Dict[str, Callable[[AttributedGraph], np.ndarray]] = {
    "python": _node_reference.count_node_orbits,
}
if _HAS_BITWISE_COUNT:
    _EDGE_BACKENDS["numpy"] = _vectorized.count_edge_orbits_numpy
    _NODE_BACKENDS["numpy"] = _vectorized.count_node_orbits_numpy

#: The spelled-out backend the ``"auto"`` alias resolves to.
DEFAULT_BACKEND = "numpy" if _HAS_BITWISE_COUNT else "python"

#: Backends proven bit-identical; only these share cache records.  Externally
#: registered backends get backend-qualified cache keys so an approximate
#: counter can never serve (or be served) another backend's results.
_VERIFIED_BACKENDS = frozenset(("python", "numpy"))


def _cache_key(graph: AttributedGraph, backend: str) -> str:
    key = graph_content_hash(graph)
    if backend not in _VERIFIED_BACKENDS:
        key = f"{key}:{backend}"
    return key


def available_backends() -> Tuple[str, ...]:
    """Registered backend names (without the ``"auto"`` alias)."""
    return tuple(sorted(_EDGE_BACKENDS))


def resolve_backend(backend: str) -> str:
    """Normalise a backend name, resolving ``"auto"`` to the default."""
    if backend == AUTO_BACKEND:
        return DEFAULT_BACKEND
    if backend not in _EDGE_BACKENDS:
        raise ValueError(
            f"unknown orbit backend {backend!r}; "
            f"expected 'auto' or one of {available_backends()}"
        )
    return backend


def register_backend(
    name: str,
    edge_counter: Callable[[AttributedGraph], EdgeOrbitCounts],
    node_counter: Callable[[AttributedGraph], np.ndarray],
) -> None:
    """Register an additional orbit-counting backend (e.g. a C extension)."""
    if name == AUTO_BACKEND:
        raise ValueError("'auto' is a reserved backend name")
    _EDGE_BACKENDS[name] = edge_counter
    _NODE_BACKENDS[name] = node_counter


def count_edge_orbits(
    graph: AttributedGraph,
    backend: str = AUTO_BACKEND,
    cache: Optional[OrbitCache] = None,
) -> EdgeOrbitCounts:
    """Per-edge counts on all 13 edge orbits, via ``backend``, memoised.

    Backends are bit-identical, so cached results are shared across them.
    """
    backend = resolve_backend(backend)
    if cache is None:
        return _EDGE_BACKENDS[backend](graph)
    key = _cache_key(graph, backend)
    cached = cache.get_edge_orbits(key)
    if cached is not None:
        return cached
    counts = _EDGE_BACKENDS[backend](graph)
    cache.put_edge_orbits(key, counts)
    return counts


def count_node_orbits(
    graph: AttributedGraph,
    backend: str = AUTO_BACKEND,
    cache: Optional[OrbitCache] = None,
) -> np.ndarray:
    """The ``(n_nodes, 15)`` node-orbit (GDV) matrix, via ``backend``, memoised."""
    backend = resolve_backend(backend)
    if cache is None:
        return _NODE_BACKENDS[backend](graph)
    key = _cache_key(graph, backend)
    cached = cache.get_node_orbits(key)
    if cached is not None:
        return cached
    gdv = _NODE_BACKENDS[backend](graph)
    cache.put_node_orbits(key, gdv)
    return gdv


def graphlet_degree_vectors(
    graph: AttributedGraph,
    backend: str = AUTO_BACKEND,
    cache: Optional[OrbitCache] = None,
    log_scale: bool = True,
) -> np.ndarray:
    """Node features from GDVs, optionally log-scaled (``log(1 + count)``)."""
    gdv = count_node_orbits(graph, backend=backend, cache=cache).astype(np.float64)
    if log_scale:
        gdv = np.log1p(gdv)
    return gdv


__all__ = [
    "AUTO_BACKEND",
    "DEFAULT_BACKEND",
    "available_backends",
    "resolve_backend",
    "register_backend",
    "count_edge_orbits",
    "count_node_orbits",
    "graphlet_degree_vectors",
]
