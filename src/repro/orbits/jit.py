"""Loop-shaped orbit counting — the ``"numba"`` engine backend.

The vectorized backend (:mod:`repro.orbits.vectorized`) computes per-edge
class statistics with bit-packed adjacency masks; this module computes the
*same* statistics with a flat scan over the CSR arrays, written in the
restricted subset of Python that ``numba.njit`` compiles to native code.
The kernel marks each surrounding node of an edge ``(u, v)`` with its class
(``a``/``b``/``c``, per the partition documented in ``vectorized.py``) in a
stamp array, then walks every surrounding node's neighbour list once —
``O(e · D²)`` like Orca, but without interpreter overhead once compiled.

Orbit assembly is **shared** with the numpy backend: the kernel fills an
:class:`~repro.orbits.vectorized.EdgeStatistics` and the closed-form
``edge_orbits_from_statistics`` / ``node_orbits_from_statistics`` functions
do the rest, so the two backends cannot drift — they differ only in how the
integer statistics are produced, and all arithmetic is exact int64.

numba is optional.  Availability is probed lazily via
``importlib.util.find_spec`` (the module is never imported just to answer
"is it there?"), and the kernel runs uncompiled as plain Python when numba
is absent — slower, but bit-identical, which is what the cross-validation
tests exercise on numba-less interpreters.
"""

from __future__ import annotations

import importlib.util
from typing import Callable, Optional

import numpy as np

from repro.graph.attributed_graph import AttributedGraph
from repro.orbits.edge_orbits import EdgeOrbitCounts
from repro.orbits.vectorized import (
    EdgeStatistics,
    edge_orbits_from_statistics,
    node_orbits_from_statistics,
)

#: Registry name of this backend (kind ``"orbit"``).
JIT_BACKEND_NAME = "numba"

_NUMBA_SPEC_CHECKED = False
_NUMBA_PRESENT = False


def numba_available() -> bool:
    """Whether numba is importable — probed once, without importing it."""
    global _NUMBA_SPEC_CHECKED, _NUMBA_PRESENT
    if not _NUMBA_SPEC_CHECKED:
        try:
            _NUMBA_PRESENT = importlib.util.find_spec("numba") is not None
        except (ImportError, ValueError):  # pragma: no cover - broken meta_path
            _NUMBA_PRESENT = False
        _NUMBA_SPEC_CHECKED = True
    return _NUMBA_PRESENT


def _edge_statistics_kernel(
    indptr: np.ndarray,
    indices: np.ndarray,
    degrees: np.ndarray,
    eu: np.ndarray,
    ev: np.ndarray,
    n_nodes: int,
) -> np.ndarray:
    """Per-edge class statistics, one flat pass per edge.

    Returns an ``(m, 12)`` int64 array with columns
    ``t, na, nb, e_aa, e_bb, e_cc, e_ab, e_ac, e_bc, p_a, p_b, p_c``
    matching :class:`EdgeStatistics` field order.  Written njit-compatible:
    arrays only, no Python containers.
    """
    m = eu.shape[0]
    stats = np.zeros((m, 12), dtype=np.int64)
    # stamp[w] == i marks w as surrounding edge i; cls gives its class.
    stamp = np.full(n_nodes, -1, dtype=np.int64)
    cls = np.zeros(n_nodes, dtype=np.int8)
    for i in range(m):
        u = eu[i]
        v = ev[i]
        for p in range(indptr[u], indptr[u + 1]):
            w = indices[p]
            if w != v:
                stamp[w] = i
                cls[w] = 0  # class a until v's list proves otherwise
        for p in range(indptr[v], indptr[v + 1]):
            w = indices[p]
            if w == u:
                continue
            if stamp[w] == i:
                cls[w] = 2  # class c: adjacent to both endpoints
            else:
                stamp[w] = i
                cls[w] = 1  # class b
        t = np.int64(0)
        na = np.int64(0)
        nb = np.int64(0)
        e_aa = np.int64(0)
        e_bb = np.int64(0)
        e_cc = np.int64(0)
        e_ab = np.int64(0)
        e_ac = np.int64(0)
        e_bc = np.int64(0)
        p_a = np.int64(0)
        p_b = np.int64(0)
        p_c = np.int64(0)
        # Walk each surrounding node once: u's list covers classes a and c,
        # v's list covers class b (its class-c entries are duplicates).
        for p in range(indptr[u], indptr[u + 1]):
            w = indices[p]
            if w == v:
                continue
            ca = np.int64(0)
            cb = np.int64(0)
            cc = np.int64(0)
            links = np.int64(0)
            for q in range(indptr[w], indptr[w + 1]):
                x = indices[q]
                if x == u or x == v:
                    links += 1
                elif stamp[x] == i:
                    cx = cls[x]
                    if cx == 0:
                        ca += 1
                    elif cx == 1:
                        cb += 1
                    else:
                        cc += 1
            private = degrees[w] - ca - cb - cc - links
            if cls[w] == 0:
                na += 1
                e_aa += ca
                e_ab += cb
                e_ac += cc
                p_a += private
            else:  # class c
                t += 1
                e_cc += cc
                p_c += private
        for p in range(indptr[v], indptr[v + 1]):
            w = indices[p]
            if w == u or cls[w] == 2:
                continue
            ca = np.int64(0)
            cb = np.int64(0)
            cc = np.int64(0)
            links = np.int64(0)
            for q in range(indptr[w], indptr[w + 1]):
                x = indices[q]
                if x == u or x == v:
                    links += 1
                elif stamp[x] == i:
                    cx = cls[x]
                    if cx == 0:
                        ca += 1
                    elif cx == 1:
                        cb += 1
                    else:
                        cc += 1
            private = degrees[w] - ca - cb - cc - links
            nb += 1
            e_bb += cb
            e_bc += cc
            p_b += private
        stats[i, 0] = t
        stats[i, 1] = na
        stats[i, 2] = nb
        stats[i, 3] = e_aa // 2  # within-class walks count both ends
        stats[i, 4] = e_bb // 2
        stats[i, 5] = e_cc // 2
        stats[i, 6] = e_ab
        stats[i, 7] = e_ac
        stats[i, 8] = e_bc
        stats[i, 9] = p_a
        stats[i, 10] = p_b
        stats[i, 11] = p_c
    return stats


_KERNEL: Optional[Callable] = None


def _kernel() -> Callable:
    """The statistics kernel — njit-compiled when numba is present."""
    global _KERNEL
    if _KERNEL is None:
        function = _edge_statistics_kernel
        if numba_available():
            import numba

            function = numba.njit(cache=True, nogil=True)(function)
        _KERNEL = function
    return _KERNEL


def compute_edge_statistics_jit(graph: AttributedGraph) -> EdgeStatistics:
    """Per-edge class statistics via the loop kernel (numba when present)."""
    adjacency = graph.adjacency
    edges = graph.edge_list()
    if not edges:
        zero = np.zeros(0, dtype=np.int64)
        return EdgeStatistics(
            edges=edges,
            t=zero, na=zero.copy(), nb=zero.copy(),
            e_aa=zero.copy(), e_bb=zero.copy(), e_cc=zero.copy(),
            e_ab=zero.copy(), e_ac=zero.copy(), e_bc=zero.copy(),
            p_a=zero.copy(), p_b=zero.copy(), p_c=zero.copy(),
        )
    edge_array = np.asarray(edges, dtype=np.int64)
    stats = _kernel()(
        adjacency.indptr.astype(np.int64),
        adjacency.indices.astype(np.int64),
        graph.degrees.astype(np.int64),
        np.ascontiguousarray(edge_array[:, 0]),
        np.ascontiguousarray(edge_array[:, 1]),
        graph.n_nodes,
    )
    return EdgeStatistics(
        edges=edges,
        t=stats[:, 0], na=stats[:, 1], nb=stats[:, 2],
        e_aa=stats[:, 3], e_bb=stats[:, 4], e_cc=stats[:, 5],
        e_ab=stats[:, 6], e_ac=stats[:, 7], e_bc=stats[:, 8],
        p_a=stats[:, 9], p_b=stats[:, 10], p_c=stats[:, 11],
    )


def count_edge_orbits_jit(graph: AttributedGraph) -> EdgeOrbitCounts:
    """JIT edge-orbit counts, bit-identical to the numpy/python backends."""
    return edge_orbits_from_statistics(compute_edge_statistics_jit(graph))


def count_node_orbits_jit(graph: AttributedGraph) -> np.ndarray:
    """JIT node-orbit counts, bit-identical to the numpy/python backends."""
    return node_orbits_from_statistics(
        compute_edge_statistics_jit(graph), graph.degrees
    )


__all__ = [
    "JIT_BACKEND_NAME",
    "numba_available",
    "compute_edge_statistics_jit",
    "count_edge_orbits_jit",
    "count_node_orbits_jit",
]
