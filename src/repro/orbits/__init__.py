"""Graphlet and orbit counting substrate.

The paper defines higher-order topological consistency on *edge orbits* of the
nine connected graphlets with 2–4 nodes (13 edge orbits in total, Fig. 4).
This package provides:

* :mod:`repro.orbits.graphlets` — the graphlet catalogue: templates, names,
  node-orbit and edge-orbit labellings,
* :mod:`repro.orbits.engine` — the pluggable counting engine (backend
  selection + content-hash caching); the package-level ``count_edge_orbits``
  and ``count_node_orbits`` are its entry points,
* :mod:`repro.orbits.edge_orbits` — the pure-Python combinatorial edge-orbit
  counter (the role Orca plays in the paper), kept as the exact reference
  oracle behind the ``"python"`` backend,
* :mod:`repro.orbits.vectorized` — the bitset/closed-form numpy counters
  behind the ``"numpy"`` backend,
* :mod:`repro.orbits.cache` — content-hash-keyed orbit caching (memory and
  on-disk),
* :mod:`repro.orbits.brute_force` — an independent reference counter based on
  induced-subgraph enumeration and template isomorphism, used in tests,
* :mod:`repro.orbits.node_orbits` — pure-Python node graphlet-degree-vector
  counting (the ``"python"`` node backend),
* :mod:`repro.orbits.orbit_matrix` — Graphlet Orbit Matrix (GOM) construction
  (Eq. 1), weighted or binary.
"""

from repro.orbits.cache import OrbitCache, graph_content_hash, resolve_cache
from repro.orbits.edge_orbits import EdgeOrbitCounts
from repro.orbits.engine import (
    available_backends,
    count_edge_orbits,
    count_node_orbits,
    graphlet_degree_vectors,
    register_backend,
    resolve_backend,
)
from repro.orbits.graphlets import (
    EDGE_ORBIT_COUNT,
    EDGE_ORBIT_NAMES,
    GRAPHLET_NAMES,
    NODE_ORBIT_COUNT,
    graphlet_templates,
)
from repro.orbits.orbit_matrix import build_orbit_matrices

__all__ = [
    "EDGE_ORBIT_COUNT",
    "NODE_ORBIT_COUNT",
    "EDGE_ORBIT_NAMES",
    "GRAPHLET_NAMES",
    "graphlet_templates",
    "count_edge_orbits",
    "count_node_orbits",
    "graphlet_degree_vectors",
    "EdgeOrbitCounts",
    "OrbitCache",
    "graph_content_hash",
    "resolve_cache",
    "available_backends",
    "resolve_backend",
    "register_backend",
    "build_orbit_matrices",
]
