"""Graphlet and orbit counting substrate.

The paper defines higher-order topological consistency on *edge orbits* of the
nine connected graphlets with 2–4 nodes (13 edge orbits in total, Fig. 4).
This package provides:

* :mod:`repro.orbits.graphlets` — the graphlet catalogue: templates, names,
  node-orbit and edge-orbit labellings,
* :mod:`repro.orbits.edge_orbits` — the fast combinatorial edge-orbit counter
  (the role Orca plays in the paper),
* :mod:`repro.orbits.brute_force` — an independent reference counter based on
  induced-subgraph enumeration and template isomorphism, used in tests,
* :mod:`repro.orbits.node_orbits` — node graphlet-degree-vector counting,
* :mod:`repro.orbits.orbit_matrix` — Graphlet Orbit Matrix (GOM) construction
  (Eq. 1), weighted or binary.
"""

from repro.orbits.edge_orbits import EdgeOrbitCounts, count_edge_orbits
from repro.orbits.graphlets import (
    EDGE_ORBIT_COUNT,
    EDGE_ORBIT_NAMES,
    GRAPHLET_NAMES,
    NODE_ORBIT_COUNT,
    graphlet_templates,
)
from repro.orbits.node_orbits import count_node_orbits
from repro.orbits.orbit_matrix import build_orbit_matrices

__all__ = [
    "EDGE_ORBIT_COUNT",
    "NODE_ORBIT_COUNT",
    "EDGE_ORBIT_NAMES",
    "GRAPHLET_NAMES",
    "graphlet_templates",
    "count_edge_orbits",
    "EdgeOrbitCounts",
    "count_node_orbits",
    "build_orbit_matrices",
]
