"""Node-orbit (graphlet degree vector) counting for 2-4-node graphlets.

The paper's higher-order consistency is defined on *edge* orbits, but node
orbits — each node's graphlet degree vector (GDV) over the 15 node orbits —
are the structural signature used by graphlet-based alignment baselines
(H-GRAAL / GREAT / GraphletAlign family) and make useful structural node
features.  2- and 3-node orbits come from closed-form neighbourhood counts;
4-node orbits come from an exact ESU enumeration of connected induced
subgraphs, classified by degree sequence.

Orbit numbering (see :mod:`repro.orbits.graphlets`): 0 edge; 1 chain end,
2 chain middle; 3 triangle; 4 path end, 5 path middle; 6 star leaf,
7 star centre; 8 cycle; 9 paw pendant, 10 paw far-triangle, 11 paw
attachment; 12 diamond degree-2, 13 diamond degree-3; 14 clique.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.graph.attributed_graph import AttributedGraph
from repro.orbits.esu import enumerate_connected_subgraphs
from repro.orbits.graphlets import NODE_ORBIT_COUNT


def count_node_orbits(graph: AttributedGraph) -> np.ndarray:
    """Return the ``(n_nodes, 15)`` graphlet degree vector matrix (exact)."""
    adjacency_sets = graph.adjacency_sets()
    n = graph.n_nodes
    counts = np.zeros((n, NODE_ORBIT_COUNT), dtype=np.int64)

    counts[:, 0] = graph.degrees

    # 3-node graphlets from closed-form neighbourhood enumeration.
    for center in range(n):
        neighbours = sorted(adjacency_sets[center])
        for u, v in combinations(neighbours, 2):
            if v in adjacency_sets[u]:
                # Triangle {center, u, v}: attribute it once, when the center
                # is the smallest node of the triangle.
                if center < u:
                    counts[center, 3] += 1
                    counts[u, 3] += 1
                    counts[v, 3] += 1
            else:
                # Two-edge chain with `center` in the middle; always unique.
                counts[center, 2] += 1
                counts[u, 1] += 1
                counts[v, 1] += 1

    # 4-node graphlets via exact ESU enumeration.
    for quad in enumerate_connected_subgraphs(adjacency_sets, 4):
        _count_quad(quad, adjacency_sets, counts)

    return counts


def _count_quad(quad, adjacency_sets, counts: np.ndarray) -> None:
    """Add the node-orbit contributions of one connected 4-node subgraph."""
    a, b, c, d = quad
    pairs = [(a, b), (a, c), (a, d), (b, c), (b, d), (c, d)]
    deg = {node: 0 for node in quad}
    n_edges = 0
    for u, v in pairs:
        if v in adjacency_sets[u]:
            n_edges += 1
            deg[u] += 1
            deg[v] += 1

    if n_edges == 3:
        if max(deg.values()) == 3:
            # Star.
            for node in quad:
                counts[node, 7 if deg[node] == 3 else 6] += 1
        else:
            # Three-edge chain.
            for node in quad:
                counts[node, 5 if deg[node] == 2 else 4] += 1
    elif n_edges == 4:
        if max(deg.values()) == 2:
            # Quadrangle.
            for node in quad:
                counts[node, 8] += 1
        else:
            # Tailed triangle: degrees are [1, 2, 2, 3].
            for node in quad:
                if deg[node] == 1:
                    counts[node, 9] += 1
                elif deg[node] == 3:
                    counts[node, 11] += 1
                else:
                    counts[node, 10] += 1
    elif n_edges == 5:
        for node in quad:
            counts[node, 13 if deg[node] == 3 else 12] += 1
    else:
        for node in quad:
            counts[node, 14] += 1


def graphlet_degree_vectors(graph: AttributedGraph, log_scale: bool = True) -> np.ndarray:
    """Node features from GDVs, optionally log-scaled (``log(1 + count)``).

    Log scaling keeps heavy-tailed orbit counts comparable across nodes and is
    what graphlet-feature alignment baselines typically consume.
    """
    gdv = count_node_orbits(graph).astype(np.float64)
    if log_scale:
        gdv = np.log1p(gdv)
    return gdv


__all__ = ["count_node_orbits", "graphlet_degree_vectors"]
