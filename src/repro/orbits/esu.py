"""ESU (Wernicke's) enumeration of connected induced subgraphs.

``enumerate_connected_subgraphs`` yields every connected induced subgraph of a
given size exactly once.  It is used by the node-orbit counter and is exposed
as a reusable substrate because motif-style analyses frequently need it.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Set, Tuple


def enumerate_connected_subgraphs(
    adjacency_sets: Sequence[Set[int]], size: int
) -> Iterator[Tuple[int, ...]]:
    """Yield each connected induced subgraph of ``size`` nodes exactly once.

    Parameters
    ----------
    adjacency_sets:
        Per-node neighbour sets (as produced by
        :meth:`repro.graph.AttributedGraph.adjacency_sets`).
    size:
        Number of nodes per subgraph (>= 1).

    Yields
    ------
    tuple of int
        Sorted node tuples, one per connected induced subgraph.
    """
    if size < 1:
        raise ValueError(f"size must be >= 1, got {size}")
    n = len(adjacency_sets)
    if size == 1:
        for v in range(n):
            yield (v,)
        return

    for v in range(n):
        extension = {u for u in adjacency_sets[v] if u > v}
        yield from _extend_subgraph(
            adjacency_sets, [v], extension, v, size
        )


def _extend_subgraph(
    adjacency_sets: Sequence[Set[int]],
    subgraph: List[int],
    extension: Set[int],
    root: int,
    size: int,
) -> Iterator[Tuple[int, ...]]:
    if len(subgraph) == size:
        yield tuple(sorted(subgraph))
        return

    # Neighbourhood of the current subgraph (nodes adjacent to any member).
    subgraph_set = set(subgraph)
    neighbourhood = set()
    for node in subgraph:
        neighbourhood |= adjacency_sets[node]
    neighbourhood -= subgraph_set

    extension = set(extension)
    while extension:
        w = extension.pop()
        # Exclusive neighbours of w: adjacent to w, greater than the root, and
        # not already adjacent to the current subgraph (that keeps each
        # subgraph generated exactly once).
        exclusive = {
            u
            for u in adjacency_sets[w]
            if u > root and u not in subgraph_set and u not in neighbourhood
        }
        yield from _extend_subgraph(
            adjacency_sets, subgraph + [w], extension | exclusive, root, size
        )


__all__ = ["enumerate_connected_subgraphs"]
