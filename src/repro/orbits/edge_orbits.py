"""Fast combinatorial edge-orbit counting for 2-4-node graphlets.

For every undirected edge ``(u, v)`` the counter reports how many times the
edge occurs on each of the 13 edge orbits (Eq. 1 of the paper).  The algorithm
is the pure-Python counterpart of the Orca edge-orbit counter:

* orbit 0 is trivially 1 per edge,
* the two 3-node orbits come from closed-form neighbourhood counts
  (``orbit1 = (deg(u)-1) + (deg(v)-1) - 2·t`` and ``orbit2 = t`` where ``t`` is
  the number of common neighbours),
* the ten 4-node orbits come from enumerating, for each edge, every pair of
  additional nodes that yields a connected induced subgraph.  A pair is either
  (case 1) two nodes from ``S = N(u) ∪ N(v)``, classified by the five adjacency
  bits of the quad, or (case 2) one node ``w ∈ S`` plus one of ``w``'s
  neighbours outside ``S`` (which can only form an end three-edge chain or a
  tailed triangle).

The per-quad classification is resolved through a 32-entry lookup table built
once from structural rules (degrees and triangle membership inside the quad),
so the per-edge work is ``O(|S|^2 + Σ_{w∈S} deg(w))`` — the same ``O(e·D²)``
class the paper reports for Orca.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.graph.attributed_graph import AttributedGraph
from repro.orbits.graphlets import EDGE_ORBIT_COUNT


def _classify_quad(a: bool, b: bool, c: bool, d: bool, e: bool) -> Optional[int]:
    """Classify the orbit of edge ``(u, v)`` inside the quad ``{u, v, w, x}``.

    The five booleans are the possible extra adjacencies: ``a=(u,w)``,
    ``b=(v,w)``, ``c=(u,x)``, ``d=(v,x)``, ``e=(w,x)``; the edge ``(u, v)``
    always exists.  Returns the edge-orbit id of ``(u, v)`` or ``None`` when
    the induced quad is disconnected.
    """
    # Degrees inside the quad.
    deg_u = 1 + int(a) + int(c)
    deg_v = 1 + int(b) + int(d)
    deg_w = int(a) + int(b) + int(e)
    deg_x = int(c) + int(d) + int(e)
    if deg_w == 0 or deg_x == 0:
        return None
    # w and x both have at least one edge; the quad is disconnected only when
    # {w, x} forms its own component, i.e. they are joined to each other but
    # not to {u, v}.
    if e and not (a or b or c or d):
        return None

    n_edges = 1 + int(a) + int(b) + int(c) + int(d) + int(e)

    if n_edges == 3:
        # Star (one centre of degree 3) or three-edge chain.
        if deg_u == 3 or deg_v == 3:
            return 5  # star edge
        if deg_u == 2 and deg_v == 2:
            return 4  # middle edge of the three-edge chain
        return 3  # end edge of the three-edge chain

    if n_edges == 4:
        if deg_u == deg_v == deg_w == deg_x == 2:
            return 6  # quadrangle
        # Tailed triangle.  Is (u, v) part of the triangle?
        uv_in_triangle = (a and b) or (c and d)
        if not uv_in_triangle:
            return 7  # (u, v) is the tail edge
        # (u, v) is a triangle edge; the pendant node is the degree-1 node.
        if deg_w == 1 or deg_x == 1:
            pendant_on_u_or_v = (deg_w == 1 and (a or b)) or (deg_x == 1 and (c or d))
            if pendant_on_u_or_v:
                return 8  # incident to the tailed node
            return 9  # opposite the tail
        return 9

    if n_edges == 5:
        # Diamond: the diagonal joins the two degree-3 nodes.
        if deg_u == 3 and deg_v == 3:
            return 11
        return 10

    if n_edges == 6:
        return 12

    # n_edges <= 2 cannot connect four nodes.
    return None


def _build_quad_lookup() -> Dict[Tuple[bool, bool, bool, bool, bool], Optional[int]]:
    lookup: Dict[Tuple[bool, bool, bool, bool, bool], Optional[int]] = {}
    for code in range(32):
        bits = tuple(bool((code >> i) & 1) for i in range(5))
        lookup[bits] = _classify_quad(*bits)
    return lookup


_QUAD_LOOKUP = _build_quad_lookup()


@dataclass
class EdgeOrbitCounts:
    """Edge-orbit counts of a graph.

    Attributes
    ----------
    edges:
        List of undirected edges ``(u, v)`` with ``u < v`` in the order the
        counts are stored.
    counts:
        ``(n_edges, 13)`` integer array; ``counts[i, k]`` is the number of
        times ``edges[i]`` occurs on edge orbit ``k``.
    """

    edges: List[Tuple[int, int]]
    counts: np.ndarray

    def as_dict(self) -> Dict[Tuple[int, int], np.ndarray]:
        """Return a mapping from edge to its 13-dimensional count vector."""
        return {edge: self.counts[i] for i, edge in enumerate(self.edges)}

    def orbit_total(self, orbit: int) -> int:
        """Total count of ``orbit`` summed over all edges."""
        if not 0 <= orbit < EDGE_ORBIT_COUNT:
            raise ValueError(f"orbit must be in [0, {EDGE_ORBIT_COUNT}), got {orbit}")
        return int(self.counts[:, orbit].sum())

    @property
    def n_edges(self) -> int:
        return len(self.edges)


def count_edge_orbits(graph: AttributedGraph) -> EdgeOrbitCounts:
    """Count, for every edge of ``graph``, its occurrences on all 13 edge orbits."""
    adjacency_sets = graph.adjacency_sets()
    degrees = graph.degrees
    edges = graph.edge_list()
    counts = np.zeros((len(edges), EDGE_ORBIT_COUNT), dtype=np.int64)

    for edge_index, (u, v) in enumerate(edges):
        neighbours_u = adjacency_sets[u]
        neighbours_v = adjacency_sets[v]
        common = (neighbours_u & neighbours_v) - {u, v}
        n_common = len(common)

        counts[edge_index, 0] = 1
        counts[edge_index, 2] = n_common
        counts[edge_index, 1] = (degrees[u] - 1) + (degrees[v] - 1) - 2 * n_common

        # Candidate third/fourth nodes adjacent to u or v.
        surrounding = sorted((neighbours_u | neighbours_v) - {u, v})
        in_surrounding = set(surrounding)

        # Case 1: both extra nodes drawn from the surrounding set.
        for i, w in enumerate(surrounding):
            w_adj = adjacency_sets[w]
            a = w in neighbours_u
            b = w in neighbours_v
            for x in surrounding[i + 1 :]:
                orbit = _QUAD_LOOKUP[
                    (a, b, x in neighbours_u, x in neighbours_v, x in w_adj)
                ]
                if orbit is not None:
                    counts[edge_index, orbit] += 1

        # Case 2: one node from the surrounding set plus one of its private
        # neighbours (attached to neither u nor v).  The quad is always
        # connected and can only be an end three-edge chain (orbit 3) or a
        # tailed triangle whose tail hangs off the common neighbour (orbit 9).
        for w in surrounding:
            a = w in neighbours_u
            b = w in neighbours_v
            private = adjacency_sets[w] - in_surrounding - {u, v}
            if not private:
                continue
            orbit = 9 if (a and b) else 3
            counts[edge_index, orbit] += len(private)

    return EdgeOrbitCounts(edges=edges, counts=counts)


__all__ = ["EdgeOrbitCounts", "count_edge_orbits"]
