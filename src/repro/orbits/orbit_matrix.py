"""Graphlet Orbit Matrix (GOM) construction.

For a graph ``G`` and orbit ``k``, the GOM ``O_k`` is the ``(n, n)`` symmetric
matrix whose entry ``O_k(i, j)`` is the number of times edge ``(i, j)`` occurs
on orbit ``k`` (Eq. 1 of the paper), or a 0/1 indicator in the binary variant.
The list of GOMs (one per orbit) is the higher-order topology fed to the
orbit-weighted encoder.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from repro.graph.attributed_graph import AttributedGraph
from repro.orbits.edge_orbits import EdgeOrbitCounts
from repro.orbits.graphlets import EDGE_ORBIT_COUNT


def build_orbit_matrices(
    graph: AttributedGraph,
    orbits: Optional[Sequence[int]] = None,
    weighted: bool = True,
    counts: Optional[EdgeOrbitCounts] = None,
) -> List[sp.csr_matrix]:
    """Build the Graphlet Orbit Matrices of ``graph``.

    Parameters
    ----------
    graph:
        The input graph.
    orbits:
        Which edge-orbit ids to build matrices for.  Defaults to all 13.
    weighted:
        If True (paper default), entries are occurrence counts; if False, they
        are 0/1 indicators.
    counts:
        Pre-computed edge-orbit counts (so the expensive counting step can be
        shared between callers); computed on demand otherwise.

    Returns
    -------
    list of scipy.sparse.csr_matrix
        One symmetric ``(n, n)`` matrix per requested orbit, in order.
    """
    if orbits is None:
        orbits = list(range(EDGE_ORBIT_COUNT))
    else:
        orbits = list(orbits)
        for orbit in orbits:
            if not 0 <= orbit < EDGE_ORBIT_COUNT:
                raise ValueError(
                    f"orbit ids must be in [0, {EDGE_ORBIT_COUNT}), got {orbit}"
                )
    if counts is None:
        # Imported lazily: the engine depends on this module's siblings.
        from repro.orbits.engine import count_edge_orbits

        counts = count_edge_orbits(graph)

    n = graph.n_nodes
    if counts.n_edges == 0:
        return [sp.csr_matrix((n, n), dtype=np.float64) for _ in orbits]

    edge_array = np.asarray(counts.edges, dtype=np.int64)
    rows = np.concatenate([edge_array[:, 0], edge_array[:, 1]])
    cols = np.concatenate([edge_array[:, 1], edge_array[:, 0]])

    matrices = []
    for orbit in orbits:
        values = counts.counts[:, orbit].astype(np.float64)
        if not weighted:
            values = (values > 0).astype(np.float64)
        data = np.concatenate([values, values])
        matrix = sp.coo_matrix((data, (rows, cols)), shape=(n, n)).tocsr()
        matrix.eliminate_zeros()
        matrices.append(matrix)
    return matrices


def orbit_sparsity(matrices: Sequence[sp.spmatrix]) -> np.ndarray:
    """Fraction of edges present on each orbit (1.0 = every edge occurs)."""
    if not matrices:
        return np.zeros(0)
    base_nnz = matrices[0].nnz if matrices[0].nnz else 1
    return np.array([matrix.nnz / base_nnz for matrix in matrices], dtype=np.float64)


__all__ = ["build_orbit_matrices", "orbit_sparsity"]
