"""Reference orbit counters based on exhaustive induced-subgraph enumeration.

These counters are deliberately independent of the fast combinatorial
implementation in :mod:`repro.orbits.edge_orbits`: every connected induced
subgraph on 2-4 nodes is enumerated and matched against the annotated
graphlet templates with a VF2 isomorphism search, and the orbit label is read
off the matched template edge/node.  They are quadratic-to-quartic in the
node count and are only intended for tests and tiny illustrative graphs.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Tuple

import networkx as nx
import numpy as np
from networkx.algorithms.isomorphism import GraphMatcher

from repro.graph.attributed_graph import AttributedGraph
from repro.graph.builders import to_networkx
from repro.orbits.edge_orbits import EdgeOrbitCounts
from repro.orbits.graphlets import (
    EDGE_ORBIT_COUNT,
    NODE_ORBIT_COUNT,
    graphlet_templates,
)


def _match_template(subgraph: nx.Graph) -> Tuple[nx.Graph, Dict[int, int]]:
    """Return the template isomorphic to ``subgraph`` and a node mapping.

    The mapping sends subgraph nodes to template nodes.  Raises ``ValueError``
    if no template matches (which would indicate a non-graphlet subgraph).
    """
    for template in graphlet_templates():
        if template.number_of_nodes() != subgraph.number_of_nodes():
            continue
        if template.number_of_edges() != subgraph.number_of_edges():
            continue
        matcher = GraphMatcher(subgraph, template)
        if matcher.is_isomorphic():
            return template, dict(matcher.mapping)
    raise ValueError("subgraph does not match any 2-4 node graphlet template")


def _connected_subsets(graph: nx.Graph, size: int) -> List[Tuple[int, ...]]:
    """All node subsets of ``size`` whose induced subgraph is connected."""
    subsets = []
    for nodes in combinations(sorted(graph.nodes()), size):
        sub = graph.subgraph(nodes)
        if nx.is_connected(sub):
            subsets.append(nodes)
    return subsets


def brute_force_edge_orbits(graph: AttributedGraph) -> EdgeOrbitCounts:
    """Exhaustively count edge-orbit occurrences for every edge of ``graph``."""
    nx_graph = to_networkx(graph)
    edges = graph.edge_list()
    edge_index = {edge: i for i, edge in enumerate(edges)}
    counts = np.zeros((len(edges), EDGE_ORBIT_COUNT), dtype=np.int64)

    for size in (2, 3, 4):
        for nodes in _connected_subsets(nx_graph, size):
            subgraph = nx_graph.subgraph(nodes)
            template, mapping = _match_template(subgraph)
            for u, v in subgraph.edges():
                orbit = template.edges[mapping[u], mapping[v]]["edge_orbit"]
                key = (u, v) if u < v else (v, u)
                counts[edge_index[key], orbit] += 1
    return EdgeOrbitCounts(edges=edges, counts=counts)


def brute_force_node_orbits(graph: AttributedGraph) -> np.ndarray:
    """Exhaustively count node-orbit occurrences (graphlet degree vectors)."""
    nx_graph = to_networkx(graph)
    counts = np.zeros((graph.n_nodes, NODE_ORBIT_COUNT), dtype=np.int64)
    for size in (2, 3, 4):
        for nodes in _connected_subsets(nx_graph, size):
            subgraph = nx_graph.subgraph(nodes)
            template, mapping = _match_template(subgraph)
            for node in nodes:
                orbit = template.nodes[mapping[node]]["node_orbit"]
                counts[node, orbit] += 1
    return counts


__all__ = ["brute_force_edge_orbits", "brute_force_node_orbits"]
