"""Content-hash-keyed per-graph orbit caching.

Orbit counting is a pure function of a graph's adjacency *structure*, so its
results can be memoised across runs: robustness and hyper-parameter sweeps
re-align the same (or the same perturbed) graphs many times, and every repeat
currently pays the counting stage again.  :class:`OrbitCache` keys results by
a SHA-256 of the canonical CSR structure (shape + indptr + indices — edge
weights and node attributes are irrelevant to orbit counts) and keeps them in
a bounded in-memory LRU, optionally mirrored to ``.npz`` files on disk so the
cache survives across processes.

Cache *specs* (accepted by :func:`resolve_cache`, used by ``HTCConfig`` and
the CLI):

* ``"off"`` / ``"none"`` / ``None`` / ``False`` — no caching,
* ``"memory"`` / ``True`` — the process-wide shared in-memory cache,
* any other string / path — a disk-backed cache rooted at that directory,
* an :class:`OrbitCache` instance — used as is.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import threading
import zipfile
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.graph.attributed_graph import AttributedGraph
from repro.obs.metrics import default_registry
from repro.orbits.edge_orbits import EdgeOrbitCounts

#: Cache record kinds and the arrays a well-formed record must contain.
KIND_EDGE = "edge"
KIND_NODE = "node"
_REQUIRED_KEYS = {KIND_EDGE: {"edges", "counts"}, KIND_NODE: {"gdv"}}

CacheSpec = Union[None, bool, str, os.PathLike, "OrbitCache"]


def graph_content_hash(graph: AttributedGraph) -> str:
    """SHA-256 of the graph's adjacency structure (weights ignored).

    Two graphs hash equal iff they have the same node count and the same set
    of (directed) adjacency positions — exactly the inputs orbit counting
    depends on.
    """
    adjacency = graph.adjacency
    if not adjacency.has_sorted_indices:
        adjacency = adjacency.copy()
        adjacency.sort_indices()
    digest = hashlib.sha256()
    digest.update(b"repro-orbit-graph-v1:")
    digest.update(np.int64(adjacency.shape[0]).tobytes())
    digest.update(np.asarray(adjacency.indptr, dtype=np.int64).tobytes())
    digest.update(np.asarray(adjacency.indices, dtype=np.int64).tobytes())
    return digest.hexdigest()


class OrbitCache:
    """Memory (+ optional disk) cache for per-graph orbit counts.

    Parameters
    ----------
    directory:
        When given, every record is also written to
        ``<directory>/<hash>.<kind>.npz`` and missing memory entries are
        served from disk, so the cache persists across processes.
    max_entries:
        Bound on the number of in-memory records (LRU eviction).  Disk
        records are never evicted.
    max_bytes:
        Bound on the total in-memory record payload (LRU eviction); large
        sweeps over many distinct big graphs stay within this budget
        regardless of entry count.
    """

    def __init__(
        self,
        directory: Union[None, str, os.PathLike] = None,
        max_entries: int = 256,
        max_bytes: int = 256 * 1024 * 1024,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.directory = Path(directory) if directory is not None else None
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._memory: "OrderedDict[tuple, dict]" = OrderedDict()
        self._memory_bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # generic record plumbing
    # ------------------------------------------------------------------
    def _get_record(self, key: str, kind: str) -> Optional[dict]:
        with self._lock:
            record = self._memory.get((key, kind))
            if record is not None:
                self._memory.move_to_end((key, kind))
                self.hits += 1
                default_registry().counter("orbit_cache_hits_total").inc()
                return record
        record = self._load_disk(key, kind)
        if record is not None:
            self._store_memory(key, kind, record)
            with self._lock:
                self.hits += 1
            default_registry().counter("orbit_cache_hits_total").inc()
            return record
        with self._lock:
            self.misses += 1
        default_registry().counter("orbit_cache_misses_total").inc()
        return None

    def _put_record(self, key: str, kind: str, record: dict) -> None:
        self._store_memory(key, kind, record)
        self._store_disk(key, kind, record)

    @staticmethod
    def _record_nbytes(record: dict) -> int:
        return sum(array.nbytes for array in record.values())

    def _store_memory(self, key: str, kind: str, record: dict) -> None:
        with self._lock:
            previous = self._memory.pop((key, kind), None)
            if previous is not None:
                self._memory_bytes -= self._record_nbytes(previous)
            self._memory[(key, kind)] = record
            self._memory_bytes += self._record_nbytes(record)
            while self._memory and (
                len(self._memory) > self.max_entries
                or self._memory_bytes > self.max_bytes
            ):
                _, evicted = self._memory.popitem(last=False)
                self._memory_bytes -= self._record_nbytes(evicted)

    def _disk_path(self, key: str, kind: str) -> Optional[Path]:
        if self.directory is None:
            return None
        return self.directory / f"{key}.{kind}.npz"

    def _load_disk(self, key: str, kind: str) -> Optional[dict]:
        path = self._disk_path(key, kind)
        if path is None or not path.is_file():
            return None
        try:
            with np.load(path) as handle:
                record = {name: handle[name] for name in handle.files}
        except (OSError, ValueError, EOFError, zipfile.BadZipFile, KeyError):
            return None  # unreadable / truncated record: recount instead
        if not _REQUIRED_KEYS[kind] <= record.keys():
            return None  # foreign / incomplete record
        return record

    def _store_disk(self, key: str, kind: str, record: dict) -> None:
        path = self._disk_path(key, kind)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        # Write-then-rename so concurrent readers never see a partial file.
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(handle, **record)
            os.replace(tmp_name, path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass

    # ------------------------------------------------------------------
    # typed API
    # ------------------------------------------------------------------
    def get_edge_orbits(self, key: str) -> Optional[EdgeOrbitCounts]:
        """Cached edge-orbit counts for ``key``, or None."""
        record = self._get_record(key, KIND_EDGE)
        if record is None:
            return None
        edges = [(int(u), int(v)) for u, v in record["edges"].reshape(-1, 2)]
        # Copy so callers mutating the result cannot corrupt the cache.
        return EdgeOrbitCounts(edges=edges, counts=record["counts"].copy())

    def put_edge_orbits(self, key: str, counts: EdgeOrbitCounts) -> None:
        """Store edge-orbit counts under ``key``."""
        record = {
            "edges": np.asarray(counts.edges, dtype=np.int64).reshape(-1, 2),
            "counts": np.asarray(counts.counts, dtype=np.int64).copy(),
        }
        self._put_record(key, KIND_EDGE, record)

    def get_node_orbits(self, key: str) -> Optional[np.ndarray]:
        """Cached node-orbit matrix for ``key``, or None."""
        record = self._get_record(key, KIND_NODE)
        if record is None:
            return None
        return record["gdv"].copy()

    def put_node_orbits(self, key: str, gdv: np.ndarray) -> None:
        """Store the node-orbit matrix under ``key``."""
        self._put_record(key, KIND_NODE, {"gdv": np.asarray(gdv, dtype=np.int64).copy()})

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Drop every in-memory record and reset the hit/miss counters."""
        with self._lock:
            self._memory.clear()
            self._memory_bytes = 0
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        return len(self._memory)

    def stats(self) -> Dict[str, int]:
        """Hit/miss/size counters (for logs and tests)."""
        with self._lock:
            return {"hits": self.hits, "misses": self.misses, "entries": len(self._memory)}

    def __repr__(self) -> str:
        where = f"dir={self.directory}" if self.directory else "memory"
        return f"OrbitCache({where}, entries={len(self._memory)})"


#: Process-wide cache behind the ``"memory"`` spec.
_SHARED_CACHE = OrbitCache()
#: Disk caches are memoised per resolved directory so repeated config
#: resolution shares one in-memory layer per location.
_DISK_CACHES: Dict[str, OrbitCache] = {}
_RESOLVE_LOCK = threading.Lock()


def shared_cache() -> OrbitCache:
    """The process-wide in-memory orbit cache."""
    return _SHARED_CACHE


def resolve_cache(spec: CacheSpec) -> Optional[OrbitCache]:
    """Turn a cache *spec* (config/CLI value) into an OrbitCache or None."""
    if spec is None or spec is False:
        return None
    if isinstance(spec, OrbitCache):
        return spec
    if spec is True:
        return _SHARED_CACHE
    if isinstance(spec, (str, os.PathLike)):
        text = str(spec)
        if text.lower() in ("off", "none", ""):
            return None
        if text.lower() == "memory":
            return _SHARED_CACHE
        resolved = str(Path(text).expanduser().resolve())
        with _RESOLVE_LOCK:
            if resolved not in _DISK_CACHES:
                _DISK_CACHES[resolved] = OrbitCache(directory=resolved)
            return _DISK_CACHES[resolved]
    raise TypeError(
        "orbit cache spec must be None, a bool, a string ('off', 'memory', or "
        f"a directory path), or an OrbitCache; got {spec!r}"
    )


__all__ = [
    "OrbitCache",
    "graph_content_hash",
    "resolve_cache",
    "shared_cache",
    "KIND_EDGE",
    "KIND_NODE",
]
