"""Vectorized (numpy) orbit counting — the ``"numpy"`` engine backend.

The pure-Python counters in :mod:`repro.orbits.edge_orbits` and
:mod:`repro.orbits.node_orbits` classify every 4-node quad with nested Python
loops (the ``O(e·D²)`` work Orca does in C).  This module does the same exact
counting with closed-form combinatorial identities over per-edge
neighbourhood *bitsets*, so the hot path runs inside NumPy.

For an edge ``(u, v)`` partition every other node into four classes by its
adjacency to the endpoints:

* ``a`` — adjacent to ``u`` only,
* ``b`` — adjacent to ``v`` only,
* ``c`` — adjacent to both (the common neighbours, ``|c| = t``),
* ``n`` — adjacent to neither.

Every connected quad ``{u, v, w, x}`` is then one of twelve cases given the
classes of ``w, x`` and whether ``w ~ x``, and each case is a fixed edge
orbit.  With ``E_xy`` the number of graph edges between class ``x`` and class
``y`` and ``P_x`` the number of (class-``x`` node, private-neighbour) pairs —
a private neighbour being adjacent to a surrounding node but to neither
endpoint — the 13 edge-orbit counts are::

    orbit  0 = 1
    orbit  1 = |a| + |b|                      (wedge, (u,v) an edge of it)
    orbit  2 = t                              (triangle edge)
    orbit  3 = P_a + P_b                      (end edge of a 3-edge chain)
    orbit  4 = |a|·|b| − E_ab                 (middle edge of a 3-edge chain)
    orbit  5 = C(|a|,2) − E_aa + C(|b|,2) − E_bb   (star edge)
    orbit  6 = E_ab                           (quadrangle edge)
    orbit  7 = E_aa + E_bb                    (paw tail edge)
    orbit  8 = |a|·t − E_ac + |b|·t − E_bc    (paw triangle edge at the tail)
    orbit  9 = P_c                            (paw triangle edge opposite tail)
    orbit 10 = E_ac + E_bc                    (diamond cycle edge)
    orbit 11 = C(t,2) − E_cc                  (diamond diagonal)
    orbit 12 = E_cc                           (clique edge)

The same per-edge statistics, kept *oriented* (which endpoint owns the ``a``
side), also yield all 4-node node orbits: each case fixes the role of both
endpoints, and summing role counts over a node's incident edges counts every
graphlet exactly ``r`` times, where ``r`` is the node's degree inside the
graphlet (fixed per orbit).  2- and 3-node node orbits come from degrees and
per-edge triangle counts.

The adjacency rows are bit-packed (``np.packbits``) so each class mask and
each edge count is a handful of byte-wise AND + popcount operations; memory
is ``n²/8`` bytes, fine for the multi-thousand-node graphs this repo targets.
All arithmetic is int64 and exact, so counts are bit-identical to the
reference backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.graph.attributed_graph import AttributedGraph
from repro.orbits.edge_orbits import EdgeOrbitCounts
from repro.orbits.graphlets import EDGE_ORBIT_COUNT, NODE_ORBIT_COUNT

#: Degree of a node inside its graphlet, per 4-node node orbit (4..14); the
#: multiplicity with which edge-incidence accumulation counts each graphlet.
_ROLE_MULTIPLICITY = np.array([1, 2, 1, 3, 2, 1, 2, 3, 2, 3, 3], dtype=np.int64)

_PACK_CHUNK = 512

#: ``_BIT_MASK[j]`` selects bit ``j`` of a byte in ``np.packbits`` big-endian
#: order; ``_BIT_CLEAR[j]`` clears it.
_BIT_MASK = np.array([0x80 >> j for j in range(8)], dtype=np.uint8)
_BIT_CLEAR = np.array([0xFF ^ (0x80 >> j) for j in range(8)], dtype=np.uint8)

#: Per-chunk budget (bytes) for the ``(incidences, n/8)`` bitset temporaries.
_CHUNK_BYTE_BUDGET = 64 * 1024 * 1024


@dataclass
class EdgeStatistics:
    """Oriented per-edge neighbourhood statistics (one int64 array per field).

    For edge ``i`` with endpoints ``(u, v) = edges[i]`` (``u < v``): ``t`` is
    the common-neighbour count, ``na``/``nb`` the exclusive-neighbour counts
    of ``u``/``v``, ``e_xy`` the number of edges between the classes, and
    ``p_a``/``p_b``/``p_c`` the private-neighbour pair counts per class.
    """

    edges: List[Tuple[int, int]]
    t: np.ndarray
    na: np.ndarray
    nb: np.ndarray
    e_aa: np.ndarray
    e_bb: np.ndarray
    e_cc: np.ndarray
    e_ab: np.ndarray
    e_ac: np.ndarray
    e_bc: np.ndarray
    p_a: np.ndarray
    p_b: np.ndarray
    p_c: np.ndarray


def _pack_adjacency(adjacency) -> np.ndarray:
    """Bit-pack the binary adjacency pattern into an ``(n, ⌈n/8⌉)`` uint8 array."""
    n = adjacency.shape[0]
    packed = np.empty((n, (n + 7) // 8), dtype=np.uint8)
    for start in range(0, n, _PACK_CHUNK):
        stop = min(start + _PACK_CHUNK, n)
        block = adjacency[start:stop].toarray() != 0
        packed[start:stop] = np.packbits(block, axis=1)
    return packed


def _has_bit(packed: np.ndarray, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """Vectorized bit test: is bit ``cols[i]`` set in row ``rows[i]``?"""
    return (packed[rows, cols >> 3] & _BIT_MASK[cols & 7]) != 0


def _neighbour_incidences(
    nodes: np.ndarray, indptr: np.ndarray, indices: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Flatten the CSR neighbour lists of ``nodes``.

    Returns ``(flat_neighbours, owner)`` where ``owner[i]`` is the position in
    ``nodes`` whose neighbour list produced ``flat_neighbours[i]``.
    """
    counts = (indptr[nodes + 1] - indptr[nodes]).astype(np.int64)
    total = int(counts.sum())
    owner = np.repeat(np.arange(nodes.size, dtype=np.int64), counts)
    starts = np.repeat(indptr[nodes].astype(np.int64), counts)
    bases = np.concatenate(([0], np.cumsum(counts)[:-1]))
    within = np.arange(total, dtype=np.int64) - np.repeat(bases, counts)
    return indices[starts + within].astype(np.int64), owner


def _segment_sum(
    owner: np.ndarray, select: np.ndarray, values: np.ndarray, size: int
) -> np.ndarray:
    """Sum ``values[select]`` grouped by ``owner[select]`` (exact int64)."""
    # bincount's float64 accumulation is exact here: every addend and every
    # partial sum is an integer far below 2**53.
    return np.bincount(
        owner[select], weights=values[select], minlength=size
    ).astype(np.int64)


def _chunk_boundaries(cost: np.ndarray, budget: int) -> List[Tuple[int, int]]:
    """Split ``range(len(cost))`` into spans whose ``cost`` sums stay in budget."""
    spans = []
    start = 0
    total = 0
    for index, item in enumerate(cost):
        if total + item > budget and index > start:
            spans.append((start, index))
            start = index
            total = 0
        total += item
    spans.append((start, len(cost)))
    return spans


def compute_edge_statistics(graph: AttributedGraph) -> EdgeStatistics:
    """Compute every per-edge class statistic in batched numpy passes."""
    adjacency = graph.adjacency
    degrees = graph.degrees.astype(np.int64)
    edges = graph.edge_list()
    m = len(edges)
    field_names = (
        "t", "na", "nb", "e_aa", "e_bb", "e_cc",
        "e_ab", "e_ac", "e_bc", "p_a", "p_b", "p_c",
    )
    fields = {name: np.zeros(m, dtype=np.int64) for name in field_names}
    if m == 0:
        return EdgeStatistics(edges=edges, **fields)

    packed = _pack_adjacency(adjacency)
    width = packed.shape[1]
    indptr, indices = adjacency.indptr, adjacency.indices
    edge_array = np.asarray(edges, dtype=np.int64)

    # Chunk edges so the (incidences, width) bitset temporaries stay bounded.
    incidence_cost = (degrees[edge_array[:, 0]] + degrees[edge_array[:, 1]]) * width
    budget = max(int(incidence_cost.max(initial=1)), _CHUNK_BYTE_BUDGET)
    for start, stop in _chunk_boundaries(incidence_cost, budget):
        chunk = _edge_statistics_chunk(
            edge_array[start:stop], packed, indptr, indices, degrees
        )
        for name in field_names:
            fields[name][start:stop] = chunk[name]
    return EdgeStatistics(edges=edges, **fields)


def _edge_statistics_chunk(
    edge_array: np.ndarray,
    packed: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
    degrees: np.ndarray,
) -> dict:
    """Per-edge statistics for one chunk of edges, fully vectorized."""
    eu, ev = edge_array[:, 0], edge_array[:, 1]
    k = eu.size
    out = {}

    row_u, row_v = packed[eu], packed[ev]
    mask_c = row_u & row_v
    mask_a = row_u & ~row_v
    mask_b = row_v & ~row_u
    span = np.arange(k)
    mask_a[span, ev >> 3] &= _BIT_CLEAR[ev & 7]  # v itself is not in class a
    mask_b[span, eu >> 3] &= _BIT_CLEAR[eu & 7]
    out["t"] = np.bitwise_count(mask_c).sum(axis=1, dtype=np.int64)
    out["na"] = np.bitwise_count(mask_a).sum(axis=1, dtype=np.int64)
    out["nb"] = np.bitwise_count(mask_b).sum(axis=1, dtype=np.int64)

    # Surrounding nodes as flat (edge, node) incidences: u's neighbour list
    # contributes every class-a and class-c node, v's list the class-b nodes
    # (its class-c entries are dropped as duplicates, as are the endpoints).
    w_u, owner_u = _neighbour_incidences(eu, indptr, indices)
    keep_u = w_u != ev[owner_u]
    w_u, owner_u = w_u[keep_u], owner_u[keep_u]
    in_v_u = _has_bit(packed, w_u, ev[owner_u])

    w_v, owner_v = _neighbour_incidences(ev, indptr, indices)
    keep_v = (w_v != eu[owner_v]) & ~_has_bit(packed, w_v, eu[owner_v])
    w_v, owner_v = w_v[keep_v], owner_v[keep_v]

    flat_w = np.concatenate([w_u, w_v])
    owner = np.concatenate([owner_u, owner_v])
    in_u = np.concatenate([np.ones(w_u.size, bool), np.zeros(w_v.size, bool)])
    in_v = np.concatenate([in_v_u, np.ones(w_v.size, bool)])
    type_c = in_u & in_v
    type_a = in_u & ~in_v
    type_b = ~in_u

    rows = packed[flat_w]
    cnt_a = np.bitwise_count(rows & mask_a[owner]).sum(axis=1, dtype=np.int64)
    cnt_b = np.bitwise_count(rows & mask_b[owner]).sum(axis=1, dtype=np.int64)
    cnt_c = np.bitwise_count(rows & mask_c[owner]).sum(axis=1, dtype=np.int64)

    # Edges inside/between classes (within-class sums count both ends).
    out["e_aa"] = _segment_sum(owner, type_a, cnt_a, k) // 2
    out["e_bb"] = _segment_sum(owner, type_b, cnt_b, k) // 2
    out["e_cc"] = _segment_sum(owner, type_c, cnt_c, k) // 2
    out["e_ab"] = _segment_sum(owner, type_a, cnt_b, k)
    out["e_ac"] = _segment_sum(owner, type_a, cnt_c, k)
    out["e_bc"] = _segment_sum(owner, type_b, cnt_c, k)

    # Private neighbours: degree minus in-surrounding minus {u, v} links.
    private = degrees[flat_w] - (cnt_a + cnt_b + cnt_c) - in_u - in_v
    out["p_a"] = _segment_sum(owner, type_a, private, k)
    out["p_b"] = _segment_sum(owner, type_b, private, k)
    out["p_c"] = _segment_sum(owner, type_c, private, k)
    return out


def edge_orbits_from_statistics(stats: EdgeStatistics) -> EdgeOrbitCounts:
    """Assemble the 13 per-edge orbit counts from the class statistics."""
    m = len(stats.edges)
    counts = np.zeros((m, EDGE_ORBIT_COUNT), dtype=np.int64)
    if m == 0:
        return EdgeOrbitCounts(edges=stats.edges, counts=counts)
    t, na, nb = stats.t, stats.na, stats.nb
    counts[:, 0] = 1
    counts[:, 1] = na + nb
    counts[:, 2] = t
    counts[:, 3] = stats.p_a + stats.p_b
    counts[:, 4] = na * nb - stats.e_ab
    counts[:, 5] = na * (na - 1) // 2 - stats.e_aa + nb * (nb - 1) // 2 - stats.e_bb
    counts[:, 6] = stats.e_ab
    counts[:, 7] = stats.e_aa + stats.e_bb
    counts[:, 8] = (na + nb) * t - stats.e_ac - stats.e_bc
    counts[:, 9] = stats.p_c
    counts[:, 10] = stats.e_ac + stats.e_bc
    counts[:, 11] = t * (t - 1) // 2 - stats.e_cc
    counts[:, 12] = stats.e_cc
    return EdgeOrbitCounts(edges=stats.edges, counts=counts)


def node_orbits_from_statistics(
    stats: EdgeStatistics, degrees: np.ndarray
) -> np.ndarray:
    """Assemble the ``(n, 15)`` graphlet degree vectors from the statistics."""
    n = degrees.shape[0]
    degrees = degrees.astype(np.int64)
    gdv = np.zeros((n, NODE_ORBIT_COUNT), dtype=np.int64)
    gdv[:, 0] = degrees
    if not stats.edges:
        return gdv

    edge_array = np.asarray(stats.edges, dtype=np.int64)
    eu, ev = edge_array[:, 0], edge_array[:, 1]
    t, na, nb = stats.t, stats.na, stats.nb

    # 3-node orbits: triangles per node (each triangle is seen by two of a
    # node's incident edges), wedge ends, wedge centres.
    triangle_halves = np.zeros(n, dtype=np.int64)
    np.add.at(triangle_halves, eu, t)
    np.add.at(triangle_halves, ev, t)
    triangles = triangle_halves // 2
    wedge_ends = np.zeros(n, dtype=np.int64)
    np.add.at(wedge_ends, eu, degrees[ev] - 1 - t)
    np.add.at(wedge_ends, ev, degrees[eu] - 1 - t)
    gdv[:, 1] = wedge_ends
    gdv[:, 2] = degrees * (degrees - 1) // 2 - triangles
    gdv[:, 3] = triangles

    # 4-node orbits: per-edge role counts, oriented.  Case names follow the
    # module docstring; ``_u`` marks the count in which u owns the exclusive
    # (`a`) side.
    star_u = na * (na - 1) // 2 - stats.e_aa    # star centred at u, v a leaf
    star_v = nb * (nb - 1) // 2 - stats.e_bb
    chain_mid = na * nb - stats.e_ab            # 3-edge chain, (u,v) middle
    paw_att_u = na * t - stats.e_ac             # paw, tail attached at u
    paw_att_v = nb * t - stats.e_bc
    diamond_u = stats.e_ac                      # diamond, u the degree-3 end
    diamond_v = stats.e_bc
    diamond_diag = t * (t - 1) // 2 - stats.e_cc

    contrib_u = np.stack(
        [
            stats.p_b,                          # 4  chain end
            chain_mid + stats.p_a,              # 5  chain middle
            star_v,                             # 6  star leaf
            star_u,                             # 7  star centre
            stats.e_ab,                         # 8  cycle
            stats.e_bb,                         # 9  paw pendant
            paw_att_v + stats.p_c,              # 10 paw far-triangle
            stats.e_aa + paw_att_u,             # 11 paw attachment
            stats.e_bc,                         # 12 diamond degree-2
            diamond_u + diamond_diag,           # 13 diamond degree-3
            stats.e_cc,                         # 14 clique
        ],
        axis=1,
    )
    contrib_v = np.stack(
        [
            stats.p_a,
            chain_mid + stats.p_b,
            star_u,
            star_v,
            stats.e_ab,
            stats.e_aa,
            paw_att_u + stats.p_c,
            stats.e_bb + paw_att_v,
            stats.e_ac,
            diamond_v + diamond_diag,
            stats.e_cc,
        ],
        axis=1,
    )
    accumulator = np.zeros((n, _ROLE_MULTIPLICITY.shape[0]), dtype=np.int64)
    np.add.at(accumulator, eu, contrib_u)
    np.add.at(accumulator, ev, contrib_v)
    gdv[:, 4:] = accumulator // _ROLE_MULTIPLICITY
    return gdv


def count_edge_orbits_numpy(graph: AttributedGraph) -> EdgeOrbitCounts:
    """Vectorized edge-orbit counts, bit-identical to the reference counter."""
    return edge_orbits_from_statistics(compute_edge_statistics(graph))


def count_node_orbits_numpy(graph: AttributedGraph) -> np.ndarray:
    """Vectorized node-orbit counts, bit-identical to the reference counter."""
    return node_orbits_from_statistics(compute_edge_statistics(graph), graph.degrees)


__all__ = [
    "EdgeStatistics",
    "compute_edge_statistics",
    "edge_orbits_from_statistics",
    "node_orbits_from_statistics",
    "count_edge_orbits_numpy",
    "count_node_orbits_numpy",
]
