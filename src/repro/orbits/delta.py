"""Delta orbit recounting for edge append/remove batches.

A 4-node graphlet containing node ``n`` lives entirely inside ``n``'s 2-hop
neighbourhood, so adding or removing one edge ``(u, v)`` can only change the
graphlet degree vectors of nodes within two hops of ``u`` or ``v``.  This
module exploits that locality with *graphlet-transition accounting*: for one
changed edge it enumerates, in closed form, every connected node set
``S ⊇ {u, v}`` with ``|S| ≤ 4`` and applies the orbit-role difference
between the subgraph with and without the edge to the GDV rows of the nodes
in ``S`` — ``O(Σ_{w∈N(u)∪N(v)} deg(w))`` per changed edge instead of a full
``O(e·D²)`` recount.

The accounting reuses the class partition of :mod:`repro.orbits.vectorized`
(``a``/``b``/``c`` by adjacency to the endpoints): the *with-edge* role
counts are exactly the per-edge statistics identities of the numpy backend,
and the *without-edge* roles follow from reclassifying each case after
dropping ``(u, v)`` (a paw becomes a star, a diamond a tailed triangle, a
4-cycle a chain, ...).  All arithmetic is exact int64 addition/subtraction,
so the patched matrix is **bit-identical** to a from-scratch recount — the
delta-vs-full invariant is gated in ``benchmarks/bench_orbit_counting.py``.

Batches are applied sequentially (removals first, then additions), with the
adjacency state updated edge by edge, which keeps the accounting exact for
arbitrarily overlapping neighbourhoods.  The result can be keyed straight
into the content-hash orbit cache under the *mutated* graph's hash, where a
later from-scratch count of the same graph will find (and agree with) it.

Edge orbits are per-edge records whose index set changes with the edge list,
so they are not patched incrementally here; mutated graphs fall back to a
full edge-orbit recount through the engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np
import scipy.sparse as sp

from repro.backend.registry import AUTO_BACKEND
from repro.graph.attributed_graph import AttributedGraph
from repro.orbits.cache import OrbitCache, graph_content_hash
from repro.orbits.graphlets import NODE_ORBIT_COUNT

Edge = Tuple[int, int]


@dataclass(frozen=True)
class DeltaRecount:
    """The outcome of one delta recount.

    Attributes
    ----------
    graph:
        The mutated graph (same attributes/name, updated adjacency).
    node_orbits:
        The patched ``(n, 15)`` int64 GDV matrix — bit-identical to a
        from-scratch recount of ``graph``.
    touched:
        Sorted node ids whose rows the delta pass rewrote (all within two
        hops of a changed edge; a superset of the rows that changed value).
    n_added / n_removed:
        Edges applied from the batch.
    """

    graph: AttributedGraph
    node_orbits: np.ndarray
    touched: np.ndarray
    n_added: int
    n_removed: int


def _normalize_edges(edges: Iterable[Sequence[int]], n_nodes: int) -> List[Edge]:
    """Validate and canonicalise ``(u, v)`` pairs (``u < v``, in range)."""
    out: List[Edge] = []
    for pair in edges:
        u, v = int(pair[0]), int(pair[1])
        if u == v:
            raise ValueError(f"self-loop ({u}, {v}) is not a valid edge")
        if not (0 <= u < n_nodes and 0 <= v < n_nodes):
            raise ValueError(
                f"edge ({u}, {v}) out of range for a {n_nodes}-node graph"
            )
        out.append((u, v) if u < v else (v, u))
    return out


def _apply_edge_delta(
    adj: List[Set[int]],
    gdv: List[List[int]],
    u: int,
    v: int,
    sign: int,
    touched: Set[int],
) -> None:
    """Apply the GDV transition of toggling edge ``(u, v)``.

    ``adj`` must be the adjacency state *without* the edge; ``gdv`` is the
    matrix as a list of per-node rows (plain-int arithmetic is several
    times faster than elementwise numpy indexing here, and just as exact);
    ``sign`` is ``+1`` for an addition, ``-1`` for a removal (the
    transition is the same set of graphlet differences either way,
    mirrored).
    """
    nu, nv = adj[u], adj[v]
    common = nu & nv
    only_u = nu - nv  # class a
    only_v = nv - nu  # class b
    t, na, nb = len(common), len(only_u), len(only_v)
    s = sign
    touched.add(u)
    touched.add(v)

    # |S| = 2: the edge graphlet itself.
    gdv[u][0] += s
    gdv[v][0] += s

    # |S| = 3: wedges gained at the endpoints; common neighbours promote a
    # wedge (centred at x) into a triangle.
    row_u, row_v = gdv[u], gdv[v]
    row_u[1] += s * (nb - t)
    row_u[2] += s * na
    row_u[3] += s * t
    row_v[1] += s * (na - t)
    row_v[2] += s * nb
    row_v[3] += s * t
    for x in only_u:
        gdv[x][1] += s
        touched.add(x)
    for x in only_v:
        gdv[x][1] += s
        touched.add(x)
    for x in common:
        row = gdv[x]
        row[3] += s
        row[2] -= s
        touched.add(x)

    # |S| = 4: walk each surrounding node w once, counting its partners by
    # class and adjacency; each (class(w), class(x), w~x) case is one fixed
    # with-edge/without-edge role pair (see the case table in the docstring
    # of repro/orbits/vectorized.py for the with-edge halves).
    cls = {}
    for w in only_u:
        cls[w] = 0
    for w in only_v:
        cls[w] = 1
    for w in common:
        cls[w] = 2
    e_aa2 = e_bb2 = e_cc2 = 0  # both-end sums, halved below
    e_ab = e_ac = e_bc = 0
    p_a = p_b = p_c = 0
    for w, cw in cls.items():
        ca = cb = cc = 0
        private: List[int] = []
        for x in adj[w]:
            if x == u or x == v:
                continue
            cx = cls.get(x)
            if cx is None:
                private.append(x)
            elif cx == 0:
                ca += 1
            elif cx == 1:
                cb += 1
            else:
                cc += 1
        p = len(private)
        row = gdv[w]
        if cw == 0:  # w adjacent to u only
            row[5] += s * (p - cb)
            row[4] += s * (nb - cb - (t - cc))
            row[10] += s * (ca - cc)
            row[6] += s * (na - 1 - ca)
            row[8] += s * cb
            row[9] += s * (t - cc)
            row[12] += s * cc
            for x in private:
                gdv[x][4] += s
                touched.add(x)
            e_aa2 += ca
            e_ab += cb
            e_ac += cc
            p_a += p
        elif cw == 1:  # w adjacent to v only (mirror of class a)
            row[5] += s * (p - ca)
            row[4] += s * (na - ca - (t - cc))
            row[10] += s * (cb - cc)
            row[6] += s * (nb - 1 - cb)
            row[8] += s * ca
            row[9] += s * (t - cc)
            row[12] += s * cc
            for x in private:
                gdv[x][4] += s
                touched.add(x)
            e_bb2 += cb
            e_bc += cc
            p_b += p
        else:  # w adjacent to both endpoints
            row[11] += s * (p - (ca + cb))
            row[7] -= s * p
            row[13] += s * (ca + cb - cc)
            row[10] += s * (na - ca + nb - cb)
            row[5] -= s * (na - ca + nb - cb)
            row[14] += s * cc
            row[12] += s * (t - 1 - cc)
            row[8] -= s * (t - 1 - cc)
            for x in private:
                row_x = gdv[x]
                row_x[9] += s
                row_x[6] -= s
                touched.add(x)
            e_cc2 += cc
            p_c += p

    e_aa, e_bb, e_cc = e_aa2 // 2, e_bb2 // 2, e_cc2 // 2
    star_u = na * (na - 1) // 2 - e_aa
    star_v = nb * (nb - 1) // 2 - e_bb
    chain_mid = na * nb - e_ab
    paw_u = na * t - e_ac  # paw with the tail attached at u
    paw_v = nb * t - e_bc
    diag = t * (t - 1) // 2 - e_cc

    row = row_u
    row[4] += s * (p_b - e_ab - paw_v)
    row[5] += s * (chain_mid + p_a - paw_u)
    row[6] += s * (star_v - p_c)
    row[7] += s * star_u
    row[8] += s * (e_ab - diag)
    row[9] += s * (e_bb - e_bc)
    row[10] += s * (paw_v + p_c - e_ac)
    row[11] += s * (e_aa + paw_u)
    row[12] += s * (e_bc - e_cc)
    row[13] += s * (e_ac + diag)
    row[14] += s * e_cc

    row = row_v
    row[4] += s * (p_a - e_ab - paw_u)
    row[5] += s * (chain_mid + p_b - paw_v)
    row[6] += s * (star_u - p_c)
    row[7] += s * star_v
    row[8] += s * (e_ab - diag)
    row[9] += s * (e_aa - e_ac)
    row[10] += s * (paw_u + p_c - e_bc)
    row[11] += s * (e_bb + paw_v)
    row[12] += s * (e_ac - e_cc)
    row[13] += s * (e_bc + diag)
    row[14] += s * e_cc


def _mutated_graph(
    graph: AttributedGraph, removals: List[Edge], additions: List[Edge]
) -> AttributedGraph:
    """Rebuild the graph after the batch, straight from the original CSR.

    The batch was validated sequentially (removals first), so the final
    edge set is ``(original − removals) ∪ additions``.  The adjacency is
    treated as binary — mutated graphs carry unit edge weights, matching
    every builder in :mod:`repro.graph.generators`.
    """
    adjacency = graph.adjacency
    n = graph.n_nodes
    rows = np.repeat(
        np.arange(n, dtype=np.int64), np.diff(adjacency.indptr)
    )
    cols = adjacency.indices.astype(np.int64)
    if removals:
        removed = np.array(
            [u * n + v for u, v in removals] + [v * n + u for u, v in removals],
            dtype=np.int64,
        )
        keep = ~np.isin(rows * n + cols, removed)
        rows, cols = rows[keep], cols[keep]
    if additions:
        added = np.array(additions, dtype=np.int64).reshape(-1, 2)
        rows = np.concatenate([rows, added[:, 0], added[:, 1]])
        cols = np.concatenate([cols, added[:, 1], added[:, 0]])
    matrix = sp.csr_matrix(
        (np.ones(rows.size, dtype=np.float64), (rows, cols)), shape=(n, n)
    )
    matrix.sort_indices()
    return AttributedGraph._from_validated_csr(
        matrix, graph.attributes, graph.name
    )


def apply_edge_batch(
    graph: AttributedGraph,
    add_edges: Iterable[Sequence[int]] = (),
    remove_edges: Iterable[Sequence[int]] = (),
) -> AttributedGraph:
    """The mutated graph after one removal/addition batch (no recounting)."""
    return delta_count_node_orbits(
        graph,
        add_edges=add_edges,
        remove_edges=remove_edges,
        node_orbits=np.zeros((graph.n_nodes, NODE_ORBIT_COUNT), dtype=np.int64),
    ).graph


def delta_count_node_orbits(
    graph: AttributedGraph,
    add_edges: Iterable[Sequence[int]] = (),
    remove_edges: Iterable[Sequence[int]] = (),
    *,
    node_orbits: Optional[np.ndarray] = None,
    backend: str = AUTO_BACKEND,
    cache: Optional[OrbitCache] = None,
) -> DeltaRecount:
    """Patch the GDV matrix of ``graph`` through an edge mutation batch.

    Removals are applied before additions, each edge sequentially.  The
    base matrix comes from ``node_orbits`` if given, else from ``cache``
    (keyed by the unmutated graph's content hash), else from a from-scratch
    count via the engine.  When a cache is passed, the patched matrix is
    stored under the *mutated* graph's content hash, so later counts of the
    mutated graph are cache hits that compare bit-identically.

    Raises :class:`ValueError` for self-loops, out-of-range endpoints,
    removing an absent edge or adding a present one (relative to the state
    the batch has reached when that edge is applied).
    """
    n = graph.n_nodes
    removals = _normalize_edges(remove_edges, n)
    additions = _normalize_edges(add_edges, n)

    base = node_orbits
    if base is None and cache is not None:
        base = cache.get_node_orbits(graph_content_hash(graph))
    if base is None:
        from repro.orbits import engine

        base = engine.count_node_orbits(graph, backend=backend, cache=cache)
    base = np.asarray(base, dtype=np.int64)
    if base.shape != (n, NODE_ORBIT_COUNT):
        raise ValueError(
            f"node_orbits has shape {base.shape}, expected "
            f"({n}, {NODE_ORBIT_COUNT})"
        )
    rows = base.tolist()  # plain-int rows for the patch loop

    adj = graph.adjacency_sets()  # fresh per-node sets, free to mutate
    touched: Set[int] = set()
    for u, v in removals:
        if v not in adj[u]:
            raise ValueError(f"cannot remove absent edge ({u}, {v})")
        adj[u].discard(v)
        adj[v].discard(u)
        _apply_edge_delta(adj, rows, u, v, -1, touched)
    for u, v in additions:
        if v in adj[u]:
            raise ValueError(f"cannot add already-present edge ({u}, {v})")
        _apply_edge_delta(adj, rows, u, v, +1, touched)
        adj[u].add(v)
        adj[v].add(u)

    gdv = np.array(rows, dtype=np.int64)
    mutated = _mutated_graph(graph, removals, additions)
    if cache is not None:
        cache.put_node_orbits(graph_content_hash(mutated), gdv)
    return DeltaRecount(
        graph=mutated,
        node_orbits=gdv,
        touched=np.array(sorted(touched), dtype=np.int64),
        n_added=len(additions),
        n_removed=len(removals),
    )


__all__ = [
    "DeltaRecount",
    "apply_edge_batch",
    "delta_count_node_orbits",
]
