"""Synthetic alignment pairs calibrated to the paper's dataset statistics.

The original evaluation datasets cannot be redistributed or downloaded in this
environment, so each pair is replaced by a generator that matches the
characteristics that drive the paper's findings (Table I and §V-B):

* **Allmovie–Imdb** — dense (average degree > 40 in the paper), motif-rich,
  moderately informative attributes, near-complete node overlap.  Stand-in: a
  Holme–Kim power-law-cluster graph with high attribute fidelity and light
  structural noise.
* **Douban Online–Offline** — sparse social networks with strong attributes
  and partial node overlap (the offline network is much smaller).  Stand-in:
  an SBM with community-correlated attributes whose target keeps only a
  fraction of the nodes.
* **Flickr–Myspace** — extremely sparse, almost attribute-free, and with the
  consistency assumption frequently violated; all methods perform poorly.
  Stand-in: a sparse graph whose target suffers heavy edge removal, heavy
  attribute corruption, and low node overlap.
* **Econ / BN** — the paper's synthetic robustness datasets: the target is the
  source with ``p``% of edges removed.  Stand-ins follow exactly that
  protocol on a power-law (Econ) and community-structured (BN) source graph.

Every generator accepts a ``scale`` factor so the same shapes can be produced
at larger sizes when more compute is available; defaults are sized so the full
benchmark harness runs on CPU in minutes.
"""

from __future__ import annotations


import numpy as np

from repro.datasets.pair import GraphPair
from repro.graph.attributed_graph import AttributedGraph
from repro.graph.generators import powerlaw_cluster_graph, sbm_graph
from repro.graph.perturbation import add_attribute_noise, permute_graph, remove_edges
from repro.utils.random import RandomStateLike, check_random_state


def synthetic_pair(
    source: AttributedGraph,
    edge_removal_ratio: float = 0.1,
    attribute_flip_ratio: float = 0.0,
    target_node_fraction: float = 1.0,
    name: str = "synthetic",
    random_state: RandomStateLike = None,
) -> GraphPair:
    """Build an alignment pair from a source graph.

    The target network is constructed with the paper's protocol: optionally
    keep only a fraction of the nodes (partial overlap), remove a fraction of
    the remaining edges, corrupt attributes, and permute node identities.
    Ground truth maps each surviving source node to its permuted target index.
    """
    if not 0.0 < target_node_fraction <= 1.0:
        raise ValueError(
            f"target_node_fraction must be in (0, 1], got {target_node_fraction}"
        )
    rng = check_random_state(random_state)

    n_source = source.n_nodes
    if target_node_fraction < 1.0:
        n_keep = max(2, int(round(target_node_fraction * n_source)))
        kept_nodes = np.sort(rng.choice(n_source, size=n_keep, replace=False))
    else:
        kept_nodes = np.arange(n_source)

    target = source.subgraph(kept_nodes)
    target = remove_edges(target, edge_removal_ratio, random_state=rng)
    if attribute_flip_ratio > 0:
        target = add_attribute_noise(
            target, flip_ratio=attribute_flip_ratio, random_state=rng
        )
    target, permutation = permute_graph(target, random_state=rng)
    target.name = f"{name}-target"

    ground_truth = np.full(n_source, -1, dtype=np.int64)
    ground_truth[kept_nodes] = permutation

    source = source.copy()
    source.name = f"{name}-source"
    return GraphPair(
        source=source,
        target=target,
        ground_truth=ground_truth,
        name=name,
        metadata={
            "edge_removal_ratio": edge_removal_ratio,
            "attribute_flip_ratio": attribute_flip_ratio,
            "target_node_fraction": target_node_fraction,
        },
    )


def allmovie_imdb(
    scale: float = 1.0, random_state: RandomStateLike = 0
) -> GraphPair:
    """Stand-in for the dense Allmovie–Imdb movie-network pair."""
    rng = check_random_state(random_state)
    n_nodes = max(60, int(300 * scale))
    source = powerlaw_cluster_graph(
        n_nodes=n_nodes,
        edges_per_node=6,
        triangle_prob=0.6,
        n_attributes=14,
        label_fidelity=0.95,
        random_state=rng,
        name="allmovie",
    )
    return synthetic_pair(
        source,
        edge_removal_ratio=0.05,
        attribute_flip_ratio=0.02,
        target_node_fraction=0.95,
        name="allmovie_imdb",
        random_state=rng,
    )


def douban(scale: float = 1.0, random_state: RandomStateLike = 1) -> GraphPair:
    """Stand-in for the sparse Douban Online–Offline social-network pair."""
    rng = check_random_state(random_state)
    n_nodes = max(60, int(320 * scale))
    n_blocks = 8
    block_size = n_nodes // n_blocks
    source = sbm_graph(
        block_sizes=[block_size] * n_blocks,
        p_in=min(1.0, 5.0 / block_size),
        p_out=0.004,
        n_attributes=16,
        label_fidelity=0.9,
        random_state=rng,
        name="douban_online",
    )
    return synthetic_pair(
        source,
        edge_removal_ratio=0.15,
        attribute_flip_ratio=0.05,
        target_node_fraction=0.6,
        name="douban",
        random_state=rng,
    )


def flickr_myspace(
    scale: float = 1.0, random_state: RandomStateLike = 2
) -> GraphPair:
    """Stand-in for the hard Flickr–Myspace pair (consistency violated)."""
    rng = check_random_state(random_state)
    n_nodes = max(60, int(300 * scale))
    source = powerlaw_cluster_graph(
        n_nodes=n_nodes,
        edges_per_node=1,
        triangle_prob=0.1,
        n_attributes=3,
        label_fidelity=0.5,
        random_state=rng,
        name="flickr",
    )
    return synthetic_pair(
        source,
        edge_removal_ratio=0.45,
        attribute_flip_ratio=0.5,
        target_node_fraction=0.5,
        name="flickr_myspace",
        random_state=rng,
    )


def econ(
    edge_removal_ratio: float = 0.1,
    scale: float = 1.0,
    random_state: RandomStateLike = 3,
) -> GraphPair:
    """Stand-in for the Econ robustness dataset (Victoria-1880 contract network).

    ``edge_removal_ratio`` is the noise level swept from 0.1 to 0.5 in the
    paper's Fig. 9.
    """
    rng = check_random_state(random_state)
    n_nodes = max(60, int(250 * scale))
    source = powerlaw_cluster_graph(
        n_nodes=n_nodes,
        edges_per_node=6,
        triangle_prob=0.4,
        n_attributes=20,
        label_fidelity=0.95,
        random_state=rng,
        name="econ",
    )
    return synthetic_pair(
        source,
        edge_removal_ratio=edge_removal_ratio,
        attribute_flip_ratio=0.0,
        target_node_fraction=1.0,
        name=f"econ[p={edge_removal_ratio:.1f}]",
        random_state=rng,
    )


def bn(
    edge_removal_ratio: float = 0.1,
    scale: float = 1.0,
    random_state: RandomStateLike = 4,
) -> GraphPair:
    """Stand-in for the BN (brain-network) robustness dataset."""
    rng = check_random_state(random_state)
    n_nodes = max(60, int(280 * scale))
    n_blocks = 7
    block_size = n_nodes // n_blocks
    source = sbm_graph(
        block_sizes=[block_size] * n_blocks,
        p_in=min(1.0, 9.0 / block_size),
        p_out=0.006,
        n_attributes=20,
        label_fidelity=0.95,
        random_state=rng,
        name="bn",
    )
    return synthetic_pair(
        source,
        edge_removal_ratio=edge_removal_ratio,
        attribute_flip_ratio=0.0,
        target_node_fraction=1.0,
        name=f"bn[p={edge_removal_ratio:.1f}]",
        random_state=rng,
    )


def tiny_pair(
    n_nodes: int = 40, random_state: RandomStateLike = 0, noise: float = 0.05
) -> GraphPair:
    """A very small pair used by unit/integration tests and the quickstart."""
    rng = check_random_state(random_state)
    source = powerlaw_cluster_graph(
        n_nodes=n_nodes,
        edges_per_node=3,
        triangle_prob=0.5,
        n_attributes=6,
        label_fidelity=0.95,
        random_state=rng,
        name="tiny",
    )
    return synthetic_pair(
        source,
        edge_removal_ratio=noise,
        attribute_flip_ratio=0.0,
        target_node_fraction=1.0,
        name="tiny",
        random_state=rng,
    )


__all__ = [
    "synthetic_pair",
    "allmovie_imdb",
    "douban",
    "flickr_myspace",
    "econ",
    "bn",
    "tiny_pair",
]
