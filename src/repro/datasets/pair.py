"""The :class:`GraphPair` alignment-task container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.graph.attributed_graph import AttributedGraph
from repro.utils.random import RandomStateLike, check_random_state


@dataclass
class GraphPair:
    """A source/target network pair with ground-truth anchor links.

    Attributes
    ----------
    source, target:
        The two attributed networks to align.
    ground_truth:
        ``(n_source,)`` integer array; ``ground_truth[i]`` is the index of the
        target node anchored to source node ``i``, or ``-1`` if source node
        ``i`` has no counterpart.
    name:
        Dataset name used in reports.
    """

    source: AttributedGraph
    target: AttributedGraph
    ground_truth: np.ndarray
    name: str = "pair"
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.ground_truth = np.asarray(self.ground_truth, dtype=np.int64)
        if self.ground_truth.shape != (self.source.n_nodes,):
            raise ValueError(
                f"ground_truth must have shape ({self.source.n_nodes},), "
                f"got {self.ground_truth.shape}"
            )
        valid = self.ground_truth[self.ground_truth >= 0]
        if valid.size and valid.max() >= self.target.n_nodes:
            raise ValueError("ground_truth references a non-existent target node")
        if valid.size != np.unique(valid).size:
            raise ValueError("ground_truth maps two source nodes to one target node")

    # ------------------------------------------------------------------
    # anchor-link helpers
    # ------------------------------------------------------------------
    @property
    def anchor_links(self) -> List[Tuple[int, int]]:
        """Ground-truth anchor links as ``(source, target)`` pairs."""
        return [
            (int(i), int(j)) for i, j in enumerate(self.ground_truth) if j >= 0
        ]

    @property
    def n_anchors(self) -> int:
        """Number of ground-truth anchor links."""
        return int((self.ground_truth >= 0).sum())

    def split_anchors(
        self, train_ratio: float = 0.1, random_state: RandomStateLike = None
    ) -> Tuple[List[Tuple[int, int]], List[Tuple[int, int]]]:
        """Split anchor links into train/test sets for supervised baselines.

        The paper gives supervised competitors 10% of the ground truth.
        """
        if not 0.0 <= train_ratio < 1.0:
            raise ValueError(f"train_ratio must be in [0, 1), got {train_ratio}")
        rng = check_random_state(random_state)
        anchors = self.anchor_links
        n_train = int(round(train_ratio * len(anchors)))
        order = rng.permutation(len(anchors))
        train = [anchors[i] for i in order[:n_train]]
        test = [anchors[i] for i in order[n_train:]]
        return train, test

    def prior_alignment_matrix(
        self,
        anchors: Optional[List[Tuple[int, int]]] = None,
        uniform_value: Optional[float] = None,
    ) -> sp.csr_matrix:
        """Sparse prior alignment matrix ``H`` used by IsoRank/FINAL.

        Known anchor pairs get weight 1.  If ``uniform_value`` is given, every
        other entry receives that small uniform mass (dense prior); otherwise
        the matrix is sparse with only the anchors set.
        """
        n_s, n_t = self.source.n_nodes, self.target.n_nodes
        if uniform_value is not None:
            prior = np.full((n_s, n_t), float(uniform_value))
        else:
            prior = np.zeros((n_s, n_t))
        if anchors:
            for i, j in anchors:
                prior[i, j] = 1.0
        return sp.csr_matrix(prior)

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def reversed(self) -> "GraphPair":
        """Swap source and target (with the inverse ground truth)."""
        reverse_truth = np.full(self.target.n_nodes, -1, dtype=np.int64)
        for i, j in self.anchor_links:
            reverse_truth[j] = i
        return GraphPair(
            source=self.target,
            target=self.source,
            ground_truth=reverse_truth,
            name=f"{self.name}[reversed]",
            metadata=dict(self.metadata),
        )

    def summary(self) -> dict:
        """Dataset statistics in the style of the paper's Table I."""
        return {
            "name": self.name,
            "source_nodes": self.source.n_nodes,
            "source_edges": self.source.n_edges,
            "target_nodes": self.target.n_nodes,
            "target_edges": self.target.n_edges,
            "n_attributes": self.source.n_attributes,
            "source_avg_degree": round(self.source.average_degree, 2),
            "target_avg_degree": round(self.target.average_degree, 2),
            "n_anchors": self.n_anchors,
        }

    def __repr__(self) -> str:
        return (
            f"GraphPair(name={self.name!r}, source={self.source.n_nodes} nodes, "
            f"target={self.target.n_nodes} nodes, anchors={self.n_anchors})"
        )


__all__ = ["GraphPair"]
