"""Plain-text persistence for alignment pairs.

A pair is stored as a directory of five files:

* ``source.edges`` / ``target.edges`` — one ``u v`` pair per line,
* ``source.attrs.npy`` / ``target.attrs.npy`` — dense attribute matrices,
* ``ground_truth.txt`` — one ``source_id target_id`` anchor per line.

Users holding the original paper datasets (Allmovie/Imdb, Douban, ...) can
export them to this format and load them with :func:`load_pair`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.datasets.pair import GraphPair
from repro.graph.builders import from_edge_list


def save_pair(pair: GraphPair, directory: Union[str, Path]) -> Path:
    """Serialise ``pair`` into ``directory`` (created if missing)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    for role, graph in (("source", pair.source), ("target", pair.target)):
        edge_lines = [f"{u} {v}" for u, v in graph.edges()]
        (directory / f"{role}.edges").write_text(
            "\n".join([str(graph.n_nodes)] + edge_lines) + "\n"
        )
        np.save(directory / f"{role}.attrs.npy", graph.attributes)

    anchor_lines = [f"{i} {j}" for i, j in pair.anchor_links]
    (directory / "ground_truth.txt").write_text("\n".join(anchor_lines) + "\n")
    (directory / "name.txt").write_text(pair.name + "\n")
    return directory


def _load_graph(directory: Path, role: str, name: str):
    lines = (directory / f"{role}.edges").read_text().strip().splitlines()
    n_nodes = int(lines[0])
    edges = []
    for line in lines[1:]:
        if not line.strip():
            continue
        u, v = line.split()
        edges.append((int(u), int(v)))
    attrs_path = directory / f"{role}.attrs.npy"
    attributes = np.load(attrs_path) if attrs_path.exists() else None
    return from_edge_list(edges, n_nodes=n_nodes, attributes=attributes, name=name)


def load_pair(directory: Union[str, Path]) -> GraphPair:
    """Load a pair previously written by :func:`save_pair`."""
    directory = Path(directory)
    if not directory.is_dir():
        raise FileNotFoundError(f"dataset directory not found: {directory}")
    name_file = directory / "name.txt"
    name = name_file.read_text().strip() if name_file.exists() else directory.name

    source = _load_graph(directory, "source", f"{name}-source")
    target = _load_graph(directory, "target", f"{name}-target")

    ground_truth = np.full(source.n_nodes, -1, dtype=np.int64)
    truth_text = (directory / "ground_truth.txt").read_text().strip()
    for line in truth_text.splitlines():
        if not line.strip():
            continue
        i, j = line.split()
        ground_truth[int(i)] = int(j)

    return GraphPair(source=source, target=target, ground_truth=ground_truth, name=name)


__all__ = ["save_pair", "load_pair"]
