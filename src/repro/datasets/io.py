"""Plain-text persistence for alignment pairs.

A pair is stored as a directory of five files:

* ``source.edges`` / ``target.edges`` — a node-count header line followed by
  one ``u v`` pair per line,
* ``source.attrs.npy`` / ``target.attrs.npy`` — dense attribute matrices,
* ``ground_truth.txt`` — one ``source_id target_id`` anchor per line.

Users holding the original paper datasets (Allmovie/Imdb, Douban, ...) can
export them to this format and load them with :func:`load_pair`; loaded
directories are also reachable by name through the dataset registry as
``load_dataset("dir:<path>")``.

The format is deliberately forgiving about *shape* — isolated nodes (ids
never appearing in an edge line) and empty edge lists round-trip because the
node count is an explicit header — but strict about *content*: malformed
lines raise a :class:`ValueError` naming the offending file and line number
instead of failing deep inside the graph builders.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Tuple, Union

import numpy as np

from repro.datasets.pair import GraphPair
from repro.graph.builders import from_edge_list


def save_pair(pair: GraphPair, directory: Union[str, Path]) -> Path:
    """Serialise ``pair`` into ``directory`` (created if missing)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    for role, graph in (("source", pair.source), ("target", pair.target)):
        edge_lines = [f"{u} {v}" for u, v in graph.edges()]
        (directory / f"{role}.edges").write_text(
            "\n".join([str(graph.n_nodes)] + edge_lines) + "\n"
        )
        np.save(directory / f"{role}.attrs.npy", graph.attributes)

    anchor_lines = [f"{i} {j}" for i, j in pair.anchor_links]
    (directory / "ground_truth.txt").write_text("\n".join(anchor_lines) + "\n")
    (directory / "name.txt").write_text(pair.name + "\n")
    return directory


def _parse_int_pair(line: str, path: Path, lineno: int) -> Tuple[int, int]:
    """Parse one ``"a b"`` line, or raise naming the file and line."""
    tokens = line.split()
    if len(tokens) != 2:
        raise ValueError(
            f"{path}:{lineno}: expected two whitespace-separated integers, "
            f"got {line.strip()!r}"
        )
    try:
        return int(tokens[0]), int(tokens[1])
    except ValueError:
        raise ValueError(
            f"{path}:{lineno}: expected two integers, got {line.strip()!r}"
        ) from None


def _load_graph(directory: Path, role: str, name: str):
    path = directory / f"{role}.edges"
    if not path.is_file():
        raise FileNotFoundError(f"missing edge file: {path}")
    lines = path.read_text().splitlines()
    header_index = next(
        (i for i, line in enumerate(lines) if line.strip()), None
    )
    if header_index is None:
        raise ValueError(
            f"{path}:1: empty edge file; the first line must be the node count"
        )
    header = lines[header_index].strip()
    try:
        n_nodes = int(header)
    except ValueError:
        raise ValueError(
            f"{path}:{header_index + 1}: the first line must be the node "
            f"count, got {header!r}"
        ) from None
    if n_nodes < 0:
        raise ValueError(f"{path}:{header_index + 1}: node count must be >= 0")

    edges: List[Tuple[int, int]] = []
    for offset, line in enumerate(lines[header_index + 1 :]):
        if not line.strip():
            continue
        lineno = header_index + 2 + offset
        u, v = _parse_int_pair(line, path, lineno)
        if not (0 <= u < n_nodes and 0 <= v < n_nodes):
            raise ValueError(
                f"{path}:{lineno}: edge ({u}, {v}) references a node outside "
                f"[0, {n_nodes})"
            )
        edges.append((u, v))

    attrs_path = directory / f"{role}.attrs.npy"
    attributes = np.load(attrs_path) if attrs_path.exists() else None
    if attributes is not None and attributes.shape[0] != n_nodes:
        raise ValueError(
            f"{attrs_path}: attribute matrix has {attributes.shape[0]} rows "
            f"but {path} declares {n_nodes} nodes"
        )
    return from_edge_list(edges, n_nodes=n_nodes, attributes=attributes, name=name)


def _load_ground_truth(
    directory: Path, n_source: int, n_target: int
) -> np.ndarray:
    path = directory / "ground_truth.txt"
    ground_truth = np.full(n_source, -1, dtype=np.int64)
    if not path.is_file():
        return ground_truth
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if not line.strip():
            continue
        i, j = _parse_int_pair(line, path, lineno)
        if not 0 <= i < n_source:
            raise ValueError(
                f"{path}:{lineno}: source id {i} outside [0, {n_source})"
            )
        if not 0 <= j < n_target:
            raise ValueError(
                f"{path}:{lineno}: target id {j} outside [0, {n_target})"
            )
        ground_truth[i] = j
    return ground_truth


def load_pair(directory: Union[str, Path]) -> GraphPair:
    """Load a pair previously written by :func:`save_pair`.

    Raises
    ------
    FileNotFoundError
        If the directory or a required edge file is missing.
    ValueError
        On any malformed content, naming the offending file and line.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise FileNotFoundError(f"dataset directory not found: {directory}")
    name_file = directory / "name.txt"
    name = name_file.read_text().strip() if name_file.exists() else directory.name

    source = _load_graph(directory, "source", f"{name}-source")
    target = _load_graph(directory, "target", f"{name}-target")
    ground_truth = _load_ground_truth(directory, source.n_nodes, target.n_nodes)

    return GraphPair(source=source, target=target, ground_truth=ground_truth, name=name)


__all__ = ["save_pair", "load_pair"]
