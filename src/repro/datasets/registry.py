"""Name-based dataset registry used by the benchmark harness and examples."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.datasets.pair import GraphPair
from repro.datasets.synthetic import (
    allmovie_imdb,
    bn,
    douban,
    econ,
    flickr_myspace,
    tiny_pair,
)

_REGISTRY: Dict[str, Callable[..., GraphPair]] = {
    "allmovie_imdb": allmovie_imdb,
    "douban": douban,
    "flickr_myspace": flickr_myspace,
    "econ": econ,
    "bn": bn,
    "tiny": tiny_pair,
}


def available_datasets() -> List[str]:
    """Names accepted by :func:`load_dataset`."""
    return sorted(_REGISTRY)


def load_dataset(name: str, **kwargs) -> GraphPair:
    """Instantiate the dataset registered under ``name``.

    Keyword arguments are forwarded to the generator (e.g. ``scale``,
    ``random_state``, or ``edge_removal_ratio`` for the robustness datasets).
    """
    try:
        factory = _REGISTRY[name]
    except KeyError as error:
        raise KeyError(
            f"unknown dataset {name!r}; available: {available_datasets()}"
        ) from error
    return factory(**kwargs)


def register_dataset(name: str, factory: Callable[..., GraphPair]) -> None:
    """Register a custom dataset factory under ``name`` (overwrites existing)."""
    if not callable(factory):
        raise TypeError("factory must be callable")
    _REGISTRY[name] = factory


__all__ = ["available_datasets", "load_dataset", "register_dataset"]
