"""Name-based dataset registry used by the benchmark harness and examples.

Two kinds of names resolve:

* plain registered names (``"douban"``, ``"tiny"``, anything added with
  :func:`register_dataset`),
* prefixed names of the form ``"<prefix>:<rest>"`` handled by a prefix
  factory (see :func:`register_prefix`).  The built-in ``"dir"`` prefix
  loads a directory previously written by
  :func:`repro.datasets.io.save_pair` — e.g.
  ``load_dataset("dir:/data/exported/douban")`` — so suite specs and the
  CLI can target exported on-disk datasets, not just the bundled synthetic
  ones.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.datasets.io import load_pair
from repro.datasets.pair import GraphPair
from repro.datasets.synthetic import (
    allmovie_imdb,
    bn,
    douban,
    econ,
    flickr_myspace,
    tiny_pair,
)

_REGISTRY: Dict[str, Callable[..., GraphPair]] = {
    "allmovie_imdb": allmovie_imdb,
    "douban": douban,
    "flickr_myspace": flickr_myspace,
    "econ": econ,
    "bn": bn,
    "tiny": tiny_pair,
}


def _load_directory_pair(path: str, **kwargs) -> GraphPair:
    """Factory behind the ``dir:`` prefix."""
    if kwargs:
        raise TypeError(
            f"directory datasets take no parameters, got {sorted(kwargs)}"
        )
    if not path:
        raise ValueError('the "dir:" prefix needs a path, e.g. "dir:/data/pair"')
    return load_pair(path)


_PREFIXES: Dict[str, Callable[..., GraphPair]] = {
    "dir": _load_directory_pair,
}


def available_datasets() -> List[str]:
    """Plain names accepted by :func:`load_dataset` (prefixes not listed)."""
    return sorted(_REGISTRY)


def available_prefixes() -> List[str]:
    """Registered name prefixes (each accepts ``"<prefix>:<rest>"`` names)."""
    return sorted(_PREFIXES)


def is_known_dataset(name: str) -> bool:
    """Whether ``name`` resolves — a registered name or a known prefix."""
    if name in _REGISTRY:
        return True
    prefix, _, rest = name.partition(":")
    return bool(rest) and prefix in _PREFIXES


def load_dataset(name: str, **kwargs) -> GraphPair:
    """Instantiate the dataset registered under ``name``.

    Keyword arguments are forwarded to the generator (e.g. ``scale``,
    ``random_state``, or ``edge_removal_ratio`` for the robustness datasets)
    or to the prefix factory for ``"<prefix>:<rest>"`` names.
    """
    if name not in _REGISTRY and ":" in name:
        prefix, _, rest = name.partition(":")
        if prefix in _PREFIXES:
            return _PREFIXES[prefix](rest, **kwargs)
    try:
        factory = _REGISTRY[name]
    except KeyError as error:
        raise KeyError(
            f"unknown dataset {name!r}; available: {available_datasets()} "
            f"(or a prefixed name, e.g. \"dir:<path>\")"
        ) from error
    return factory(**kwargs)


def register_dataset(name: str, factory: Callable[..., GraphPair]) -> None:
    """Register a custom dataset factory under ``name`` (overwrites existing)."""
    if not callable(factory):
        raise TypeError("factory must be callable")
    _REGISTRY[name] = factory


def register_prefix(prefix: str, factory: Callable[..., GraphPair]) -> None:
    """Register a factory for ``"<prefix>:<rest>"`` names.

    The factory is called as ``factory(rest, **kwargs)`` where ``rest`` is
    everything after the first colon.
    """
    if not callable(factory):
        raise TypeError("factory must be callable")
    if not prefix or ":" in prefix:
        raise ValueError(f"prefix must be non-empty and colon-free, got {prefix!r}")
    _PREFIXES[prefix] = factory


__all__ = [
    "available_datasets",
    "available_prefixes",
    "is_known_dataset",
    "load_dataset",
    "register_dataset",
    "register_prefix",
]
