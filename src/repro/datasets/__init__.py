"""Alignment datasets.

The paper evaluates on three real-world pairs (Allmovie–Imdb, Douban
Online–Offline, Flickr–Myspace) and two synthetic pairs (Econ, BN).  The raw
files are not redistributable (and not downloadable offline), so this package
provides:

* :class:`GraphPair` — the alignment-task container (source graph, target
  graph, ground-truth anchor links, optional supervised split),
* synthetic generators calibrated to the statistics of Table I of the paper
  (:mod:`repro.datasets.synthetic`), used as stand-ins by the benchmark
  harness,
* plain-text loaders/savers for users who do have the original edge lists
  (:mod:`repro.datasets.io`),
* a registry mapping dataset names to factories (:mod:`repro.datasets.registry`).
"""

from repro.datasets.io import load_pair, save_pair
from repro.datasets.pair import GraphPair
from repro.datasets.registry import (
    available_datasets,
    available_prefixes,
    is_known_dataset,
    load_dataset,
    register_dataset,
    register_prefix,
)
from repro.datasets.synthetic import (
    allmovie_imdb,
    bn,
    douban,
    econ,
    flickr_myspace,
    synthetic_pair,
)

__all__ = [
    "GraphPair",
    "synthetic_pair",
    "allmovie_imdb",
    "douban",
    "flickr_myspace",
    "econ",
    "bn",
    "load_dataset",
    "available_datasets",
    "available_prefixes",
    "is_known_dataset",
    "register_dataset",
    "register_prefix",
    "load_pair",
    "save_pair",
]
