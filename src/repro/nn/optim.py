"""Gradient-descent optimisers (SGD and Adam).

Both operate on lists of :class:`repro.nn.Parameter` and follow the standard
update rules; Adam matches Kingma & Ba (2014), which is what the paper trains
with.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimiser: holds parameters and clears their gradients."""

    def __init__(self, parameters: Iterable[Parameter]) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        """Reset gradients of all managed parameters."""
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        """Apply one SGD update using the current gradients."""
        for parameter, velocity in zip(self.parameters, self._velocity):
            if parameter.grad is None:
                continue
            if self.momentum > 0:
                velocity *= self.momentum
                velocity += parameter.grad
                update = velocity
            else:
                update = parameter.grad
            parameter.data = parameter.data - self.lr * update


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2014)."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._first_moment = [np.zeros_like(p.data) for p in self.parameters]
        self._second_moment = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        """Apply one Adam update using the current gradients."""
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for parameter, m, v in zip(
            self.parameters, self._first_moment, self._second_moment
        ):
            if parameter.grad is None:
                continue
            gradient = parameter.grad
            if self.weight_decay > 0:
                gradient = gradient + self.weight_decay * parameter.data
            m *= self.beta1
            m += (1.0 - self.beta1) * gradient
            v *= self.beta2
            v += (1.0 - self.beta2) * gradient**2
            m_hat = m / bias1
            v_hat = v / bias2
            parameter.data = parameter.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


__all__ = ["Optimizer", "SGD", "Adam"]
