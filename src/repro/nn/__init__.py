"""Minimal neural-network substrate (reverse-mode autograd on numpy).

The paper's model is a two-layer GCN trained with Adam on a Frobenius
reconstruction loss.  Rather than depending on PyTorch (unavailable offline),
this package implements the required pieces from scratch:

* :class:`Tensor` — a numpy-backed tensor with reverse-mode automatic
  differentiation (:mod:`repro.nn.tensor`),
* functional ops including a sparse-constant matrix product used for the
  Laplacian propagation step (:mod:`repro.nn.functional`),
* :class:`Module` / :class:`Parameter` abstractions, Glorot initialisation,
  dense and GCN layers (:mod:`repro.nn.module`, :mod:`repro.nn.layers`),
* SGD and Adam optimisers (:mod:`repro.nn.optim`).

Gradient correctness is verified against numerical differentiation in the
test suite.
"""

from repro.nn.functional import (
    matmul,
    mean,
    relu,
    sigmoid,
    softmax_rows,
    sparse_matmul,
    square,
    sum_all,
    tanh,
)
from repro.nn.init import glorot_uniform
from repro.nn.layers import GCNLayer, Linear, SharedGCNEncoder
from repro.nn.module import Module, Parameter
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.tensor import Tensor, get_default_dtype, set_default_dtype

__all__ = [
    "Tensor",
    "get_default_dtype",
    "set_default_dtype",
    "Parameter",
    "Module",
    "Linear",
    "GCNLayer",
    "SharedGCNEncoder",
    "Optimizer",
    "SGD",
    "Adam",
    "glorot_uniform",
    "matmul",
    "sparse_matmul",
    "relu",
    "tanh",
    "sigmoid",
    "square",
    "sum_all",
    "mean",
    "softmax_rows",
]
