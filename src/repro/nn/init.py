"""Weight initialisation schemes."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import get_default_dtype
from repro.utils.random import RandomStateLike, check_random_state


def glorot_uniform(
    fan_in: int, fan_out: int, random_state: RandomStateLike = None
) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for a ``(fan_in, fan_out)`` matrix.

    Weights are drawn in float64 (so the stream of random draws is
    identical across default dtypes) and cast to the module default dtype
    (:func:`repro.nn.tensor.get_default_dtype`) — a no-op under float64.
    """
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError(f"fan_in and fan_out must be positive, got {fan_in}, {fan_out}")
    rng = check_random_state(random_state)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    weights = rng.uniform(-limit, limit, size=(fan_in, fan_out))
    return weights.astype(get_default_dtype(), copy=False)


def zeros(*shape: int) -> np.ndarray:
    """All-zero initialisation (in the module default dtype)."""
    return np.zeros(shape, dtype=get_default_dtype())


__all__ = ["glorot_uniform", "zeros"]
