"""Weight initialisation schemes."""

from __future__ import annotations

import numpy as np

from repro.utils.random import RandomStateLike, check_random_state


def glorot_uniform(
    fan_in: int, fan_out: int, random_state: RandomStateLike = None
) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for a ``(fan_in, fan_out)`` matrix."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError(f"fan_in and fan_out must be positive, got {fan_in}, {fan_out}")
    rng = check_random_state(random_state)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def zeros(*shape: int) -> np.ndarray:
    """All-zero initialisation."""
    return np.zeros(shape, dtype=np.float64)


__all__ = ["glorot_uniform", "zeros"]
