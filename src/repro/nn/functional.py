"""Functional operations on :class:`repro.nn.Tensor`.

These cover exactly what the library's models need: non-linearities, matrix
products (including the sparse-constant product used for Laplacian
propagation), reductions, and the Frobenius reconstruction loss used by the
multi-orbit-aware trainer (Eq. 7 of the paper).
"""

from __future__ import annotations

from typing import Union

import numpy as np
import scipy.sparse as sp

from repro.nn.tensor import Tensor


def relu(tensor: Tensor) -> Tensor:
    """Rectified linear unit."""
    mask = tensor.data > 0
    out = Tensor(
        tensor.data * mask, requires_grad=tensor.requires_grad, _parents=(tensor,)
    )

    def backward(gradient: np.ndarray) -> None:
        if tensor.requires_grad:
            tensor._accumulate(gradient * mask)

    out._backward = backward
    return out


def tanh(tensor: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    value = np.tanh(tensor.data)
    out = Tensor(value, requires_grad=tensor.requires_grad, _parents=(tensor,))

    def backward(gradient: np.ndarray) -> None:
        if tensor.requires_grad:
            tensor._accumulate(gradient * (1.0 - value**2))

    out._backward = backward
    return out


def sigmoid(tensor: Tensor) -> Tensor:
    """Logistic sigmoid."""
    value = 1.0 / (1.0 + np.exp(-tensor.data))
    out = Tensor(value, requires_grad=tensor.requires_grad, _parents=(tensor,))

    def backward(gradient: np.ndarray) -> None:
        if tensor.requires_grad:
            tensor._accumulate(gradient * value * (1.0 - value))

    out._backward = backward
    return out


def identity(tensor: Tensor) -> Tensor:
    """Identity activation (useful as the last encoder layer)."""
    return tensor


ACTIVATIONS = {
    "relu": relu,
    "tanh": tanh,
    "sigmoid": sigmoid,
    "identity": identity,
    "linear": identity,
}


def get_activation(name: str):
    """Look up an activation function by name."""
    try:
        return ACTIVATIONS[name]
    except KeyError as error:
        raise ValueError(
            f"unknown activation {name!r}; available: {sorted(ACTIVATIONS)}"
        ) from error


def matmul(left: Tensor, right: Tensor) -> Tensor:
    """Dense matrix product (differentiable in both arguments)."""
    return left @ right


def sparse_matmul(sparse: sp.spmatrix, dense: Tensor) -> Tensor:
    """Product ``S @ H`` where ``S`` is a constant scipy sparse matrix.

    Gradients flow only to ``dense``: ``dL/dH = S^T @ dL/dY``.  This is the
    propagation step ``~L H`` of every GCN layer in the library.
    """
    if not sp.issparse(sparse):
        raise TypeError("sparse_matmul expects a scipy sparse matrix on the left")
    sparse = sparse.tocsr()
    out = Tensor(
        sparse.dot(dense.data), requires_grad=dense.requires_grad, _parents=(dense,)
    )

    def backward(gradient: np.ndarray) -> None:
        if dense.requires_grad:
            dense._accumulate(sparse.T.dot(gradient))

    out._backward = backward
    return out


def square(tensor: Tensor) -> Tensor:
    """Element-wise square."""
    return tensor * tensor


def sum_all(tensor: Tensor) -> Tensor:
    """Sum of all elements (scalar tensor)."""
    return tensor.sum()


def mean(tensor: Tensor) -> Tensor:
    """Mean of all elements (scalar tensor)."""
    return tensor.mean()


def softmax_rows(tensor: Tensor) -> Tensor:
    """Row-wise softmax (differentiable), used by attention-style baselines."""
    shifted = tensor.data - tensor.data.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    value = exp / exp.sum(axis=1, keepdims=True)
    out = Tensor(value, requires_grad=tensor.requires_grad, _parents=(tensor,))

    def backward(gradient: np.ndarray) -> None:
        if tensor.requires_grad:
            dot = (gradient * value).sum(axis=1, keepdims=True)
            tensor._accumulate(value * (gradient - dot))

    out._backward = backward
    return out


def frobenius_loss(reconstruction: Tensor, target: Union[np.ndarray, sp.spmatrix]) -> Tensor:
    """Frobenius-norm reconstruction loss ``||target - reconstruction||_F``.

    ``target`` is a constant (dense array or sparse matrix densified once).
    A small epsilon keeps the square root differentiable at zero.
    """
    if sp.issparse(target):
        target = np.asarray(target.todense())
    target = np.asarray(target, dtype=np.float64)
    if target.shape != reconstruction.shape:
        raise ValueError(
            f"target shape {target.shape} != reconstruction shape {reconstruction.shape}"
        )
    diff = reconstruction - Tensor(target)
    squared = (diff * diff).sum()
    return (squared + 1e-12) ** 0.5


def mse_loss(prediction: Tensor, target: Union[np.ndarray, Tensor]) -> Tensor:
    """Mean squared error between ``prediction`` and a constant ``target``."""
    if isinstance(target, Tensor):
        target = target.data
    diff = prediction - Tensor(np.asarray(target, dtype=np.float64))
    return (diff * diff).mean()


__all__ = [
    "relu",
    "tanh",
    "sigmoid",
    "identity",
    "get_activation",
    "ACTIVATIONS",
    "matmul",
    "sparse_matmul",
    "square",
    "sum_all",
    "mean",
    "softmax_rows",
    "frobenius_loss",
    "mse_loss",
]
