"""Neural layers: dense, GCN, and the shared multi-graph GCN encoder.

The :class:`SharedGCNEncoder` is the parameter container used by HTC and
GAlign: a stack of GCN weight matrices whose propagation matrix (a normalised
Laplacian) is supplied at call time, so the *same* parameters encode the
source graph, the target graph, and every orbit view (paper Eq. 4-5 and the
multi-orbit-aware training of §IV-C).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from repro.nn.functional import get_activation, sparse_matmul
from repro.nn.init import glorot_uniform, zeros
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor
from repro.utils.random import RandomStateLike, check_random_state


class Linear(Module):
    """Dense affine layer ``y = x W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        random_state: RandomStateLike = None,
    ) -> None:
        super().__init__()
        rng = check_random_state(random_state)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(glorot_uniform(in_features, out_features, rng), "weight")
        self.bias: Optional[Parameter] = None
        if bias:
            self.bias = Parameter(zeros(out_features), "bias")

    def forward(self, inputs: Tensor) -> Tensor:
        output = inputs @ self.weight
        if self.bias is not None:
            output = output + self.bias
        return output


class GCNLayer(Module):
    """One graph-convolution layer ``H' = f(L H W)``.

    The propagation matrix ``L`` (a normalised, possibly orbit-weighted
    Laplacian) is passed at call time so the layer's weights can be shared
    across graphs and orbit views.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        activation: str = "relu",
        random_state: RandomStateLike = None,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.activation_name = activation
        self._activation = get_activation(activation)
        self.weight = Parameter(
            glorot_uniform(in_features, out_features, check_random_state(random_state)),
            "weight",
        )

    def forward(self, laplacian: sp.spmatrix, features: Tensor) -> Tensor:
        propagated = sparse_matmul(laplacian, features @ self.weight)
        return self._activation(propagated)


class SharedGCNEncoder(Module):
    """A stack of GCN layers with weights shared across graphs and orbits.

    Parameters
    ----------
    in_features:
        Attribute dimensionality of the input graphs.
    hidden_dims:
        Output dimensionality of each layer (the paper uses two layers of the
        same embedding dimension ``d``).
    activations:
        Activation name per layer.  Defaults to ReLU on hidden layers and a
        linear final layer (so embeddings are unconstrained for the inner
        product decoder).
    """

    def __init__(
        self,
        in_features: int,
        hidden_dims: Sequence[int],
        activations: Optional[Sequence[str]] = None,
        random_state: RandomStateLike = None,
    ) -> None:
        super().__init__()
        if not hidden_dims:
            raise ValueError("hidden_dims must contain at least one layer size")
        rng = check_random_state(random_state)
        if activations is None:
            activations = ["relu"] * (len(hidden_dims) - 1) + ["identity"]
        if len(activations) != len(hidden_dims):
            raise ValueError(
                f"got {len(activations)} activations for {len(hidden_dims)} layers"
            )
        self.layer_dims = [in_features, *hidden_dims]
        self.layers: List[GCNLayer] = []
        for index, (dim_in, dim_out) in enumerate(
            zip(self.layer_dims[:-1], self.layer_dims[1:])
        ):
            layer = GCNLayer(dim_in, dim_out, activations[index], random_state=rng)
            setattr(self, f"layer_{index}", layer)
            self.layers.append(layer)

    @property
    def n_layers(self) -> int:
        return len(self.layers)

    @property
    def embedding_dim(self) -> int:
        return self.layer_dims[-1]

    def forward(
        self,
        laplacian: sp.spmatrix,
        features: np.ndarray,
        all_layers: bool = False,
    ):
        """Encode ``features`` by propagating through ``laplacian``.

        Parameters
        ----------
        laplacian:
            The propagation matrix for this graph/orbit view.
        features:
            ``(n, in_features)`` input attributes (constant; gradients flow to
            the layer weights only).
        all_layers:
            If True, return the list of every layer's output (used by GAlign's
            multi-order alignment); otherwise return only the final embedding.
        """
        # Floating features keep their dtype; non-floating input is promoted
        # to the nn default dtype (float64 unless set_default_dtype changed it).
        hidden = Tensor(np.asarray(features))
        outputs = []
        for layer in self.layers:
            hidden = layer(laplacian, hidden)
            outputs.append(hidden)
        if all_layers:
            return outputs
        return hidden


__all__ = ["Linear", "GCNLayer", "SharedGCNEncoder"]
