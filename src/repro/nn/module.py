"""Module and Parameter abstractions (a tiny fraction of ``torch.nn``)."""

from __future__ import annotations

from typing import Dict, Iterator, List

import numpy as np

from repro.nn.tensor import Tensor


class Parameter(Tensor):
    """A :class:`Tensor` that is a trainable model parameter."""

    def __init__(self, data: np.ndarray, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for models.

    Subclasses register :class:`Parameter` instances and child modules as
    attributes; ``parameters()`` walks both recursively.  ``forward`` is left
    abstract; calling the module delegates to it.
    """

    def __init__(self) -> None:
        self._parameters: Dict[str, Parameter] = {}
        self._modules: Dict[str, "Module"] = {}

    def __setattr__(self, name: str, value: object) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    def parameters(self) -> List[Parameter]:
        """All trainable parameters of this module and its children."""
        params: List[Parameter] = list(self._parameters.values())
        for child in self._modules.values():
            params.extend(child.parameters())
        return params

    def named_parameters(self, prefix: str = "") -> Iterator[tuple]:
        """Yield ``(name, parameter)`` pairs, names dotted by module path."""
        for name, parameter in self._parameters.items():
            yield (f"{prefix}{name}", parameter)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for parameter in self.parameters():
            parameter.zero_grad()

    def n_parameters(self) -> int:
        """Total number of scalar parameters."""
        return int(sum(p.data.size for p in self.parameters()))

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of every parameter's value keyed by dotted name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter values produced by :meth:`state_dict`."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        if missing:
            raise KeyError(f"state dict is missing parameters: {sorted(missing)}")
        for name, parameter in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != parameter.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected {parameter.data.shape}, "
                    f"got {value.shape}"
                )
            parameter.data = value.copy()

    def forward(self, *args, **kwargs):
        raise NotImplementedError("Module subclasses must implement forward()")

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


__all__ = ["Parameter", "Module"]
