"""A numpy-backed tensor with reverse-mode automatic differentiation.

The design follows the classic "define-by-run tape" pattern: every operation
creates a new :class:`Tensor` that remembers its parent tensors and a local
backward closure.  ``Tensor.backward()`` topologically sorts the graph and
accumulates gradients into ``.grad`` for every tensor that requires them.

Only the operations needed by the library's models are implemented; they all
support the broadcasting rules numpy applies in the forward pass (gradients
are "unbroadcast" by summing over the broadcast axes).

**Compute dtype.**  Tensors are no longer unconditionally ``float64``:
floating-point input data keeps its dtype (gradients follow the tensor's
own dtype), non-floating data — and the weight initialisers in
:mod:`repro.nn.init` — follow the module default, ``float64`` unless
changed via :func:`set_default_dtype`; an explicit ``dtype=`` wins over
both.  The float64 default is exactly the historical behaviour.  Note the
HTC pipeline's graph attributes are float64, so training stays float64
regardless of :class:`repro.core.HTCConfig`'s ``compute_dtype`` (which
governs the *scoring* stack, :mod:`repro.backend.precision`); a float32
training pipeline needs ``set_default_dtype(np.float32)`` (float32
parameters) plus float32 features and Laplacians.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Set, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, list, tuple]

#: Dtypes a tensor may hold.
_FLOAT_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))

_DEFAULT_DTYPE = np.dtype(np.float64)


def get_default_dtype() -> np.dtype:
    """The dtype non-floating tensor data is promoted to."""
    return _DEFAULT_DTYPE


def set_default_dtype(dtype) -> np.dtype:
    """Set the default tensor dtype; returns the previous default.

    Only ``float32`` and ``float64`` are supported (the autograd closures
    assume real floating arithmetic).
    """
    global _DEFAULT_DTYPE
    new = np.dtype(dtype)
    if new not in _FLOAT_DTYPES:
        raise ValueError(
            f"default tensor dtype must be float32 or float64, got {new}"
        )
    previous = _DEFAULT_DTYPE
    _DEFAULT_DTYPE = new
    return previous


def _as_array(value: ArrayLike, dtype=None) -> np.ndarray:
    array = np.asarray(value)
    if dtype is not None:
        wanted = np.dtype(dtype)
    elif array.dtype in _FLOAT_DTYPES:
        return array
    else:
        wanted = _DEFAULT_DTYPE
    if array.dtype == wanted:
        return array
    return array.astype(wanted)


def _unbroadcast(gradient: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``gradient`` down to ``shape`` (inverse of numpy broadcasting)."""
    if gradient.shape == shape:
        return gradient
    # Remove leading broadcast axes.
    while gradient.ndim > len(shape):
        gradient = gradient.sum(axis=0)
    # Sum over axes that were expanded from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and gradient.shape[axis] != 1:
            gradient = gradient.sum(axis=axis, keepdims=True)
    return gradient.reshape(shape)


class Tensor:
    """A differentiable numpy array.

    Parameters
    ----------
    data:
        Array-like numeric data.  Floating input keeps its dtype;
        non-floating input is promoted to the module default dtype
        (:func:`get_default_dtype`, ``float64`` out of the box).
    requires_grad:
        Whether gradients should be accumulated for this tensor.
    dtype:
        Optional explicit dtype (``float32`` / ``float64``) overriding both
        rules.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Iterable["Tensor"] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        name: str = "",
        dtype=None,
    ) -> None:
        self.data = _as_array(data, dtype=dtype)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._parents: Tuple["Tensor", ...] = tuple(_parents)
        self._backward = _backward
        self.name = name

    # ------------------------------------------------------------------
    # shape helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a scalar tensor as a Python float."""
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the autograd graph."""
        return Tensor(self.data, requires_grad=False)

    # ------------------------------------------------------------------
    # autograd machinery
    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    def _accumulate(self, gradient: np.ndarray) -> None:
        # Gradients live in the tensor's own compute dtype.
        gradient = _unbroadcast(
            np.asarray(gradient, dtype=self.data.dtype), self.data.shape
        )
        if self.grad is None:
            self.grad = gradient.copy()
        else:
            self.grad = self.grad + gradient

    def backward(self, gradient: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor.

        ``gradient`` defaults to 1.0 and is only optional for scalar tensors.
        """
        if gradient is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a scalar tensor"
                )
            gradient = np.ones_like(self.data)

        topo_order: List[Tensor] = []
        visited: Set[int] = set()

        def visit(node: "Tensor") -> None:
            if id(node) in visited:
                return
            visited.add(id(node))
            for parent in node._parents:
                visit(parent)
            topo_order.append(node)

        visit(self)
        self._accumulate(np.asarray(gradient, dtype=self.data.dtype))
        for node in reversed(topo_order):
            if node._backward is None or node.grad is None:
                continue
            node._backward(node.grad)

    # ------------------------------------------------------------------
    # arithmetic operators (elementwise, broadcasting)
    # ------------------------------------------------------------------
    @staticmethod
    def _wrap(value: Union["Tensor", ArrayLike]) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._wrap(other)
        out = Tensor(
            self.data + other.data,
            requires_grad=self.requires_grad or other.requires_grad,
            _parents=(self, other),
        )

        def backward(gradient: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(gradient)
            if other.requires_grad:
                other._accumulate(gradient)

        out._backward = backward
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out = Tensor(-self.data, requires_grad=self.requires_grad, _parents=(self,))

        def backward(gradient: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-gradient)

        out._backward = backward
        return out

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self + (-self._wrap(other))

    def __rsub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self._wrap(other) + (-self)

    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._wrap(other)
        out = Tensor(
            self.data * other.data,
            requires_grad=self.requires_grad or other.requires_grad,
            _parents=(self, other),
        )

        def backward(gradient: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(gradient * other.data)
            if other.requires_grad:
                other._accumulate(gradient * self.data)

        out._backward = backward
        return out

    __rmul__ = __mul__

    def __truediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._wrap(other)
        out = Tensor(
            self.data / other.data,
            requires_grad=self.requires_grad or other.requires_grad,
            _parents=(self, other),
        )

        def backward(gradient: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(gradient / other.data)
            if other.requires_grad:
                other._accumulate(-gradient * self.data / (other.data**2))

        out._backward = backward
        return out

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out = Tensor(
            self.data**exponent, requires_grad=self.requires_grad, _parents=(self,)
        )

        def backward(gradient: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(gradient * exponent * self.data ** (exponent - 1))

        out._backward = backward
        return out

    def __matmul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._wrap(other)
        out = Tensor(
            self.data @ other.data,
            requires_grad=self.requires_grad or other.requires_grad,
            _parents=(self, other),
        )

        def backward(gradient: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(gradient @ other.data.T)
            if other.requires_grad:
                other._accumulate(self.data.T @ gradient)

        out._backward = backward
        return out

    # ------------------------------------------------------------------
    # shape ops and reductions
    # ------------------------------------------------------------------
    @property
    def T(self) -> "Tensor":
        """Matrix transpose (2-D tensors)."""
        out = Tensor(self.data.T, requires_grad=self.requires_grad, _parents=(self,))

        def backward(gradient: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(gradient.T)

        out._backward = backward
        return out

    def sum(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        """Sum over ``axis`` (or everything)."""
        out = Tensor(
            self.data.sum(axis=axis, keepdims=keepdims),
            requires_grad=self.requires_grad,
            _parents=(self,),
        )

        def backward(gradient: np.ndarray) -> None:
            if not self.requires_grad:
                return
            grad = np.asarray(gradient)
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis=axis)
            self._accumulate(np.broadcast_to(grad, self.data.shape))

        out._backward = backward
        return out

    def mean(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        """Mean over ``axis`` (or everything)."""
        if axis is None:
            count = self.data.size
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape: int) -> "Tensor":
        """Reshape, keeping the autograd connection."""
        out = Tensor(
            self.data.reshape(*shape), requires_grad=self.requires_grad, _parents=(self,)
        )

        def backward(gradient: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(gradient.reshape(self.data.shape))

        out._backward = backward
        return out

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}{grad_flag})"


__all__ = ["Tensor", "get_default_dtype", "set_default_dtype"]
