"""A numpy-backed tensor with reverse-mode automatic differentiation.

The design follows the classic "define-by-run tape" pattern: every operation
creates a new :class:`Tensor` that remembers its parent tensors and a local
backward closure.  ``Tensor.backward()`` topologically sorts the graph and
accumulates gradients into ``.grad`` for every tensor that requires them.

Only the operations needed by the library's models are implemented; they all
support the broadcasting rules numpy applies in the forward pass (gradients
are "unbroadcast" by summing over the broadcast axes).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Set, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, list, tuple]


def _as_array(value: ArrayLike) -> np.ndarray:
    return np.asarray(value, dtype=np.float64)


def _unbroadcast(gradient: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``gradient`` down to ``shape`` (inverse of numpy broadcasting)."""
    if gradient.shape == shape:
        return gradient
    # Remove leading broadcast axes.
    while gradient.ndim > len(shape):
        gradient = gradient.sum(axis=0)
    # Sum over axes that were expanded from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and gradient.shape[axis] != 1:
            gradient = gradient.sum(axis=axis, keepdims=True)
    return gradient.reshape(shape)


class Tensor:
    """A differentiable numpy array.

    Parameters
    ----------
    data:
        Array-like numeric data (converted to ``float64``).
    requires_grad:
        Whether gradients should be accumulated for this tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Iterable["Tensor"] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        name: str = "",
    ) -> None:
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._parents: Tuple["Tensor", ...] = tuple(_parents)
        self._backward = _backward
        self.name = name

    # ------------------------------------------------------------------
    # shape helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a scalar tensor as a Python float."""
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the autograd graph."""
        return Tensor(self.data, requires_grad=False)

    # ------------------------------------------------------------------
    # autograd machinery
    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    def _accumulate(self, gradient: np.ndarray) -> None:
        gradient = _unbroadcast(np.asarray(gradient, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = gradient.copy()
        else:
            self.grad = self.grad + gradient

    def backward(self, gradient: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor.

        ``gradient`` defaults to 1.0 and is only optional for scalar tensors.
        """
        if gradient is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a scalar tensor"
                )
            gradient = np.ones_like(self.data)

        topo_order: List[Tensor] = []
        visited: Set[int] = set()

        def visit(node: "Tensor") -> None:
            if id(node) in visited:
                return
            visited.add(id(node))
            for parent in node._parents:
                visit(parent)
            topo_order.append(node)

        visit(self)
        self._accumulate(np.asarray(gradient, dtype=np.float64))
        for node in reversed(topo_order):
            if node._backward is None or node.grad is None:
                continue
            node._backward(node.grad)

    # ------------------------------------------------------------------
    # arithmetic operators (elementwise, broadcasting)
    # ------------------------------------------------------------------
    @staticmethod
    def _wrap(value: Union["Tensor", ArrayLike]) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._wrap(other)
        out = Tensor(
            self.data + other.data,
            requires_grad=self.requires_grad or other.requires_grad,
            _parents=(self, other),
        )

        def backward(gradient: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(gradient)
            if other.requires_grad:
                other._accumulate(gradient)

        out._backward = backward
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out = Tensor(-self.data, requires_grad=self.requires_grad, _parents=(self,))

        def backward(gradient: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-gradient)

        out._backward = backward
        return out

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self + (-self._wrap(other))

    def __rsub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self._wrap(other) + (-self)

    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._wrap(other)
        out = Tensor(
            self.data * other.data,
            requires_grad=self.requires_grad or other.requires_grad,
            _parents=(self, other),
        )

        def backward(gradient: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(gradient * other.data)
            if other.requires_grad:
                other._accumulate(gradient * self.data)

        out._backward = backward
        return out

    __rmul__ = __mul__

    def __truediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._wrap(other)
        out = Tensor(
            self.data / other.data,
            requires_grad=self.requires_grad or other.requires_grad,
            _parents=(self, other),
        )

        def backward(gradient: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(gradient / other.data)
            if other.requires_grad:
                other._accumulate(-gradient * self.data / (other.data**2))

        out._backward = backward
        return out

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out = Tensor(
            self.data**exponent, requires_grad=self.requires_grad, _parents=(self,)
        )

        def backward(gradient: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(gradient * exponent * self.data ** (exponent - 1))

        out._backward = backward
        return out

    def __matmul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._wrap(other)
        out = Tensor(
            self.data @ other.data,
            requires_grad=self.requires_grad or other.requires_grad,
            _parents=(self, other),
        )

        def backward(gradient: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(gradient @ other.data.T)
            if other.requires_grad:
                other._accumulate(self.data.T @ gradient)

        out._backward = backward
        return out

    # ------------------------------------------------------------------
    # shape ops and reductions
    # ------------------------------------------------------------------
    @property
    def T(self) -> "Tensor":
        """Matrix transpose (2-D tensors)."""
        out = Tensor(self.data.T, requires_grad=self.requires_grad, _parents=(self,))

        def backward(gradient: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(gradient.T)

        out._backward = backward
        return out

    def sum(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        """Sum over ``axis`` (or everything)."""
        out = Tensor(
            self.data.sum(axis=axis, keepdims=keepdims),
            requires_grad=self.requires_grad,
            _parents=(self,),
        )

        def backward(gradient: np.ndarray) -> None:
            if not self.requires_grad:
                return
            grad = np.asarray(gradient)
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis=axis)
            self._accumulate(np.broadcast_to(grad, self.data.shape))

        out._backward = backward
        return out

    def mean(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        """Mean over ``axis`` (or everything)."""
        if axis is None:
            count = self.data.size
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape: int) -> "Tensor":
        """Reshape, keeping the autograd connection."""
        out = Tensor(
            self.data.reshape(*shape), requires_grad=self.requires_grad, _parents=(self,)
        )

        def backward(gradient: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(gradient.reshape(self.data.shape))

        out._backward = backward
        return out

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}{grad_flag})"


__all__ = ["Tensor"]
