"""Thread-safe named metrics: counters, gauges and mergeable histograms.

The observability core follows the same registry idiom as
:mod:`repro.backend`: one process-global default registry
(:func:`default_registry`), metric instances created on demand by name +
labels, and everything dependency-free so the off path costs nothing to
import.  Three metric kinds cover the serve/runner/shard hot paths:

* :class:`Counter` — monotone float/int accumulator (``inc``);
* :class:`Gauge` — last-write-wins value (``set`` / ``inc``);
* :class:`Histogram` — **fixed log-spaced buckets** shared by every
  histogram in the process, so histograms recorded in different worker
  processes :meth:`~Histogram.merge` exactly (bucket-count addition, no
  re-binning error).  Quantiles are *exact upper bounds*: ``quantile(0.99)``
  returns the smallest bucket boundary that is guaranteed ≥ the true p99 of
  everything observed.

Every metric carries its own lock, so recording never serializes on a
registry- or service-wide lock; the registry lock is only taken to create
(or look up) an instance — callers on hot paths should keep the returned
instance instead of re-resolving per event.

Snapshots (:meth:`MetricsRegistry.snapshot`) are stable, JSON-safe dicts;
:meth:`MetricsRegistry.merge_snapshot` folds a snapshot from another
process (a runner worker, a shard job) into this registry — the
cross-process aggregation path used by the suite manifest.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

#: Version of the snapshot payload schema (bump on breaking change).
OBS_SCHEMA_VERSION = "1.0"

#: Default histogram bucket upper bounds in seconds: log-spaced, four per
#: decade from 10 µs to 100 s (29 finite buckets + overflow).  One global
#: scheme means every histogram merges exactly across processes.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    10.0 ** (-5.0 + index / 4.0) for index in range(29)
)

LabelItems = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, object]) -> LabelItems:
    """Canonical (sorted, stringified) label identity of one series."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotone accumulator; ``inc`` is atomic under the instance lock."""

    kind = "counter"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got inc({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> Dict[str, object]:
        return {"value": self.value}

    def merge(self, payload: Mapping[str, object]) -> None:
        self.inc(float(payload["value"]))

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Gauge:
    """Last-write-wins value (``set``), with ``inc`` for deltas."""

    kind = "gauge"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> Dict[str, object]:
        return {"value": self.value}

    def merge(self, payload: Mapping[str, object]) -> None:
        # Merging gauges from workers: keep the extremum-free simple sum —
        # worker gauges are sized quantities (bytes, entries), not levels.
        with self._lock:
            self._value += float(payload["value"])

    def reset(self) -> None:
        self.set(0.0)


class Histogram:
    """Fixed-bucket latency histogram with exact-bound quantiles.

    Parameters
    ----------
    buckets:
        Strictly increasing finite upper bounds; an implicit ``+Inf``
        overflow bucket is always appended.  Defaults to the process-wide
        :data:`DEFAULT_BUCKETS` scheme — keep the default unless the
        histogram measures something other than seconds, because only
        same-bucket histograms can :meth:`merge`.
    """

    kind = "histogram"

    def __init__(self, buckets: Optional[Tuple[float, ...]] = None) -> None:
        bounds = tuple(float(b) for b in (buckets or DEFAULT_BUCKETS))
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ) or not all(math.isfinite(b) for b in bounds):
            raise ValueError(
                "histogram buckets must be strictly increasing finite bounds"
            )
        self.bounds = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)  # +1: the +Inf overflow
        self._sum = 0.0
        self._count = 0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    # -- reads ----------------------------------------------------------
    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> float:
        """Smallest bucket bound guaranteed ≥ the true ``q``-quantile.

        Returns ``nan`` when empty.  Observations in the overflow bucket
        report the histogram's exact observed maximum (the only bound the
        scheme has up there).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if self._count == 0:
                return math.nan
            rank = q * self._count
            seen = 0
            for index, bucket_count in enumerate(self._counts):
                seen += bucket_count
                if seen >= rank and bucket_count:
                    if index < len(self.bounds):
                        return self.bounds[index]
                    return self._max
            return self._max

    def summary(self) -> Dict[str, object]:
        """Count/sum/min/max plus the p50/p95/p99 bound estimates."""
        with self._lock:
            count, total = self._count, self._sum
            low = self._min if count else None
            high = self._max if count else None
        return {
            "count": count,
            "sum": total,
            "min": low,
            "max": high,
            "p50": None if count == 0 else self.quantile(0.50),
            "p95": None if count == 0 else self.quantile(0.95),
            "p99": None if count == 0 else self.quantile(0.99),
        }

    # -- snapshot / merge ----------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "bounds": list(self.bounds),
                "counts": list(self._counts),
                "sum": self._sum,
                "count": self._count,
                "min": None if self._count == 0 else self._min,
                "max": None if self._count == 0 else self._max,
            }

    def merge(self, payload: Mapping[str, object]) -> None:
        """Fold another histogram's snapshot in (same bucket scheme only)."""
        bounds = tuple(float(b) for b in payload["bounds"])
        if bounds != self.bounds:
            raise ValueError(
                "cannot merge histograms with different bucket schemes "
                f"({len(bounds)} vs {len(self.bounds)} bounds)"
            )
        counts = [int(c) for c in payload["counts"]]
        if len(counts) != len(self._counts):
            raise ValueError("malformed histogram snapshot: count length")
        with self._lock:
            for index, bucket_count in enumerate(counts):
                self._counts[index] += bucket_count
            self._sum += float(payload["sum"])
            self._count += int(payload["count"])
            if payload.get("min") is not None:
                self._min = min(self._min, float(payload["min"]))
            if payload.get("max") is not None:
                self._max = max(self._max, float(payload["max"]))

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.bounds) + 1)
            self._sum = 0.0
            self._count = 0
            self._min = math.inf
            self._max = -math.inf


_METRIC_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Named metric series, created on demand, snapshotted as stable JSON.

    A series is identified by ``(name, labels)``; every series of one name
    shares a kind (mixing kinds under one name raises).  Instance creation
    takes the registry lock; recording only takes the per-metric lock, so
    hot paths that cache the returned instance never contend here.
    """

    def __init__(self, name: str = "default") -> None:
        self.name = name
        self._lock = threading.Lock()
        self._series: Dict[Tuple[str, LabelItems], object] = {}
        self._kinds: Dict[str, str] = {}

    # -- creation / lookup ---------------------------------------------
    def _get(self, kind: str, name: str, labels: Mapping[str, object], **kwargs):
        if not name:
            raise ValueError("metric name must be non-empty")
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._series.get(key)
            if metric is None:
                registered = self._kinds.get(name)
                if registered is not None and registered != kind:
                    raise ValueError(
                        f"metric {name!r} is already registered as a "
                        f"{registered}, not a {kind}"
                    )
                metric = _METRIC_KINDS[kind](**kwargs)
                self._series[key] = metric
                self._kinds[name] = kind
            elif metric.kind != kind:
                raise ValueError(
                    f"metric {name!r} is already registered as a "
                    f"{metric.kind}, not a {kind}"
                )
            return metric

    def counter(self, name: str, **labels) -> Counter:
        """The counter series ``name{labels}`` (created on first use)."""
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        """The gauge series ``name{labels}`` (created on first use)."""
        return self._get("gauge", name, labels)

    def histogram(
        self,
        name: str,
        buckets: Optional[Tuple[float, ...]] = None,
        **labels,
    ) -> Histogram:
        """The histogram series ``name{labels}`` (created on first use)."""
        return self._get("histogram", name, labels, buckets=buckets)

    # -- iteration / reads ---------------------------------------------
    def collect(self) -> Iterator[Tuple[str, LabelItems, object]]:
        """Every series as ``(name, label_items, metric)``, sorted."""
        with self._lock:
            items = sorted(self._series.items())
        for (name, labels), metric in items:
            yield name, labels, metric

    def sum_values(self, name: str) -> float:
        """Sum of a counter/gauge family's values (0.0 when absent)."""
        total = 0.0
        for series_name, _, metric in self.collect():
            if series_name == name and metric.kind in ("counter", "gauge"):
                total += metric.value
        return total

    def family(self, name: str) -> Dict[LabelItems, object]:
        """Every series of one family, keyed by its label identity."""
        return {
            labels: metric
            for series_name, labels, metric in self.collect()
            if series_name == name
        }

    def __len__(self) -> int:
        with self._lock:
            return len(self._series)

    # -- snapshot / merge / reset --------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Stable JSON-safe dump of every series (sorted, versioned)."""
        metrics: List[Dict[str, object]] = []
        for name, labels, metric in self.collect():
            metrics.append(
                {
                    "name": name,
                    "kind": metric.kind,
                    "labels": dict(labels),
                    **metric.snapshot(),
                }
            )
        return {"schema_version": OBS_SCHEMA_VERSION, "metrics": metrics}

    def merge_snapshot(self, payload: Mapping[str, object]) -> None:
        """Fold a :meth:`snapshot` (possibly from another process) in."""
        version = str(payload.get("schema_version", ""))
        if version.split(".")[0] != OBS_SCHEMA_VERSION.split(".")[0]:
            raise ValueError(
                f"cannot merge an obs snapshot of schema {version!r} into "
                f"schema {OBS_SCHEMA_VERSION}"
            )
        for entry in payload.get("metrics", []):
            kind = str(entry["kind"])
            if kind not in _METRIC_KINDS:
                raise ValueError(f"unknown metric kind {kind!r} in snapshot")
            kwargs = {}
            if kind == "histogram":
                kwargs["buckets"] = tuple(entry["bounds"])
            metric = self._get(
                kind, str(entry["name"]), dict(entry.get("labels", {})), **kwargs
            )
            metric.merge(entry)

    def reset(self) -> None:
        """Zero every series (the series themselves are kept)."""
        for _, _, metric in self.collect():
            metric.reset()

    def __repr__(self) -> str:
        return f"MetricsRegistry({self.name!r}, series={len(self)})"


_DEFAULT_REGISTRY = MetricsRegistry("repro")


def default_registry() -> MetricsRegistry:
    """The process-global registry behind ``/metrics`` and the span API."""
    return _DEFAULT_REGISTRY


__all__ = [
    "OBS_SCHEMA_VERSION",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
]
