"""Render a :class:`~repro.obs.metrics.MetricsRegistry` for scraping.

Two formats, both deterministic (families and series sorted, fixed float
formatting) so the stdlib and FastAPI transports serve **byte-identical**
``/metrics`` bodies from the same registry state:

* :func:`prometheus_text` — the Prometheus text exposition format
  (``text/plain; version=0.0.4``): ``# TYPE`` headers, ``_bucket{le=...}``
  cumulative bucket series, ``_sum``/``_count`` per histogram.
* :func:`json_snapshot` — the stable JSON snapshot from
  :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`, for programmatic
  consumers and offline artifacts.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Tuple

from repro.obs.metrics import Histogram, MetricsRegistry

#: Content type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_BAD = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(name: str) -> str:
    name = _NAME_BAD.sub("_", name)
    return f"_{name}" if name[:1].isdigit() else name


def _label_name(name: str) -> str:
    name = _LABEL_BAD.sub("_", name)
    return f"_{name}" if name[:1].isdigit() else name


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


def _format_value(value: float) -> str:
    """Prometheus-style number formatting: integers bare, floats repr'd."""
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    as_int = int(value)
    return str(as_int) if as_int == value else repr(float(value))


def _render_labels(labels: Iterable[Tuple[str, str]]) -> str:
    parts = [
        f'{_label_name(key)}="{_escape_label_value(value)}"'
        for key, value in labels
    ]
    return "{" + ",".join(parts) + "}" if parts else ""


def prometheus_text(*registries: MetricsRegistry) -> str:
    """The Prometheus text exposition of one or more registries.

    Multiple registries render as one page (families merged by name, every
    series kept); the API layer uses this to expose the process-global
    registry alongside the per-service one in a single scrape.
    """
    families: Dict[str, Tuple[str, List[Tuple[Tuple[Tuple[str, str], ...], object]]]] = {}
    for registry in registries:
        for name, labels, metric in registry.collect():
            exp_name = _metric_name(name)
            kind = metric.kind
            if exp_name in families and families[exp_name][0] != kind:
                raise ValueError(
                    f"metric family {exp_name!r} has conflicting kinds across "
                    "registries"
                )
            families.setdefault(exp_name, (kind, []))[1].append((labels, metric))

    lines: List[str] = []
    for exp_name in sorted(families):
        kind, series = families[exp_name]
        lines.append(f"# TYPE {exp_name} {kind}")
        for labels, metric in sorted(series, key=lambda item: item[0]):
            if isinstance(metric, Histogram):
                snap = metric.snapshot()
                cumulative = 0
                for bound, count in zip(snap["bounds"], snap["counts"]):
                    cumulative += count
                    bucket_labels = tuple(labels) + (("le", _format_value(bound)),)
                    lines.append(
                        f"{exp_name}_bucket{_render_labels(bucket_labels)} "
                        f"{cumulative}"
                    )
                cumulative += snap["counts"][-1]
                inf_labels = tuple(labels) + (("le", "+Inf"),)
                lines.append(
                    f"{exp_name}_bucket{_render_labels(inf_labels)} {cumulative}"
                )
                lines.append(
                    f"{exp_name}_sum{_render_labels(labels)} "
                    f"{_format_value(snap['sum'])}"
                )
                lines.append(
                    f"{exp_name}_count{_render_labels(labels)} {snap['count']}"
                )
            else:
                lines.append(
                    f"{exp_name}{_render_labels(labels)} "
                    f"{_format_value(metric.value)}"
                )
    return "\n".join(lines) + "\n" if lines else ""


def json_snapshot(*registries: MetricsRegistry) -> Dict[str, object]:
    """One merged JSON snapshot of the given registries (stable ordering)."""
    if len(registries) == 1:
        return registries[0].snapshot()
    merged = MetricsRegistry("merged")
    for registry in registries:
        merged.merge_snapshot(registry.snapshot())
    return merged.snapshot()


def parse_prometheus_text(text: str) -> Dict[str, Dict[str, float]]:
    """Parse an exposition page into ``{family: {series_line: value}}``.

    A deliberately small parser for tests and the CI metrics-smoke job —
    enough to assert that required series exist and that counters advance,
    not a general Prometheus client.
    """
    families: Dict[str, Dict[str, float]] = {}
    current = None
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            current = line.split()[2]
            families.setdefault(current, {})
            continue
        if line.startswith("#"):
            continue
        series, _, raw_value = line.rpartition(" ")
        value = float(raw_value)
        base = series.split("{", 1)[0]
        family = current if current and base.startswith(current) else base
        families.setdefault(family, {})[series] = value
    return families


__all__ = [
    "PROMETHEUS_CONTENT_TYPE",
    "json_snapshot",
    "parse_prometheus_text",
    "prometheus_text",
]
