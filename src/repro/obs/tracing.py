"""Lightweight wall-time span tracing with nested attribution.

Spans attribute wall time to named phases of a pipeline::

    with span("shard.align"):
        with span("stitch.merge"):
            ...

Each exited span records its duration into a ``span_seconds`` histogram
labelled with its *path* — nested spans join their names with ``/``
(``shard.align/stitch.merge`` above) so attribution survives aggregation —
and bumps a ``span_total`` counter.  Nesting is tracked per thread.

Tracing is **opt-in** and the off path is a no-op: ``span()`` returns a
shared singleton context manager that touches no locks, takes no
timestamps and allocates nothing.  Enable it programmatically with
:func:`enable_tracing` or by exporting ``REPRO_TRACE=1`` before the
process starts (any value other than ``""``/``"0"`` enables).
"""

from __future__ import annotations

import os
import threading
import time
from typing import List, Optional

from repro.obs.metrics import MetricsRegistry, default_registry

#: Environment switch honoured at import time; see :func:`enable_tracing`.
TRACE_ENV_VAR = "REPRO_TRACE"

_enabled = os.environ.get(TRACE_ENV_VAR, "") not in ("", "0")
_stack = threading.local()


def tracing_enabled() -> bool:
    """Whether :func:`span` records anything right now."""
    return _enabled


def enable_tracing(on: bool = True) -> None:
    """Turn span recording on (or off) for the whole process."""
    global _enabled
    _enabled = bool(on)


class _NullSpan:
    """The disabled path: one shared, stateless, no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    """An active span; records ``span_seconds{span=<path>}`` on exit."""

    __slots__ = ("name", "registry", "path", "_started")

    def __init__(self, name: str, registry: MetricsRegistry) -> None:
        self.name = name
        self.registry = registry
        self.path = name
        self._started = 0.0

    def __enter__(self) -> "_Span":
        stack = _span_stack()
        if stack:
            self.path = f"{stack[-1].path}/{self.name}"
        stack.append(self)
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        elapsed = time.perf_counter() - self._started
        stack = _span_stack()
        if stack and stack[-1] is self:
            stack.pop()
        self.registry.histogram("span_seconds", span=self.path).observe(elapsed)
        self.registry.counter("span_total", span=self.path).inc()


def _span_stack() -> List[_Span]:
    stack = getattr(_stack, "spans", None)
    if stack is None:
        stack = _stack.spans = []
    return stack


def span(name: str, registry: Optional[MetricsRegistry] = None):
    """Context manager timing one named phase (no-op while tracing is off).

    ``registry`` defaults to the process-global default registry; pass a
    private one (as the runner's per-job instrumentation does) to keep a
    unit of work's spans separable for cross-process merging.
    """
    if not _enabled:
        return _NULL_SPAN
    return _Span(name, registry if registry is not None else default_registry())


__all__ = [
    "TRACE_ENV_VAR",
    "enable_tracing",
    "span",
    "tracing_enabled",
]
