"""repro.obs — dependency-free observability core.

Thread-safe counters/gauges, mergeable fixed-bucket latency histograms,
opt-in span tracing, and deterministic Prometheus/JSON exposition.  See
:mod:`repro.obs.metrics`, :mod:`repro.obs.tracing` and
:mod:`repro.obs.exposition`.
"""

from repro.obs.exposition import (
    PROMETHEUS_CONTENT_TYPE,
    json_snapshot,
    parse_prometheus_text,
    prometheus_text,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    OBS_SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)
from repro.obs.tracing import (
    TRACE_ENV_VAR,
    enable_tracing,
    span,
    tracing_enabled,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "OBS_SCHEMA_VERSION",
    "PROMETHEUS_CONTENT_TYPE",
    "TRACE_ENV_VAR",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "enable_tracing",
    "json_snapshot",
    "parse_prometheus_text",
    "prometheus_text",
    "span",
    "tracing_enabled",
]
