"""Common interface for alignment methods."""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.datasets.pair import GraphPair

AnchorList = Optional[List[Tuple[int, int]]]


class BaseAligner:
    """Interface every alignment method implements.

    Attributes
    ----------
    name:
        Display name used in benchmark tables.
    requires_supervision:
        True when the method consumes ``train_anchors`` (the 10% ground-truth
        split the paper gives to supervised competitors).
    """

    name = "base"
    requires_supervision = False

    def align(self, pair: GraphPair, train_anchors: AnchorList = None) -> np.ndarray:
        """Return the ``(n_source, n_target)`` alignment-score matrix."""
        raise NotImplementedError

    def _check_pair(self, pair: GraphPair) -> None:
        if pair.source.n_nodes == 0 or pair.target.n_nodes == 0:
            raise ValueError("cannot align empty graphs")

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


__all__ = ["BaseAligner", "AnchorList"]
