"""REGAL (Heimann et al., CIKM 2018) — representation-learning graph alignment.

REGAL's xNetMF embeddings describe every node by the degree distribution of
its k-hop neighbourhood (log-binned, hop-discounted) concatenated with its
attributes, then factorise the node-to-landmark similarity matrix to obtain
low-dimensional embeddings that are comparable across graphs without any
anchors.  Alignment scores are embedding cosine similarities.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.baselines.base import AnchorList, BaseAligner
from repro.datasets.pair import GraphPair
from repro.graph.attributed_graph import AttributedGraph
from repro.similarity.measures import cosine_similarity
from repro.utils.random import RandomStateLike, check_random_state


class REGAL(BaseAligner):
    """xNetMF-style unsupervised alignment.

    Parameters
    ----------
    max_hop:
        Neighbourhood radius used for the structural identity.
    hop_discount:
        Per-hop decay δ of the neighbourhood contribution.
    n_landmarks:
        Number of landmark nodes for the implicit factorisation.
    attribute_weight:
        Relative weight of attribute similarity versus structural similarity.
    gamma_struc:
        Scale of the structural distance inside the similarity exponent.
    """

    name = "REGAL"
    requires_supervision = False

    def __init__(
        self,
        max_hop: int = 2,
        hop_discount: float = 0.5,
        n_landmarks: int = 50,
        attribute_weight: float = 1.0,
        gamma_struc: float = 1.0,
        random_state: RandomStateLike = 0,
    ) -> None:
        if max_hop < 1:
            raise ValueError(f"max_hop must be >= 1, got {max_hop}")
        if not 0.0 < hop_discount <= 1.0:
            raise ValueError(f"hop_discount must be in (0, 1], got {hop_discount}")
        if n_landmarks < 2:
            raise ValueError(f"n_landmarks must be >= 2, got {n_landmarks}")
        self.max_hop = max_hop
        self.hop_discount = hop_discount
        self.n_landmarks = n_landmarks
        self.attribute_weight = attribute_weight
        self.gamma_struc = gamma_struc
        self.random_state = random_state

    # ------------------------------------------------------------------
    # xNetMF identity features
    # ------------------------------------------------------------------
    def _structural_identity(self, graph: AttributedGraph) -> np.ndarray:
        """Log-binned degree histograms of the k-hop neighbourhoods."""
        degrees = graph.degrees
        max_degree = max(int(degrees.max()) if degrees.size else 1, 1)
        n_bins = int(np.ceil(np.log2(max_degree + 1))) + 1
        adjacency_sets = graph.adjacency_sets()

        identity = np.zeros((graph.n_nodes, n_bins), dtype=np.float64)
        for node in range(graph.n_nodes):
            frontier = {node}
            visited = {node}
            weight = 1.0
            for _ in range(self.max_hop):
                next_frontier = set()
                for member in frontier:
                    next_frontier |= adjacency_sets[member]
                next_frontier -= visited
                if not next_frontier:
                    break
                for neighbour in next_frontier:
                    bin_index = int(np.floor(np.log2(max(degrees[neighbour], 1)))) if degrees[neighbour] > 0 else 0
                    bin_index = min(bin_index, n_bins - 1)
                    identity[node, bin_index] += weight
                visited |= next_frontier
                frontier = next_frontier
                weight *= self.hop_discount
        return identity

    @staticmethod
    def _pad_columns(matrices: List[np.ndarray]) -> List[np.ndarray]:
        """Right-pad structural identities so both graphs share a column count."""
        width = max(matrix.shape[1] for matrix in matrices)
        return [
            np.pad(matrix, ((0, 0), (0, width - matrix.shape[1])))
            for matrix in matrices
        ]

    def _combined_similarity(
        self,
        struct_a: np.ndarray,
        struct_b: np.ndarray,
        attrs_a: np.ndarray,
        attrs_b: np.ndarray,
    ) -> np.ndarray:
        """xNetMF similarity: structural distance + attribute agreement."""
        diff = struct_a[:, None, :] - struct_b[None, :, :]
        struct_dist = np.linalg.norm(diff, axis=2)
        attr_sim = cosine_similarity(attrs_a, attrs_b)
        attr_dist = 1.0 - (attr_sim + 1.0) / 2.0
        return np.exp(-self.gamma_struc * struct_dist - self.attribute_weight * attr_dist)

    def align(self, pair: GraphPair, train_anchors: AnchorList = None) -> np.ndarray:
        self._check_pair(pair)
        rng = check_random_state(self.random_state)

        struct_source, struct_target = self._pad_columns(
            [
                self._structural_identity(pair.source),
                self._structural_identity(pair.target),
            ]
        )
        attrs_source = pair.source.attributes
        attrs_target = pair.target.attributes

        n_s, n_t = pair.source.n_nodes, pair.target.n_nodes
        total = n_s + n_t
        n_landmarks = min(self.n_landmarks, total)
        landmark_indices = np.sort(rng.choice(total, size=n_landmarks, replace=False))

        all_struct = np.vstack([struct_source, struct_target])
        all_attrs = np.vstack([attrs_source, attrs_target])
        landmark_struct = all_struct[landmark_indices]
        landmark_attrs = all_attrs[landmark_indices]

        # Node-to-landmark and landmark-to-landmark similarities.
        node_to_landmark = self._combined_similarity(
            all_struct, landmark_struct, all_attrs, landmark_attrs
        )
        landmark_to_landmark = node_to_landmark[landmark_indices]

        # Implicit factorisation: Y = C @ pinv(W) gives comparable embeddings.
        embeddings = node_to_landmark @ np.linalg.pinv(landmark_to_landmark)
        source_embeddings = embeddings[:n_s]
        target_embeddings = embeddings[n_s:]
        return cosine_similarity(source_embeddings, target_embeddings)


__all__ = ["REGAL"]
