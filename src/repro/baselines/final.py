"""FINAL (Zhang & Tong, KDD 2016) — fast attributed network alignment.

FINAL generalises IsoRank's similarity flow to attributed networks: the
propagated similarity of a node pair is gated by the similarity of their
attributes.  This implementation follows the FINAL-N(+) iterative form

``M ← α · N ⊙ (Ā_s M Ā_tᵀ) + (1 − α) · H``

where ``N`` is the node-attribute similarity matrix and ``H`` the anchor
prior, which is the fixed-point view of the full Sylvester formulation used
in the original paper.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import AnchorList, BaseAligner
from repro.datasets.pair import GraphPair
from repro.similarity.measures import cosine_similarity
from repro.utils.sparse import row_normalize


class FINAL(BaseAligner):
    """Attributed similarity-flow alignment.

    Parameters
    ----------
    alpha:
        Weight of the propagated term versus the prior.
    n_iterations:
        Number of fixed-point iterations.
    tol:
        Early-stopping tolerance.
    """

    name = "FINAL"
    requires_supervision = True

    def __init__(self, alpha: float = 0.82, n_iterations: int = 30, tol: float = 1e-6):
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        if n_iterations < 1:
            raise ValueError(f"n_iterations must be >= 1, got {n_iterations}")
        self.alpha = alpha
        self.n_iterations = n_iterations
        self.tol = tol

    def align(self, pair: GraphPair, train_anchors: AnchorList = None) -> np.ndarray:
        self._check_pair(pair)
        n_s, n_t = pair.source.n_nodes, pair.target.n_nodes

        source_norm = row_normalize(pair.source.adjacency)
        target_norm = row_normalize(pair.target.adjacency)

        # Attribute-similarity gate, shifted to [0, 1].
        attribute_similarity = cosine_similarity(
            pair.source.attributes, pair.target.attributes
        )
        attribute_similarity = (attribute_similarity + 1.0) / 2.0

        prior = np.full((n_s, n_t), 1.0 / (n_s * n_t))
        if train_anchors:
            for i, j in train_anchors:
                prior[i, j] = 1.0
        prior /= prior.sum()

        scores = prior.copy()
        for _ in range(self.n_iterations):
            propagated = source_norm.dot(scores)
            propagated = target_norm.dot(propagated.T).T
            updated = self.alpha * attribute_similarity * propagated
            updated += (1.0 - self.alpha) * prior
            total = updated.sum()
            if total > 0:
                updated /= total
            if np.abs(updated - scores).max() < self.tol:
                scores = updated
                break
            scores = updated
        return scores


__all__ = ["FINAL"]
