"""Shared spectral embedding helper used by the PALE and CENALP baselines.

Both baselines first embed each network independently.  The original papers
use skip-gram style training (LINE / DeepWalk); here the embedding is the
truncated SVD of the normalised adjacency, which approximates the same
first-order proximity signal deterministically and without a long training
loop.  The simplification is documented in DESIGN.md.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.graph.attributed_graph import AttributedGraph
from repro.graph.laplacian import normalized_laplacian


def spectral_embedding(
    graph: AttributedGraph, dim: int, use_attributes: bool = False
) -> np.ndarray:
    """First-order proximity embedding via truncated SVD of ``D^-1/2 (A+I) D^-1/2``.

    Parameters
    ----------
    graph:
        The network to embed.
    dim:
        Embedding dimension (clipped to ``n_nodes - 1``).
    use_attributes:
        If True, node attributes are concatenated to the spectral coordinates.
    """
    if dim < 1:
        raise ValueError(f"dim must be >= 1, got {dim}")
    n = graph.n_nodes
    k = min(dim, max(n - 2, 1))
    laplacian = normalized_laplacian(graph.adjacency).astype(np.float64)
    try:
        u, s, _ = spla.svds(laplacian, k=k)
    except Exception:  # very small or degenerate graphs: dense fallback
        dense = laplacian.toarray() if sp.issparse(laplacian) else laplacian
        u_full, s_full, _ = np.linalg.svd(dense)
        u, s = u_full[:, :k], s_full[:k]
    order = np.argsort(-s)
    embedding = u[:, order] * np.sqrt(np.maximum(s[order], 0.0))
    if embedding.shape[1] < dim:
        embedding = np.pad(embedding, ((0, 0), (0, dim - embedding.shape[1])))
    if use_attributes:
        embedding = np.hstack([embedding, graph.attributes])
    return embedding


__all__ = ["spectral_embedding"]
