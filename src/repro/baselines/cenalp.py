"""CENALP (Du, Yan & Zha, IJCAI 2019) — joint link prediction and alignment.

CENALP alternates between aligning node pairs and densifying both networks by
predicted links, growing the anchor set iteratively from a small seed.  This
implementation keeps the iterative *alignment-growth* loop, which is the part
that matters for comparison, and simplifies the embedding step (spectral
embeddings plus a linear cross-graph mapping re-fitted every round on the
current anchor set) — the original uses cross-graph skip-gram walks.  The
simplification is documented in DESIGN.md.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.baselines.base import AnchorList, BaseAligner
from repro.baselines.embedding import spectral_embedding
from repro.datasets.pair import GraphPair
from repro.similarity.matching import mutual_nearest_neighbors
from repro.similarity.measures import cosine_similarity
from repro.utils.random import RandomStateLike


class CENALP(BaseAligner):
    """Iterative cross-graph alignment growth from a seed anchor set.

    Parameters
    ----------
    embedding_dim:
        Per-network embedding dimension.
    n_rounds:
        Number of alignment-growth rounds.
    growth_per_round:
        Maximum number of new pseudo-anchors accepted per round.
    ridge:
        Ridge regularisation of the least-squares mapping.
    """

    name = "CENALP"
    requires_supervision = True

    def __init__(
        self,
        embedding_dim: int = 64,
        n_rounds: int = 5,
        growth_per_round: int = 25,
        ridge: float = 1e-3,
        random_state: RandomStateLike = 0,
    ) -> None:
        if n_rounds < 1:
            raise ValueError(f"n_rounds must be >= 1, got {n_rounds}")
        self.embedding_dim = embedding_dim
        self.n_rounds = n_rounds
        self.growth_per_round = growth_per_round
        self.ridge = ridge
        self.random_state = random_state

    def _fit_mapping(
        self,
        source_embedding: np.ndarray,
        target_embedding: np.ndarray,
        anchors: List[Tuple[int, int]],
    ) -> np.ndarray:
        """Least-squares linear map W with  source[anchor] @ W ≈ target[anchor]."""
        source_rows = source_embedding[[i for i, _ in anchors]]
        target_rows = target_embedding[[j for _, j in anchors]]
        dim = source_embedding.shape[1]
        gram = source_rows.T @ source_rows + self.ridge * np.eye(dim)
        return np.linalg.solve(gram, source_rows.T @ target_rows)

    def align(self, pair: GraphPair, train_anchors: AnchorList = None) -> np.ndarray:
        self._check_pair(pair)
        source_embedding = spectral_embedding(
            pair.source, self.embedding_dim, use_attributes=True
        )
        target_embedding = spectral_embedding(
            pair.target, self.embedding_dim, use_attributes=True
        )

        anchors: List[Tuple[int, int]] = list(train_anchors or [])
        if not anchors:
            # Unsupervised fallback: seed with mutual nearest neighbours of the
            # raw attribute space.
            attribute_similarity = cosine_similarity(
                pair.source.attributes, pair.target.attributes
            )
            anchors = mutual_nearest_neighbors(attribute_similarity)[
                : self.growth_per_round
            ]
        if not anchors:
            return cosine_similarity(source_embedding, target_embedding)

        scores = cosine_similarity(source_embedding, target_embedding)
        used_source = {i for i, _ in anchors}
        used_target = {j for _, j in anchors}

        for _ in range(self.n_rounds):
            mapping = self._fit_mapping(source_embedding, target_embedding, anchors)
            mapped = source_embedding @ mapping
            scores = cosine_similarity(mapped, target_embedding)

            # Grow the anchor set with confident mutual nearest neighbours that
            # do not clash with existing anchors.
            candidates = [
                (i, j, scores[i, j])
                for i, j in mutual_nearest_neighbors(scores)
                if i not in used_source and j not in used_target
            ]
            candidates.sort(key=lambda item: -item[2])
            added = 0
            for i, j, _ in candidates:
                if added >= self.growth_per_round:
                    break
                anchors.append((i, j))
                used_source.add(i)
                used_target.add(j)
                added += 1
            if added == 0:
                break
        return scores


__all__ = ["CENALP"]
