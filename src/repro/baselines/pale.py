"""PALE (Man et al., IJCAI 2016) — predict anchor links via embedding.

PALE works in two phases: (1) embed each network independently to preserve
first-order proximity, and (2) learn a supervised mapping (linear or MLP)
from source-embedding space to target-embedding space using the observed
anchor links.  Alignment scores are similarities between mapped source
embeddings and target embeddings.

This implementation uses the shared spectral embedding
(:mod:`repro.baselines.embedding`) for phase 1 and trains the phase-2 MLP with
the library's autograd substrate.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import AnchorList, BaseAligner
from repro.baselines.embedding import spectral_embedding
from repro.datasets.pair import GraphPair
from repro.nn.functional import mse_loss, relu
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.similarity.measures import cosine_similarity
from repro.utils.random import RandomStateLike, check_random_state


class _MappingMLP(Module):
    """One-hidden-layer mapping network from source space to target space."""

    def __init__(self, dim: int, hidden: int, random_state=None) -> None:
        super().__init__()
        rng = check_random_state(random_state)
        self.input_layer = Linear(dim, hidden, random_state=rng)
        self.output_layer = Linear(hidden, dim, random_state=rng)

    def forward(self, inputs: Tensor) -> Tensor:
        return self.output_layer(relu(self.input_layer(inputs)))


class PALE(BaseAligner):
    """Embedding + supervised-mapping alignment.

    Parameters
    ----------
    embedding_dim:
        Dimension of the per-network embeddings.
    hidden_dim:
        Hidden width of the mapping MLP.
    epochs, learning_rate:
        Mapping-network training settings.
    """

    name = "PALE"
    requires_supervision = True

    def __init__(
        self,
        embedding_dim: int = 64,
        hidden_dim: int = 64,
        epochs: int = 200,
        learning_rate: float = 0.01,
        random_state: RandomStateLike = 0,
    ) -> None:
        if embedding_dim < 1 or hidden_dim < 1:
            raise ValueError("embedding_dim and hidden_dim must be >= 1")
        self.embedding_dim = embedding_dim
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.random_state = random_state

    def align(self, pair: GraphPair, train_anchors: AnchorList = None) -> np.ndarray:
        self._check_pair(pair)
        source_embedding = spectral_embedding(pair.source, self.embedding_dim)
        target_embedding = spectral_embedding(pair.target, self.embedding_dim)

        if not train_anchors:
            # Without supervision PALE degenerates to comparing the two
            # (incomparable) embedding spaces directly.
            return cosine_similarity(source_embedding, target_embedding)

        dim = source_embedding.shape[1]
        mapper = _MappingMLP(dim, self.hidden_dim, random_state=self.random_state)
        optimizer = Adam(mapper.parameters(), lr=self.learning_rate)

        anchor_source = np.array([i for i, _ in train_anchors], dtype=np.int64)
        anchor_target = np.array([j for _, j in train_anchors], dtype=np.int64)
        inputs = Tensor(source_embedding[anchor_source])
        targets = target_embedding[anchor_target]

        for _ in range(self.epochs):
            optimizer.zero_grad()
            predictions = mapper(inputs)
            loss = mse_loss(predictions, targets)
            loss.backward()
            optimizer.step()

        mapped = mapper(Tensor(source_embedding)).detach().numpy()
        return cosine_similarity(mapped, target_embedding)


__all__ = ["PALE"]
