"""GAlign (Trung et al., ICDE 2020) — adaptive unsupervised GCN alignment.

GAlign trains a weight-sharing multi-layer GCN on both networks without
anchors and aligns by comparing *every* layer's embeddings (multi-order
alignment), with data augmentation (perturbed adjacency views) that makes the
model adaptive to consistency violations.  It is the strongest unsupervised
competitor in the paper and the closest relative of HTC (which replaces the
plain adjacency with orbit-weighted views).

Implementation notes: the encoder, reconstruction objective, and optimiser
are the same substrates HTC uses (``repro.nn``); augmentation drops a fraction
of edges from each graph and adds the augmented views' reconstruction losses,
and the final score matrix averages per-layer cosine similarities.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.baselines.base import AnchorList, BaseAligner
from repro.datasets.pair import GraphPair
from repro.graph.attributed_graph import AttributedGraph
from repro.graph.laplacian import normalized_laplacian
from repro.graph.perturbation import remove_edges
from repro.nn.functional import frobenius_loss
from repro.nn.layers import SharedGCNEncoder
from repro.nn.optim import Adam
from repro.similarity.measures import cosine_similarity
from repro.utils.random import RandomStateLike, check_random_state


class GAlign(BaseAligner):
    """Unsupervised multi-order GCN alignment with augmentation.

    Parameters
    ----------
    embedding_dim:
        Output dimension of each GCN layer.
    n_layers:
        Number of GCN layers; alignment uses the outputs of all of them.
    epochs, learning_rate:
        Training settings of the shared encoder.
    augment_ratio:
        Fraction of edges dropped to build each graph's augmented view
        (0 disables augmentation).
    """

    name = "GAlign"
    requires_supervision = False

    def __init__(
        self,
        embedding_dim: int = 64,
        n_layers: int = 2,
        epochs: int = 100,
        learning_rate: float = 0.01,
        augment_ratio: float = 0.1,
        random_state: RandomStateLike = 0,
    ) -> None:
        if n_layers < 1:
            raise ValueError(f"n_layers must be >= 1, got {n_layers}")
        if not 0.0 <= augment_ratio < 1.0:
            raise ValueError(f"augment_ratio must be in [0, 1), got {augment_ratio}")
        self.embedding_dim = embedding_dim
        self.n_layers = n_layers
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.augment_ratio = augment_ratio
        self.random_state = random_state

    def _views(self, graph: AttributedGraph, rng) -> List:
        """Original plus (optionally) one augmented propagation matrix."""
        views = [normalized_laplacian(graph.adjacency)]
        if self.augment_ratio > 0:
            augmented = remove_edges(graph, self.augment_ratio, random_state=rng)
            views.append(normalized_laplacian(augmented.adjacency))
        return views

    def align(self, pair: GraphPair, train_anchors: AnchorList = None) -> np.ndarray:
        self._check_pair(pair)
        if pair.source.n_attributes != pair.target.n_attributes:
            raise ValueError("source and target must share an attribute space")
        rng = check_random_state(self.random_state)

        source_views = self._views(pair.source, rng)
        target_views = self._views(pair.target, rng)
        source_targets = [np.asarray(view.todense()) for view in source_views]
        target_targets = [np.asarray(view.todense()) for view in target_views]

        encoder = SharedGCNEncoder(
            in_features=pair.source.n_attributes,
            hidden_dims=[self.embedding_dim] * self.n_layers,
            activations=["relu"] * (self.n_layers - 1) + ["identity"],
            random_state=rng,
        )
        optimizer = Adam(encoder.parameters(), lr=self.learning_rate)

        for _ in range(self.epochs):
            optimizer.zero_grad()
            total = None
            for views, targets, attributes in (
                (source_views, source_targets, pair.source.attributes),
                (target_views, target_targets, pair.target.attributes),
            ):
                for view, target_dense in zip(views, targets):
                    embedding = encoder(view, attributes)
                    loss = frobenius_loss(embedding @ embedding.T, target_dense)
                    total = loss if total is None else total + loss
            total.backward()
            optimizer.step()

        # Multi-order alignment: average the per-layer similarity matrices of
        # the un-augmented views.
        source_layers = encoder(source_views[0], pair.source.attributes, all_layers=True)
        target_layers = encoder(target_views[0], pair.target.attributes, all_layers=True)
        scores = np.zeros((pair.source.n_nodes, pair.target.n_nodes))
        for source_layer, target_layer in zip(source_layers, target_layers):
            scores += cosine_similarity(
                source_layer.detach().numpy(), target_layer.detach().numpy()
            )
        return scores / len(source_layers)


__all__ = ["GAlign"]
