"""Naive reference aligners.

These are not from the paper's comparison table but serve as sanity floors in
tests and examples: alignment from raw node degrees and from raw attribute
similarity.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import AnchorList, BaseAligner
from repro.datasets.pair import GraphPair
from repro.similarity.measures import cosine_similarity


class DegreeAligner(BaseAligner):
    """Score node pairs by how close their degrees are (topology-only floor)."""

    name = "Degree"
    requires_supervision = False

    def align(self, pair: GraphPair, train_anchors: AnchorList = None) -> np.ndarray:
        self._check_pair(pair)
        source_degrees = pair.source.degrees.astype(np.float64)
        target_degrees = pair.target.degrees.astype(np.float64)
        differences = np.abs(source_degrees[:, None] - target_degrees[None, :])
        return -differences


class AttributeAligner(BaseAligner):
    """Score node pairs by raw attribute cosine similarity (attribute-only floor)."""

    name = "Attribute"
    requires_supervision = False

    def align(self, pair: GraphPair, train_anchors: AnchorList = None) -> np.ndarray:
        self._check_pair(pair)
        return cosine_similarity(pair.source.attributes, pair.target.attributes)


class GDVAligner(BaseAligner):
    """Graphlet-degree-vector alignment (H-GRAAL / GraphletAlign flavour).

    Scores node pairs by the cosine similarity of their log-scaled graphlet
    degree vectors, optionally concatenated with attributes.  Included as the
    "graphlet features without learning" reference discussed in the paper's
    related-work section.
    """

    name = "GDV"
    requires_supervision = False

    def __init__(self, use_attributes: bool = True) -> None:
        self.use_attributes = use_attributes

    def align(self, pair: GraphPair, train_anchors: AnchorList = None) -> np.ndarray:
        from repro.orbits.engine import graphlet_degree_vectors

        self._check_pair(pair)
        source_features = graphlet_degree_vectors(pair.source)
        target_features = graphlet_degree_vectors(pair.target)
        if self.use_attributes:
            source_features = np.hstack([source_features, pair.source.attributes])
            target_features = np.hstack([target_features, pair.target.attributes])
        return cosine_similarity(source_features, target_features)


__all__ = ["DegreeAligner", "AttributeAligner", "GDVAligner"]
