"""IsoRank (Singh, Xu & Berger, PNAS 2008).

IsoRank propagates pairwise similarity through the two networks: two nodes
are similar when their neighbourhoods are similar.  The fixed point of

``M ← α · Ā_s M Ā_tᵀ + (1 − α) · H``

(with degree-normalised adjacencies ``Ā`` and a prior matrix ``H``) is found
by power iteration.  The paper runs IsoRank as a supervised baseline by
building ``H`` from 10% of the ground-truth anchors.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import AnchorList, BaseAligner
from repro.datasets.pair import GraphPair
from repro.utils.sparse import row_normalize


class IsoRank(BaseAligner):
    """Topology-only similarity-flow alignment.

    Parameters
    ----------
    alpha:
        Weight of the propagated term versus the prior.
    n_iterations:
        Number of power iterations.
    tol:
        Early-stopping tolerance on the update's max-norm.
    """

    name = "IsoRank"
    requires_supervision = True

    def __init__(self, alpha: float = 0.82, n_iterations: int = 30, tol: float = 1e-6):
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        if n_iterations < 1:
            raise ValueError(f"n_iterations must be >= 1, got {n_iterations}")
        self.alpha = alpha
        self.n_iterations = n_iterations
        self.tol = tol

    def align(self, pair: GraphPair, train_anchors: AnchorList = None) -> np.ndarray:
        self._check_pair(pair)
        n_s, n_t = pair.source.n_nodes, pair.target.n_nodes

        source_norm = row_normalize(pair.source.adjacency)
        target_norm = row_normalize(pair.target.adjacency)

        prior = np.full((n_s, n_t), 1.0 / (n_s * n_t))
        if train_anchors:
            for i, j in train_anchors:
                prior[i, j] = 1.0
        prior /= prior.sum()

        scores = prior.copy()
        for _ in range(self.n_iterations):
            # M <- alpha * A_s M A_t^T + (1 - alpha) * H, keeping M normalised.
            propagated = source_norm.dot(scores)
            propagated = target_norm.dot(propagated.T).T
            updated = self.alpha * propagated + (1.0 - self.alpha) * prior
            total = updated.sum()
            if total > 0:
                updated /= total
            if np.abs(updated - scores).max() < self.tol:
                scores = updated
                break
            scores = updated
        return scores


__all__ = ["IsoRank"]
