"""Baseline network-alignment methods used in the paper's comparison.

Each baseline re-implements the published algorithm's core mechanism on this
library's substrates (see the per-module docstrings for the exact scope and
any simplifications):

* :class:`IsoRank` — topology-only similarity flow with an alignment prior,
* :class:`FINAL` — attributed similarity flow (FINAL-N style),
* :class:`REGAL` — xNetMF structural/attribute embeddings + landmark
  factorisation,
* :class:`PALE` — embedding + supervised mapping,
* :class:`CENALP` — iterative cross-graph embedding with alignment growth,
* :class:`GAlign` — unsupervised multi-order GCN with augmentation,
* :class:`DegreeAligner` / :class:`AttributeAligner` — naive references.
"""

from repro.baselines.base import BaseAligner
from repro.baselines.cenalp import CENALP
from repro.baselines.final import FINAL
from repro.baselines.galign import GAlign
from repro.baselines.isorank import IsoRank
from repro.baselines.naive import AttributeAligner, DegreeAligner
from repro.baselines.pale import PALE
from repro.baselines.regal import REGAL

#: All baselines in the order the paper's Table II lists them.
PAPER_BASELINES = ("GAlign", "FINAL", "PALE", "CENALP", "IsoRank", "REGAL")


def make_baseline(name: str, **kwargs) -> BaseAligner:
    """Instantiate a baseline by its paper name."""
    registry = {
        "IsoRank": IsoRank,
        "FINAL": FINAL,
        "REGAL": REGAL,
        "PALE": PALE,
        "CENALP": CENALP,
        "GAlign": GAlign,
        "Degree": DegreeAligner,
        "Attribute": AttributeAligner,
    }
    try:
        cls = registry[name]
    except KeyError as error:
        raise KeyError(
            f"unknown baseline {name!r}; available: {sorted(registry)}"
        ) from error
    return cls(**kwargs)


__all__ = [
    "BaseAligner",
    "IsoRank",
    "FINAL",
    "REGAL",
    "PALE",
    "CENALP",
    "GAlign",
    "DegreeAligner",
    "AttributeAligner",
    "PAPER_BASELINES",
    "make_baseline",
]
