"""Command-line interface for the HTC reproduction.

Eleven sub-commands cover the typical workflows without writing Python:

``datasets``
    List the bundled dataset stand-ins and their statistics.
``align``
    Run one method (HTC, an ablation variant, or a baseline) on one dataset
    and print the paper's metrics; ``--shards N`` routes HTC through the
    partition–align–stitch subsystem for pairs beyond the single-shot
    memory/time envelope.
``compare``
    Run HTC plus the baselines on one or more datasets (the Table II layout).
``robustness``
    Sweep edge-removal noise on a robustness dataset (the Fig. 9 layout).
``run-suite``
    Execute a declarative suite (datasets × methods × config grid) on a
    process pool, with per-job JSON artifacts, a manifest and resumability;
    ``--emit-artifacts`` additionally persists every job's alignment as a
    queryable serve artifact.
``export-artifact``
    Train one method on one dataset and persist the alignment (plus its
    sparse top-k index) into an artifact store.
``query``
    Answer match / top-k / reverse-match queries from a stored artifact,
    printing the same versioned JSON payload the HTTP API returns.
``serve``
    Serve an artifact store over HTTP (:mod:`repro.api`): uvicorn/FastAPI
    when installed, the dependency-free stdlib server otherwise.
``serve-stats``
    Inspect an artifact store from its SQLite catalog (ids, shapes, index
    sizes) — the same payload as ``GET /artifacts``.
``catalog-sync``
    Backfill/refresh the store's SQLite catalog from the manifests on disk
    (stores written before the catalog existed, or edited by hand).

Dataset arguments accept registered names (``douban``, ``tiny``, ...) and
prefixed names such as ``dir:/path/to/exported-pair`` (a directory written
by ``repro.datasets.save_pair``).

Examples
--------
::

    python -m repro.cli datasets
    python -m repro.cli align --dataset douban --method HTC --epochs 40
    python -m repro.cli compare --datasets douban allmovie_imdb --scale 0.3
    python -m repro.cli robustness --dataset econ --methods HTC GAlign IsoRank
    python -m repro.cli run-suite --datasets tiny econ bn --methods HTC \
        IsoRank Degree --jobs 4 --output runs --emit-artifacts
    python -m repro.cli export-artifact --dataset tiny --method HTC \
        --artifact-root artifacts --index-k 10
    python -m repro.cli query --artifact-root artifacts --artifact <id> \
        --op top-k --k 5 --nodes 0 1 2
    python -m repro.cli serve --artifact-root artifacts --port 8000
    python -m repro.cli serve-stats --artifact-root artifacts
    python -m repro.cli catalog-sync --artifact-root artifacts
"""

from __future__ import annotations

import argparse
import json
import sys
import warnings
from typing import List, Optional, Sequence

from repro.backend import (
    PRECISIONS,
    available_compute_backends,
    available_executor_backends,
)
from repro.baselines import PAPER_BASELINES, make_baseline
from repro.core import HTCAligner, HTCConfig
from repro.datasets import available_datasets, is_known_dataset, load_dataset
from repro.datasets.synthetic import bn, econ
from repro.eval.protocol import run_comparison, run_method
from repro.eval.reporting import format_importance_ranking, format_series, format_table
from repro.eval.robustness import run_robustness
from repro.orbits.engine import available_backends as available_orbit_backends
from repro.api.models import (
    TOP_K_OPS,
    artifact_list_payload,
    make_query_request,
    response_payload,
)
from repro.runner import SuiteSpec, resolve_method, run_suite
from repro.runner.executor import known_method_names
from repro.serve import AlignmentService, export_result, list_artifacts
from repro.serve.catalog import ArtifactCatalog


def _dataset_arg(name: str) -> str:
    """argparse type validating plain or prefixed (``dir:<path>``) names."""
    if not is_known_dataset(name):
        raise argparse.ArgumentTypeError(
            f"unknown dataset {name!r}; available: {available_datasets()} "
            f'or a prefixed name like "dir:<path>"'
        )
    return name


def _is_prefixed(name: str) -> bool:
    return ":" in name and name not in available_datasets()


def _load_cli_dataset(name: str, args: argparse.Namespace, seed=None) -> object:
    """Load a dataset honouring the CLI conventions.

    Generated datasets take ``--scale``/``--seed``; ``tiny`` ignores scale;
    prefixed datasets (on-disk directories) take no parameters at all.
    """
    if _is_prefixed(name):
        return load_dataset(name)
    random_state = args.seed if seed is None else seed
    if name == "tiny":
        return load_dataset(name, random_state=random_state)
    return load_dataset(name, scale=args.scale, random_state=random_state)


def _config_from_args(args: argparse.Namespace) -> HTCConfig:
    orbits = range(args.orbits) if args.orbits is not None else None
    kwargs = {}
    # Only set when given so the HTCConfig default stays the single source.
    if args.shard_overlap is not None:
        kwargs["shard_overlap"] = args.shard_overlap
    if getattr(args, "stitch", "memory") != "memory":
        kwargs["extra"] = {"stitch": args.stitch}
    return HTCConfig(
        orbits=orbits,
        executor_backend=args.executor,
        embedding_dim=args.dim,
        epochs=args.epochs,
        n_neighbors=args.neighbors,
        reinforcement_rate=args.beta,
        compute_dtype=args.dtype,
        backend=args.backend,
        orbit_backend=args.orbit_backend,
        orbit_cache=args.orbit_cache,
        score_chunk_size=args.chunk_size,
        shard_count=args.shards,
        random_state=args.seed,
        **kwargs,
    )


def _add_model_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=0.3, help="dataset scale factor")
    parser.add_argument("--dim", type=int, default=32, help="embedding dimension d")
    parser.add_argument("--epochs", type=int, default=40, help="training epochs")
    parser.add_argument(
        "--orbits", type=int, default=None, help="use the first K orbits (default: all 13)"
    )
    parser.add_argument("--neighbors", type=int, default=10, help="LISI neighbourhood m")
    parser.add_argument("--beta", type=float, default=1.1, help="reinforcement rate")
    parser.add_argument(
        "--dtype",
        choices=PRECISIONS,
        default="float64",
        help="precision policy for the similarity/serve hot paths: float64 "
        "(exact, bit-identical default) or float32 (about half the "
        "score-matrix memory and faster GEMMs, float64 accumulation "
        "for reductions; documented tolerances instead of bit-identity)",
    )
    parser.add_argument(
        "--backend",
        choices=("auto",) + available_compute_backends(),
        default="auto",
        help="dense compute backend from the shared registry "
        "(auto = best available; numpy is built in)",
    )
    parser.add_argument(
        "--orbit-backend",
        choices=("auto",) + available_orbit_backends(),
        default="auto",
        help="orbit-counting backend (auto = fastest available)",
    )
    parser.add_argument(
        "--orbit-cache",
        default="memory",
        metavar="SPEC",
        help='orbit-count cache: "memory" (default), "off", or a directory path',
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        metavar="ROWS",
        help="stream similarity scoring in row chunks of this size "
        "(bounded memory, bit-identical results; default: dense)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="partition the pair into N community shards, align each shard "
        "pair independently and stitch the results (HTC only; bounds "
        "per-shard memory/time by the shard size; default: single-shot)",
    )
    parser.add_argument(
        "--shard-overlap",
        type=int,
        default=None,
        metavar="HOPS",
        help="BFS hops of boundary overlap around every shard (default: 1)",
    )
    parser.add_argument(
        "--executor",
        choices=("auto",) + available_executor_backends(),
        default="auto",
        help="job-execution backend for suites and sharded alignment "
        "(auto = process pool when available; execution-only, results "
        "and spec hashes are identical across backends)",
    )
    parser.add_argument(
        "--stitch",
        choices=("memory", "streaming"),
        default="memory",
        help="sharded-stitch strategy: memory (dense per-shard matrices, "
        "one process) or streaming (merge the per-shard sparse indexes "
        "chunk-by-chunk out of core; identical results)",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--runs", type=int, default=1, help="repetitions to average over")


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HTC: higher-order topological consistency for unsupervised "
        "network alignment (ICDE 2023 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("datasets", help="list bundled datasets and their statistics")

    align = subparsers.add_parser("align", help="run one method on one dataset")
    align.add_argument("--dataset", required=True, type=_dataset_arg)
    align.add_argument(
        "--method",
        default="HTC",
        help=f"one of {known_method_names()}",
    )
    _add_model_arguments(align)

    compare = subparsers.add_parser(
        "compare", help="run HTC and all baselines on one or more datasets"
    )
    compare.add_argument(
        "--datasets", nargs="+", default=["douban"], type=_dataset_arg
    )
    _add_model_arguments(compare)

    robustness = subparsers.add_parser(
        "robustness", help="edge-removal noise sweep on a robustness dataset"
    )
    robustness.add_argument("--dataset", default="econ", choices=["econ", "bn"])
    robustness.add_argument(
        "--methods", nargs="+", default=["HTC", "GAlign", "IsoRank"]
    )
    robustness.add_argument(
        "--ratios", nargs="+", type=float, default=[0.1, 0.2, 0.3, 0.4, 0.5]
    )
    _add_model_arguments(robustness)

    suite = subparsers.add_parser(
        "run-suite",
        help="execute a dataset × method × config sweep on a pluggable "
        "executor backend",
    )
    suite.add_argument(
        "--suite",
        default=None,
        metavar="JSON",
        help="suite spec file; overrides the inline --datasets/--methods flags",
    )
    suite.add_argument("--name", default="suite", help="suite name (inline specs)")
    suite.add_argument(
        "--datasets", nargs="+", default=["tiny"], type=_dataset_arg
    )
    suite.add_argument(
        "--methods",
        nargs="+",
        default=["HTC", "IsoRank", "Degree"],
        help=f"any of {known_method_names()}",
    )
    suite.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker slots for the executor backend (1 = inline under "
        "auto, 0 = CPU count)",
    )
    suite.add_argument(
        "--resume",
        action="store_true",
        help="skip jobs whose artifact already matches the spec hash",
    )
    suite.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job wall-clock limit",
    )
    suite.add_argument(
        "--output", default="runs", metavar="DIR", help="artifact root directory"
    )
    suite.add_argument(
        "--emit-artifacts",
        action="store_true",
        help="persist every job's alignment as a queryable serve artifact "
        "under <output>/<suite>/serve_artifacts/",
    )
    _add_model_arguments(suite)

    export = subparsers.add_parser(
        "export-artifact",
        help="train one method on one dataset and persist the alignment "
        "(plus its sparse top-k index) as a serve artifact",
    )
    export.add_argument("--dataset", required=True, type=_dataset_arg)
    export.add_argument(
        "--method", default="HTC", help=f"one of {known_method_names()}"
    )
    export.add_argument(
        "--artifact-root",
        default="artifacts",
        metavar="DIR",
        help="artifact store root directory",
    )
    export.add_argument(
        "--artifact-name",
        default=None,
        metavar="NAME",
        help="artifact id prefix (default: <dataset>-<method>)",
    )
    export.add_argument(
        "--index-k",
        type=int,
        default=10,
        metavar="K",
        help="candidates stored per source row / target column",
    )
    _add_model_arguments(export)

    query = subparsers.add_parser(
        "query", help="answer matching queries from a stored artifact"
    )
    query.add_argument(
        "--artifact-root", default="artifacts", metavar="DIR",
        help="artifact store root directory",
    )
    query.add_argument(
        "--artifact", required=True, metavar="ID", help="artifact id to query"
    )
    query.add_argument(
        "--op",
        choices=("match", "top-k", "reverse-match", "reverse-top-k"),
        default="match",
        help="query operation",
    )
    query.add_argument(
        "--nodes",
        nargs="+",
        type=int,
        required=True,
        help="node ids to query (source side; target side for reverse ops)",
    )
    query.add_argument(
        "--k", type=int, default=5, help="candidates per node (top-k ops)"
    )
    query.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the artifact integrity (hash) check on load",
    )
    query.add_argument(
        "--format",
        choices=("json", "legacy"),
        default="json",
        help="json: the versioned payload the HTTP API returns (default); "
        "legacy: the deprecated pre-API '<node>: <ids>' lines",
    )

    serve = subparsers.add_parser(
        "serve",
        help="serve an artifact store over HTTP (health/artifacts/match/"
        "top_k/reverse endpoints)",
    )
    serve.add_argument(
        "--artifact-root", default="artifacts", metavar="DIR",
        help="artifact store root directory",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8000, help="bind port")
    serve.add_argument(
        "--server",
        choices=("auto", "uvicorn", "stdlib"),
        default="auto",
        help="HTTP stack: uvicorn/FastAPI (optional dependency) or the "
        "dependency-free stdlib server; auto picks uvicorn when installed. "
        "Responses are identical either way.",
    )
    serve.add_argument(
        "--preload",
        action="store_true",
        help="host every stored artifact at startup instead of lazily on "
        "first query",
    )

    stats = subparsers.add_parser(
        "serve-stats", help="inspect an artifact store via its SQLite catalog"
    )
    stats.add_argument(
        "--artifact-root", default="artifacts", metavar="DIR",
        help="artifact store root directory",
    )
    stats.add_argument(
        "--format",
        choices=("json", "table", "prometheus"),
        default="json",
        help="json: the same payload as GET /artifacts (default); "
        "table: the deprecated pre-API manifest-walk table; "
        "prometheus: the same text exposition format as GET /metrics, with "
        "store-level gauges — scrapeable without a running server",
    )

    sync = subparsers.add_parser(
        "catalog-sync",
        help="backfill/refresh the store's SQLite artifact catalog from the "
        "manifests on disk",
    )
    sync.add_argument(
        "--artifact-root", default="artifacts", metavar="DIR",
        help="artifact store root directory",
    )

    return parser


def _cmd_datasets() -> int:
    rows = []
    for name in available_datasets():
        pair = load_dataset(name, scale=0.3) if name != "tiny" else load_dataset(name)
        rows.append(pair.summary())
    print(format_table(rows, title="Bundled dataset stand-ins (scale=0.3)"))
    return 0


def _cmd_align(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    pair = _load_cli_dataset(args.dataset, args)
    method = resolve_method(args.method, config)
    result = run_method(method, pair, n_runs=args.runs, random_state=args.seed)
    print(format_table([result.as_row()], title=f"{args.method} on {pair.name}"))
    if isinstance(method, HTCAligner) and method.last_result_ is not None:
        print("\nOrbit importance:")
        print(format_importance_ranking(method.last_result_.orbit_importance))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    pairs = [
        _load_cli_dataset(name, args, seed=index)
        for index, name in enumerate(args.datasets)
    ]
    methods = [resolve_method("HTC", config)]
    methods += [make_baseline(name) for name in PAPER_BASELINES]
    results = run_comparison(methods, pairs, n_runs=args.runs, random_state=args.seed)
    for pair in pairs:
        rows = [r.as_row() for r in results if r.dataset == pair.name]
        print(format_table(rows, title=f"[{pair.name}]"))
        print()
    return 0


def _cmd_robustness(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    factory = econ if args.dataset == "econ" else bn
    methods = [resolve_method(name, config) for name in args.methods]
    points = run_robustness(
        methods,
        factory,
        noise_ratios=tuple(args.ratios),
        scale=args.scale,
        random_state=args.seed,
    )
    series = {}
    for point in points:
        series.setdefault(point.method, []).append(
            (point.noise_ratio, point.metrics["p@1"])
        )
    print(
        format_series(
            series,
            x_label="removal",
            y_label="p@1",
            title=f"Robustness on {args.dataset}",
        )
    )
    return 0


def _suite_from_args(args: argparse.Namespace) -> SuiteSpec:
    """Build the suite spec from a JSON file or the inline flags."""
    if args.suite:
        return SuiteSpec.from_json_file(args.suite)
    datasets: List[object] = []
    for name in args.datasets:
        # Mirror the align subcommand's loading convention: the seed also
        # controls dataset generation; tiny ignores --scale; prefixed
        # (on-disk) datasets take no parameters.
        if _is_prefixed(name):
            datasets.append(name)
            continue
        params: dict = {"random_state": args.seed}
        if name != "tiny":
            params["scale"] = args.scale
        datasets.append({"name": name, "params": params})
    config = {
        "embedding_dim": args.dim,
        "epochs": args.epochs,
        "n_neighbors": args.neighbors,
        "reinforcement_rate": args.beta,
        "orbit_backend": args.orbit_backend,
        "orbit_cache": args.orbit_cache,
    }
    if args.orbits is not None:
        config["orbits"] = tuple(range(args.orbits))
    # Non-default precision/backend knobs only, so pre-existing suite spec
    # hashes (and --resume caches) stay stable.
    if args.dtype != "float64":
        config["compute_dtype"] = args.dtype
    if args.backend != "auto":
        config["backend"] = args.backend
    if args.chunk_size is not None:
        config["score_chunk_size"] = args.chunk_size
    if args.shards is not None:
        config["shard_count"] = args.shards
    if args.shard_overlap is not None:
        config["shard_overlap"] = args.shard_overlap
    # The executor rides on the SuiteSpec, never in the job config: spec
    # hashes (and --resume caches) are identical across executor backends.
    return SuiteSpec(
        name=args.name,
        datasets=datasets,
        methods=list(args.methods),
        config=config,
        n_runs=args.runs,
        seed=args.seed,
        timeout=args.timeout,
        executor_backend=args.executor,
    )


def _cmd_run_suite(args: argparse.Namespace) -> int:
    suite = _suite_from_args(args)
    report = run_suite(
        suite,
        args.output,
        jobs=args.jobs,
        resume=args.resume,
        timeout=args.timeout,
        emit_artifacts=args.emit_artifacts,
        # A non-default --executor also overrides a suite file's choice.
        executor=args.executor if args.executor != "auto" else None,
    )
    print(report.table())
    counts = report.counts
    summary = ", ".join(f"{status}: {count}" for status, count in sorted(counts.items()))
    print(
        f"\n{len(report.artifacts)} jobs ({summary}) in "
        f"{report.wall_clock_seconds:.2f}s with {report.workers} worker(s) "
        f"[{report.executor} executor]"
    )
    print(f"[manifest written to {report.manifest_path}]")
    detail = report.executor_detail
    if detail:
        cache = detail.get("dataset_cache") or {}
        print(
            f"[shm: BLAS cap {detail.get('blas_thread_cap')} "
            f"thread(s)/worker via {detail.get('blas_cap_method')}, "
            f"{detail.get('datasets_staged')} dataset(s) staged "
            f"({detail.get('shared_bytes', 0)} bytes); worker cache: "
            f"{cache.get('hits', 0)} hit(s), {cache.get('attaches', 0)} "
            f"attach(es), {cache.get('worker_loads', 0)} load(s)]"
        )
    if args.emit_artifacts:
        emitted = [
            a["serve_artifact"]["artifact_id"]
            for a in report.artifacts
            if isinstance(a.get("serve_artifact"), dict)
        ]
        print(
            f"[{len(emitted)} serve artifact(s) under "
            f"{report.suite_dir / 'serve_artifacts'}]"
        )
    failed = counts.get("failed", 0) + counts.get("timeout", 0)
    return 1 if failed else 0


def _cmd_export_artifact(args: argparse.Namespace) -> int:
    if args.runs != 1:
        print(
            "warning: export-artifact persists a single alignment; "
            f"--runs {args.runs} is ignored",
            file=sys.stderr,
        )
    config = _config_from_args(args)
    pair = _load_cli_dataset(args.dataset, args)
    method = resolve_method(args.method, config)
    train_anchors = None
    if getattr(method, "requires_supervision", False):
        train_anchors, _ = pair.split_anchors(0.1, random_state=args.seed)
    raw = method.align(pair, train_anchors=train_anchors)
    name = args.artifact_name or f"{pair.name}-{args.method}"
    info = export_result(
        raw,
        config,
        root=args.artifact_root,
        name=name,
        index_k=args.index_k,
        metadata={"dataset": args.dataset, "method": args.method},
    )
    n_s, n_t = info.index.shape
    print(f"artifact id:   {info.artifact_id}")
    print(f"path:          {info.path}")
    print(f"matrix shape:  {n_s} x {n_t}")
    print(f"score dtype:   {info.index.score_dtype}")
    print(f"index k:       {info.index.k} (reverse {info.index.reverse_k})")
    print(
        f"index memory:  {info.index.nbytes / 1e6:.2f} MB "
        f"(dense {info.index.dense_nbytes / 1e6:.2f} MB, "
        f"{info.index.compression_ratio:.1f}x smaller)"
    )
    print(f"on disk:       {info.disk_bytes / 1e6:.2f} MB")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    service = AlignmentService()
    artifact_id = service.load(
        args.artifact_root, args.artifact, verify=not args.no_verify
    )
    op = args.op.replace("-", "_")
    k = args.k if op in TOP_K_OPS else None
    # The one shared entry point: the CLI is a thin client of service.query,
    # printing exactly what the HTTP layer would have returned.
    response = service.query(make_query_request(artifact_id, op, args.nodes, k))
    if args.format == "json":
        print(json.dumps(response_payload(response), indent=2))
    else:
        warnings.warn(
            "query --format legacy is deprecated and will be removed in the "
            "next minor release; use the default --format json, which emits "
            "the same versioned payload as the HTTP API",
            DeprecationWarning,
            stacklevel=2,
        )
        results = response.results
        if op in TOP_K_OPS:
            for node, row in zip(args.nodes, results):
                print(f"{node}: {' '.join(str(int(x)) for x in row)}")
        else:
            for node, match in zip(args.nodes, results):
                print(f"{node}: {int(match)}")
    stats = service.stats()
    print(
        f"[{stats['queries']} queries in {1000 * stats['total_latency_s']:.2f} ms]",
        file=sys.stderr,
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.api.asgi import fastapi_available, run_uvicorn
    from repro.api.core import ApiState
    from repro.api.http import make_server

    state = ApiState(root=args.artifact_root)
    if args.preload:
        print(f"[preloaded {state.preload()} artifact(s)]", file=sys.stderr)
    kind = args.server
    if kind == "auto":
        kind = "uvicorn" if fastapi_available() else "stdlib"
    print(
        f"[serving {args.artifact_root} on http://{args.host}:{args.port} "
        f"via {kind}]",
        file=sys.stderr,
    )
    if kind == "uvicorn":
        run_uvicorn(state, host=args.host, port=args.port)
        return 0
    server = make_server(state, host=args.host, port=args.port, quiet=False)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        server.server_close()
    return 0


def _cmd_serve_stats(args: argparse.Namespace) -> int:
    manifests = list_artifacts(args.artifact_root)
    if not manifests:
        print(f"no artifacts under {args.artifact_root}")
        return 1
    if args.format == "prometheus":
        # Rendered by the exact /metrics code path (handle_metrics →
        # prometheus_text), so the exposition format is byte-compatible
        # with what a running server serves — just from a cold store.
        from repro.api.core import ApiState, handle_metrics
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry("serve-stats")
        registry.gauge("store_artifacts_total").set(len(manifests))
        for manifest in manifests:
            dtype = str(manifest.get("dtype", "unknown"))
            registry.counter("store_artifacts_by_dtype_total", dtype=dtype).inc()
            index_meta = dict(manifest.get("index", {}))
            shape = index_meta.get("shape") or [0, 0]
            registry.gauge("store_index_rows_total").inc(float(shape[0]))
        state = ApiState(root=args.artifact_root, metrics=registry)
        print(handle_metrics(state).text, end="")
        return 0
    if args.format == "json":
        catalog = ArtifactCatalog.for_store(args.artifact_root)
        if catalog.count() < len(manifests):
            # Pre-catalog store (or hand-edited): backfill before answering.
            catalog.sync(args.artifact_root)
        print(
            json.dumps(
                artifact_list_payload(catalog.find(), source="catalog"), indent=2
            )
        )
        return 0
    rows = []
    for manifest in manifests:
        index_meta = dict(manifest.get("index", {}))
        shape = index_meta.get("shape", ["?", "?"])
        metadata = dict(manifest.get("metadata", {}))
        rows.append(
            {
                "artifact_id": manifest.get("artifact_id", "?"),
                "dataset": metadata.get("dataset", ""),
                "method": metadata.get("method", ""),
                "shape": f"{shape[0]}x{shape[1]}",
                "dtype": manifest.get("dtype", "?"),
                "k": index_meta.get("k", "?"),
                "schema": ".".join(
                    str(x) for x in manifest.get("schema_version", [])
                ),
            }
        )
    print(format_table(rows, title=f"Artifacts under {args.artifact_root}"))
    return 0


def _cmd_catalog_sync(args: argparse.Namespace) -> int:
    catalog = ArtifactCatalog.for_store(args.artifact_root)
    registered, seen = catalog.sync(args.artifact_root)
    print(
        f"catalog under {args.artifact_root}: {seen} artifact(s) on disk, "
        f"{registered} registered or updated, {catalog.count()} catalogued"
    )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "datasets":
        return _cmd_datasets()
    if args.command == "align":
        return _cmd_align(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "robustness":
        return _cmd_robustness(args)
    if args.command == "run-suite":
        return _cmd_run_suite(args)
    if args.command == "export-artifact":
        return _cmd_export_artifact(args)
    if args.command == "query":
        return _cmd_query(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "serve-stats":
        return _cmd_serve_stats(args)
    if args.command == "catalog-sync":
        return _cmd_catalog_sync(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
