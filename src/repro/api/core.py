"""Transport-agnostic request handling for the alignment API.

Every HTTP transport — the FastAPI/ASGI app (:mod:`repro.api.asgi`) and the
dependency-free stdlib server (:mod:`repro.api.http`) — routes into the
handlers here, which in turn route into the one shared
:meth:`~repro.serve.service.AlignmentService.query` entry point.  The
transports only move bytes; validation, artifact resolution and stats all
happen once, in one place, so responses are byte-for-byte identical no
matter which server fronted them.

Endpoints (all JSON)::

    GET  /health                    liveness + engine/schema versions
    GET  /backends                  backend registries: every kind, each
                                    backend's availability/priority and the
                                    resolved "auto" choice
    GET  /artifacts                 catalog-backed listing (filters: dataset,
                                    method, dtype, name, kind; pagination:
                                    limit, offset; stable newest-first order)
    GET  /artifacts/<artifact_id>   one artifact: catalog record + hosted info
    GET  /stats                     service counters snapshot
    GET  /metrics                   Prometheus text exposition (?format=json
                                    for the JSON snapshot)
    POST /match                     batched argmax        {artifact_id, nodes}
    POST /top_k                     batched top-k         {artifact_id, nodes, k}
    POST /reverse                   reverse match / top-k {artifact_id, nodes[, k]}
    POST /query                     generic op            {artifact_id, op, nodes[, k]}

Errors are structured 4xx bodies (:class:`~repro.api.models.ApiError`):
``{"error": {"code", "message", "detail"}, "schema_version", ...}``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Mapping, Optional, Tuple, Union

from repro.api.models import (
    ApiBadRequestError,
    ApiError,
    ApiNotFoundError,
    ApiValidationError,
    artifact_list_payload,
    backend_list_payload,
    health_payload,
    parse_query_request,
    response_payload,
)
from repro.serve.artifacts import (
    ArtifactIntegrityError,
    ArtifactNotFoundError,
    ArtifactSchemaError,
    list_artifacts,
)
from repro.obs.exposition import (
    PROMETHEUS_CONTENT_TYPE,
    json_snapshot,
    prometheus_text,
)
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.serve.catalog import FILTER_FIELDS, ArtifactCatalog
from repro.serve.service import AlignmentService


@dataclass
class RawResponse:
    """A non-JSON response body (the ``/metrics`` exposition page).

    Both transports send ``text`` verbatim with ``content_type``, so the
    page is byte-identical no matter which server fronted it.
    """

    text: str
    content_type: str = PROMETHEUS_CONTENT_TYPE

    def encode(self) -> bytes:
        return self.text.encode("utf-8")


@dataclass
class ApiState:
    """Everything one API deployment serves from.

    Parameters
    ----------
    service:
        The hosting query service (created empty when omitted).
    root:
        Artifact store root.  When set, ``/artifacts`` answers from its
        SQLite catalog and queries for artifacts that are not hosted yet
        are resolved by loading them from the store on first use
        (``auto_load``).
    auto_load:
        Lazily load store artifacts the first time they are queried.
    metrics:
        Registry receiving the API-layer request series.  Defaults to the
        process-global registry so ``/metrics`` also exposes whatever else
        the process recorded (spans, cache counters); tests pass a private
        registry for isolation.
    """

    service: AlignmentService = field(default_factory=AlignmentService)
    root: Optional[Path] = None
    auto_load: bool = True
    metrics: MetricsRegistry = field(default_factory=default_registry)

    def __post_init__(self) -> None:
        if self.root is not None:
            self.root = Path(self.root)

    @property
    def catalog(self) -> Optional[ArtifactCatalog]:
        return ArtifactCatalog.for_store(self.root) if self.root else None

    def preload(self) -> int:
        """Host every artifact currently in the store; returns the count."""
        if self.root is None:
            return 0
        loaded = 0
        for manifest in list_artifacts(self.root):
            self.service.load(self.root, str(manifest["artifact_id"]))
            loaded += 1
        return loaded


# ----------------------------------------------------------------------
# handlers
# ----------------------------------------------------------------------
def handle_health(state: ApiState) -> Dict[str, object]:
    return health_payload(state.service.artifact_ids())


def handle_stats(state: ApiState) -> Dict[str, object]:
    return state.service.stats()


def _metrics_registries(state: ApiState) -> Tuple[MetricsRegistry, ...]:
    """The registries one scrape of ``state`` exposes (deduplicated)."""
    registries = [state.metrics]
    if state.service.metrics is not state.metrics:
        registries.append(state.service.metrics)
    return tuple(registries)


def handle_metrics(
    state: ApiState, params: Optional[Mapping[str, str]] = None
) -> Union[RawResponse, Dict[str, object]]:
    """``GET /metrics``: Prometheus text (default) or ``?format=json``.

    Exposes the API request series plus the service's per-op registry in
    one page.  The scrape itself is deliberately *not* counted in
    ``api_requests_total`` so back-to-back scrapes are identical — the
    transport-parity guarantee extends to this endpoint.
    """
    fmt = (params or {}).get("format", "prometheus")
    if fmt == "json":
        return json_snapshot(*_metrics_registries(state))
    if fmt != "prometheus":
        raise ApiBadRequestError(
            f"unknown metrics format {fmt!r}; expected prometheus or json"
        )
    return RawResponse(prometheus_text(*_metrics_registries(state)))


def handle_backends(state: ApiState) -> Dict[str, object]:
    """``GET /backends``: every registry kind, its backends, the auto choice.

    Availability runs through the registries' lazy predicates — an absent
    optional dependency (numba, ...) is reported ``available: false``
    without ever being imported.  ``auto`` is ``None`` for a kind with no
    usable backend at all.
    """
    # Imported here (not module top) so the API layer stays importable even
    # mid-bootstrap; seeding the built-in registries makes a fresh process
    # report all kinds, not just the ones something already touched.
    from repro.backend.compute import compute_registry
    from repro.backend.executor import executor_registry
    from repro.backend.registry import (
        BackendUnavailableError,
        get_registry,
        registered_kinds,
    )
    from repro.orbits.engine import orbit_registry

    orbit_registry()
    compute_registry()
    executor_registry()
    kinds: Dict[str, Dict[str, object]] = {}
    for kind in registered_kinds():
        registry = get_registry(kind)
        try:
            auto = registry.default()
        except BackendUnavailableError:
            auto = None
        kinds[kind] = {
            "auto": auto,
            "backends": [
                {"name": name, **info}
                for name, info in registry.describe().items()
            ],
        }
    return backend_list_payload(kinds)


def _parse_page_param(
    params: Dict[str, str], name: str, errors: list
) -> Optional[int]:
    """Pop and validate one non-negative integer pagination param."""
    raw = params.pop(name, None)
    if raw is None:
        return None
    try:
        value = int(raw)
    except (TypeError, ValueError):
        errors.append(
            {"loc": [name], "msg": f"must be a non-negative integer, got {raw!r}"}
        )
        return None
    if value < 0:
        errors.append({"loc": [name], "msg": f"must be >= 0, got {value}"})
        return None
    return value


def handle_artifacts(
    state: ApiState, params: Optional[Mapping[str, str]] = None
) -> Dict[str, object]:
    """Catalog-backed artifact listing (no directory walk when catalogued).

    Pagination: ``limit``/``offset`` over the stable
    ``(created_at DESC, artifact_id ASC)`` ordering, with ``total`` counting
    every match regardless of the page.  Bad filter or pagination params are
    a 422 with structured ``[{loc, msg}]`` detail entries (same error shape
    as the query-payload validator).
    """
    params = dict(params or {})
    errors: list = []
    limit = _parse_page_param(params, "limit", errors)
    offset = _parse_page_param(params, "offset", errors)
    for name in sorted(set(params) - set(FILTER_FIELDS)):
        errors.append(
            {
                "loc": [name],
                "msg": f"unknown filter; expected any of {list(FILTER_FIELDS)}",
            }
        )
    if errors:
        raise ApiValidationError(
            "; ".join(
                f"{'.'.join(map(str, e['loc']))}: {e['msg']}" for e in errors
            ),
            detail=errors,
        )
    catalog = state.catalog
    if catalog is not None:
        return artifact_list_payload(
            catalog.find(limit=limit, offset=offset, **params),
            source="catalog",
            total=catalog.count(**params),
            limit=limit,
            offset=offset,
        )
    # No store root: fall back to describing what is hosted in memory.
    if params:
        raise ApiBadRequestError(
            "filters require an artifact store (the service was started "
            "without --artifact-root)"
        )
    records = [
        state.service.describe(artifact_id)
        for artifact_id in state.service.artifact_ids()
    ]
    start = offset or 0
    stop = None if limit is None else start + limit
    return artifact_list_payload(
        records[start:stop],
        source="hosted",
        total=len(records),
        limit=limit,
        offset=offset,
    )


def handle_artifact_get(state: ApiState, artifact_id: str) -> Dict[str, object]:
    """One artifact: the catalog record plus hosted-index details (if any)."""
    record = None
    catalog = state.catalog
    if catalog is not None:
        record = catalog.get(artifact_id)
    hosted = artifact_id in state.service.artifact_ids()
    if record is None and not hosted:
        raise ApiNotFoundError(f"unknown artifact {artifact_id!r}")
    payload: Dict[str, object] = {"hosted": hosted}
    if record is not None:
        payload.update(record)
    if hosted:
        payload.update(state.service.describe(artifact_id))
    return payload


def _ensure_hosted(state: ApiState, artifact_id: str) -> None:
    """Auto-load a store artifact on first query (idempotent, races benign)."""
    if not state.auto_load or state.root is None:
        return
    if artifact_id in state.service.artifact_ids():
        return
    try:
        state.service.load(state.root, artifact_id)
    except ArtifactNotFoundError:
        pass  # the query below reports the standard unknown-artifact 404
    except (ArtifactSchemaError, ArtifactIntegrityError) as error:
        raise ApiBadRequestError(
            f"artifact {artifact_id!r} exists but cannot be served: {error}"
        )


def handle_query(
    state: ApiState,
    payload: Mapping,
    *,
    force_op: Optional[str] = None,
) -> Dict[str, object]:
    """Validate, route through ``service.query`` and render the wire body.

    ``force_op`` pins the op for the ``/match``-style routes.  The
    ``/reverse`` route passes ``force_op="reverse_match"`` or
    ``"reverse_top_k"`` depending on whether the payload carries ``k``.
    """
    request = parse_query_request(payload, force_op=force_op)
    _ensure_hosted(state, request.artifact_id)
    try:
        response = state.service.query(request)
    except KeyError:
        raise ApiNotFoundError(
            f"unknown artifact {request.artifact_id!r}; "
            f"hosted: {state.service.artifact_ids()}"
        )
    except (IndexError, ValueError) as error:
        raise ApiBadRequestError(str(error))
    return response_payload(response)


def _reverse_force_op(payload: Mapping) -> str:
    return "reverse_top_k" if isinstance(payload, Mapping) and (
        payload.get("k") is not None
    ) else "reverse_match"


#: POST routes and the op they pin (None = op comes from the body).
POST_ROUTES = {
    "/match": "match",
    "/top_k": "top_k",
    "/reverse": None,  # resolved by _reverse_force_op
    "/query": None,
}


def _endpoint_label(method: str, path: str) -> str:
    """Bounded-cardinality ``endpoint`` label of one request path."""
    if method == "GET":
        if path in ("/health", "/stats", "/artifacts", "/metrics", "/backends"):
            return path
        if path.startswith("/artifacts/"):
            return "/artifacts/{id}"
    elif method == "POST" and path in POST_ROUTES:
        return path
    return "other"


def _route(
    state: ApiState,
    method: str,
    path: str,
    params: Optional[Mapping[str, str]],
    body: Optional[Mapping],
) -> Tuple[int, Union[Dict[str, object], RawResponse]]:
    try:
        if method == "GET":
            if path == "/health":
                return 200, handle_health(state)
            if path == "/stats":
                return 200, handle_stats(state)
            if path == "/backends":
                return 200, handle_backends(state)
            if path == "/metrics":
                return 200, handle_metrics(state, params)
            if path == "/artifacts":
                return 200, handle_artifacts(state, params)
            if path.startswith("/artifacts/"):
                artifact_id = path[len("/artifacts/") :]
                if artifact_id and "/" not in artifact_id:
                    return 200, handle_artifact_get(state, artifact_id)
        elif method == "POST":
            if path == "/reverse":
                force_op: Optional[str] = _reverse_force_op(body or {})
            elif path in POST_ROUTES:
                force_op = POST_ROUTES[path]
            else:
                force_op = None
            if path in POST_ROUTES:
                return 200, handle_query(state, body or {}, force_op=force_op)
        raise ApiNotFoundError(f"no route for {method} {path}")
    except ApiError as error:
        return error.status, error.body()


def dispatch(
    state: ApiState,
    method: str,
    path: str,
    params: Optional[Mapping[str, str]] = None,
    body: Optional[Mapping] = None,
) -> Tuple[int, Union[Dict[str, object], RawResponse]]:
    """Route one request; returns ``(status, json_body)`` and never raises.

    This is the whole HTTP surface in one function — both bundled servers
    call it, and tests can drive it directly without opening a socket.
    Every request except ``/metrics`` scrapes is recorded into the state's
    registry as ``api_requests_total{endpoint,status}`` (status classes:
    2xx/4xx/...) and an ``api_request_seconds{endpoint}`` histogram.
    """
    if method == "GET" and path == "/metrics":
        # Scrapes are served un-instrumented so consecutive scrapes (and
        # scrapes through different transports) return identical bytes.
        return _route(state, method, path, params, body)
    started = time.perf_counter()
    status, payload = _route(state, method, path, params, body)
    elapsed = time.perf_counter() - started
    endpoint = _endpoint_label(method, path)
    state.metrics.counter(
        "api_requests_total", endpoint=endpoint, status=f"{status // 100}xx"
    ).inc()
    state.metrics.histogram("api_request_seconds", endpoint=endpoint).observe(
        elapsed
    )
    return status, payload


__all__ = [
    "ApiState",
    "POST_ROUTES",
    "RawResponse",
    "dispatch",
    "handle_artifact_get",
    "handle_artifacts",
    "handle_backends",
    "handle_health",
    "handle_metrics",
    "handle_query",
    "handle_stats",
]
