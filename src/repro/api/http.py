"""Dependency-free threaded HTTP server for the alignment API.

FastAPI/uvicorn are optional; this server is the guaranteed-available
fallback built on :mod:`http.server` from the standard library.  It speaks
exactly the same endpoints and bodies as the ASGI app because both route
into :func:`repro.api.core.dispatch` — the transport changes, the payloads
do not (the bench and the parity tests rely on this).

``ThreadingHTTPServer`` gives one thread per connection;
:class:`~repro.serve.service.AlignmentService` is thread-safe, so
concurrent clients are served without extra locking here.

Example
-------
>>> from repro.api import ApiState, make_server
>>> server = make_server(ApiState(), port=0)      # doctest: +SKIP
>>> server.serve_forever()                        # doctest: +SKIP
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from repro.api.core import ApiState, RawResponse, dispatch
from repro.api.models import ApiValidationError

#: Largest accepted request body; bigger batches should be split.
MAX_BODY_BYTES = 64 * 1024 * 1024


class ApiHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`ApiState`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], state: ApiState, quiet: bool = True):
        self.state = state
        self.quiet = quiet
        super().__init__(address, _Handler)


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"  # keep-alive: one connection per client
    # Send responses immediately: without TCP_NODELAY, Nagle + delayed ACK
    # adds ~40ms to every keep-alive request.
    disable_nagle_algorithm = True

    server: ApiHTTPServer

    def _send(self, status: int, payload) -> None:
        if isinstance(payload, RawResponse):
            body = payload.encode()
            content_type = payload.content_type
        else:
            body = json.dumps(payload).encode()
            content_type = "application/json"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Optional[dict]:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            self._send(
                413,
                ApiValidationError(
                    f"request body exceeds {MAX_BODY_BYTES} bytes"
                ).body(),
            )
            return None
        raw = self.rfile.read(length) if length else b"{}"
        try:
            body = json.loads(raw or b"{}")
        except json.JSONDecodeError as error:
            self._send(
                400,
                ApiValidationError(f"request body is not valid JSON: {error}").body(),
            )
            return None
        return body

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parts = urlsplit(self.path)
        params = dict(parse_qsl(parts.query))
        status, payload = dispatch(
            self.server.state, "GET", parts.path, params=params
        )
        self._send(status, payload)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        body = self._read_body()
        if body is None:
            return
        parts = urlsplit(self.path)
        status, payload = dispatch(
            self.server.state, "POST", parts.path, body=body
        )
        self._send(status, payload)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.server.quiet:  # pragma: no cover - debug aid
            super().log_message(format, *args)


def make_server(
    state: ApiState, host: str = "127.0.0.1", port: int = 8000, quiet: bool = True
) -> ApiHTTPServer:
    """Bind (``port=0`` picks a free port) without starting the serve loop."""
    return ApiHTTPServer((host, port), state, quiet=quiet)


class BackgroundServer:
    """A server running on a daemon thread — tests and benchmarks use this."""

    def __init__(self, state: ApiState, host: str = "127.0.0.1", port: int = 0):
        self.server = make_server(state, host, port)
        self.host, self.port = self.server.server_address[:2]
        self._thread = threading.Thread(
            target=self.server.serve_forever, name="repro-api", daemon=True
        )

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "BackgroundServer":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.server.shutdown()
        self.server.server_close()
        self._thread.join(timeout=10)


__all__ = ["ApiHTTPServer", "BackgroundServer", "MAX_BODY_BYTES", "make_server"]
