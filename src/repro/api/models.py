"""Typed request/response models of the alignment query surface.

One schema, three transports.  The HTTP endpoints (:mod:`repro.api.asgi`,
:mod:`repro.api.http`), the CLI ``query`` command and direct in-process
callers all speak the payload shapes defined here, and every wire payload
goes through the *same* validator (:func:`parse_query_request`) regardless
of transport — so a request that is invalid over HTTP is invalid everywhere,
with the same structured error body.

Every response carries ``schema_version`` (this payload schema),
``engine_version`` (the serving :mod:`repro` build), ``artifact_id`` and
``score_dtype``, so clients can pin what they are talking to.

The model classes themselves are **pydantic models when pydantic v2 is
importable and plain dataclasses otherwise** — mirroring the same fields
either way (``USING_PYDANTIC`` says which flavour is active).  pydantic is
an optional dependency exactly like FastAPI: nothing in this module (or in
the packages that import it) requires it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

import numpy as np

from repro import __version__ as ENGINE_VERSION

#: Version of the request/response payload schema (bump on breaking change).
#: 1.1: ``/stats`` grew the ``latency`` histogram-summary key and the
#: ``/metrics`` exposition endpoint appeared (additive, same major).
#: 1.2: ``GET /backends`` appeared; ``/artifacts`` gained ``limit``/``offset``
#: pagination with a ``total`` count and stable ordering; query responses and
#: ``/stats`` gained ``orbit_backend`` provenance (additive, same major).
API_SCHEMA_VERSION = "1.2"

#: Query operations, mirroring :class:`~repro.serve.service.AlignmentService`.
QUERY_OPS = ("match", "top_k", "reverse_match", "reverse_top_k")

#: Ops that require (and are the only ones that accept) a ``k``.
TOP_K_OPS = ("top_k", "reverse_top_k")

_REQUEST_FIELDS = ("artifact_id", "op", "nodes", "k")


# ----------------------------------------------------------------------
# structured errors (transport-independent; HTTP layers map them to codes)
# ----------------------------------------------------------------------
class ApiError(Exception):
    """A request failure with a structured, versioned JSON body."""

    status = 400
    code = "bad_request"

    def __init__(self, message: str, detail: Optional[List[Dict[str, object]]] = None):
        super().__init__(message)
        self.message = message
        self.detail = list(detail or [])

    def body(self) -> Dict[str, object]:
        """The JSON error body every transport returns."""
        return {
            "schema_version": API_SCHEMA_VERSION,
            "engine_version": ENGINE_VERSION,
            "error": {
                "code": self.code,
                "message": self.message,
                "detail": self.detail,
            },
        }


class ApiValidationError(ApiError):
    """The request payload does not match the schema (HTTP 422)."""

    status = 422
    code = "validation_error"


class ApiBadRequestError(ApiError):
    """A well-formed request that cannot be answered (HTTP 400)."""

    status = 400
    code = "bad_request"


class ApiNotFoundError(ApiError):
    """The requested artifact/route does not exist (HTTP 404)."""

    status = 404
    code = "not_found"


# ----------------------------------------------------------------------
# model classes: pydantic when importable, dataclasses otherwise
# ----------------------------------------------------------------------
def _probe_pydantic():
    try:
        import pydantic
    except ImportError:
        return None
    try:
        major = int(str(pydantic.VERSION).split(".")[0])
    except (AttributeError, ValueError):  # pragma: no cover - exotic builds
        return None
    return pydantic if major >= 2 else None


_pydantic = _probe_pydantic()

#: Whether the model classes below are pydantic models (vs dataclasses).
USING_PYDANTIC = _pydantic is not None

if USING_PYDANTIC:
    _config = _pydantic.ConfigDict(arbitrary_types_allowed=True, extra="forbid")

    class QueryRequest(_pydantic.BaseModel):
        """One batched query against one hosted artifact."""

        model_config = _config

        artifact_id: str
        op: str
        #: Node ids — a list on the wire; in-process callers may pass the
        #: ndarray straight through (validated by :func:`parse_query_request`
        #: for wire payloads, trusted for direct construction).
        nodes: Any
        k: Optional[int] = None

    class QueryResponse(_pydantic.BaseModel):
        """The versioned answer to one :class:`QueryRequest`."""

        model_config = _config

        schema_version: str
        engine_version: str
        artifact_id: str
        op: str
        k: Optional[int]
        score_dtype: str
        #: Orbit-counting backend that produced the artifact's orbits
        #: (``"unknown"`` when the artifact predates the provenance tag).
        orbit_backend: str
        n_nodes: int
        #: ``np.ndarray`` internally; :func:`response_payload` serialises.
        results: Any

else:
    import dataclasses

    @dataclasses.dataclass
    class QueryRequest:  # type: ignore[no-redef]
        """One batched query against one hosted artifact."""

        artifact_id: str
        op: str
        nodes: Any
        k: Optional[int] = None

    @dataclasses.dataclass
    class QueryResponse:  # type: ignore[no-redef]
        """The versioned answer to one :class:`QueryRequest`."""

        schema_version: str
        engine_version: str
        artifact_id: str
        op: str
        k: Optional[int]
        score_dtype: str
        orbit_backend: str
        n_nodes: int
        results: Any


if USING_PYDANTIC:

    def _construct(cls, values: Dict[str, Any]):
        """What ``model_construct`` does, minus per-field default handling.

        The query wrappers sit on an ~8M q/s hot path; the generic
        ``model_construct`` costs microseconds per call in field iteration
        we don't need because every field is always supplied.
        """
        model = cls.__new__(cls)
        object.__setattr__(model, "__dict__", values)
        object.__setattr__(model, "__pydantic_fields_set__", set(values))
        object.__setattr__(model, "__pydantic_extra__", None)
        object.__setattr__(model, "__pydantic_private__", None)
        return model

else:

    def _construct(cls, values: Dict[str, Any]):
        model = cls.__new__(cls)
        model.__dict__ = values
        return model


def make_query_request(
    artifact_id: str, op: str, nodes: Any, k: Optional[int] = None
) -> QueryRequest:
    """Cheap trusted constructor for in-process callers (no re-validation)."""
    return _construct(
        QueryRequest,
        {"artifact_id": artifact_id, "op": op, "nodes": nodes, "k": k},
    )


def make_query_response(
    request: QueryRequest,
    results: np.ndarray,
    score_dtype: str,
    orbit_backend: str = "unknown",
) -> QueryResponse:
    """Build the response for a served request (results stay an ndarray)."""
    return _construct(
        QueryResponse,
        {
            "schema_version": API_SCHEMA_VERSION,
            "engine_version": ENGINE_VERSION,
            "artifact_id": request.artifact_id,
            "op": request.op,
            "k": request.k if request.op in TOP_K_OPS else None,
            "score_dtype": score_dtype,
            "orbit_backend": orbit_backend,
            "n_nodes": (
                int(results.shape[0])
                if isinstance(results, np.ndarray)
                else len(results)
            ),
            "results": results,
        },
    )


# ----------------------------------------------------------------------
# the one wire validator
# ----------------------------------------------------------------------
def _fail(errors: List[Dict[str, object]]) -> None:
    raise ApiValidationError(
        "; ".join(f"{'.'.join(map(str, e['loc']))}: {e['msg']}" for e in errors),
        detail=errors,
    )


def parse_query_request(
    payload: Mapping, *, force_op: Optional[str] = None
) -> QueryRequest:
    """Validate one wire payload into a :class:`QueryRequest`.

    This is the single validation path shared by every transport.  Raises
    :class:`ApiValidationError` carrying ``[{loc, msg}, ...]`` entries on any
    schema violation: missing/unknown fields, a wrong-typed ``artifact_id``,
    an unknown ``op``, node ids that are not a flat integer sequence (floats,
    bools and strings are all "wrong dtype"), or a missing/invalid ``k`` for
    the top-k operations (``k`` on a non-top-k op is rejected too).

    ``force_op`` pins the operation (the ``/match``-style routes); a
    conflicting ``op`` field in the payload is then rejected.
    """
    if not isinstance(payload, Mapping):
        _fail([{"loc": [], "msg": "request body must be a JSON object"}])
    errors: List[Dict[str, object]] = []

    unknown = sorted(set(payload) - set(_REQUEST_FIELDS))
    for name in unknown:
        errors.append({"loc": [name], "msg": "unknown field"})

    artifact_id = payload.get("artifact_id")
    if not isinstance(artifact_id, str) or not artifact_id:
        errors.append(
            {"loc": ["artifact_id"], "msg": "a non-empty string is required"}
        )

    op = payload.get("op", force_op)
    if force_op is not None and payload.get("op") not in (None, force_op):
        errors.append(
            {"loc": ["op"], "msg": f"this endpoint only serves op={force_op!r}"}
        )
        op = force_op
    if op not in QUERY_OPS:
        errors.append(
            {"loc": ["op"], "msg": f"op must be one of {list(QUERY_OPS)}, got {op!r}"}
        )

    nodes = payload.get("nodes")
    node_array: Optional[np.ndarray] = None
    if isinstance(nodes, np.ndarray):
        node_array = nodes
    elif isinstance(nodes, (list, tuple)):
        node_array = np.asarray(nodes)
    else:
        errors.append({"loc": ["nodes"], "msg": "a list of node ids is required"})
    if node_array is not None:
        if node_array.ndim != 1:
            errors.append({"loc": ["nodes"], "msg": "node ids must be a flat list"})
            node_array = None
        elif node_array.size == 0:
            node_array = np.empty(0, dtype=np.intp)
        elif node_array.dtype.kind not in "iu":
            errors.append(
                {
                    "loc": ["nodes"],
                    "msg": "node ids must be integers, got "
                    f"dtype {node_array.dtype}",
                }
            )
            node_array = None
        else:
            node_array = node_array.astype(np.intp, copy=False)

    k = payload.get("k")
    if op in TOP_K_OPS:
        if isinstance(k, bool) or not isinstance(k, int):
            errors.append(
                {"loc": ["k"], "msg": f"op {op!r} requires an integer k"}
            )
        elif k < 1:
            errors.append({"loc": ["k"], "msg": f"k must be >= 1, got {k}"})
    elif k is not None:
        errors.append(
            {"loc": ["k"], "msg": f"k is only valid for ops {list(TOP_K_OPS)}"}
        )

    if errors:
        _fail(errors)
    return make_query_request(
        str(artifact_id), str(op), node_array, int(k) if k is not None else None
    )


# ----------------------------------------------------------------------
# payload rendering
# ----------------------------------------------------------------------
def response_payload(response: QueryResponse) -> Dict[str, object]:
    """The JSON-safe wire dict of a :class:`QueryResponse`.

    ``results`` is rendered as plain ints — a flat list for ``match`` /
    ``reverse_match``, one row per queried node for the top-k ops — so an
    HTTP client reading this payload sees values bit-identical to what a
    direct :class:`~repro.serve.service.AlignmentService` call returns.
    """
    results = response.results
    if isinstance(results, np.ndarray):
        results = results.tolist()
    return {
        "schema_version": response.schema_version,
        "engine_version": response.engine_version,
        "artifact_id": response.artifact_id,
        "op": response.op,
        "k": response.k,
        "score_dtype": response.score_dtype,
        "orbit_backend": getattr(response, "orbit_backend", "unknown"),
        "n_nodes": response.n_nodes,
        "results": results,
    }


def health_payload(artifact_ids: List[str]) -> Dict[str, object]:
    """The ``GET /health`` body."""
    return {
        "status": "ok",
        "schema_version": API_SCHEMA_VERSION,
        "engine_version": ENGINE_VERSION,
        "n_artifacts": len(artifact_ids),
        "artifacts": list(artifact_ids),
    }


def artifact_list_payload(
    records: List[Dict[str, object]],
    source: str,
    *,
    total: Optional[int] = None,
    limit: Optional[int] = None,
    offset: Optional[int] = None,
) -> Dict[str, object]:
    """The ``GET /artifacts`` body (``source``: ``"catalog"`` or ``"hosted"``).

    ``records`` is the returned page; ``total`` counts every record matching
    the filters regardless of pagination (defaults to the page length, which
    is only correct when no pagination was requested).  The echoed ``limit``
    and ``offset`` let clients page statelessly.
    """
    return {
        "schema_version": API_SCHEMA_VERSION,
        "engine_version": ENGINE_VERSION,
        "source": source,
        "total": len(records) if total is None else int(total),
        "limit": limit,
        "offset": offset,
        "n_artifacts": len(records),
        "artifacts": records,
    }


def backend_list_payload(
    kinds: Mapping[str, Dict[str, object]]
) -> Dict[str, object]:
    """The ``GET /backends`` body.

    ``kinds`` maps each registry kind to ``{"auto": <name-or-None>,
    "backends": [{"name", "available", "priority"}, ...]}`` — built by
    :func:`repro.api.core.handle_backends` from the live registries.
    """
    return {
        "schema_version": API_SCHEMA_VERSION,
        "engine_version": ENGINE_VERSION,
        "kinds": {kind: kinds[kind] for kind in sorted(kinds)},
    }


__all__ = [
    "API_SCHEMA_VERSION",
    "ENGINE_VERSION",
    "QUERY_OPS",
    "TOP_K_OPS",
    "USING_PYDANTIC",
    "ApiError",
    "ApiValidationError",
    "ApiBadRequestError",
    "ApiNotFoundError",
    "QueryRequest",
    "QueryResponse",
    "make_query_request",
    "make_query_response",
    "parse_query_request",
    "response_payload",
    "health_payload",
    "artifact_list_payload",
    "backend_list_payload",
]
