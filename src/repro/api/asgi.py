"""FastAPI/ASGI front-end for the alignment API (optional dependency).

FastAPI is probed lazily, exactly like the accelerated backends in
:mod:`repro.backend`: importing this module never imports FastAPI, and
:func:`fastapi_available` answers whether :func:`create_app` can work.
Everything the app does routes into :func:`repro.api.core.dispatch`, so its
responses are identical to the stdlib fallback server's
(:mod:`repro.api.http`) — FastAPI only contributes the ASGI transport
(uvicorn/hypercorn workers, OpenAPI docs at ``/docs``).

Run it under uvicorn either through the CLI (``repro.cli serve --server
uvicorn``) or directly via the env-configured factory::

    REPRO_ARTIFACT_ROOT=artifacts uvicorn --factory repro.api.asgi:create_default_app
"""

from __future__ import annotations

import importlib.util
import os
from typing import Optional

from repro.api.core import ApiState, RawResponse, dispatch
from repro.api.models import API_SCHEMA_VERSION, ENGINE_VERSION


def fastapi_available() -> bool:
    """Whether the optional FastAPI dependency is importable."""
    return importlib.util.find_spec("fastapi") is not None


def create_app(state: Optional[ApiState] = None, root: Optional[str] = None):
    """Build the FastAPI application serving ``state``.

    Raises ``RuntimeError`` with an install hint when FastAPI is missing —
    callers that must always work use the stdlib server instead
    (:func:`repro.api.http.make_server`).
    """
    if not fastapi_available():
        raise RuntimeError(
            "FastAPI is not installed; `pip install fastapi uvicorn` to serve "
            "the ASGI app, or use the dependency-free stdlib server "
            "(repro.cli serve --server stdlib)"
        )
    from fastapi import FastAPI, Request
    from fastapi.responses import JSONResponse, Response

    if state is None:
        state = ApiState(root=root)

    app = FastAPI(
        title="repro alignment API",
        version=ENGINE_VERSION,
        description=(
            "Batched network-alignment queries over persisted artifacts "
            f"(payload schema {API_SCHEMA_VERSION})"
        ),
    )
    app.state.api_state = state

    def _json(status_payload) -> JSONResponse:
        status, payload = status_payload
        return JSONResponse(status_code=status, content=payload)

    @app.get("/health")
    def health() -> JSONResponse:
        return _json(dispatch(state, "GET", "/health"))

    @app.get("/stats")
    def stats() -> JSONResponse:
        return _json(dispatch(state, "GET", "/stats"))

    @app.get("/backends")
    def backends() -> JSONResponse:
        return _json(dispatch(state, "GET", "/backends"))

    @app.get("/metrics")
    def metrics(request: Request) -> Response:
        params = dict(request.query_params)
        status, payload = dispatch(state, "GET", "/metrics", params=params)
        if isinstance(payload, RawResponse):
            return Response(
                content=payload.encode(),
                status_code=status,
                media_type=payload.content_type,
            )
        return _json((status, payload))

    @app.get("/artifacts")
    def artifacts(request: Request) -> JSONResponse:
        params = dict(request.query_params)
        return _json(dispatch(state, "GET", "/artifacts", params=params))

    @app.get("/artifacts/{artifact_id}")
    def artifact(artifact_id: str) -> JSONResponse:
        return _json(dispatch(state, "GET", f"/artifacts/{artifact_id}"))

    async def _post(request: Request, path: str) -> JSONResponse:
        body = await request.json()
        return _json(dispatch(state, "POST", path, body=body))

    @app.post("/match")
    async def match(request: Request) -> JSONResponse:
        return await _post(request, "/match")

    @app.post("/top_k")
    async def top_k(request: Request) -> JSONResponse:
        return await _post(request, "/top_k")

    @app.post("/reverse")
    async def reverse(request: Request) -> JSONResponse:
        return await _post(request, "/reverse")

    @app.post("/query")
    async def query(request: Request) -> JSONResponse:
        return await _post(request, "/query")

    return app


def create_default_app():
    """uvicorn ``--factory`` entry point configured by environment variables.

    ``REPRO_ARTIFACT_ROOT`` names the store (default ``artifacts``);
    ``REPRO_API_PRELOAD=1`` hosts every stored artifact at startup instead
    of lazily on first query.
    """
    state = ApiState(root=os.environ.get("REPRO_ARTIFACT_ROOT", "artifacts"))
    if os.environ.get("REPRO_API_PRELOAD", "") not in ("", "0"):
        state.preload()
    return create_app(state)


def run_uvicorn(
    state: ApiState, host: str = "127.0.0.1", port: int = 8000, **kwargs
) -> None:
    """Serve ``state`` under uvicorn (raises when uvicorn is missing)."""
    if importlib.util.find_spec("uvicorn") is None:
        raise RuntimeError(
            "uvicorn is not installed; `pip install uvicorn` or use "
            "repro.cli serve --server stdlib"
        )
    import uvicorn

    uvicorn.run(create_app(state), host=host, port=port, **kwargs)


__all__ = [
    "create_app",
    "create_default_app",
    "fastapi_available",
    "run_uvicorn",
]
