"""Network-facing alignment API: one typed query surface, many transports.

This package makes the :mod:`repro.serve` stack reachable over the network
without changing what a query *means* anywhere:

* :mod:`repro.api.models` — versioned request/response payloads (pydantic
  models when pydantic v2 is installed, mirrored dataclasses otherwise) and
  the single wire validator every transport shares,
* :mod:`repro.api.core` — transport-agnostic routing into the one shared
  :meth:`~repro.serve.service.AlignmentService.query` entry point, plus the
  SQLite-catalog-backed ``/artifacts`` listing,
* :mod:`repro.api.http` — a dependency-free threaded stdlib server (always
  available; what the benchmark and CI parity checks run against),
* :mod:`repro.api.asgi` — the FastAPI/ASGI app for production serving under
  uvicorn.  FastAPI is an optional dependency probed lazily, exactly like
  the accelerated compute backends: nothing here imports it at module load.

The CLI front door is ``repro.cli serve``; in-process callers can skip HTTP
entirely and call ``AlignmentService.query`` with the same typed models.

Only :mod:`repro.api.models` is imported eagerly — the transport modules
load on first attribute access (PEP 562), which keeps
``repro.serve.service`` → ``repro.api.models`` free of an import cycle.
"""

import importlib

from repro.api.models import (
    API_SCHEMA_VERSION,
    USING_PYDANTIC,
    ApiBadRequestError,
    ApiError,
    ApiNotFoundError,
    ApiValidationError,
    QueryRequest,
    QueryResponse,
    make_query_request,
    parse_query_request,
    response_payload,
)

#: Lazily resolved exports → the submodule that defines them.
_LAZY = {
    "ApiState": "repro.api.core",
    "RawResponse": "repro.api.core",
    "dispatch": "repro.api.core",
    "ApiHTTPServer": "repro.api.http",
    "BackgroundServer": "repro.api.http",
    "make_server": "repro.api.http",
    "create_app": "repro.api.asgi",
    "create_default_app": "repro.api.asgi",
    "fastapi_available": "repro.api.asgi",
    "run_uvicorn": "repro.api.asgi",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_LAZY))


__all__ = [
    "API_SCHEMA_VERSION",
    "ApiBadRequestError",
    "ApiError",
    "ApiHTTPServer",
    "ApiNotFoundError",
    "ApiState",
    "ApiValidationError",
    "BackgroundServer",
    "QueryRequest",
    "QueryResponse",
    "RawResponse",
    "USING_PYDANTIC",
    "create_app",
    "create_default_app",
    "dispatch",
    "fastapi_available",
    "make_query_request",
    "make_server",
    "parse_query_request",
    "response_payload",
    "run_uvicorn",
]
