"""Graph diffusion matrices.

The HTC-DT ablation (paper Table III) replaces graphlet-orbit matrices with
diffusion matrices of varying order, following Klicpera et al. (2019).  Two
standard kernels are provided: truncated personalised PageRank and the heat
kernel.  Both operate on the symmetrically normalised adjacency (with self
loops), return dense or sparsified matrices, and are deterministic.
"""

from __future__ import annotations

from typing import List

import numpy as np
import scipy.sparse as sp

from repro.graph.attributed_graph import AttributedGraph
from repro.graph.laplacian import normalized_laplacian


def _sparsify(matrix: np.ndarray, threshold: float) -> sp.csr_matrix:
    """Drop entries below ``threshold`` and return a CSR matrix."""
    dense = np.where(np.abs(matrix) >= threshold, matrix, 0.0)
    return sp.csr_matrix(dense)


def ppr_matrix(
    graph: AttributedGraph,
    alpha: float = 0.15,
    order: int = 5,
    threshold: float = 1e-4,
) -> sp.csr_matrix:
    """Truncated personalised-PageRank diffusion matrix.

    ``S = alpha * sum_{k=0}^{order} (1 - alpha)^k T^k`` where ``T`` is the
    symmetric GCN propagation matrix.  ``alpha`` is the teleport probability
    (paper uses 0.15, order 5 for the best HTC-DT result).
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    if order < 1:
        raise ValueError(f"order must be >= 1, got {order}")
    transition = normalized_laplacian(graph.adjacency).toarray()
    n = transition.shape[0]
    result = np.zeros((n, n), dtype=np.float64)
    power = np.eye(n)
    coeff = alpha
    for _ in range(order + 1):
        result += coeff * power
        power = power @ transition
        coeff *= 1.0 - alpha
    return _sparsify(result, threshold)


def heat_kernel_matrix(
    graph: AttributedGraph,
    t: float = 3.0,
    order: int = 5,
    threshold: float = 1e-4,
) -> sp.csr_matrix:
    """Truncated heat-kernel diffusion ``S = sum_k e^{-t} t^k / k! * T^k``."""
    if t <= 0:
        raise ValueError(f"t must be positive, got {t}")
    if order < 1:
        raise ValueError(f"order must be >= 1, got {order}")
    transition = normalized_laplacian(graph.adjacency).toarray()
    n = transition.shape[0]
    result = np.zeros((n, n), dtype=np.float64)
    power = np.eye(n)
    coeff = np.exp(-t)
    factorial = 1.0
    for k in range(order + 1):
        if k > 0:
            factorial *= k
        result += coeff * (t**k) / factorial * power
        power = power @ transition
    return _sparsify(result, threshold)


def diffusion_matrix_family(
    graph: AttributedGraph,
    orders: List[int],
    alpha: float = 0.15,
    threshold: float = 1e-4,
) -> List[sp.csr_matrix]:
    """Return a list of PPR diffusion matrices, one per truncation order.

    The HTC-DT ablation feeds this family to the encoder in place of the
    graphlet-orbit matrices.
    """
    if not orders:
        raise ValueError("orders must be a non-empty list")
    return [
        ppr_matrix(graph, alpha=alpha, order=order, threshold=threshold)
        for order in orders
    ]


__all__ = ["ppr_matrix", "heat_kernel_matrix", "diffusion_matrix_family"]
