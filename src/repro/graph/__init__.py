"""Attributed-graph substrate.

This package provides the in-memory representation of an attributed network
``G = (V, A, X)`` used throughout the library, together with

* builders from edge lists and :mod:`networkx` graphs,
* the orbit-aware Laplacian construction from the paper (Eq. 3 self
  connections + symmetric normalisation),
* structural perturbation (edge removal, node permutation, attribute noise)
  used to synthesise target networks,
* graph diffusion matrices (personalised PageRank / heat kernel) used by the
  HTC-DT ablation, and
* random graph generators used by the synthetic datasets.
"""

from repro.graph.attributed_graph import AttributedGraph
from repro.graph.builders import from_edge_list, from_networkx, to_networkx
from repro.graph.diffusion import heat_kernel_matrix, ppr_matrix
from repro.graph.generators import (
    erdos_renyi_graph,
    powerlaw_cluster_graph,
    sbm_graph,
)
from repro.graph.laplacian import (
    normalized_laplacian,
    orbit_laplacian,
    self_connection_matrix,
)
from repro.graph.perturbation import (
    add_attribute_noise,
    permute_graph,
    remove_edges,
)
from repro.graph.validation import validate_graph

__all__ = [
    "AttributedGraph",
    "from_edge_list",
    "from_networkx",
    "to_networkx",
    "normalized_laplacian",
    "self_connection_matrix",
    "orbit_laplacian",
    "remove_edges",
    "permute_graph",
    "add_attribute_noise",
    "ppr_matrix",
    "heat_kernel_matrix",
    "erdos_renyi_graph",
    "powerlaw_cluster_graph",
    "sbm_graph",
    "validate_graph",
]
