"""Orbit-aware Laplacian construction (paper §IV-B).

The HTC encoder aggregates messages along orbit-weighted edges.  The pieces
are:

* :func:`self_connection_matrix` — Eq. (3): a node's self weight equals the
  weight of its strongest neighbour on that orbit (or 1 if it is isolated on
  the orbit), so the self term is not drowned out by large orbit counts.
* :func:`orbit_laplacian` — the modified orbit matrix
  ``~O_k = O_k + C_k`` symmetrically normalised:
  ``~L_k = ~F^{-1/2} ~O_k ~F^{-1/2}`` where ``~F`` is the diagonal of row sums.
* :func:`normalized_laplacian` — the same construction applied to a plain
  adjacency matrix with identity self-loops (the classic GCN propagation
  matrix used by GAlign and the low-order ablation).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.utils.sparse import MatrixLike, safe_inverse_sqrt, to_csr


def self_connection_matrix(orbit_matrix: MatrixLike) -> sp.csr_matrix:
    """Return the diagonal self-connection matrix ``C_k`` of Eq. (3).

    ``C_k(i, i) = max_j O_k(i, j)`` when node ``i`` has at least one neighbour
    on orbit ``k``, else 1.
    """
    orbit = to_csr(orbit_matrix)
    n = orbit.shape[0]
    max_per_row = np.zeros(n, dtype=np.float64)
    if orbit.nnz:
        # CSR max over rows; sparse .max(axis=1) returns a matrix of maxima
        # over stored entries which is what we need (weights are positive).
        row_max = orbit.max(axis=1)
        max_per_row = np.asarray(row_max.todense()).ravel()
    diag = np.where(max_per_row > 0, max_per_row, 1.0)
    return sp.diags(diag).tocsr()


def _symmetric_normalize(matrix: sp.csr_matrix) -> sp.csr_matrix:
    """Symmetrically normalise a non-negative matrix by its row sums."""
    row_sums = np.asarray(matrix.sum(axis=1)).ravel()
    inv_sqrt = safe_inverse_sqrt(row_sums)
    d_inv_sqrt = sp.diags(inv_sqrt)
    return d_inv_sqrt.dot(matrix).dot(d_inv_sqrt).tocsr()


def orbit_laplacian(orbit_matrix: MatrixLike) -> sp.csr_matrix:
    """Return ``~L_k`` for one orbit matrix (self connection + normalisation)."""
    orbit = to_csr(orbit_matrix)
    if orbit.shape[0] != orbit.shape[1]:
        raise ValueError(f"orbit matrix must be square, got {orbit.shape}")
    if orbit.nnz and orbit.data.min() < 0:
        raise ValueError("orbit matrix must be non-negative")
    modified = (orbit + self_connection_matrix(orbit)).tocsr()
    return _symmetric_normalize(modified)


def normalized_laplacian(adjacency: MatrixLike) -> sp.csr_matrix:
    """Classic GCN propagation matrix ``D^{-1/2} (A + I) D^{-1/2}``."""
    adj = to_csr(adjacency)
    if adj.shape[0] != adj.shape[1]:
        raise ValueError(f"adjacency must be square, got {adj.shape}")
    with_self = (adj + sp.identity(adj.shape[0], format="csr")).tocsr()
    return _symmetric_normalize(with_self)


def reinforced_laplacian(
    laplacian: MatrixLike, reinforcement: np.ndarray
) -> sp.csr_matrix:
    """Apply a diagonal reinforcement matrix on both sides: ``R L R`` (Eq. 14)."""
    lap = to_csr(laplacian)
    reinforcement = np.asarray(reinforcement, dtype=np.float64).ravel()
    if reinforcement.shape[0] != lap.shape[0]:
        raise ValueError(
            f"reinforcement vector has length {reinforcement.shape[0]} "
            f"but Laplacian has {lap.shape[0]} rows"
        )
    if np.any(reinforcement <= 0):
        raise ValueError("reinforcement factors must be strictly positive")
    r_diag = sp.diags(reinforcement)
    return r_diag.dot(lap).dot(r_diag).tocsr()


__all__ = [
    "self_connection_matrix",
    "orbit_laplacian",
    "normalized_laplacian",
    "reinforced_laplacian",
]
