"""The :class:`AttributedGraph` data structure.

An attributed network is ``G = (V, A, X)`` (paper §III): ``n`` nodes, a sparse
undirected adjacency matrix ``A`` and a dense node-attribute matrix ``X`` of
shape ``(n, d)``.  The class is an immutable value object; perturbation and
construction helpers live in :mod:`repro.graph.perturbation` and
:mod:`repro.graph.builders`.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.utils.sparse import MatrixLike, is_symmetric, symmetrize, to_csr


class AttributedGraph:
    """An undirected attributed network ``G = (V, A, X)``.

    Parameters
    ----------
    adjacency:
        ``(n, n)`` adjacency matrix (dense or scipy sparse).  It is converted
        to CSR, symmetrised if requested, and its diagonal is cleared (the
        model adds its own self-connections, Eq. 3 of the paper).
    attributes:
        Optional ``(n, d)`` dense attribute matrix.  If omitted, a single
        constant attribute column is used so purely structural methods still
        work.
    name:
        Optional human-readable name (used in logs and reports).
    ensure_symmetric:
        If True (default) the adjacency is replaced by ``max(A, A^T)``.
    """

    def __init__(
        self,
        adjacency: MatrixLike,
        attributes: Optional[np.ndarray] = None,
        name: str = "graph",
        ensure_symmetric: bool = True,
    ) -> None:
        adj = to_csr(adjacency)
        if adj.shape[0] != adj.shape[1]:
            raise ValueError(f"adjacency must be square, got shape {adj.shape}")
        if ensure_symmetric:
            adj = symmetrize(adj)
        elif not is_symmetric(adj):
            raise ValueError(
                "adjacency is not symmetric; pass ensure_symmetric=True to fix"
            )
        adj = adj.tolil()
        adj.setdiag(0)
        adj = adj.tocsr()
        adj.eliminate_zeros()
        self._adjacency = adj

        n = adj.shape[0]
        if attributes is None:
            attributes = np.ones((n, 1), dtype=np.float64)
        attributes = np.asarray(attributes, dtype=np.float64)
        if attributes.ndim != 2:
            raise ValueError(
                f"attributes must be a 2-D array, got shape {attributes.shape}"
            )
        if attributes.shape[0] != n:
            raise ValueError(
                f"attributes has {attributes.shape[0]} rows but graph has {n} nodes"
            )
        self._attributes = attributes
        self.name = str(name)

    @classmethod
    def _from_validated_csr(
        cls,
        adjacency: sp.csr_matrix,
        attributes: np.ndarray,
        name: str,
    ) -> "AttributedGraph":
        """Trusted constructor for callers that guarantee a clean matrix.

        ``adjacency`` must already be a canonical CSR: symmetric, zero
        diagonal, sorted indices, no explicit zeros; ``attributes`` must be
        a validated ``(n, d)`` float64 matrix (e.g. taken from an existing
        graph).  Used by hot paths that rebuild graphs they derived from a
        validated one (:mod:`repro.orbits.delta`) — the public constructor's
        symmetrise/clean pass costs more than an entire delta recount.
        """
        graph = cls.__new__(cls)
        graph._adjacency = adjacency
        graph._attributes = attributes
        graph.name = str(name)
        return graph

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def adjacency(self) -> sp.csr_matrix:
        """The ``(n, n)`` CSR adjacency matrix (no self loops)."""
        return self._adjacency

    @property
    def attributes(self) -> np.ndarray:
        """The ``(n, d)`` dense node-attribute matrix."""
        return self._attributes

    @property
    def n_nodes(self) -> int:
        """Number of nodes ``n``."""
        return self._adjacency.shape[0]

    @property
    def n_edges(self) -> int:
        """Number of undirected edges."""
        return int(self._adjacency.nnz // 2)

    @property
    def n_attributes(self) -> int:
        """Attribute dimensionality ``d``."""
        return self._attributes.shape[1]

    @property
    def degrees(self) -> np.ndarray:
        """Unweighted node degrees as an ``(n,)`` int array."""
        binary = (self._adjacency != 0).astype(np.int64)
        return np.asarray(binary.sum(axis=1)).ravel()

    @property
    def average_degree(self) -> float:
        """Average unweighted node degree."""
        if self.n_nodes == 0:
            return 0.0
        return float(self.degrees.mean())

    # ------------------------------------------------------------------
    # neighbourhood / edge iteration
    # ------------------------------------------------------------------
    def neighbors(self, node: int) -> np.ndarray:
        """Return the sorted neighbour indices of ``node``."""
        if not (0 <= node < self.n_nodes):
            raise IndexError(f"node {node} out of range [0, {self.n_nodes})")
        row = self._adjacency.getrow(node)
        return np.sort(row.indices)

    def has_edge(self, u: int, v: int) -> bool:
        """Return True if the undirected edge ``(u, v)`` exists."""
        if not (0 <= u < self.n_nodes and 0 <= v < self.n_nodes):
            return False
        return bool(self._adjacency[u, v] != 0)

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over undirected edges as ``(u, v)`` with ``u < v``."""
        coo = sp.triu(self._adjacency, k=1).tocoo()
        order = np.lexsort((coo.col, coo.row))
        for idx in order:
            yield int(coo.row[idx]), int(coo.col[idx])

    def edge_list(self) -> List[Tuple[int, int]]:
        """Return the undirected edge list as a list of ``(u, v)``, ``u < v``."""
        return list(self.edges())

    def adjacency_sets(self) -> List[set]:
        """Return per-node neighbour sets (used by the orbit counters)."""
        indptr = self._adjacency.indptr
        indices = self._adjacency.indices
        return [
            set(indices[indptr[i]:indptr[i + 1]].tolist())
            for i in range(self.n_nodes)
        ]

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def subgraph(self, nodes: np.ndarray) -> "AttributedGraph":
        """Induced subgraph on ``nodes`` (relabelled to 0..len(nodes)-1)."""
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.ndim != 1:
            raise ValueError("nodes must be a 1-D index array")
        sub_adj = self._adjacency[nodes][:, nodes]
        sub_attr = self._attributes[nodes]
        return AttributedGraph(sub_adj, sub_attr, name=f"{self.name}[sub]")

    def with_attributes(self, attributes: np.ndarray) -> "AttributedGraph":
        """Return a copy of the graph with a different attribute matrix."""
        return AttributedGraph(
            self._adjacency.copy(), attributes, name=self.name, ensure_symmetric=False
        )

    def copy(self) -> "AttributedGraph":
        """Deep copy of the graph."""
        return AttributedGraph(
            self._adjacency.copy(),
            self._attributes.copy(),
            name=self.name,
            ensure_symmetric=False,
        )

    # ------------------------------------------------------------------
    # dunder helpers
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AttributedGraph):
            return NotImplemented
        if self.n_nodes != other.n_nodes:
            return False
        same_adj = (self._adjacency != other._adjacency).nnz == 0
        same_attr = np.array_equal(self._attributes, other._attributes)
        return bool(same_adj and same_attr)

    def __repr__(self) -> str:
        return (
            f"AttributedGraph(name={self.name!r}, n_nodes={self.n_nodes}, "
            f"n_edges={self.n_edges}, n_attributes={self.n_attributes})"
        )


__all__ = ["AttributedGraph"]
