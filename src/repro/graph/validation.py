"""Graph validation helpers.

``validate_graph`` performs structural sanity checks that catch the most
common data errors (asymmetry, self loops, NaN attributes) before a graph
enters the alignment pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.graph.attributed_graph import AttributedGraph
from repro.utils.sparse import is_symmetric


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_graph`."""

    valid: bool
    issues: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.valid


def validate_graph(graph: AttributedGraph, strict: bool = False) -> ValidationReport:
    """Check structural invariants of ``graph``.

    Parameters
    ----------
    graph:
        The graph to validate.
    strict:
        If True, raise ``ValueError`` on the first issue instead of returning
        a report.
    """
    issues: List[str] = []

    adjacency = graph.adjacency
    if adjacency.shape[0] != adjacency.shape[1]:
        issues.append(f"adjacency is not square: {adjacency.shape}")
    if not is_symmetric(adjacency):
        issues.append("adjacency is not symmetric")
    if adjacency.diagonal().any():
        issues.append("adjacency has self loops")
    if adjacency.nnz and adjacency.data.min() < 0:
        issues.append("adjacency has negative weights")

    attributes = graph.attributes
    if attributes.shape[0] != graph.n_nodes:
        issues.append(
            f"attribute rows ({attributes.shape[0]}) != node count ({graph.n_nodes})"
        )
    if not np.isfinite(attributes).all():
        issues.append("attributes contain NaN or infinite values")

    isolated = int((graph.degrees == 0).sum())
    if isolated:
        issues.append(f"{isolated} isolated node(s)")

    # Isolated nodes are a warning, not an error: the pipeline handles them.
    hard_issues = [issue for issue in issues if "isolated" not in issue]
    report = ValidationReport(valid=not hard_issues, issues=issues)
    if strict and hard_issues:
        raise ValueError("invalid graph: " + "; ".join(hard_issues))
    return report


__all__ = ["ValidationReport", "validate_graph"]
