"""Constructors converting external graph formats to :class:`AttributedGraph`."""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.graph.attributed_graph import AttributedGraph
from repro.utils.sparse import sparse_from_edges


def from_edge_list(
    edges: Iterable[Tuple[int, int]],
    n_nodes: Optional[int] = None,
    attributes: Optional[np.ndarray] = None,
    name: str = "graph",
) -> AttributedGraph:
    """Build an :class:`AttributedGraph` from an integer edge list.

    Parameters
    ----------
    edges:
        Iterable of ``(u, v)`` pairs; node ids must be non-negative integers.
    n_nodes:
        Total node count.  If omitted it is inferred as ``max(node id) + 1``.
    attributes:
        Optional ``(n_nodes, d)`` attribute matrix.
    """
    edge_list = [(int(u), int(v)) for u, v in edges]
    if any(u < 0 or v < 0 for u, v in edge_list):
        raise ValueError("node ids must be non-negative integers")
    if n_nodes is None:
        if not edge_list:
            raise ValueError("cannot infer n_nodes from an empty edge list")
        n_nodes = max(max(u, v) for u, v in edge_list) + 1
    elif edge_list:
        largest = max(max(u, v) for u, v in edge_list)
        if largest >= n_nodes:
            raise ValueError(
                f"edge references node {largest} but n_nodes is {n_nodes}"
            )
    adjacency = sparse_from_edges(edge_list, n_nodes)
    adjacency.data[:] = 1.0
    return AttributedGraph(adjacency, attributes, name=name)


def from_networkx(
    graph: nx.Graph,
    attribute_keys: Optional[Sequence[str]] = None,
    attributes: Optional[np.ndarray] = None,
    name: Optional[str] = None,
) -> AttributedGraph:
    """Convert an undirected :class:`networkx.Graph`.

    Nodes are relabelled to ``0..n-1`` in sorted node order.  Attributes come
    either from an explicit ``attributes`` matrix or by stacking the numeric
    node-attribute values listed in ``attribute_keys``.
    """
    if graph.is_directed():
        graph = graph.to_undirected()
    nodes = sorted(graph.nodes())
    index = {node: i for i, node in enumerate(nodes)}
    edges = [(index[u], index[v]) for u, v in graph.edges() if u != v]

    if attributes is None and attribute_keys:
        rows = []
        for node in nodes:
            data = graph.nodes[node]
            rows.append([float(data[key]) for key in attribute_keys])
        attributes = np.asarray(rows, dtype=np.float64)

    graph_name = name if name is not None else str(graph.name or "graph")
    if not edges:
        import scipy.sparse as sp

        adjacency = sp.csr_matrix((len(nodes), len(nodes)), dtype=np.float64)
        return AttributedGraph(adjacency, attributes, name=graph_name)
    return from_edge_list(edges, n_nodes=len(nodes), attributes=attributes, name=graph_name)


def to_networkx(graph: AttributedGraph, include_attributes: bool = False) -> nx.Graph:
    """Convert an :class:`AttributedGraph` back to a :class:`networkx.Graph`."""
    nx_graph = nx.Graph(name=graph.name)
    nx_graph.add_nodes_from(range(graph.n_nodes))
    nx_graph.add_edges_from(graph.edges())
    if include_attributes:
        for node in range(graph.n_nodes):
            nx_graph.nodes[node]["x"] = graph.attributes[node].copy()
    return nx_graph


__all__ = ["from_edge_list", "from_networkx", "to_networkx"]
