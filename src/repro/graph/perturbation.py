"""Structural and attribute perturbations.

The paper builds synthetic target networks by randomly removing a fraction of
edges from a real source network (robustness test, §V-D) and permuting node
identities.  These helpers implement that protocol plus attribute noise, and
are used by :mod:`repro.datasets.synthetic` to create every evaluation pair.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.graph.attributed_graph import AttributedGraph
from repro.utils.random import RandomStateLike, check_random_state
from repro.utils.sparse import sparse_from_edges


def remove_edges(
    graph: AttributedGraph,
    ratio: float,
    random_state: RandomStateLike = None,
) -> AttributedGraph:
    """Return a copy of ``graph`` with ``ratio`` of its edges removed uniformly.

    Parameters
    ----------
    graph:
        The source graph.
    ratio:
        Fraction of undirected edges to delete, in ``[0, 1)``.
    random_state:
        Seed or generator for the uniform edge sample.
    """
    if not 0.0 <= ratio < 1.0:
        raise ValueError(f"ratio must be in [0, 1), got {ratio}")
    rng = check_random_state(random_state)
    edges = graph.edge_list()
    n_remove = int(round(ratio * len(edges)))
    if n_remove == 0:
        return graph.copy()
    keep_mask = np.ones(len(edges), dtype=bool)
    remove_idx = rng.choice(len(edges), size=n_remove, replace=False)
    keep_mask[remove_idx] = False
    kept = [edge for edge, keep in zip(edges, keep_mask) if keep]
    adjacency = sparse_from_edges(kept, graph.n_nodes)
    return AttributedGraph(
        adjacency, graph.attributes.copy(), name=f"{graph.name}[removed={ratio:.2f}]"
    )


def permute_graph(
    graph: AttributedGraph,
    random_state: RandomStateLike = None,
) -> Tuple[AttributedGraph, np.ndarray]:
    """Randomly permute node identities.

    Returns
    -------
    permuted:
        The permuted graph.
    permutation:
        ``(n,)`` array where ``permutation[i]`` is the new index of original
        node ``i`` (i.e. ground-truth anchor links are ``(i, permutation[i])``).
    """
    rng = check_random_state(random_state)
    n = graph.n_nodes
    permutation = rng.permutation(n)
    # Build the permuted adjacency: edge (u, v) maps to (perm[u], perm[v]).
    new_edges = [(int(permutation[u]), int(permutation[v])) for u, v in graph.edges()]
    adjacency = sparse_from_edges(new_edges, n) if new_edges else graph.adjacency * 0
    new_attributes = np.empty_like(graph.attributes)
    new_attributes[permutation] = graph.attributes
    permuted = AttributedGraph(
        adjacency, new_attributes, name=f"{graph.name}[permuted]"
    )
    return permuted, permutation


def add_attribute_noise(
    graph: AttributedGraph,
    flip_ratio: float = 0.0,
    gaussian_sigma: float = 0.0,
    random_state: RandomStateLike = None,
) -> AttributedGraph:
    """Perturb node attributes.

    ``flip_ratio`` randomly re-draws that fraction of entries from the empirical
    column distribution (suitable for categorical/one-hot attributes), and
    ``gaussian_sigma`` adds isotropic Gaussian noise (suitable for continuous
    attributes).  Both can be combined.
    """
    if not 0.0 <= flip_ratio <= 1.0:
        raise ValueError(f"flip_ratio must be in [0, 1], got {flip_ratio}")
    if gaussian_sigma < 0:
        raise ValueError(f"gaussian_sigma must be non-negative, got {gaussian_sigma}")
    rng = check_random_state(random_state)
    attributes = graph.attributes.copy()
    n, d = attributes.shape

    if flip_ratio > 0 and n > 0 and d > 0:
        mask = rng.random((n, d)) < flip_ratio
        for col in range(d):
            column = attributes[:, col]
            flips = mask[:, col]
            if flips.any():
                replacement = rng.choice(column, size=int(flips.sum()), replace=True)
                attributes[flips, col] = replacement

    if gaussian_sigma > 0:
        attributes = attributes + rng.normal(0.0, gaussian_sigma, size=attributes.shape)

    return graph.with_attributes(attributes)


def make_noisy_copy(
    graph: AttributedGraph,
    edge_removal_ratio: float = 0.1,
    attribute_flip_ratio: float = 0.0,
    permute: bool = True,
    random_state: RandomStateLike = None,
) -> Tuple[AttributedGraph, np.ndarray]:
    """Create a noisy, permuted copy of ``graph`` plus its ground-truth mapping.

    This is the paper's synthetic target-network construction: remove a
    fraction of edges, optionally perturb attributes, then permute identities.
    The returned ``mapping`` array gives, for each source node ``i``, the index
    of its anchor node in the target graph.
    """
    rng = check_random_state(random_state)
    noisy = remove_edges(graph, edge_removal_ratio, random_state=rng)
    if attribute_flip_ratio > 0:
        noisy = add_attribute_noise(
            noisy, flip_ratio=attribute_flip_ratio, random_state=rng
        )
    if permute:
        noisy, mapping = permute_graph(noisy, random_state=rng)
    else:
        mapping = np.arange(graph.n_nodes)
    noisy.name = f"{graph.name}[target]"
    return noisy, mapping


__all__ = ["remove_edges", "permute_graph", "add_attribute_noise", "make_noisy_copy"]
