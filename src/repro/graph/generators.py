"""Random attributed-graph generators.

These generators are the raw material for :mod:`repro.datasets.synthetic`,
which calibrates them to the statistics of the paper's dataset pairs
(Table I).  Three families cover the needed structural regimes:

* :func:`powerlaw_cluster_graph` — skewed degrees with tunable triangle
  density (dense, motif-rich networks such as Allmovie/Imdb),
* :func:`erdos_renyi_graph` — homogeneous sparse graphs,
* :func:`sbm_graph` — community-structured graphs (social networks such as
  Douban), where attributes correlate with community membership.
"""

from __future__ import annotations

from typing import Optional, Sequence

import networkx as nx
import numpy as np

from repro.graph.attributed_graph import AttributedGraph
from repro.graph.builders import from_networkx
from repro.utils.random import RandomStateLike, check_random_state


def _categorical_attributes(
    n_nodes: int,
    n_attributes: int,
    labels: np.ndarray,
    label_fidelity: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """One-hot style attributes correlated with integer node ``labels``.

    Each node gets a one-hot vector over ``n_attributes`` categories; with
    probability ``label_fidelity`` the category is ``label % n_attributes``
    (so attributes are informative), otherwise it is uniform random.
    """
    categories = labels % n_attributes
    noise = rng.random(n_nodes) >= label_fidelity
    categories = np.where(
        noise, rng.integers(0, n_attributes, size=n_nodes), categories
    )
    attributes = np.zeros((n_nodes, n_attributes), dtype=np.float64)
    attributes[np.arange(n_nodes), categories] = 1.0
    return attributes


def powerlaw_cluster_graph(
    n_nodes: int,
    edges_per_node: int,
    triangle_prob: float = 0.5,
    n_attributes: int = 8,
    label_fidelity: float = 0.9,
    random_state: RandomStateLike = None,
    name: str = "powerlaw",
) -> AttributedGraph:
    """Holme–Kim power-law cluster graph with degree-bucket attributes.

    Attributes are one-hot categories derived from log-degree buckets (high
    fidelity), mimicking profile features that correlate with connectivity.
    """
    if n_nodes < 4:
        raise ValueError(f"n_nodes must be >= 4, got {n_nodes}")
    if edges_per_node < 1:
        raise ValueError(f"edges_per_node must be >= 1, got {edges_per_node}")
    rng = check_random_state(random_state)
    seed = int(rng.integers(0, 2**31 - 1))
    nx_graph = nx.powerlaw_cluster_graph(
        n_nodes, min(edges_per_node, n_nodes - 1), triangle_prob, seed=seed
    )
    graph = from_networkx(nx_graph, name=name)
    degrees = np.maximum(graph.degrees, 1)
    labels = np.floor(np.log2(degrees)).astype(np.int64)
    attributes = _categorical_attributes(
        graph.n_nodes, n_attributes, labels, label_fidelity, rng
    )
    return graph.with_attributes(attributes)


def erdos_renyi_graph(
    n_nodes: int,
    average_degree: float,
    n_attributes: int = 8,
    label_fidelity: float = 0.9,
    random_state: RandomStateLike = None,
    name: str = "erdos_renyi",
) -> AttributedGraph:
    """Erdős–Rényi graph with the requested expected average degree."""
    if n_nodes < 2:
        raise ValueError(f"n_nodes must be >= 2, got {n_nodes}")
    if average_degree <= 0:
        raise ValueError(f"average_degree must be positive, got {average_degree}")
    rng = check_random_state(random_state)
    seed = int(rng.integers(0, 2**31 - 1))
    p = min(1.0, average_degree / max(n_nodes - 1, 1))
    nx_graph = nx.fast_gnp_random_graph(n_nodes, p, seed=seed)
    graph = from_networkx(nx_graph, name=name)
    labels = rng.integers(0, max(n_attributes, 1), size=graph.n_nodes)
    attributes = _categorical_attributes(
        graph.n_nodes, n_attributes, labels, label_fidelity, rng
    )
    return graph.with_attributes(attributes)


def sbm_graph(
    block_sizes: Sequence[int],
    p_in: float,
    p_out: float,
    n_attributes: Optional[int] = None,
    label_fidelity: float = 0.9,
    random_state: RandomStateLike = None,
    name: str = "sbm",
) -> AttributedGraph:
    """Stochastic block model graph with community-correlated attributes."""
    if not block_sizes:
        raise ValueError("block_sizes must be non-empty")
    if not (0 <= p_out <= p_in <= 1):
        raise ValueError(
            f"expected 0 <= p_out <= p_in <= 1, got p_in={p_in}, p_out={p_out}"
        )
    rng = check_random_state(random_state)
    seed = int(rng.integers(0, 2**31 - 1))
    n_blocks = len(block_sizes)
    prob_matrix = np.full((n_blocks, n_blocks), p_out)
    np.fill_diagonal(prob_matrix, p_in)
    nx_graph = nx.stochastic_block_model(
        list(block_sizes), prob_matrix.tolist(), seed=seed
    )
    graph = from_networkx(nx_graph, name=name)
    labels = np.concatenate(
        [np.full(size, block, dtype=np.int64) for block, size in enumerate(block_sizes)]
    )
    if n_attributes is None:
        n_attributes = n_blocks
    attributes = _categorical_attributes(
        graph.n_nodes, n_attributes, labels, label_fidelity, rng
    )
    return graph.with_attributes(attributes)


__all__ = ["powerlaw_cluster_graph", "erdos_renyi_graph", "sbm_graph"]
