"""Deterministic seeded partitioning of a graph pair into alignable shards.

The partitioner is a seeded label-spreading pass built on the existing
:func:`repro.graph.laplacian.normalized_laplacian` machinery: ``n_parts``
*hub* seeds (highest degree, mutually non-adjacent) are chosen, a one-hot
label matrix is diffused through the GCN propagation matrix with the seeds
clamped, and nodes claim their strongest label in confidence order under a
per-shard capacity cap.  The whole pass is plain numpy/scipy linear algebra
over a seeded jitter, so the same ``(graph, n_parts, seed)`` triple yields
bit-identical shards in any process — a property the resume machinery
relies on and the test suite enforces.

Cross-graph correspondence comes from *seed transfer*: the target partition
grows from the target nodes most similar to the source seeds (attributes +
neighbourhood attributes + log degree — cheap signals, no orbit counting).
Hubs are exactly the nodes such features identify reliably across the noisy
copy, and diffusing both sides from corresponding seeds is what keeps a
source node's true counterpart inside the matched target shard; partitioning
the two sides independently diverges badly on weakly modular graphs, capping
the accuracy any stitcher can recover.  :func:`shard_signature` /
:func:`match_partitions` provide the cheap signature-based matching used to
verify (or re-derive) the shard pairing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.datasets.pair import GraphPair
from repro.graph.attributed_graph import AttributedGraph
from repro.graph.laplacian import normalized_laplacian
from repro.similarity.matching import greedy_match
from repro.utils.random import check_random_state

#: Default number of label-spreading iterations (each is one sparse GEMM).
DEFAULT_MAX_ITER = 30

#: Number of log-degree histogram bins in a shard signature.
DEGREE_BINS = 8

#: Default shard-capacity slack: no shard may exceed
#: ``ceil(BALANCE_FACTOR * n / n_parts)`` nodes.  Without a cap, label
#: spreading on hub-dominated (power-law) graphs funnels almost every node
#: into the top hub's shard, which defeats the memory/time bounds sharding
#: exists to provide.
BALANCE_FACTOR = 1.2

#: Default cap on overlap growth: each BFS hop may add at most
#: ``ceil(OVERLAP_CAP_RATIO * |core|)`` boundary neighbours (the ones with
#: the most edges into the shard first).  One uncapped hop around a hub
#: shard can swallow most of a power-law graph.
OVERLAP_CAP_RATIO = 0.5


@dataclass(frozen=True)
class Partition:
    """Outcome of :func:`partition_graph` on one graph.

    Attributes
    ----------
    labels:
        ``(n,)`` shard id per node, in ``[0, n_parts)``.
    shards:
        Per-shard sorted node-id arrays (``shards[p]`` lists the nodes with
        label ``p``; every node appears in exactly one shard).
    seeds:
        The k-center seed node chosen for each shard.
    n_parts, seed:
        The requested shard count (after clipping to ``n``) and the RNG seed.
    """

    labels: np.ndarray
    shards: Tuple[np.ndarray, ...]
    seeds: np.ndarray
    n_parts: int
    seed: int

    def sizes(self) -> np.ndarray:
        """Shard sizes as an ``(n_parts,)`` int array."""
        return np.array([len(s) for s in self.shards], dtype=np.int64)


def _select_seeds(
    adjacency: sp.csr_matrix, n_parts: int, rng: np.random.Generator
) -> np.ndarray:
    """Hub seed selection: highest degree first, mutually non-adjacent.

    Hubs — unlike the periphery — are reliably re-identifiable across the
    pair's noisy copy (degree plus attribute profile), which is what makes
    :func:`transfer_seeds` land on true counterparts; the non-adjacency
    constraint spreads the seeds so their diffusion regions do not collapse
    into one.  The RNG only breaks ties among equal-degree candidates (via
    a jitter strictly below 1), so the choice is deterministic per seed.
    """
    n = adjacency.shape[0]
    degrees = np.asarray((adjacency != 0).sum(axis=1)).ravel().astype(np.float64)
    jitter = rng.random(n) * 0.5  # < 1: reorders only exact ties
    order = np.argsort(-(degrees + jitter), kind="stable")
    forbidden = np.zeros(n, dtype=bool)
    seeds: List[int] = []
    indptr, indices = adjacency.indptr, adjacency.indices
    for node in order:
        if len(seeds) == n_parts:
            break
        if forbidden[node]:
            continue
        seeds.append(int(node))
        forbidden[node] = True
        forbidden[indices[indptr[node] : indptr[node + 1]]] = True
    if len(seeds) < n_parts:
        # Dense corner (e.g. near-complete graphs): relax the adjacency
        # constraint and fill with the next-highest-degree nodes.
        chosen = set(seeds)
        for node in order:
            if len(seeds) == n_parts:
                break
            if int(node) not in chosen:
                seeds.append(int(node))
                chosen.add(int(node))
    return np.array(seeds, dtype=np.int64)


def _balanced_assignment(
    scores: np.ndarray, seeds: np.ndarray, capacity: int
) -> np.ndarray:
    """Capacity-capped greedy assignment from the diffusion score matrix.

    Seeds (possibly none) claim their own shard first; the remaining nodes
    are processed in confidence order (highest best-score first, ties by
    lowest node id) and take their best-scoring shard that still has room.
    Nodes no seed reached (all-zero rows) go to the currently smallest
    shard.  The whole pass is a deterministic function of ``scores``.
    """
    n, n_parts = scores.shape
    labels = np.full(n, -1, dtype=np.int64)
    counts = np.zeros(n_parts, dtype=np.int64)
    seeds = np.asarray(seeds, dtype=np.int64)
    if seeds.size:
        labels[seeds] = np.arange(seeds.size)
        counts[: seeds.size] += 1

    best = scores.max(axis=1)
    rest = np.setdiff1d(np.arange(n), seeds, assume_unique=False)
    reached = rest[best[rest] > 0.0]
    reached = reached[np.lexsort((reached, -best[reached]))]
    preference = np.argsort(-scores, axis=1, kind="stable")
    for node in reached:
        for shard in preference[node]:
            if counts[shard] < capacity:
                labels[node] = shard
                counts[shard] += 1
                break
        else:  # every shard at capacity (capacity * n_parts >= n prevents it)
            shard = int(np.argmin(counts))
            labels[node] = shard
            counts[shard] += 1
    for node in rest[best[rest] <= 0.0]:
        shard = int(np.argmin(counts))
        labels[node] = shard
        counts[shard] += 1
    return labels


def node_features(graph: AttributedGraph) -> np.ndarray:
    """Cheap per-node feature rows used for cross-graph co-partitioning.

    Row-normalised attributes (the shared signal across a pair), the mean
    attribute vector of the node's neighbourhood (one sparse GEMM — injects
    local structure without any orbit counting) and a log-degree column.
    Rows are L2-normalised so dot products are cosine similarities.
    """
    attrs = np.asarray(graph.attributes, dtype=np.float64)
    degrees = graph.degrees.astype(np.float64)
    inv_deg = 1.0 / np.maximum(degrees, 1.0)
    neighbour_mean = graph.adjacency.dot(attrs) * inv_deg[:, None]
    log_deg = np.log1p(degrees)
    if log_deg.max() > 0:
        log_deg = log_deg / log_deg.max()
    features = np.hstack([attrs, neighbour_mean, log_deg[:, None]])
    norms = np.linalg.norm(features, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    return features / norms


def transfer_seeds(
    source_graph: AttributedGraph,
    source_seeds: np.ndarray,
    target_graph: AttributedGraph,
) -> np.ndarray:
    """Pick one target seed per source seed by feature similarity.

    Greedy without replacement in source-seed order (ties by lowest target
    id).  Source seeds are hubs, and hubs are exactly what
    :func:`node_features` identifies reliably across the pair's noisy copy
    — growing both partitions from *corresponding* seeds is what makes the
    two sides' shards line up.
    """
    source_features = node_features(source_graph)[
        np.asarray(source_seeds, dtype=np.int64)
    ]
    similarity = source_features @ node_features(target_graph).T
    taken = np.zeros(target_graph.n_nodes, dtype=bool)
    seeds = np.empty(len(source_seeds), dtype=np.int64)
    for i, row in enumerate(similarity):
        masked = np.where(taken, -np.inf, row)
        seeds[i] = int(np.argmax(masked))
        taken[seeds[i]] = True
    return seeds


def partition_graph(
    graph: AttributedGraph,
    n_parts: int,
    seed: int = 0,
    max_iter: int = DEFAULT_MAX_ITER,
    balance_factor: float = BALANCE_FACTOR,
    seeds: Optional[np.ndarray] = None,
) -> Partition:
    """Partition ``graph`` into ``n_parts`` community-consistent shards.

    Seeded label spreading: one-hot seed labels are diffused through the
    normalised ``D^{-1/2}(A+I)D^{-1/2}`` propagation matrix with the seeds
    clamped every round; nodes then claim their strongest label in
    confidence order, subject to a per-shard capacity of
    ``ceil(balance_factor * n / n_parts)`` (ties resolve to the lowest
    label).  Nodes in components that contain no seed are assigned to the
    currently smallest shard in node order.

    ``seeds`` overrides the hub selection with explicit seed nodes (one per
    shard) — the hook :func:`build_shard_plan` uses to grow the target
    partition from seeds *transferred* off the source side, so shard ``p``
    of both partitions correspond.

    Deterministic: the same ``(graph, n_parts, seed)`` produce bit-identical
    labels in every process.
    """
    if n_parts < 1:
        raise ValueError(f"n_parts must be >= 1, got {n_parts}")
    if balance_factor < 1.0:
        raise ValueError(f"balance_factor must be >= 1, got {balance_factor}")
    n = graph.n_nodes
    if n == 0:
        raise ValueError("cannot partition an empty graph")
    n_parts = min(n_parts, n)
    rng = check_random_state(int(seed))

    if n_parts == 1:
        labels = np.zeros(n, dtype=np.int64)
        return Partition(
            labels=labels,
            shards=(np.arange(n, dtype=np.int64),),
            seeds=np.array([0], dtype=np.int64),
            n_parts=1,
            seed=int(seed),
        )

    adjacency = graph.adjacency
    if seeds is not None:
        seeds = np.asarray(seeds, dtype=np.int64)
        if seeds.shape != (n_parts,):
            raise ValueError(f"seeds must have shape ({n_parts},), got {seeds.shape}")
        if np.unique(seeds).size != n_parts:
            raise ValueError("seed nodes must be distinct")
    else:
        seeds = _select_seeds(adjacency, n_parts, rng)
    propagation = normalized_laplacian(adjacency)

    scores = np.zeros((n, n_parts), dtype=np.float64)
    scores[seeds, np.arange(n_parts)] = 1.0
    previous = None
    for _ in range(max_iter):
        scores = propagation.dot(scores)
        scores[seeds] = 0.0
        scores[seeds, np.arange(n_parts)] = 1.0
        current = np.where(
            scores.max(axis=1) > 0.0, scores.argmax(axis=1), -1
        ).astype(np.int64)
        if previous is not None and np.array_equal(current, previous):
            break
        previous = current

    capacity = int(np.ceil(balance_factor * n / n_parts))
    labels = _balanced_assignment(scores, seeds, capacity)

    shards = tuple(np.flatnonzero(labels == p).astype(np.int64) for p in range(n_parts))
    return Partition(
        labels=labels,
        shards=shards,
        seeds=seeds,
        n_parts=n_parts,
        seed=int(seed),
    )


def expand_with_overlap(
    graph: AttributedGraph,
    core: np.ndarray,
    hops: int,
    max_ratio: Optional[float] = None,
) -> np.ndarray:
    """Grow ``core`` by ``hops`` BFS levels of boundary neighbours (sorted).

    ``hops=0`` returns the sorted core unchanged.  The overlap ring is what
    gives the stitcher multiple opinions about boundary nodes.  With
    ``max_ratio`` set, each hop admits at most ``ceil(max_ratio * |core|)``
    new nodes — the ones with the most edges from the expanding frontier
    first (ties by lowest node id) — keeping shard growth bounded on
    hub-dominated graphs.
    """
    if hops < 0:
        raise ValueError(f"hops must be >= 0, got {hops}")
    if max_ratio is not None and max_ratio <= 0:
        raise ValueError(f"max_ratio must be positive or None, got {max_ratio}")
    core = np.asarray(core, dtype=np.int64)
    member = np.zeros(graph.n_nodes, dtype=bool)
    member[core] = True
    frontier = core
    adjacency = graph.adjacency
    budget = None if max_ratio is None else int(np.ceil(max_ratio * core.size))
    for _ in range(hops):
        if frontier.size == 0:
            break
        neighbour_ids = adjacency[frontier].indices
        fresh, edge_counts = np.unique(neighbour_ids, return_counts=True)
        keep = ~member[fresh]
        fresh, edge_counts = fresh[keep], edge_counts[keep]
        if budget is not None and fresh.size > budget:
            order = np.lexsort((fresh, -edge_counts))[:budget]
            fresh = fresh[order]
        member[fresh] = True
        frontier = fresh
    return np.flatnonzero(member).astype(np.int64)


def shard_signature(
    graph: AttributedGraph, nodes: np.ndarray, n_degree_bins: int = DEGREE_BINS
) -> np.ndarray:
    """Cheap structural/attribute fingerprint of one shard.

    Concatenates a normalised log2-degree histogram, the mean node-attribute
    vector (attributes live in a shared space across the pair, so this is a
    strong cross-graph signal), the shard's size fraction and its internal
    edge density.  Everything is O(|shard| + internal edges) — no orbit
    counting.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    if nodes.size == 0:
        width = n_degree_bins + graph.attributes.shape[1] + 2
        return np.zeros(width, dtype=np.float64)
    degrees = graph.degrees[nodes].astype(np.float64)
    bins = np.clip(np.floor(np.log2(degrees + 1.0)), 0, n_degree_bins - 1)
    hist = np.bincount(bins.astype(np.int64), minlength=n_degree_bins)
    hist = hist.astype(np.float64) / nodes.size

    attr_mean = graph.attributes[nodes].mean(axis=0)
    norm = np.linalg.norm(attr_mean)
    if norm > 0:
        attr_mean = attr_mean / norm

    internal = graph.adjacency[nodes][:, nodes]
    possible = nodes.size * (nodes.size - 1)
    density = float(internal.nnz) / possible if possible else 0.0
    size_frac = nodes.size / graph.n_nodes
    return np.concatenate([hist, attr_mean, [size_frac, density]])


def match_partitions(
    source_graph: AttributedGraph,
    source_partition: Partition,
    target_graph: AttributedGraph,
    target_partition: Partition,
) -> List[Tuple[int, int]]:
    """Pair source shards with target shards by signature similarity.

    Cosine similarity of :func:`shard_signature` vectors, resolved by the
    deterministic :func:`~repro.similarity.matching.greedy_match` (highest
    similarity first, ties by lowest source then target shard id).  Returns
    ``(source_shard, target_shard)`` pairs sorted by source shard id.
    """
    source_sigs = np.array(
        [shard_signature(source_graph, s) for s in source_partition.shards]
    )
    target_sigs = np.array(
        [shard_signature(target_graph, s) for s in target_partition.shards]
    )

    def _normalize(rows: np.ndarray) -> np.ndarray:
        norms = np.linalg.norm(rows, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        return rows / norms

    similarity = _normalize(source_sigs) @ _normalize(target_sigs).T
    return sorted(greedy_match(similarity))


@dataclass(frozen=True)
class ShardPair:
    """One matched (source shard, target shard) alignment sub-task.

    ``source_nodes``/``target_nodes`` are the overlap-expanded sorted global
    node ids; ``source_core``/``target_core`` are the pre-expansion owning
    shards.
    """

    index: int
    source_shard: int
    target_shard: int
    source_core: np.ndarray
    target_core: np.ndarray
    source_nodes: np.ndarray
    target_nodes: np.ndarray

    def subpair(self, pair: GraphPair) -> GraphPair:
        """The induced sub-:class:`GraphPair` with restricted ground truth."""
        source = pair.source.subgraph(self.source_nodes)
        target = pair.target.subgraph(self.target_nodes)
        source.name = f"{pair.name}-shard{self.index}-source"
        target.name = f"{pair.name}-shard{self.index}-target"
        local_of_target = np.full(pair.target.n_nodes, -1, dtype=np.int64)
        local_of_target[self.target_nodes] = np.arange(
            self.target_nodes.size, dtype=np.int64
        )
        global_truth = pair.ground_truth[self.source_nodes]
        ground_truth = np.where(global_truth >= 0, local_of_target[global_truth], -1)
        return GraphPair(
            source=source,
            target=target,
            ground_truth=ground_truth,
            name=f"{pair.name}-shard{self.index}",
            metadata={
                "shard_index": self.index,
                "source_shard": self.source_shard,
                "target_shard": self.target_shard,
                "parent": pair.name,
            },
        )


@dataclass
class ShardPlan:
    """Everything :mod:`repro.shard.executor` needs to run one sharded align."""

    pairs: List[ShardPair]
    source_partition: Partition
    target_partition: Partition
    n_shards: int
    overlap: int
    seed: int
    matching: List[Tuple[int, int]] = field(default_factory=list)

    def summary(self) -> dict:
        """JSON-safe description (sizes, matching) for manifests and logs."""
        return {
            "n_shards": self.n_shards,
            "overlap": self.overlap,
            "seed": self.seed,
            "matching": [list(m) for m in self.matching],
            "source_sizes": self.source_partition.sizes().tolist(),
            "target_sizes": self.target_partition.sizes().tolist(),
            "expanded_source_sizes": [int(p.source_nodes.size) for p in self.pairs],
            "expanded_target_sizes": [int(p.target_nodes.size) for p in self.pairs],
        }


def build_shard_plan(
    pair: GraphPair,
    n_shards: int,
    overlap: int = 1,
    seed: int = 0,
    max_iter: int = DEFAULT_MAX_ITER,
    overlap_cap_ratio: Optional[float] = OVERLAP_CAP_RATIO,
) -> ShardPlan:
    """Partition both sides of ``pair``, match shards, expand overlaps.

    Every source node belongs to exactly one core shard (so the stitched
    result covers all sources); the overlap ring adds ``overlap`` BFS hops
    of context on both sides of every shard pair, each hop capped at
    ``overlap_cap_ratio`` of the core size (``None`` = uncapped).
    """
    # Clip once so both sides get the same shard count and every source
    # node ends up in exactly one aligned shard pair.
    n_shards = max(1, min(n_shards, pair.source.n_nodes, pair.target.n_nodes))
    source_partition = partition_graph(
        pair.source, n_shards, seed=seed, max_iter=max_iter
    )
    # Grow the target partition from seeds transferred off the source hubs:
    # shard p of both partitions then correspond by construction.
    target_seeds = transfer_seeds(pair.source, source_partition.seeds, pair.target)
    target_partition = partition_graph(
        pair.target, n_shards, seed=seed, max_iter=max_iter, seeds=target_seeds
    )
    matching = [(p, p) for p in range(n_shards)]
    pairs = []
    for index, (s_shard, t_shard) in enumerate(matching):
        source_core = source_partition.shards[s_shard]
        target_core = target_partition.shards[t_shard]
        pairs.append(
            ShardPair(
                index=index,
                source_shard=s_shard,
                target_shard=t_shard,
                source_core=source_core,
                target_core=target_core,
                source_nodes=expand_with_overlap(
                    pair.source, source_core, overlap, max_ratio=overlap_cap_ratio
                ),
                target_nodes=expand_with_overlap(
                    pair.target, target_core, overlap, max_ratio=overlap_cap_ratio
                ),
            )
        )
    return ShardPlan(
        pairs=pairs,
        source_partition=source_partition,
        target_partition=target_partition,
        n_shards=n_shards,
        overlap=overlap,
        seed=int(seed),
        matching=matching,
    )


__all__ = [
    "Partition",
    "ShardPair",
    "ShardPlan",
    "partition_graph",
    "transfer_seeds",
    "node_features",
    "expand_with_overlap",
    "shard_signature",
    "match_partitions",
    "build_shard_plan",
]
