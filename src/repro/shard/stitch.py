"""Merge per-shard alignment results into one global sparse alignment.

Each shard pair contributes the scores of its own ``(local source, local
target)`` block.  Stitching folds those blocks into a global
:class:`~repro.serve.index.SparseTopKIndex`:

* per global source node, the best ``k`` target candidates across every
  shard that contains the node,
* per global target node, the best ``reverse_k`` source candidates,

ordered by the same total order the serve index uses — *(score descending,
global index ascending)* — with duplicate ``(source, target)`` candidates
(a pair scored by two overlapping shards) resolved score-first and ties by
lowest shard id.  The resolution is pure sorting, so it is deterministic and
independent of shard execution order.

Rows whose shard offered fewer than ``k`` candidates are padded with index
``-1`` and score ``-inf`` (the serve index always stores full rows); a
``-1`` in a query answer therefore means "no candidate", never a real node.

:func:`refine_stitched` optionally runs a seed-consistency pass over the
stitched candidate set: mutual best matches become trusted seeds, and every
candidate's score is boosted by how many of its source node's neighbours are
seeds whose targets neighbour the candidate target (normalised by degree).
This is the classic divide-and-conquer repair for boundary nodes whose
shard saw only part of their neighbourhood.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.backend.precision import as_score_matrix, score_dtype
from repro.core.result import AlignmentResult
from repro.obs.tracing import span
from repro.graph.attributed_graph import AttributedGraph
from repro.serve.index import DEFAULT_INDEX_K, SparseTopKIndex
from repro.shard.partition import ShardPlan
from repro.similarity.matching import top_k_indices


@dataclass
class StitchedAlignment:
    """Global alignment assembled from per-shard results.

    Attributes
    ----------
    index:
        The stitched sparse top-``k`` index (padding: index ``-1``, score
        ``-inf`` on rows with fewer candidates than the stored width).
    n_shards:
        Number of shard pairs merged.
    conflicts_resolved:
        Duplicate ``(source, target)`` candidates dropped during conflict
        resolution (a pair scored by more than one overlapping shard).
    multi_shard_sources:
        Source nodes that contributed candidates from more than one shard.
    stage_times:
        Wall-clock decomposition (partition / shard alignment / stitch /
        refine), filled by the executor.
    shard_stats:
        Per-shard job summaries (sizes, status, wall seconds), filled by the
        executor.
    """

    index: SparseTopKIndex
    n_shards: int
    conflicts_resolved: int = 0
    multi_shard_sources: int = 0
    stage_times: Dict[str, float] = field(default_factory=dict)
    shard_stats: List[Dict[str, object]] = field(default_factory=list)

    @property
    def shape(self) -> Tuple[int, int]:
        """Global ``(n_source, n_target)`` shape."""
        return self.index.shape

    @property
    def total_time(self) -> float:
        """Total wall-clock seconds across recorded stages."""
        return float(sum(self.stage_times.values()))

    def match(self, source_nodes) -> np.ndarray:
        """Best target per source node (``-1`` = no candidate)."""
        return self.index.match(source_nodes)

    def top_k(self, source_nodes, k: int) -> np.ndarray:
        """Top-``k`` targets per source node, ``-1``-padded."""
        return self.index.top_k(source_nodes, k)

    def to_result(self, fill: Optional[float] = None) -> AlignmentResult:
        """Densify into an :class:`AlignmentResult` (for metrics/export).

        Non-candidate cells get ``fill`` (default: one less than the lowest
        stitched score, so every stored candidate outranks every hole).
        Rankings are faithful up to the index width ``k``; use the sparse
        :attr:`index` directly when the dense matrix would not fit.
        """
        n_source, n_target = self.index.shape
        stored = np.concatenate(
            [self.index.scores.ravel(), self.index.reverse_scores.ravel()]
        )
        finite = stored[np.isfinite(stored)]
        if fill is None:
            fill = float(finite.min() - 1.0) if finite.size else 0.0
        dense = np.full(
            (n_source, n_target), fill, dtype=self.index.score_dtype
        )
        for rows_width, indices, scores in (
            (n_source, self.index.indices, self.index.scores),
            (n_target, self.index.reverse_indices, self.index.reverse_scores),
        ):
            valid = indices >= 0
            row_ids = np.broadcast_to(
                np.arange(rows_width)[:, None], indices.shape
            )[valid]
            col_ids = indices[valid]
            if indices is self.index.reverse_indices:
                dense[col_ids, row_ids] = scores[valid]
            else:
                dense[row_ids, col_ids] = scores[valid]
        return AlignmentResult(
            alignment_matrix=dense, stage_times=dict(self.stage_times)
        )

    def __repr__(self) -> str:
        n_s, n_t = self.index.shape
        return (
            f"StitchedAlignment({n_s}x{n_t}, shards={self.n_shards}, "
            f"k={self.index.k}, conflicts={self.conflicts_resolved})"
        )


def _assemble_side(
    rows: np.ndarray,
    cols: np.ndarray,
    scores: np.ndarray,
    shards: np.ndarray,
    n_rows: int,
    n_cols: int,
    width: int,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Fold candidate triples into dense ``(n_rows, width)`` top arrays.

    Candidates are sorted by the global total order *(row asc, score desc,
    col asc, shard asc)*; duplicate ``(row, col)`` pairs keep their best
    occurrence under that order.  Returns ``(indices, scores, n_duplicates)``
    with ``-1``/``-inf`` padding.  The output score array keeps the
    candidates' (float32/float64) dtype.
    """
    indices_out = np.full((n_rows, width), -1, dtype=np.intp)
    scores_out = np.full((n_rows, width), -np.inf, dtype=score_dtype(scores))
    if rows.size == 0:
        return indices_out, scores_out, 0

    order = np.lexsort((shards, cols, -scores, rows))
    rows, cols = rows[order], cols[order]
    scores, shards = scores[order], shards[order]

    # First occurrence per (row, col) in priority order wins; np.unique
    # returns the smallest input position of each key, which under the sort
    # above is exactly the highest-priority candidate.
    key = rows.astype(np.int64) * np.int64(n_cols) + cols.astype(np.int64)
    _, first_pos = np.unique(key, return_index=True)
    n_duplicates = int(key.size - first_pos.size)
    keep = np.sort(first_pos)  # ascending position keeps the global sort
    rows, cols, scores = rows[keep], cols[keep], scores[keep]

    starts = np.searchsorted(rows, np.arange(n_rows))
    rank = np.arange(rows.size) - starts[rows]
    fits = rank < width
    indices_out[rows[fits], rank[fits]] = cols[fits]
    scores_out[rows[fits], rank[fits]] = scores[fits]
    return indices_out, scores_out, n_duplicates


def _candidates_from_shards(
    plan: ShardPlan,
    matrices: Sequence[np.ndarray],
    per_row_k: int,
    reverse: bool,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-shard local top candidates mapped to global ids.

    ``reverse=False`` yields (source row, target col) candidates from matrix
    rows; ``reverse=True`` yields (target row, source col) candidates from
    matrix columns.
    """
    all_rows: List[np.ndarray] = []
    all_cols: List[np.ndarray] = []
    all_scores: List[np.ndarray] = []
    all_shards: List[np.ndarray] = []
    for shard_pair, matrix in zip(plan.pairs, matrices):
        # Per-shard matrices keep their precision-policy dtype.
        matrix = as_score_matrix(matrix)
        if reverse:
            matrix = matrix.T
            row_ids = shard_pair.target_nodes
            col_ids = shard_pair.source_nodes
        else:
            row_ids = shard_pair.source_nodes
            col_ids = shard_pair.target_nodes
        if matrix.shape != (row_ids.size, col_ids.size):
            raise ValueError(
                f"shard {shard_pair.index}: matrix shape {matrix.shape} does "
                f"not match its node sets ({row_ids.size}, {col_ids.size})"
            )
        if matrix.size == 0:
            continue
        local_top = top_k_indices(matrix, min(per_row_k, matrix.shape[1]))
        local_scores = np.take_along_axis(matrix, local_top, axis=1)
        n_rows_local, got = local_top.shape
        all_rows.append(np.repeat(row_ids, got))
        # Shard node-id arrays are sorted ascending, so the local
        # (score desc, local col asc) order from top_k_indices is already
        # the global (score desc, global col asc) order within the shard.
        all_cols.append(col_ids[local_top].ravel())
        all_scores.append(local_scores.ravel())
        all_shards.append(np.full(n_rows_local * got, shard_pair.index, dtype=np.int64))
    if not all_rows:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, np.empty(0, dtype=np.float64), empty
    return (
        np.concatenate(all_rows),
        np.concatenate(all_cols),
        np.concatenate(all_scores),
        np.concatenate(all_shards),
    )


def stitch_alignments(
    plan: ShardPlan,
    matrices: Sequence[np.ndarray],
    n_source: int,
    n_target: int,
    k: int = DEFAULT_INDEX_K,
    reverse_k: Optional[int] = None,
) -> StitchedAlignment:
    """Merge per-shard score matrices into a global sparse alignment.

    ``matrices[i]`` must be the ``(|source_nodes|, |target_nodes|)`` score
    matrix of ``plan.pairs[i]``.  See the module docstring for the conflict
    resolution and padding contract.
    """
    if len(matrices) != len(plan.pairs):
        raise ValueError(
            f"plan has {len(plan.pairs)} shard pairs but "
            f"{len(matrices)} matrices were given"
        )
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    reverse_k = k if reverse_k is None else reverse_k
    if reverse_k < 1:
        raise ValueError(f"reverse_k must be >= 1, got {reverse_k}")
    width = min(k, n_target)
    reverse_width = min(reverse_k, n_source)

    with span("stitch.candidates"):
        rows, cols, scores, shards = _candidates_from_shards(
            plan, matrices, width, reverse=False
        )
    with span("stitch.merge"):
        indices, fwd_scores, n_duplicates = _assemble_side(
            rows, cols, scores, shards, n_source, n_target, width
        )
    multi_shard = 0
    if rows.size:
        pair_key = rows.astype(np.int64) * np.int64(len(plan.pairs) + 1) + shards
        sources_with_shards = np.unique(pair_key) // (len(plan.pairs) + 1)
        counts = np.bincount(sources_with_shards.astype(np.int64))
        multi_shard = int((counts > 1).sum())

    with span("stitch.candidates"):
        r_rows, r_cols, r_scores, r_shards = _candidates_from_shards(
            plan, matrices, reverse_width, reverse=True
        )
    with span("stitch.merge"):
        reverse_indices, reverse_scores, _ = _assemble_side(
            r_rows, r_cols, r_scores, r_shards, n_target, n_source, reverse_width
        )

    index = SparseTopKIndex(
        shape=(n_source, n_target),
        k=k,
        indices=indices,
        scores=fwd_scores,
        reverse_k=reverse_k,
        reverse_indices=reverse_indices,
        reverse_scores=reverse_scores,
    )
    return StitchedAlignment(
        index=index,
        n_shards=len(plan.pairs),
        conflicts_resolved=n_duplicates,
        multi_shard_sources=multi_shard,
    )


def _index_candidates(
    index: SparseTopKIndex,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Valid (source, target, score) triples stored on *either* index side.

    The union matters: a pair can be stored only in the reverse index (its
    target ranks the source highly, but the source's own top-``k`` is
    full of better targets).  Rebuilding from the forward side alone would
    silently drop such pairs.  A pair stored on both sides carries the same
    score — both sides are built from the same shard matrices — so
    duplicates are dropped by key.
    """
    valid = index.indices >= 0
    fwd_sources = np.broadcast_to(
        np.arange(index.shape[0])[:, None], index.indices.shape
    )[valid]
    fwd_targets = index.indices[valid]
    fwd_scores = index.scores[valid]

    rvalid = index.reverse_indices >= 0
    rev_targets = np.broadcast_to(
        np.arange(index.shape[1])[:, None], index.reverse_indices.shape
    )[rvalid]
    rev_sources = index.reverse_indices[rvalid]
    rev_scores = index.reverse_scores[rvalid]

    sources = np.concatenate([fwd_sources, rev_sources])
    targets = np.concatenate([fwd_targets, rev_targets])
    scores = np.concatenate([fwd_scores, rev_scores])
    key = sources.astype(np.int64) * np.int64(index.shape[1]) + targets
    _, first = np.unique(key, return_index=True)
    first = np.sort(first)
    return sources[first], targets[first], scores[first]


def refine_stitched(
    stitched: StitchedAlignment,
    source_graph: AttributedGraph,
    target_graph: AttributedGraph,
    iterations: int = 1,
    alpha: float = 0.2,
) -> StitchedAlignment:
    """Seed-consistency refinement over the stitched candidate set.

    Per iteration: mutual best matches (forward and reverse argmax agree)
    become trusted seeds; every stored candidate ``(i, j)`` earns a bonus of
    ``alpha * |{u in N(i) : u is a seed and seed(u) in N(j)}| /
    (1 + sqrt(deg(i) * deg(j)))`` and both index sides are rebuilt from the
    re-scored candidates.  Only stored candidates are touched, so the cost
    is sparse-matrix products over the two adjacencies — no dense
    ``(n_s, n_t)`` matrix is formed.
    """
    if iterations < 0:
        raise ValueError(f"iterations must be >= 0, got {iterations}")
    if alpha < 0:
        raise ValueError(f"alpha must be >= 0, got {alpha}")
    index = stitched.index
    n_source, n_target = index.shape
    adj_source = (source_graph.adjacency != 0).astype(np.float64).tocsr()
    adj_target = (target_graph.adjacency != 0).astype(np.float64).tocsr()
    deg_source = np.asarray(adj_source.sum(axis=1)).ravel()
    deg_target = np.asarray(adj_target.sum(axis=1)).ravel()

    for _ in range(iterations):
        sources, targets, scores = _index_candidates(index)
        if sources.size == 0:
            break
        forward = index.indices[:, 0]
        reverse = index.reverse_indices[:, 0]
        has_match = forward >= 0
        clipped = np.clip(forward, 0, n_target - 1)
        mutual = has_match & (reverse[clipped] == np.arange(n_source))
        seed_sources = np.flatnonzero(mutual)
        if seed_sources.size == 0:
            break
        seed_map = sp.csr_matrix(
            (
                np.ones(seed_sources.size),
                (seed_sources, forward[seed_sources]),
            ),
            shape=(n_source, n_target),
        )
        # consistency[i, j] = #{u in N(i) seeded with t, t in N(j)}
        consistency = (adj_source @ seed_map @ adj_target).tocsr()
        bonus = np.asarray(consistency[sources, targets]).ravel()
        norm = 1.0 + np.sqrt(deg_source[sources] * deg_target[targets])
        # Bonus math runs in float64; the candidate scores keep their
        # stored (possibly float32) dtype through the rebuild.
        new_scores = (scores + alpha * bonus / norm).astype(
            scores.dtype, copy=False
        )

        shard_ids = np.zeros(sources.size, dtype=np.int64)
        indices, fwd_scores, _ = _assemble_side(
            sources,
            targets,
            new_scores,
            shard_ids,
            n_source,
            n_target,
            index.indices.shape[1],
        )
        reverse_indices, reverse_scores, _ = _assemble_side(
            targets,
            sources,
            new_scores,
            shard_ids,
            n_target,
            n_source,
            index.reverse_indices.shape[1],
        )
        index = SparseTopKIndex(
            shape=index.shape,
            k=index.k,
            indices=indices,
            scores=fwd_scores,
            reverse_k=index.reverse_k,
            reverse_indices=reverse_indices,
            reverse_scores=reverse_scores,
        )

    return StitchedAlignment(
        index=index,
        n_shards=stitched.n_shards,
        conflicts_resolved=stitched.conflicts_resolved,
        multi_shard_sources=stitched.multi_shard_sources,
        stage_times=dict(stitched.stage_times),
        shard_stats=list(stitched.shard_stats),
    )


__all__ = ["StitchedAlignment", "stitch_alignments", "refine_stitched"]
