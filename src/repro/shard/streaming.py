"""Streaming, out-of-core stitch of per-shard sparse top-k indexes.

:func:`repro.shard.stitch.stitch_alignments` holds every shard's dense score
matrix *and* the assembled global index in memory at once — fine for the
4-shard bench envelope, a wall for anything bigger.  This module rebuilds the
stitch as a two-phase external merge whose working set is one shard index
plus one row window:

**Phase A — spill.**  Shard results are consumed one at a time as the sparse
top-k serve indexes the shard jobs already emit (``mode="serve"``; the dense
matrices are never loaded).  Each shard's candidate triples — the same
*(global row, global col, score)* set the in-memory stitch extracts, because
a serve index row is exactly the dense row's top-``k`` prefix under the
total order *(score desc, index asc)* — are bucketed by global-row window
and appended to per-``(side, window, shard)`` ``npz`` chunks on disk.

**Phase B — merge.**  Windows are processed in order: a window's chunks are
concatenated, folded with the shared
:func:`repro.shard.stitch._assemble_side` (the same *(score desc, target
asc, shard asc)* conflict order, so results are bit-identical to the
in-memory stitch), written through a
:class:`repro.serve.index.StreamedIndexAssembler` into disk-backed output
arrays, and the window's chunks are deleted.  The finished
:class:`~repro.serve.index.SparseTopKIndex` is memmap-backed: the global
index is never resident in this process.

Duplicate counts and multi-shard-source counts partition cleanly across row
windows, so :class:`~repro.shard.stitch.StitchedAlignment` bookkeeping
(``conflicts_resolved``, ``multi_shard_sources``) matches the in-memory
stitch exactly.

Requires POSIX memmap semantics for the temporary-``workdir`` case (the
backing files may be unlinked while mapped), like the runner's ``SIGALRM``
timeouts.
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.serve.index import DEFAULT_INDEX_K, SparseTopKIndex, StreamedIndexAssembler
from repro.shard.partition import ShardPlan
from repro.shard.stitch import StitchedAlignment, _assemble_side

#: Default number of global rows merged per window.
DEFAULT_ROW_WINDOW = 512

#: A shard's stitch input: a serve index, or a zero-argument loader for one
#: (loaders keep at most one shard index resident during the spill phase).
ShardIndexSource = Union[SparseTopKIndex, Callable[[], SparseTopKIndex]]


def _shard_index_candidates(
    index: SparseTopKIndex,
    shard_pair,
    width: int,
    reverse: bool,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One shard's (global row, global col, score) triples for one side.

    Equals what :func:`repro.shard.stitch._candidates_from_shards` extracts
    from the dense matrix, because the serve index stores each row's
    top-``k`` prefix in the same total order.  Raises if the stored index is
    narrower than the stitch needs (the artifact must be re-exported with a
    larger ``index_k``).
    """
    if reverse:
        local, stored = index.reverse_indices, index.reverse_scores
        n_rows_local, n_cols_local = index.shape[1], index.shape[0]
        row_ids, col_ids = shard_pair.target_nodes, shard_pair.source_nodes
    else:
        local, stored = index.indices, index.scores
        n_rows_local, n_cols_local = index.shape
        row_ids, col_ids = shard_pair.source_nodes, shard_pair.target_nodes
    if (n_rows_local, n_cols_local) != (row_ids.size, col_ids.size):
        raise ValueError(
            f"shard {shard_pair.index}: index shape {index.shape} does not "
            f"match its node sets ({row_ids.size}, {col_ids.size})"
        )
    need = min(width, n_cols_local)
    if local.shape[1] < need:
        side = "reverse_k" if reverse else "index_k"
        raise ValueError(
            f"shard {shard_pair.index}: serve index stores only "
            f"{local.shape[1]} candidates per row but the stitch needs "
            f"{need}; re-export the shard artifacts with a larger {side}"
        )
    local = local[:, :need]
    local_scores = stored[:, :need]
    valid = local >= 0  # stitched/padded inputs; dense-built rows are full
    rows_local = np.broadcast_to(
        np.arange(n_rows_local, dtype=np.intp)[:, None], local.shape
    )[valid]
    return (
        row_ids[rows_local].astype(np.int64, copy=False),
        col_ids[local[valid]].astype(np.int64, copy=False),
        local_scores[valid],
    )


def _spill_side(
    rows: np.ndarray,
    cols: np.ndarray,
    scores: np.ndarray,
    side: str,
    shard: int,
    row_window: int,
    chunks_dir: Path,
) -> None:
    """Append one shard's candidates to its per-window chunk files."""
    if rows.size == 0:
        return
    windows = rows // row_window
    order = np.argsort(windows, kind="stable")
    rows, cols = rows[order], cols[order]
    scores, windows = scores[order], windows[order]
    boundaries = np.flatnonzero(np.diff(windows)) + 1
    starts = np.concatenate([[0], boundaries])
    stops = np.concatenate([boundaries, [windows.size]])
    for start, stop in zip(starts, stops):
        window = int(windows[start])
        np.savez(
            chunks_dir / f"{side}_{window:06d}_{shard:05d}.npz",
            rows=rows[start:stop],
            cols=cols[start:stop],
            scores=scores[start:stop],
        )


def _merge_side(
    side: str,
    n_rows: int,
    n_cols: int,
    width: int,
    n_pairs: int,
    row_window: int,
    chunks_dir: Path,
    score_dtype: np.dtype,
    backing_dir: Optional[Path],
) -> Tuple[np.ndarray, np.ndarray, int, int]:
    """Merge one side's spilled chunks window-by-window.

    Returns ``(indices, scores, n_duplicates, multi_shard_rows)``; the
    multi-shard tally is only meaningful for the forward side.
    """
    assembler = StreamedIndexAssembler(
        n_rows, width, score_dtype=score_dtype, backing_dir=backing_dir, name=side
    )
    n_duplicates = 0
    multi_shard = 0
    for window_start in range(0, max(n_rows, 1), row_window):
        window_rows = min(row_window, n_rows - window_start)
        if window_rows <= 0:
            break
        window = window_start // row_window
        parts = sorted(chunks_dir.glob(f"{side}_{window:06d}_*.npz"))
        rows_list: List[np.ndarray] = []
        cols_list: List[np.ndarray] = []
        scores_list: List[np.ndarray] = []
        shards_list: List[np.ndarray] = []
        for part in parts:
            shard = int(part.stem.rsplit("_", 1)[1])
            with np.load(part) as payload:
                part_rows = payload["rows"]
                rows_list.append(part_rows)
                cols_list.append(payload["cols"])
                scores_list.append(payload["scores"])
            shards_list.append(np.full(part_rows.size, shard, dtype=np.int64))
            part.unlink()
        if rows_list:
            rows = np.concatenate(rows_list) - window_start
            cols = np.concatenate(cols_list)
            scores = np.concatenate(scores_list).astype(score_dtype, copy=False)
            shards = np.concatenate(shards_list)
        else:
            rows = cols = shards = np.empty(0, dtype=np.int64)
            scores = np.empty(0, dtype=score_dtype)
        if shards.size:
            # (row, shard) pairs partition by window, so per-window tallies
            # sum to the global multi-shard-source count.
            pair_key = rows * np.int64(n_pairs + 1) + shards
            contributing = np.unique(pair_key) // (n_pairs + 1)
            counts = np.bincount(contributing.astype(np.int64))
            multi_shard += int((counts > 1).sum())
        block_indices, block_scores, dups = _assemble_side(
            rows, cols, scores, shards, window_rows, n_cols, width
        )
        n_duplicates += dups
        assembler.write(window_start, block_indices, block_scores)
    indices, scores = assembler.finalize()
    return indices, scores, n_duplicates, multi_shard


def stitch_alignments_streaming(
    plan: ShardPlan,
    shard_indexes: Sequence[ShardIndexSource],
    n_source: int,
    n_target: int,
    k: int = DEFAULT_INDEX_K,
    reverse_k: Optional[int] = None,
    *,
    workdir: Optional[Union[str, Path]] = None,
    row_window: int = DEFAULT_ROW_WINDOW,
) -> StitchedAlignment:
    """Stitch per-shard serve indexes into a global sparse alignment.

    Bit-identical to :func:`repro.shard.stitch.stitch_alignments` over the
    same shard results (provided every shard index is at least as wide as
    ``k``/``reverse_k``), but the global index is assembled out of core: the
    peak working set is one shard index plus one ``row_window`` of merge
    candidates, and the output arrays are disk-backed memmaps.

    Parameters
    ----------
    plan:
        The shard plan the indexes were produced under.
    shard_indexes:
        Per-shard serve indexes, or zero-argument loaders returning them
        (loaders are called one at a time and released after spilling).
    n_source, n_target, k, reverse_k:
        As in :func:`~repro.shard.stitch.stitch_alignments`.
    workdir:
        Directory for spill chunks and the memmap-backed output arrays.
        ``None`` uses a temporary directory that is removed on return — the
        returned index stays valid (POSIX unlink-while-mapped), but pass a
        stable path if the backing files should outlive the process.
    row_window:
        Global rows merged per window; bounds the merge-phase working set.
    """
    if len(shard_indexes) != len(plan.pairs):
        raise ValueError(
            f"plan has {len(plan.pairs)} shard pairs but "
            f"{len(shard_indexes)} shard indexes were given"
        )
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    reverse_k = k if reverse_k is None else reverse_k
    if reverse_k < 1:
        raise ValueError(f"reverse_k must be >= 1, got {reverse_k}")
    if row_window < 1:
        raise ValueError(f"row_window must be >= 1, got {row_window}")
    width = min(k, n_target)
    reverse_width = min(reverse_k, n_source)

    cleanup = workdir is None
    workdir = Path(
        tempfile.mkdtemp(prefix="repro_stitch_") if workdir is None else workdir
    )
    chunks_dir = workdir / "chunks"
    chunks_dir.mkdir(parents=True, exist_ok=True)
    backing_dir = workdir / "global_index"
    try:
        # Phase A: spill each shard's candidates, one shard resident at a
        # time.  The common score dtype mirrors the concatenation promotion
        # of the in-memory stitch (float32 shards upcast losslessly).
        score_dtype = np.dtype(np.float32)
        for shard_pair, source in zip(plan.pairs, shard_indexes):
            index = source() if callable(source) else source
            score_dtype = np.promote_types(score_dtype, index.score_dtype)
            for reverse, side, side_width in (
                (False, "fwd", width),
                (True, "rev", reverse_width),
            ):
                rows, cols, scores = _shard_index_candidates(
                    index, shard_pair, side_width, reverse
                )
                _spill_side(
                    rows,
                    cols,
                    scores,
                    side,
                    shard_pair.index,
                    row_window,
                    chunks_dir,
                )
            del index
        if score_dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            score_dtype = np.dtype(np.float64)

        # Phase B: merge window by window into memmap-backed output arrays.
        indices, fwd_scores, n_duplicates, multi_shard = _merge_side(
            "fwd",
            n_source,
            n_target,
            width,
            len(plan.pairs),
            row_window,
            chunks_dir,
            score_dtype,
            backing_dir,
        )
        reverse_indices, reverse_scores, _, _ = _merge_side(
            "rev",
            n_target,
            n_source,
            reverse_width,
            len(plan.pairs),
            row_window,
            chunks_dir,
            score_dtype,
            backing_dir,
        )

        index = SparseTopKIndex(
            shape=(n_source, n_target),
            k=k,
            indices=indices,
            scores=fwd_scores,
            reverse_k=reverse_k,
            reverse_indices=reverse_indices,
            reverse_scores=reverse_scores,
        )
        return StitchedAlignment(
            index=index,
            n_shards=len(plan.pairs),
            conflicts_resolved=n_duplicates,
            multi_shard_sources=multi_shard,
        )
    finally:
        if cleanup:
            shutil.rmtree(workdir, ignore_errors=True)


__all__ = [
    "DEFAULT_ROW_WINDOW",
    "stitch_alignments_streaming",
]
