"""Partition–align–stitch: divide-and-conquer alignment of large graph pairs.

Single-shot HTC trains and scores a whole graph pair at once, so per-pair
cost grows superlinearly in the number of nodes (orbit counting, the
``O(n_s·n_t)`` scoring stages, per-orbit refinement).  This subsystem aligns
pairs far beyond that envelope in three stages:

1. :mod:`repro.shard.partition` — deterministic seeded community
   partitioning of both graphs plus cross-graph shard matching by cheap
   structural/attribute signatures,
2. :mod:`repro.shard.executor` — per-shard-pair :class:`~repro.core.HTCAligner`
   jobs executed through the existing :mod:`repro.runner` machinery
   (spec-hashed artifacts, the pluggable ``"executor"`` backends,
   ``resume``),
3. :mod:`repro.shard.stitch` — merging the per-shard results into one global
   sparse alignment with deterministic boundary-conflict resolution and an
   optional seed-consistency refinement pass; :mod:`repro.shard.streaming`
   performs the same merge out of core (chunked spill-to-disk over the
   per-shard serve indexes) so the global index is never resident in one
   process.

Wire-up: ``HTCConfig(shard_count=..., shard_overlap=...)``, the CLI
(``align --shards N``), ``run-suite`` (any HTC job whose config sets
``shard_count``), and :func:`repro.serve.artifacts.save_index_artifact` for
serving stitched results.
"""

from repro.shard.executor import ShardedAligner, align_sharded
from repro.shard.partition import (
    Partition,
    ShardPair,
    ShardPlan,
    build_shard_plan,
    expand_with_overlap,
    match_partitions,
    node_features,
    partition_graph,
    shard_signature,
    transfer_seeds,
)
from repro.shard.stitch import (
    StitchedAlignment,
    refine_stitched,
    stitch_alignments,
)
from repro.shard.streaming import (
    DEFAULT_ROW_WINDOW,
    stitch_alignments_streaming,
)

__all__ = [
    "Partition",
    "ShardPair",
    "ShardPlan",
    "partition_graph",
    "transfer_seeds",
    "node_features",
    "expand_with_overlap",
    "shard_signature",
    "match_partitions",
    "build_shard_plan",
    "align_sharded",
    "ShardedAligner",
    "StitchedAlignment",
    "stitch_alignments",
    "refine_stitched",
    "DEFAULT_ROW_WINDOW",
    "stitch_alignments_streaming",
]
