"""Execute a shard plan through the existing ``repro.runner`` machinery.

:func:`align_sharded` is the orchestration layer of the partition–align–
stitch pipeline: it builds a :class:`~repro.shard.partition.ShardPlan`,
persists every shard sub-pair as an on-disk ``dir:`` dataset, expands a
one-method :class:`~repro.runner.spec.SuiteSpec` over those datasets and
runs it with :func:`~repro.runner.executor.run_suite` — inheriting the
process pool, spec-hashed per-job JSON artifacts, per-job timeouts and
``resume`` semantics for free.  Per-shard alignments come back as serve
artifacts (``emit_artifacts``), are loaded in full mode and stitched into a
global sparse alignment.

Give ``workdir`` a stable path to make the whole sharded alignment
resumable: a re-run with ``resume=True`` regenerates the (deterministic)
shard datasets, skips every shard job whose artifact already matches its
spec hash, and only re-aligns what changed.

:class:`ShardedAligner` adapts the pipeline to the standard aligner
protocol (``align(pair) -> AlignmentResult``) so ``run-suite``, ``align``
and ``export-artifact`` can run sharded HTC by simply setting
``HTCConfig.shard_count``.
"""

from __future__ import annotations

import dataclasses
import shutil
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.config import HTCConfig
from repro.core.result import AlignmentResult
from repro.datasets.io import save_pair
from repro.datasets.pair import GraphPair
from repro.obs.metrics import default_registry
from repro.obs.tracing import span
from repro.runner.executor import STATUS_CACHED, STATUS_DONE, run_suite
from repro.runner.spec import SuiteSpec
from repro.serve.artifacts import load_artifact
from repro.serve.index import DEFAULT_INDEX_K
from repro.shard.partition import build_shard_plan
from repro.shard.stitch import (
    StitchedAlignment,
    refine_stitched,
    stitch_alignments,
)
from repro.shard.streaming import stitch_alignments_streaming
from repro.utils.logging import get_logger
from repro.utils.naming import slugify

logger = get_logger(__name__)


def _shard_config_overrides(config: HTCConfig) -> Dict[str, object]:
    """The per-shard job config: the full config minus the shard knobs.

    Stripping ``shard_count`` is what stops the per-shard jobs from
    recursing into another sharded run.  ``executor_backend`` is stripped
    too: it changes how jobs run, never what they compute, so it must not
    enter the job specs (spec hashes stay identical across executors).
    """
    overrides: Dict[str, object] = {}
    for spec in dataclasses.fields(config):
        if spec.name in ("shard_count", "shard_overlap", "executor_backend", "extra"):
            continue
        value = getattr(config, spec.name)
        if spec.name == "orbit_cache" and not isinstance(value, (bool, str)):
            value = "memory"
        if spec.name == "random_state" and not isinstance(value, (int, type(None))):
            value = 0
        if isinstance(value, tuple):
            value = list(value)
        overrides[spec.name] = value
    return overrides


def align_sharded(
    pair: GraphPair,
    config: Optional[HTCConfig] = None,
    *,
    shard_count: Optional[int] = None,
    shard_overlap: Optional[int] = None,
    method: str = "HTC",
    jobs: int = 1,
    workdir: Optional[Union[str, Path]] = None,
    resume: bool = False,
    timeout: Optional[float] = None,
    index_k: int = DEFAULT_INDEX_K,
    reverse_k: Optional[int] = None,
    refine_iterations: int = 3,
    refine_alpha: float = 0.2,
    executor: Optional[str] = None,
    stitch: str = "memory",
) -> StitchedAlignment:
    """Partition ``pair``, align every shard pair, stitch the results.

    Parameters
    ----------
    pair, config:
        The alignment task and the (per-shard) HTC configuration.
    shard_count, shard_overlap:
        Override ``config.shard_count`` / ``config.shard_overlap``; the
        count is required in one of the two places.
    method:
        Per-shard method name (anything
        :func:`repro.runner.executor.resolve_method` accepts).
    jobs:
        Worker processes for the shard suite (``1`` = inline).
    workdir:
        Directory for shard datasets, job artifacts and serve artifacts.
        ``None`` uses a temporary directory removed afterwards; pass a
        stable path (plus ``resume=True``) to make interrupted sharded
        alignments restartable at per-shard granularity.
    resume, timeout:
        Forwarded to :func:`~repro.runner.executor.run_suite`.
    index_k, reverse_k:
        Width of the stitched sparse index.
    refine_iterations, refine_alpha:
        Seed-consistency refinement passes over the stitched candidates
        (``0`` disables; see :func:`repro.shard.stitch.refine_stitched`).
    executor:
        Executor backend for the shard suite (``"serial"`` /
        ``"process-pool"`` / ``"thread-pool"`` / ``"auto"``); defaults to
        ``config.executor_backend``.  Execution-only — shard job spec
        hashes and resume artifacts are identical across backends.
    stitch:
        ``"memory"`` (default) stitches from the dense per-shard matrices
        in one process; ``"streaming"`` merges the per-shard sparse serve
        indexes chunk-by-chunk out of core
        (:func:`repro.shard.streaming.stitch_alignments_streaming`) —
        identical results, with the global index never resident while
        being assembled.
    """
    if stitch not in ("memory", "streaming"):
        raise ValueError(
            f'stitch must be "memory" or "streaming", got {stitch!r}'
        )
    config = config if config is not None else HTCConfig()
    n_shards = shard_count if shard_count is not None else config.shard_count
    if n_shards is None:
        raise ValueError(
            "shard_count must be given (argument or HTCConfig.shard_count)"
        )
    overlap = shard_overlap if shard_overlap is not None else config.shard_overlap
    seed = config.random_state if isinstance(config.random_state, int) else 0

    started = time.perf_counter()
    with span("shard.partition"):
        plan = build_shard_plan(pair, n_shards, overlap=overlap, seed=seed)
    partition_s = time.perf_counter() - started

    cleanup = workdir is None
    workdir = Path(
        tempfile.mkdtemp(prefix="repro_shard_") if workdir is None else workdir
    )
    try:
        pairs_dir = workdir / "pairs"
        dataset_names: List[str] = []
        for shard_pair in plan.pairs:
            shard_dir = pairs_dir / f"shard_{shard_pair.index:03d}"
            save_pair(shard_pair.subpair(pair), shard_dir)
            dataset_names.append(f"dir:{shard_dir}")

        suite = SuiteSpec(
            name=f"{slugify(pair.name, 'pair')}-shards{plan.n_shards}",
            datasets=dataset_names,
            methods=[method],
            config=_shard_config_overrides(config),
            n_runs=1,
            seed=seed,
            timeout=timeout,
        )
        started = time.perf_counter()
        with span("shard.align"):
            report = run_suite(
                suite,
                workdir / "runs",
                jobs=jobs,
                resume=resume,
                timeout=timeout,
                emit_artifacts=True,
                executor=(
                    executor if executor is not None else config.executor_backend
                ),
            )
        align_s = time.perf_counter() - started

        by_dataset = {str(a["spec"]["dataset"]): a for a in report.artifacts}
        store = report.suite_dir / "serve_artifacts"
        load_mode = "serve" if stitch == "streaming" else "full"
        matrices = []
        index_sources = []
        shard_stats: List[Dict[str, object]] = []
        failures = []
        for shard_pair, dataset in zip(plan.pairs, dataset_names):
            artifact = by_dataset.get(dataset)
            status = artifact.get("status") if artifact else "missing"
            stats: Dict[str, object] = {
                "shard": shard_pair.index,
                "job_id": artifact.get("job_id") if artifact else None,
                "status": status,
                "wall_seconds": artifact.get("wall_seconds", 0.0) if artifact else 0.0,
                "source_nodes": int(shard_pair.source_nodes.size),
                "target_nodes": int(shard_pair.target_nodes.size),
            }
            if artifact and status in (STATUS_DONE, STATUS_CACHED):
                serve_info = artifact.get("serve_artifact") or {}
                artifact_id = str(serve_info.get("artifact_id"))
                try:
                    loaded = load_artifact(store, artifact_id, mode=load_mode)
                except (OSError, ValueError) as error:
                    # Covers a pruned serve_artifacts directory, a cached
                    # job without the serve_artifact key, and corrupt or
                    # schema-incompatible artifacts — report it with the
                    # other shard failures instead of aborting mid-loop.
                    stats["status"] = f"{status} (serve artifact unreadable)"
                    failures.append(
                        f"shard {shard_pair.index} ({stats['job_id']}): "
                        f"serve artifact unreadable — {error}"
                    )
                    shard_stats.append(stats)
                    continue
                if stitch == "streaming":
                    # Only validated here; the stitcher re-loads the index
                    # lazily so at most one shard is resident during spill.
                    stats["serve_artifact"] = artifact_id
                    index_sources.append(
                        lambda store=store, aid=artifact_id: load_artifact(
                            store, aid, mode="serve"
                        ).index
                    )
                    del loaded
                else:
                    matrices.append(loaded.result.alignment_matrix)
                result = artifact.get("result") or {}
                stats["metrics"] = dict(result.get("metrics", {}))
            else:
                failures.append(
                    f"shard {shard_pair.index} ({stats['job_id']}): {status}"
                    + (f" — {artifact.get('error')}" if artifact else "")
                )
            shard_stats.append(stats)
        if failures:
            raise RuntimeError(
                "sharded alignment incomplete; failed shard jobs:\n  "
                + "\n  ".join(failures)
            )

        started = time.perf_counter()
        with span("shard.stitch"):
            if stitch == "streaming":
                stitched = stitch_alignments_streaming(
                    plan,
                    index_sources,
                    pair.source.n_nodes,
                    pair.target.n_nodes,
                    k=index_k,
                    reverse_k=reverse_k,
                    workdir=workdir / "stitch_stream",
                )
            else:
                stitched = stitch_alignments(
                    plan,
                    matrices,
                    pair.source.n_nodes,
                    pair.target.n_nodes,
                    k=index_k,
                    reverse_k=reverse_k,
                )
        stitch_s = time.perf_counter() - started

        refine_s = 0.0
        if refine_iterations > 0:
            started = time.perf_counter()
            with span("shard.refine"):
                stitched = refine_stitched(
                    stitched,
                    pair.source,
                    pair.target,
                    iterations=refine_iterations,
                    alpha=refine_alpha,
                )
            refine_s = time.perf_counter() - started

        stitched.stage_times = {
            "partition": partition_s,
            "shard_alignment": align_s,
            "stitch": stitch_s,
            "refine": refine_s,
        }
        # Always-on per-phase histograms (the spans above are opt-in);
        # one observe per phase per sharded run — negligible next to the
        # phases themselves.
        registry = default_registry()
        for stage, seconds in stitched.stage_times.items():
            registry.histogram("shard_stage_seconds", stage=stage).observe(
                seconds
            )
        stitched.shard_stats = shard_stats
        logger.info(
            "sharded %s: %d shards, %d conflicts resolved, %.2fs total",
            pair.name,
            stitched.n_shards,
            stitched.conflicts_resolved,
            stitched.total_time,
        )
        return stitched
    finally:
        if cleanup:
            shutil.rmtree(workdir, ignore_errors=True)


class ShardedAligner:
    """Standard-protocol adapter running HTC via partition–align–stitch.

    ``align`` returns a densified :class:`AlignmentResult` (rankings
    faithful up to ``index_k`` per row) so the eval protocol, ``run-suite``
    and artifact export work unchanged; the sparse stitched alignment of the
    last run is kept on :attr:`last_stitched_` for memory-light serving.
    """

    name = "HTC"
    requires_supervision = False

    def __init__(
        self,
        config: Optional[HTCConfig] = None,
        *,
        jobs: int = 1,
        workdir: Optional[Union[str, Path]] = None,
        resume: bool = False,
        index_k: int = DEFAULT_INDEX_K,
        refine_iterations: int = 3,
        executor: Optional[str] = None,
        stitch: str = "memory",
    ) -> None:
        config = config if config is not None else HTCConfig()
        if config.shard_count is None:
            raise ValueError("ShardedAligner needs HTCConfig.shard_count set")
        self.config = config
        self.jobs = jobs
        self.workdir = workdir
        self.resume = resume
        self.index_k = index_k
        self.refine_iterations = refine_iterations
        self.executor = executor
        self.stitch = stitch
        self.last_stitched_: Optional[StitchedAlignment] = None

    def align(self, pair: GraphPair, train_anchors=None) -> AlignmentResult:
        """Align ``pair`` sharded; ``train_anchors`` accepted and ignored."""
        stitched = align_sharded(
            pair,
            self.config,
            jobs=self.jobs,
            workdir=self.workdir,
            resume=self.resume,
            index_k=self.index_k,
            refine_iterations=self.refine_iterations,
            executor=self.executor,
            stitch=self.stitch,
        )
        self.last_stitched_ = stitched
        return stitched.to_result()

    def __repr__(self) -> str:
        return (
            f"ShardedAligner(shards={self.config.shard_count}, "
            f"overlap={self.config.shard_overlap}, jobs={self.jobs})"
        )


__all__ = ["align_sharded", "ShardedAligner"]
