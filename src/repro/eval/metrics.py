"""Alignment quality metrics (paper §V-A, Eq. 16-17).

Both metrics are computed over the ground-truth anchor links only
(``ground_truth[i] == -1`` marks source nodes without a counterpart, which
are skipped, matching the paper's normalisation by ``|L*|``).
"""

from __future__ import annotations

from typing import Dict, Iterable

import numpy as np


def _validate(score_matrix: np.ndarray, ground_truth: np.ndarray) -> tuple:
    scores = np.asarray(score_matrix, dtype=np.float64)
    truth = np.asarray(ground_truth, dtype=np.int64)
    if scores.ndim != 2:
        raise ValueError("score_matrix must be 2-D")
    if truth.shape != (scores.shape[0],):
        raise ValueError(
            f"ground_truth must have shape ({scores.shape[0]},), got {truth.shape}"
        )
    valid = truth[truth >= 0]
    if valid.size and valid.max() >= scores.shape[1]:
        raise ValueError("ground_truth references a target index outside the matrix")
    return scores, truth


def precision_at_q(
    score_matrix: np.ndarray, ground_truth: np.ndarray, q: int = 1
) -> float:
    """Fraction of anchors whose true target is within the top-``q`` candidates."""
    if q < 1:
        raise ValueError(f"q must be >= 1, got {q}")
    scores, truth = _validate(score_matrix, ground_truth)
    anchor_rows = np.where(truth >= 0)[0]
    if anchor_rows.size == 0:
        return 0.0
    q = min(q, scores.shape[1])
    hits = 0
    for row in anchor_rows:
        top = np.argpartition(-scores[row], q - 1)[:q]
        if truth[row] in top:
            hits += 1
    return hits / anchor_rows.size


def mean_reciprocal_rank(score_matrix: np.ndarray, ground_truth: np.ndarray) -> float:
    """Mean of ``1 / rank`` of the true target's score in each anchor's row."""
    scores, truth = _validate(score_matrix, ground_truth)
    anchor_rows = np.where(truth >= 0)[0]
    if anchor_rows.size == 0:
        return 0.0
    reciprocal_sum = 0.0
    for row in anchor_rows:
        row_scores = scores[row]
        true_score = row_scores[truth[row]]
        # Mid-rank tie handling: rank = 1 + #strictly-better + #ties/2, so
        # degenerate constant rows do not get a perfect reciprocal rank.
        better = int((row_scores > true_score).sum())
        ties = int((row_scores == true_score).sum()) - 1
        rank = 1.0 + better + ties / 2.0
        reciprocal_sum += 1.0 / rank
    return reciprocal_sum / anchor_rows.size


def evaluate_alignment(
    score_matrix: np.ndarray,
    ground_truth: np.ndarray,
    precision_ks: Iterable[int] = (1, 10),
) -> Dict[str, float]:
    """Compute the paper's metric set for one alignment matrix."""
    metrics = {
        f"p@{k}": precision_at_q(score_matrix, ground_truth, q=k)
        for k in precision_ks
    }
    metrics["MRR"] = mean_reciprocal_rank(score_matrix, ground_truth)
    return metrics


__all__ = ["precision_at_q", "mean_reciprocal_rank", "evaluate_alignment"]
