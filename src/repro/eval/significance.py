"""Multi-run aggregation and significance testing.

The paper reports metrics averaged over 20 runs.  These helpers make that
protocol explicit: ``aggregate_runs`` collects per-run metrics into mean/std
summaries, and ``paired_bootstrap`` tests whether one method's advantage over
another on the same set of anchors is statistically meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.utils.random import RandomStateLike, check_random_state


@dataclass
class AggregatedMetric:
    """Mean/std/min/max of one metric over repeated runs."""

    name: str
    mean: float
    std: float
    minimum: float
    maximum: float
    n_runs: int

    def __str__(self) -> str:
        return f"{self.name}: {self.mean:.4f} ± {self.std:.4f} (n={self.n_runs})"


def aggregate_runs(per_run_metrics: Sequence[Dict[str, float]]) -> Dict[str, AggregatedMetric]:
    """Aggregate a list of per-run metric dicts into per-metric summaries."""
    if not per_run_metrics:
        raise ValueError("per_run_metrics must not be empty")
    names = set(per_run_metrics[0])
    for run in per_run_metrics:
        if set(run) != names:
            raise ValueError("every run must report the same metrics")
    aggregated = {}
    for name in sorted(names):
        values = np.array([run[name] for run in per_run_metrics], dtype=np.float64)
        aggregated[name] = AggregatedMetric(
            name=name,
            mean=float(values.mean()),
            std=float(values.std(ddof=0)),
            minimum=float(values.min()),
            maximum=float(values.max()),
            n_runs=len(values),
        )
    return aggregated


def per_anchor_hits(
    score_matrix: np.ndarray, ground_truth: np.ndarray, q: int = 1
) -> np.ndarray:
    """Per-anchor 0/1 indicators of whether the true target is in the top-``q``.

    This is the anchor-level decomposition of precision@q needed for paired
    significance tests.
    """
    scores = np.asarray(score_matrix, dtype=np.float64)
    truth = np.asarray(ground_truth, dtype=np.int64)
    anchor_rows = np.where(truth >= 0)[0]
    q = min(q, scores.shape[1])
    hits = np.zeros(anchor_rows.size, dtype=np.float64)
    for index, row in enumerate(anchor_rows):
        top = np.argpartition(-scores[row], q - 1)[:q]
        hits[index] = 1.0 if truth[row] in top else 0.0
    return hits


def paired_bootstrap(
    hits_a: np.ndarray,
    hits_b: np.ndarray,
    n_resamples: int = 2000,
    random_state: RandomStateLike = 0,
) -> Dict[str, float]:
    """Paired bootstrap comparison of two methods' per-anchor hit vectors.

    Returns the observed difference in accuracy (A minus B) and the bootstrap
    probability that A is at least as good as B (``p_a_geq_b``).  A value
    close to 1.0 means A's advantage is consistent across resamples.
    """
    hits_a = np.asarray(hits_a, dtype=np.float64)
    hits_b = np.asarray(hits_b, dtype=np.float64)
    if hits_a.shape != hits_b.shape:
        raise ValueError("hit vectors must have the same shape (same anchors)")
    if hits_a.size == 0:
        raise ValueError("hit vectors must be non-empty")
    if n_resamples < 1:
        raise ValueError(f"n_resamples must be >= 1, got {n_resamples}")
    rng = check_random_state(random_state)

    n = hits_a.size
    observed = float(hits_a.mean() - hits_b.mean())
    wins = 0
    for _ in range(n_resamples):
        sample = rng.integers(0, n, size=n)
        if hits_a[sample].mean() >= hits_b[sample].mean():
            wins += 1
    return {
        "difference": observed,
        "p_a_geq_b": wins / n_resamples,
        "n_anchors": float(n),
        "n_resamples": float(n_resamples),
    }


def compare_methods_on_pair(
    aligner_a,
    aligner_b,
    pair,
    q: int = 1,
    train_ratio: float = 0.1,
    n_resamples: int = 2000,
    random_state: RandomStateLike = 0,
) -> Dict[str, float]:
    """Convenience wrapper: align with both methods and bootstrap-compare them."""
    rng = check_random_state(random_state)
    results = []
    for aligner in (aligner_a, aligner_b):
        train_anchors = None
        if getattr(aligner, "requires_supervision", False):
            train_anchors, _ = pair.split_anchors(train_ratio, random_state=rng)
        raw = aligner.align(pair, train_anchors=train_anchors)
        matrix = raw.alignment_matrix if hasattr(raw, "alignment_matrix") else raw
        results.append(per_anchor_hits(matrix, pair.ground_truth, q=q))
    return paired_bootstrap(
        results[0], results[1], n_resamples=n_resamples, random_state=rng
    )


__all__ = [
    "AggregatedMetric",
    "aggregate_runs",
    "per_anchor_hits",
    "paired_bootstrap",
    "compare_methods_on_pair",
]
