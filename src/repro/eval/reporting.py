"""Plain-text reporting for benchmark output.

The benchmark harness prints the same rows/series the paper reports; these
helpers keep the formatting consistent and readable in a terminal.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple


def format_table(rows: Iterable[Dict[str, object]], title: str = "") -> str:
    """Render dict rows as an aligned plain-text table."""
    rows = [dict(row) for row in rows]
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.4f}"
        return str(value)

    widths = {
        column: max(len(column), *(len(fmt(row.get(column, ""))) for row in rows))
        for column in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(column.ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[column] for column in columns))
    for row in rows:
        lines.append(
            " | ".join(fmt(row.get(column, "")).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)


def format_series(
    series: Dict[str, Sequence[Tuple[float, float]]],
    x_label: str = "x",
    y_label: str = "y",
    title: str = "",
) -> str:
    """Render named (x, y) series as aligned text (one block per series)."""
    lines = []
    if title:
        lines.append(title)
    for name, points in series.items():
        lines.append(f"[{name}]")
        lines.append(f"  {x_label:>10} | {y_label}")
        for x, y in points:
            lines.append(f"  {x:>10.3f} | {y:.4f}")
    return "\n".join(lines)


def rows_to_csv(rows: Iterable[Dict[str, object]]) -> str:
    """Serialise dict rows to CSV text (header from the union of keys)."""
    rows = [dict(row) for row in rows]
    if not rows:
        return ""
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)

    def escape(value: object) -> str:
        text = "" if value is None else str(value)
        if any(ch in text for ch in (",", '"', "\n")):
            text = '"' + text.replace('"', '""') + '"'
        return text

    lines = [",".join(columns)]
    for row in rows:
        lines.append(",".join(escape(row.get(column, "")) for column in columns))
    return "\n".join(lines) + "\n"


def save_rows(rows: Iterable[Dict[str, object]], path) -> None:
    """Write rows to ``path`` as CSV (``.csv``) or JSON lines (anything else)."""
    import json
    from pathlib import Path

    path = Path(path)
    rows = [dict(row) for row in rows]
    path.parent.mkdir(parents=True, exist_ok=True)
    if path.suffix.lower() == ".csv":
        path.write_text(rows_to_csv(rows))
    else:
        path.write_text("\n".join(json.dumps(row) for row in rows) + "\n")


def format_importance_ranking(importance: Dict[int, float], title: str = "") -> str:
    """Render an orbit-importance ranking (the Fig. 6 bar chart, textually)."""
    lines = [title] if title else []
    ranked = sorted(importance.items(), key=lambda kv: -kv[1])
    for orbit, gamma in ranked:
        bar = "#" * max(1, int(round(gamma * 50)))
        lines.append(f"  orbit {orbit:>2}  gamma={gamma:.4f}  {bar}")
    return "\n".join(lines)


__all__ = [
    "format_table",
    "format_series",
    "format_importance_ranking",
    "rows_to_csv",
    "save_rows",
]
