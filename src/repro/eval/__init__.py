"""Evaluation harness: metrics, protocols, sweeps, and reporting.

* :mod:`repro.eval.metrics` — precision@q and MRR (paper Eq. 16-17),
* :mod:`repro.eval.protocol` — run a method on a pair (with the 10%
  supervised split for supervised baselines), repeat, time, aggregate,
* :mod:`repro.eval.robustness` — the edge-removal noise sweep of Fig. 9,
* :mod:`repro.eval.hyperparameter` — the K/d/m/β sweeps of Fig. 10,
* :mod:`repro.eval.ablation` — the Table III ablation runner,
* :mod:`repro.eval.reporting` — plain-text tables/series for the benches.
"""

from repro.eval.ablation import run_ablation
from repro.eval.hyperparameter import sweep_hyperparameter
from repro.eval.metrics import evaluate_alignment, mean_reciprocal_rank, precision_at_q
from repro.eval.protocol import MethodResult, run_comparison, run_method
from repro.eval.reporting import format_series, format_table
from repro.eval.robustness import run_robustness
from repro.eval.significance import aggregate_runs, paired_bootstrap, per_anchor_hits

__all__ = [
    "precision_at_q",
    "mean_reciprocal_rank",
    "evaluate_alignment",
    "MethodResult",
    "run_method",
    "run_comparison",
    "run_robustness",
    "sweep_hyperparameter",
    "run_ablation",
    "format_table",
    "format_series",
    "aggregate_runs",
    "paired_bootstrap",
    "per_anchor_hits",
]
