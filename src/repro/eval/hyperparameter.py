"""Hyper-parameter sensitivity sweeps (paper §V-F, Fig. 10).

Four sweeps are reported in the paper: the number of orbits ``K``, the
embedding dimension ``d``, the LISI neighbourhood size ``m``, and the
reinforcement rate ``β``.  ``sweep_hyperparameter`` runs any of them by
rebuilding an :class:`HTCAligner` per value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.aligner import HTCAligner
from repro.core.config import HTCConfig
from repro.datasets.pair import GraphPair
from repro.eval.protocol import run_method
from repro.utils.random import RandomStateLike, check_random_state

#: Sweepable hyper-parameter names and how each value maps onto the config.
_SWEEPS = {
    "n_orbits": lambda config, value: config.updated(orbits=tuple(range(int(value)))),
    "embedding_dim": lambda config, value: config.updated(embedding_dim=int(value)),
    "n_neighbors": lambda config, value: config.updated(n_neighbors=int(value)),
    "reinforcement_rate": lambda config, value: config.updated(
        reinforcement_rate=float(value)
    ),
}


@dataclass
class SweepPoint:
    """One (hyper-parameter value, metrics) measurement."""

    parameter: str
    value: float
    dataset: str
    metrics: Dict[str, float]
    time_seconds: float


def sweepable_parameters() -> List[str]:
    """Names accepted by :func:`sweep_hyperparameter`."""
    return sorted(_SWEEPS)


def sweep_hyperparameter(
    parameter: str,
    values: Sequence[float],
    pair: GraphPair,
    base_config: HTCConfig = None,
    n_runs: int = 1,
    random_state: RandomStateLike = 0,
) -> List[SweepPoint]:
    """Evaluate HTC on ``pair`` for every value of ``parameter``."""
    if parameter not in _SWEEPS:
        raise KeyError(
            f"unknown hyper-parameter {parameter!r}; available: {sweepable_parameters()}"
        )
    if not values:
        raise ValueError("values must be non-empty")
    config = base_config if base_config is not None else HTCConfig()
    rng = check_random_state(random_state)

    points: List[SweepPoint] = []
    for value in values:
        variant_config = _SWEEPS[parameter](config, value)
        aligner = HTCAligner(variant_config)
        result = run_method(aligner, pair, n_runs=n_runs, random_state=rng)
        points.append(
            SweepPoint(
                parameter=parameter,
                value=float(value),
                dataset=pair.name,
                metrics=result.metrics,
                time_seconds=result.time_seconds,
            )
        )
    return points


__all__ = ["SweepPoint", "sweep_hyperparameter", "sweepable_parameters"]
