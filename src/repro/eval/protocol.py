"""Experiment protocol: run methods on pairs, average over runs, time them.

This module drives the Table II / Fig. 7 comparisons.  Supervised baselines
receive a fresh 10% anchor split per run (the paper's protocol); unsupervised
methods never see ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

import numpy as np

from repro.datasets.pair import GraphPair
from repro.eval.metrics import evaluate_alignment
from repro.utils.random import RandomStateLike, check_random_state
from repro.utils.timing import Timer


@dataclass
class MethodResult:
    """Aggregated outcome of one method on one dataset pair."""

    method: str
    dataset: str
    metrics: Dict[str, float]
    time_seconds: float
    n_runs: int = 1
    stage_times: Dict[str, float] = field(default_factory=dict)

    def as_row(self) -> Dict[str, object]:
        """Flatten into a table row."""
        row: Dict[str, object] = {"method": self.method, "dataset": self.dataset}
        row.update({k: round(v, 4) for k, v in self.metrics.items()})
        row["time_s"] = round(self.time_seconds, 2)
        return row

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form, round-tripped by the suite runner's
        on-disk artifacts (:mod:`repro.runner`)."""
        return {
            "method": self.method,
            "dataset": self.dataset,
            "metrics": dict(self.metrics),
            "time_seconds": self.time_seconds,
            "n_runs": self.n_runs,
            "stage_times": dict(self.stage_times),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "MethodResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            method=str(payload["method"]),
            dataset=str(payload["dataset"]),
            metrics={k: float(v) for k, v in dict(payload["metrics"]).items()},
            time_seconds=float(payload["time_seconds"]),
            n_runs=int(payload.get("n_runs", 1)),
            stage_times={
                k: float(v)
                for k, v in dict(payload.get("stage_times", {})).items()
            },
        )


def _extract_matrix(result) -> np.ndarray:
    """Accept either a raw matrix or an HTC :class:`AlignmentResult`."""
    if hasattr(result, "alignment_matrix"):
        return np.asarray(result.alignment_matrix)
    return np.asarray(result)


def run_method(
    aligner,
    pair: GraphPair,
    train_ratio: float = 0.1,
    n_runs: int = 1,
    precision_ks: Iterable[int] = (1, 10),
    random_state: RandomStateLike = 0,
    on_result: Optional[Callable[[object], None]] = None,
) -> MethodResult:
    """Run ``aligner`` on ``pair`` ``n_runs`` times and average the metrics.

    ``aligner`` needs an ``align(pair, train_anchors=None)`` method and a
    ``name``/``requires_supervision`` attribute (both
    :class:`repro.baselines.BaseAligner` and :class:`repro.core.HTCAligner`
    qualify).  ``on_result`` is invoked with each run's raw ``align`` output
    (an :class:`~repro.core.result.AlignmentResult` or a bare score matrix)
    before it is reduced to metrics — the hook the suite runner uses to
    persist serve artifacts without re-running the method.
    """
    if n_runs < 1:
        raise ValueError(f"n_runs must be >= 1, got {n_runs}")
    rng = check_random_state(random_state)

    metric_sums: Dict[str, float] = {}
    total_time = 0.0
    stage_times: Dict[str, float] = {}

    for _ in range(n_runs):
        train_anchors = None
        if getattr(aligner, "requires_supervision", False):
            train_anchors, _ = pair.split_anchors(train_ratio, random_state=rng)

        with Timer() as timer:
            raw_result = aligner.align(pair, train_anchors=train_anchors)
        if on_result is not None:
            on_result(raw_result)
        matrix = _extract_matrix(raw_result)

        run_metrics = evaluate_alignment(
            matrix, pair.ground_truth, precision_ks=precision_ks
        )
        for key, value in run_metrics.items():
            metric_sums[key] = metric_sums.get(key, 0.0) + value
        total_time += timer.elapsed

        if hasattr(raw_result, "stage_times"):
            for stage, seconds in raw_result.stage_times.items():
                stage_times[stage] = stage_times.get(stage, 0.0) + seconds

    metrics = {key: value / n_runs for key, value in metric_sums.items()}
    stage_times = {key: value / n_runs for key, value in stage_times.items()}
    return MethodResult(
        method=getattr(aligner, "name", type(aligner).__name__),
        dataset=pair.name,
        metrics=metrics,
        time_seconds=total_time / n_runs,
        n_runs=n_runs,
        stage_times=stage_times,
    )


def run_comparison(
    aligners: Iterable,
    pairs: Iterable[GraphPair],
    train_ratio: float = 0.1,
    n_runs: int = 1,
    precision_ks: Iterable[int] = (1, 10),
    random_state: RandomStateLike = 0,
) -> List[MethodResult]:
    """Cross product of methods × datasets (the Table II layout)."""
    results: List[MethodResult] = []
    rng = check_random_state(random_state)
    for pair in pairs:
        for aligner in aligners:
            results.append(
                run_method(
                    aligner,
                    pair,
                    train_ratio=train_ratio,
                    n_runs=n_runs,
                    precision_ks=precision_ks,
                    random_state=rng,
                )
            )
    return results


def best_by_metric(
    results: List[MethodResult], metric: str = "p@1"
) -> Optional[MethodResult]:
    """Return the result with the highest value of ``metric`` (ties: first)."""
    candidates = [r for r in results if metric in r.metrics]
    if not candidates:
        return None
    return max(candidates, key=lambda r: r.metrics[metric])


__all__ = ["MethodResult", "run_method", "run_comparison", "best_by_metric"]
