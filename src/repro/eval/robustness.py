"""Robustness sweep against structural noise (paper §V-D, Fig. 9).

The target network is regenerated from the source with edge-removal ratios
from 10% to 50%; every method's precision@1 is measured at each noise level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Sequence

from repro.datasets.pair import GraphPair
from repro.eval.protocol import MethodResult, run_method
from repro.utils.random import RandomStateLike, check_random_state


@dataclass
class RobustnessPoint:
    """One (method, noise level) measurement."""

    method: str
    dataset: str
    noise_ratio: float
    metrics: Dict[str, float]
    time_seconds: float


def run_robustness(
    aligners: Iterable,
    dataset_factory: Callable[..., GraphPair],
    noise_ratios: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5),
    train_ratio: float = 0.1,
    n_runs: int = 1,
    random_state: RandomStateLike = 0,
    **dataset_kwargs,
) -> List[RobustnessPoint]:
    """Sweep noise levels for every method.

    ``dataset_factory`` must accept an ``edge_removal_ratio`` keyword (the
    ``econ`` and ``bn`` factories do).
    """
    aligners = list(aligners)
    rng = check_random_state(random_state)
    points: List[RobustnessPoint] = []
    for ratio in noise_ratios:
        if not 0.0 <= ratio < 1.0:
            raise ValueError(f"noise ratios must be in [0, 1), got {ratio}")
        pair = dataset_factory(edge_removal_ratio=ratio, **dataset_kwargs)
        for aligner in aligners:
            result: MethodResult = run_method(
                aligner,
                pair,
                train_ratio=train_ratio,
                n_runs=n_runs,
                random_state=rng,
            )
            points.append(
                RobustnessPoint(
                    method=result.method,
                    dataset=pair.name,
                    noise_ratio=float(ratio),
                    metrics=result.metrics,
                    time_seconds=result.time_seconds,
                )
            )
    return points


def degradation(points: List[RobustnessPoint], method: str, metric: str = "p@1") -> float:
    """Performance drop of ``method`` between the lowest and highest noise level.

    This is the quantity the paper uses to argue robustness (e.g. HTC degrades
    by 0.24 on Econ while PALE degrades by 0.43).
    """
    series = sorted(
        (p for p in points if p.method == method), key=lambda p: p.noise_ratio
    )
    if len(series) < 2:
        raise ValueError(f"need at least two noise levels for method {method!r}")
    return series[0].metrics[metric] - series[-1].metrics[metric]


__all__ = ["RobustnessPoint", "run_robustness", "degradation"]
