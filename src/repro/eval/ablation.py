"""Ablation runner (paper §V-E, Table III)."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.core.config import HTCConfig
from repro.core.variants import ABLATION_VARIANTS, make_variant
from repro.datasets.pair import GraphPair
from repro.eval.protocol import MethodResult, run_method
from repro.utils.random import RandomStateLike, check_random_state


def run_ablation(
    pairs: Iterable[GraphPair],
    variants: Sequence[str] = ABLATION_VARIANTS,
    base_config: Optional[HTCConfig] = None,
    n_runs: int = 1,
    random_state: RandomStateLike = 0,
) -> List[MethodResult]:
    """Evaluate the requested HTC variants on every pair.

    The defaults reproduce Table III's rows (HTC-L, HTC-H, HTC-LT, HTC-DT,
    HTC); pass ``variants`` from
    :data:`repro.core.variants.EXTRA_ABLATION_VARIANTS` for the additional
    design ablations.
    """
    rng = check_random_state(random_state)
    results: List[MethodResult] = []
    for pair in pairs:
        for name in variants:
            aligner = make_variant(name, base_config)
            results.append(run_method(aligner, pair, n_runs=n_runs, random_state=rng))
    return results


__all__ = ["run_ablation"]
