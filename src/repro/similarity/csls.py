"""Cross-domain Similarity Local Scaling (CSLS).

CSLS (Conneau et al., 2018) is the hubness correction the paper's LISI is
closely related to: instead of subtracting the hubness degrees from twice the
similarity (LISI, Eq. 11), CSLS subtracts each endpoint's mean top-``k``
neighbourhood similarity once:

``CSLS(x, y) = 2·sim(x, y) − r_T(x) − r_S(y)``

with ``r_T(x)`` the mean similarity of ``x`` to its ``k`` nearest target
neighbours.  With Pearson similarity the two coincide; CSLS is provided on
cosine similarity as an alternative scoring function, and is used by the
extended ablation tests to check that HTC's gains are not an artefact of one
particular hubness correction.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.similarity.lisi import hubness_degrees
from repro.similarity.measures import cosine_similarity


def csls_matrix(
    source_embeddings: np.ndarray,
    target_embeddings: np.ndarray,
    n_neighbors: int = 10,
    similarity: Optional[np.ndarray] = None,
) -> np.ndarray:
    """CSLS-adjusted cosine-similarity matrix between two embedding sets.

    Parameters
    ----------
    source_embeddings, target_embeddings:
        ``(n_s, d)`` and ``(n_t, d)`` embedding matrices.
    n_neighbors:
        Neighbourhood size ``k`` of the local scaling.
    similarity:
        Optional pre-computed cosine-similarity matrix.
    """
    if similarity is None:
        similarity = cosine_similarity(source_embeddings, target_embeddings)
    source_hubness, target_hubness = hubness_degrees(similarity, n_neighbors)
    return 2.0 * similarity - source_hubness[:, None] - target_hubness[None, :]


__all__ = ["csls_matrix"]
