"""Cross-domain Similarity Local Scaling (CSLS).

CSLS (Conneau et al., 2018) is the hubness correction the paper's LISI is
closely related to: instead of subtracting the hubness degrees from twice the
similarity (LISI, Eq. 11), CSLS subtracts each endpoint's mean top-``k``
neighbourhood similarity once:

``CSLS(x, y) = 2·sim(x, y) − r_T(x) − r_S(y)``

with ``r_T(x)`` the mean similarity of ``x`` to its ``k`` nearest target
neighbours.  With Pearson similarity the two coincide; CSLS is provided on
cosine similarity as an alternative scoring function, and is used by the
extended ablation tests to check that HTC's gains are not an artefact of one
particular hubness correction.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.backend.precision import PolicyLike
from repro.similarity.lisi import _hubness_corrected_matrix
from repro.similarity.measures import cosine_similarity


def csls_matrix(
    source_embeddings: np.ndarray,
    target_embeddings: np.ndarray,
    n_neighbors: int = 10,
    similarity: Optional[np.ndarray] = None,
    *,
    chunk_rows: Optional[int] = None,
    out: Optional[np.ndarray] = None,
    policy: PolicyLike = None,
    backend: Optional[str] = None,
) -> np.ndarray:
    """CSLS-adjusted cosine-similarity matrix between two embedding sets.

    Parameters
    ----------
    source_embeddings, target_embeddings:
        ``(n_s, d)`` and ``(n_t, d)`` embedding matrices.
    n_neighbors:
        Neighbourhood size ``k`` of the local scaling.
    similarity:
        Optional pre-computed cosine-similarity matrix (skips recomputation
        and makes ``chunk_rows`` a no-op).
    chunk_rows:
        If set, assemble the matrix in bounded row chunks (bit-identical to
        the dense path); see :mod:`repro.similarity.chunked`.
    out:
        Optional pre-allocated ``(n_s, n_t)`` output buffer in the active
        policy's compute dtype — a mismatched buffer is rejected with an
        error naming the policy; the result is written into it (a provided
        ``similarity`` is never mutated unless it *is* ``out``).
    policy, backend:
        Precision policy and compute backend (see :mod:`repro.backend`);
        the float64 default is bit-identical to the historical kernel.
    """
    return _hubness_corrected_matrix(
        source_embeddings,
        target_embeddings,
        n_neighbors,
        similarity,
        chunk_rows,
        out,
        measure="cosine",
        correction="csls",
        similarity_fn=cosine_similarity,
        policy=policy,
        backend=backend,
    )


__all__ = ["csls_matrix"]
