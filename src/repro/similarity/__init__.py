"""Embedding-similarity measures and matching utilities.

This package turns node embeddings into alignment scores:

* :mod:`repro.similarity.measures` — Pearson-correlation and cosine
  similarity matrices between two embedding sets,
* :mod:`repro.similarity.lisi` — the Locally Isolated Similarity Index
  (Eq. 9-11), which corrects raw similarity for hubness,
* :mod:`repro.similarity.csls` — the CSLS alternative hubness correction,
* :mod:`repro.similarity.matching` — mutual-nearest-neighbour (trusted-pair)
  detection, greedy one-to-one matching, and top-k retrieval,
* :mod:`repro.similarity.chunked` — memory-bounded streaming versions of all
  of the above that process the score matrix in row chunks (bit-identical to
  the dense kernels).
"""

from repro.similarity.chunked import (
    ChunkedScorer,
    chunked_greedy_match,
    chunked_mutual_nearest_neighbors,
    chunked_score_matrix,
    chunked_top_k_indices,
    streaming_hubness_degrees,
)
from repro.similarity.csls import csls_matrix
from repro.similarity.lisi import hubness_degrees, lisi_matrix
from repro.similarity.matching import (
    greedy_match,
    mutual_nearest_neighbors,
    top_k_indices,
)
from repro.similarity.measures import cosine_similarity, pearson_similarity

__all__ = [
    "pearson_similarity",
    "cosine_similarity",
    "hubness_degrees",
    "lisi_matrix",
    "csls_matrix",
    "mutual_nearest_neighbors",
    "greedy_match",
    "top_k_indices",
    "ChunkedScorer",
    "chunked_score_matrix",
    "chunked_mutual_nearest_neighbors",
    "chunked_greedy_match",
    "chunked_top_k_indices",
    "streaming_hubness_degrees",
]
