"""Locally Isolated Similarity Index (LISI), paper Eq. 9-11.

In the roughly learned embedding space some nodes become *hubs*: nearest
neighbours of disproportionately many nodes of the other graph, which breaks
the nearest-neighbour alignment rule.  LISI discounts each pair's raw
similarity by the hubness of both endpoints:

``LISI(h_s, h_t) = 2 corr(h_s, h_t) - D_t(h_s) - D_s(h_t)``

where ``D_t(h_s)`` is the mean similarity of ``h_s`` to its ``m`` nearest
neighbours in the target space and ``D_s(h_t)`` the symmetric quantity.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.similarity.measures import pearson_similarity


def hubness_degrees(
    similarity: np.ndarray, n_neighbors: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Mean similarity of each row/column to its top-``n_neighbors`` entries.

    Returns
    -------
    source_hubness:
        ``(n_source,)`` — Eq. 10's ``D_t(h_s)`` for every source node.
    target_hubness:
        ``(n_target,)`` — ``D_s(h_t)`` for every target node.
    """
    similarity = np.asarray(similarity, dtype=np.float64)
    if similarity.ndim != 2:
        raise ValueError("similarity must be a 2-D matrix")
    n_source, n_target = similarity.shape
    if n_neighbors < 1:
        raise ValueError(f"n_neighbors must be >= 1, got {n_neighbors}")

    m_source = min(n_neighbors, n_target)
    m_target = min(n_neighbors, n_source)

    # Mean of the m largest entries per row / per column.
    top_rows = np.partition(similarity, n_target - m_source, axis=1)[:, n_target - m_source:]
    source_hubness = top_rows.mean(axis=1)
    top_cols = np.partition(similarity, n_source - m_target, axis=0)[n_source - m_target:, :]
    target_hubness = top_cols.mean(axis=0)
    return source_hubness, target_hubness


def lisi_matrix(
    source_embeddings: np.ndarray,
    target_embeddings: np.ndarray,
    n_neighbors: int = 20,
    similarity: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Compute the LISI alignment matrix between two embedding sets.

    Parameters
    ----------
    source_embeddings, target_embeddings:
        ``(n_s, d)`` and ``(n_t, d)`` embedding matrices.
    n_neighbors:
        Neighbourhood size ``m`` used for the hubness correction.
    similarity:
        Optional pre-computed Pearson similarity matrix (skips recomputation).
    """
    if similarity is None:
        similarity = pearson_similarity(source_embeddings, target_embeddings)
    source_hubness, target_hubness = hubness_degrees(similarity, n_neighbors)
    return 2.0 * similarity - source_hubness[:, None] - target_hubness[None, :]


__all__ = ["hubness_degrees", "lisi_matrix"]
