"""Locally Isolated Similarity Index (LISI), paper Eq. 9-11.

In the roughly learned embedding space some nodes become *hubs*: nearest
neighbours of disproportionately many nodes of the other graph, which breaks
the nearest-neighbour alignment rule.  LISI discounts each pair's raw
similarity by the hubness of both endpoints:

``LISI(h_s, h_t) = 2 corr(h_s, h_t) - D_t(h_s) - D_s(h_t)``

where ``D_t(h_s)`` is the mean similarity of ``h_s`` to its ``m`` nearest
neighbours in the target space and ``D_s(h_t)`` the symmetric quantity.

Hubness vectors are *reduction statistics*, so under every precision policy
they are accumulated and stored in float64 (the policy's ``accum_dtype``):
a float32 similarity matrix yields float64 hubness degrees, and the
correction is applied with float64 operands cast on store — the
compute-low/accumulate-high contract of :mod:`repro.backend.precision`.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.backend.precision import PolicyLike, as_score_matrix
from repro.similarity.measures import pearson_similarity


def _row_hubness(similarity: np.ndarray, m: int) -> np.ndarray:
    """Mean of the ``m`` largest entries of every row (float64 accumulated).

    Row-wise selection only touches the row's own entries, so the streaming
    kernels can call this per row chunk and obtain bit-identical values.
    """
    n_cols = similarity.shape[1]
    if m == 0 or similarity.shape[0] == 0:
        return np.zeros(similarity.shape[0], dtype=np.float64)
    top = np.partition(similarity, n_cols - m, axis=1)[:, n_cols - m:]
    return top.mean(axis=1, dtype=np.float64)


def _column_top_mean(top_block: np.ndarray) -> np.ndarray:
    """Mean over a ``(m, n_cols)`` block of per-column top values.

    The block is sorted along axis 0 first so the summation order depends
    only on the *multiset* of selected values, not on how they were selected.
    This is what lets the streaming top-``m`` accumulator (which gathers the
    same values in a different order) reproduce the dense result bit for bit.
    """
    if top_block.shape[0] == 0:
        return np.zeros(top_block.shape[1], dtype=np.float64)
    return np.sort(top_block, axis=0).mean(axis=0, dtype=np.float64)


def hubness_degrees(
    similarity: np.ndarray, n_neighbors: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Mean similarity of each row/column to its top-``n_neighbors`` entries.

    The similarity matrix keeps its (float32 or float64) dtype; the
    returned hubness vectors are always float64.

    Returns
    -------
    source_hubness:
        ``(n_source,)`` — Eq. 10's ``D_t(h_s)`` for every source node.
    target_hubness:
        ``(n_target,)`` — ``D_s(h_t)`` for every target node.
    """
    similarity = as_score_matrix(similarity)
    if similarity.ndim != 2:
        raise ValueError("similarity must be a 2-D matrix")
    n_source, n_target = similarity.shape
    if n_neighbors < 1:
        raise ValueError(f"n_neighbors must be >= 1, got {n_neighbors}")

    m_source = min(n_neighbors, n_target)
    m_target = min(n_neighbors, n_source)

    source_hubness = _row_hubness(similarity, m_source)
    if m_target == 0 or n_target == 0:
        target_hubness = np.zeros(n_target, dtype=np.float64)
    else:
        top_cols = np.partition(similarity, n_source - m_target, axis=0)[
            n_source - m_target:, :
        ]
        target_hubness = _column_top_mean(top_cols)
    return source_hubness, target_hubness


def _apply_hubness_correction(
    similarity: np.ndarray,
    source_hubness: np.ndarray,
    target_hubness: np.ndarray,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """``2·sim − D_s[:, None] − D_t[None, :]`` in the one shared op order.

    Every scoring path — dense LISI, dense CSLS, and the chunked blocks in
    :mod:`repro.similarity.chunked` — must perform these three elementwise
    operations in exactly this sequence for the bit-identity contract to
    hold; keep them here only.  ``out is similarity`` applies the correction
    in place.  A float32 ``out`` receives float64-computed values cast on
    store (numpy's in-place same-kind casting).
    """
    if out is None:
        out = np.empty_like(similarity)
    if out is similarity:
        out *= 2.0
    else:
        np.multiply(similarity, 2.0, out=out)
    out -= source_hubness[:, None]
    out -= target_hubness[None, :]
    return out


def _hubness_corrected_matrix(
    source_embeddings: np.ndarray,
    target_embeddings: np.ndarray,
    n_neighbors: int,
    similarity: Optional[np.ndarray],
    chunk_rows: Optional[int],
    out: Optional[np.ndarray],
    *,
    measure: str,
    correction: str,
    similarity_fn,
    policy: PolicyLike = None,
    backend: Optional[str] = None,
) -> np.ndarray:
    """Shared dense/chunked dispatch behind ``lisi_matrix``/``csls_matrix``."""
    if similarity is None and chunk_rows is not None:
        from repro.similarity.chunked import chunked_score_matrix

        return chunked_score_matrix(
            source_embeddings,
            target_embeddings,
            measure=measure,
            correction=correction,
            n_neighbors=n_neighbors,
            chunk_rows=chunk_rows,
            out=out,
            policy=policy,
            backend=backend,
        )
    owns_buffer = similarity is None
    if owns_buffer:
        similarity = similarity_fn(
            source_embeddings,
            target_embeddings,
            out=out,
            policy=policy,
            backend=backend,
        )
    source_hubness, target_hubness = hubness_degrees(similarity, n_neighbors)
    return _apply_hubness_correction(
        similarity,
        source_hubness,
        target_hubness,
        out=similarity if owns_buffer else out,
    )


def lisi_matrix(
    source_embeddings: np.ndarray,
    target_embeddings: np.ndarray,
    n_neighbors: int = 20,
    similarity: Optional[np.ndarray] = None,
    *,
    chunk_rows: Optional[int] = None,
    out: Optional[np.ndarray] = None,
    policy: PolicyLike = None,
    backend: Optional[str] = None,
) -> np.ndarray:
    """Compute the LISI alignment matrix between two embedding sets.

    Parameters
    ----------
    source_embeddings, target_embeddings:
        ``(n_s, d)`` and ``(n_t, d)`` embedding matrices.
    n_neighbors:
        Neighbourhood size ``m`` used for the hubness correction.
    similarity:
        Optional pre-computed Pearson similarity matrix (skips recomputation
        and makes ``chunk_rows`` a no-op — the matrix is already dense).
    chunk_rows:
        If set, the matrix is assembled in row chunks of (at most) this many
        rows via :mod:`repro.similarity.chunked`, bounding the temporary
        memory to one chunk instead of a full extra ``(n_s, n_t)`` matrix.
        The result is bit-identical to the dense path.
    out:
        Optional pre-allocated ``(n_s, n_t)`` output buffer in the policy's
        compute dtype; the result is written into it (a provided
        ``similarity`` is never mutated unless it *is* ``out``).
    policy, backend:
        Precision policy and compute backend (see
        :mod:`repro.backend`); the float64 default is bit-identical to the
        historical kernel.
    """
    return _hubness_corrected_matrix(
        source_embeddings,
        target_embeddings,
        n_neighbors,
        similarity,
        chunk_rows,
        out,
        measure="pearson",
        correction="lisi",
        similarity_fn=pearson_similarity,
        policy=policy,
        backend=backend,
    )


__all__ = ["hubness_degrees", "lisi_matrix"]
