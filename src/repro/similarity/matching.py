"""Matching rules that turn an alignment-score matrix into node pairs.

Matching is dtype-preserving: a float32 score matrix (the
:mod:`repro.backend` float32 policy) is selected over directly, without a
densifying float64 copy; every other dtype is promoted to float64 exactly as
before (see :func:`repro.backend.precision.as_score_matrix`).  Selection
orders compare stored values, so results under either dtype follow the same
total orders.
"""

from __future__ import annotations

import heapq
from typing import List, Tuple

import numpy as np

from repro.backend.precision import as_score_matrix


def mutual_nearest_neighbors(score_matrix: np.ndarray) -> List[Tuple[int, int]]:
    """Pairs ``(i, j)`` that are each other's argmax (the paper's trusted pairs).

    A source node ``i`` and target node ``j`` form a trusted pair when ``j`` is
    the best-scoring target for ``i`` *and* ``i`` is the best-scoring source
    for ``j`` (Eq. 12).
    """
    scores = as_score_matrix(score_matrix)
    if scores.ndim != 2 or scores.size == 0:
        return []
    best_target = scores.argmax(axis=1)
    best_source = scores.argmax(axis=0)
    pairs = [
        (int(i), int(j))
        for i, j in enumerate(best_target)
        if best_source[j] == i
    ]
    return pairs


def _best_unused(row: np.ndarray, used_target: np.ndarray) -> Tuple[float, int]:
    """Best (score, column) of ``row`` restricted to unused columns.

    Ties resolve to the lowest column index.  Requires at least one unused
    column.
    """
    unused = np.flatnonzero(~used_target)
    local = int(np.argmax(row[unused]))
    j = int(unused[local])
    return float(row[j]), j


def _greedy_core(
    heap: List[Tuple[float, int, int]],
    fetch_row,
    n_source: int,
    n_target: int,
) -> List[Tuple[int, int]]:
    """Shared heap loop of the dense and chunked greedy matchers.

    ``heap`` holds ``(-score, row, col)`` candidates (one per row);
    ``fetch_row(i)`` returns row ``i`` of the score matrix and is only called
    when a row's candidate column has been taken by an earlier match.
    """
    heapq.heapify(heap)
    used_source = np.zeros(n_source, dtype=bool)
    used_target = np.zeros(n_target, dtype=bool)
    pairs: List[Tuple[int, int]] = []
    limit = min(n_source, n_target)
    while heap and len(pairs) < limit:
        _, i, j = heapq.heappop(heap)
        if used_source[i]:
            continue
        if used_target[j]:
            # Stale candidate: re-evaluate this row over unused columns.
            if used_target.all():
                break
            score, j = _best_unused(fetch_row(i), used_target)
            heapq.heappush(heap, (-score, i, j))
            continue
        pairs.append((i, j))
        used_source[i] = True
        used_target[j] = True
    return pairs


def greedy_match(score_matrix: np.ndarray) -> List[Tuple[int, int]]:
    """Greedy one-to-one matching by descending score.

    Repeatedly picks the highest remaining score whose row and column are both
    unused (ties broken by lowest row, then lowest column).  Useful for
    producing a hard alignment from the final score matrix.

    The selection is heap-based with lazy per-row re-evaluation: each row
    contributes its best currently-unused column to a max-heap, and a row
    whose candidate column got taken is re-scanned on pop.  This replaces the
    former full ``argsort(scores, axis=None)`` — ``O(n_s·n_t·log(n_s·n_t))``
    time plus an ``(n_s·n_t)`` index array — with ``O(n_s + n_t)`` extra
    memory, which is what lets the chunked scorer run the same algorithm
    without ever materialising the matrix
    (:func:`repro.similarity.chunked.chunked_greedy_match`).
    """
    scores = as_score_matrix(score_matrix)
    if scores.ndim != 2 or scores.size == 0:
        return []
    n_source, n_target = scores.shape
    # (negated score, row, col): heapq pops the highest score first, ties by
    # lowest row then lowest column.
    maxima = scores.max(axis=1)
    argmaxima = scores.argmax(axis=1)
    heap = [
        (-float(maxima[i]), i, int(argmaxima[i])) for i in range(n_source)
    ]
    return _greedy_core(heap, lambda i: scores[i], n_source, n_target)


def top_k_indices(score_matrix: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` best targets per source row, best first.

    Returns an ``(n_source, k)`` integer array.  ``k`` is clipped to the
    number of targets.

    Rows are ordered by the total order *(score descending, column index
    ascending)* — ties always resolve to the lowest column.  A total order
    makes the result prefix-consistent: ``top_k_indices(scores, j)`` equals
    ``top_k_indices(scores, k)[:, :j]`` for every ``j <= k``, which is what
    lets :class:`repro.serve.index.SparseTopKIndex` answer any ``k' <= k``
    query from a stored top-``k`` prefix bit-identically to the dense path.
    """
    scores = as_score_matrix(score_matrix)
    if scores.ndim != 2:
        raise ValueError("score_matrix must be 2-D")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    n_source, n_target = scores.shape
    k = min(k, n_target)
    if k == 0:
        return np.empty((n_source, 0), dtype=np.intp)
    if k == n_target or n_source == 0:
        # A stable sort of the negated scores yields exactly the
        # (score desc, column asc) total order.
        order = np.argsort(-scores, axis=1, kind="stable")
        return order[:, :k].astype(np.intp, copy=False)
    # Fast path: argpartition to k candidates (O(n_t + k log k) per row
    # instead of a full O(n_t log n_t) sort), then order the candidates by
    # (score desc, column asc).  lexsort keys are least-significant first.
    part = np.argpartition(-scores, k - 1, axis=1)[:, :k].astype(np.intp)
    rows = np.arange(n_source)[:, None]
    part_scores = scores[rows, part]
    order = np.lexsort((part, -part_scores), axis=1)
    result = np.take_along_axis(part, order, axis=1)
    # The partition picks an *arbitrary* candidate set when values tie
    # across its boundary, which can drop a lower-column tied entry; those
    # rows (and only those) need the full total-order sort.  A boundary tie
    # exists iff the row has more entries equal to the k-th selected value
    # than were selected.
    kth_value = part_scores.min(axis=1)
    selected_at_kth = (part_scores == kth_value[:, None]).sum(axis=1)
    total_at_kth = (scores == kth_value[:, None]).sum(axis=1)
    tie_rows = total_at_kth > selected_at_kth
    if np.any(tie_rows):
        result[tie_rows] = np.argsort(
            -scores[tie_rows], axis=1, kind="stable"
        )[:, :k]
    return result


def alignment_accuracy(
    score_matrix: np.ndarray, ground_truth: np.ndarray
) -> float:
    """Fraction of source nodes whose argmax equals their ground-truth target.

    Convenience wrapper used in quick tests; the full metrics live in
    :mod:`repro.eval.metrics`.
    """
    scores = as_score_matrix(score_matrix)
    ground_truth = np.asarray(ground_truth, dtype=np.int64)
    if scores.shape[0] != ground_truth.shape[0]:
        raise ValueError("ground truth length must equal the number of source nodes")
    predictions = scores.argmax(axis=1)
    return float((predictions == ground_truth).mean())


__all__ = [
    "mutual_nearest_neighbors",
    "greedy_match",
    "top_k_indices",
    "alignment_accuracy",
]
