"""Matching rules that turn an alignment-score matrix into node pairs."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np


def mutual_nearest_neighbors(score_matrix: np.ndarray) -> List[Tuple[int, int]]:
    """Pairs ``(i, j)`` that are each other's argmax (the paper's trusted pairs).

    A source node ``i`` and target node ``j`` form a trusted pair when ``j`` is
    the best-scoring target for ``i`` *and* ``i`` is the best-scoring source
    for ``j`` (Eq. 12).
    """
    scores = np.asarray(score_matrix, dtype=np.float64)
    if scores.ndim != 2 or scores.size == 0:
        return []
    best_target = scores.argmax(axis=1)
    best_source = scores.argmax(axis=0)
    pairs = [
        (int(i), int(j))
        for i, j in enumerate(best_target)
        if best_source[j] == i
    ]
    return pairs


def greedy_match(score_matrix: np.ndarray) -> List[Tuple[int, int]]:
    """Greedy one-to-one matching by descending score.

    Repeatedly picks the highest remaining score whose row and column are both
    unused.  Useful for producing a hard alignment from the final score
    matrix.
    """
    scores = np.asarray(score_matrix, dtype=np.float64)
    if scores.ndim != 2 or scores.size == 0:
        return []
    n_source, n_target = scores.shape
    order = np.argsort(scores, axis=None)[::-1]
    used_source = np.zeros(n_source, dtype=bool)
    used_target = np.zeros(n_target, dtype=bool)
    pairs: List[Tuple[int, int]] = []
    limit = min(n_source, n_target)
    for flat_index in order:
        i, j = divmod(int(flat_index), n_target)
        if used_source[i] or used_target[j]:
            continue
        pairs.append((i, j))
        used_source[i] = True
        used_target[j] = True
        if len(pairs) == limit:
            break
    return pairs


def top_k_indices(score_matrix: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` best targets per source row, best first.

    Returns an ``(n_source, k)`` integer array.  ``k`` is clipped to the
    number of targets.
    """
    scores = np.asarray(score_matrix, dtype=np.float64)
    if scores.ndim != 2:
        raise ValueError("score_matrix must be 2-D")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    n_target = scores.shape[1]
    k = min(k, n_target)
    # argpartition for efficiency, then sort the k candidates per row.
    part = np.argpartition(-scores, k - 1, axis=1)[:, :k]
    row_indices = np.arange(scores.shape[0])[:, None]
    order = np.argsort(-scores[row_indices, part], axis=1)
    return part[row_indices, order]


def alignment_accuracy(
    score_matrix: np.ndarray, ground_truth: np.ndarray
) -> float:
    """Fraction of source nodes whose argmax equals their ground-truth target.

    Convenience wrapper used in quick tests; the full metrics live in
    :mod:`repro.eval.metrics`.
    """
    scores = np.asarray(score_matrix, dtype=np.float64)
    ground_truth = np.asarray(ground_truth, dtype=np.int64)
    if scores.shape[0] != ground_truth.shape[0]:
        raise ValueError("ground truth length must equal the number of source nodes")
    predictions = scores.argmax(axis=1)
    return float((predictions == ground_truth).mean())


__all__ = [
    "mutual_nearest_neighbors",
    "greedy_match",
    "top_k_indices",
    "alignment_accuracy",
]
