"""Matching rules that turn an alignment-score matrix into node pairs."""

from __future__ import annotations

import heapq
from typing import List, Tuple

import numpy as np


def mutual_nearest_neighbors(score_matrix: np.ndarray) -> List[Tuple[int, int]]:
    """Pairs ``(i, j)`` that are each other's argmax (the paper's trusted pairs).

    A source node ``i`` and target node ``j`` form a trusted pair when ``j`` is
    the best-scoring target for ``i`` *and* ``i`` is the best-scoring source
    for ``j`` (Eq. 12).
    """
    scores = np.asarray(score_matrix, dtype=np.float64)
    if scores.ndim != 2 or scores.size == 0:
        return []
    best_target = scores.argmax(axis=1)
    best_source = scores.argmax(axis=0)
    pairs = [
        (int(i), int(j))
        for i, j in enumerate(best_target)
        if best_source[j] == i
    ]
    return pairs


def _best_unused(row: np.ndarray, used_target: np.ndarray) -> Tuple[float, int]:
    """Best (score, column) of ``row`` restricted to unused columns.

    Ties resolve to the lowest column index.  Requires at least one unused
    column.
    """
    unused = np.flatnonzero(~used_target)
    local = int(np.argmax(row[unused]))
    j = int(unused[local])
    return float(row[j]), j


def _greedy_core(
    heap: List[Tuple[float, int, int]],
    fetch_row,
    n_source: int,
    n_target: int,
) -> List[Tuple[int, int]]:
    """Shared heap loop of the dense and chunked greedy matchers.

    ``heap`` holds ``(-score, row, col)`` candidates (one per row);
    ``fetch_row(i)`` returns row ``i`` of the score matrix and is only called
    when a row's candidate column has been taken by an earlier match.
    """
    heapq.heapify(heap)
    used_source = np.zeros(n_source, dtype=bool)
    used_target = np.zeros(n_target, dtype=bool)
    pairs: List[Tuple[int, int]] = []
    limit = min(n_source, n_target)
    while heap and len(pairs) < limit:
        _, i, j = heapq.heappop(heap)
        if used_source[i]:
            continue
        if used_target[j]:
            # Stale candidate: re-evaluate this row over unused columns.
            if used_target.all():
                break
            score, j = _best_unused(fetch_row(i), used_target)
            heapq.heappush(heap, (-score, i, j))
            continue
        pairs.append((i, j))
        used_source[i] = True
        used_target[j] = True
    return pairs


def greedy_match(score_matrix: np.ndarray) -> List[Tuple[int, int]]:
    """Greedy one-to-one matching by descending score.

    Repeatedly picks the highest remaining score whose row and column are both
    unused (ties broken by lowest row, then lowest column).  Useful for
    producing a hard alignment from the final score matrix.

    The selection is heap-based with lazy per-row re-evaluation: each row
    contributes its best currently-unused column to a max-heap, and a row
    whose candidate column got taken is re-scanned on pop.  This replaces the
    former full ``argsort(scores, axis=None)`` — ``O(n_s·n_t·log(n_s·n_t))``
    time plus an ``(n_s·n_t)`` index array — with ``O(n_s + n_t)`` extra
    memory, which is what lets the chunked scorer run the same algorithm
    without ever materialising the matrix
    (:func:`repro.similarity.chunked.chunked_greedy_match`).
    """
    scores = np.asarray(score_matrix, dtype=np.float64)
    if scores.ndim != 2 or scores.size == 0:
        return []
    n_source, n_target = scores.shape
    # (negated score, row, col): heapq pops the highest score first, ties by
    # lowest row then lowest column.
    maxima = scores.max(axis=1)
    argmaxima = scores.argmax(axis=1)
    heap = [
        (-float(maxima[i]), i, int(argmaxima[i])) for i in range(n_source)
    ]
    return _greedy_core(heap, lambda i: scores[i], n_source, n_target)


def top_k_indices(score_matrix: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` best targets per source row, best first.

    Returns an ``(n_source, k)`` integer array.  ``k`` is clipped to the
    number of targets.
    """
    scores = np.asarray(score_matrix, dtype=np.float64)
    if scores.ndim != 2:
        raise ValueError("score_matrix must be 2-D")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    n_target = scores.shape[1]
    k = min(k, n_target)
    if k == 0:
        return np.empty((scores.shape[0], 0), dtype=np.intp)
    # argpartition for efficiency, then sort the k candidates per row.
    part = np.argpartition(-scores, k - 1, axis=1)[:, :k]
    row_indices = np.arange(scores.shape[0])[:, None]
    order = np.argsort(-scores[row_indices, part], axis=1)
    return part[row_indices, order]


def alignment_accuracy(
    score_matrix: np.ndarray, ground_truth: np.ndarray
) -> float:
    """Fraction of source nodes whose argmax equals their ground-truth target.

    Convenience wrapper used in quick tests; the full metrics live in
    :mod:`repro.eval.metrics`.
    """
    scores = np.asarray(score_matrix, dtype=np.float64)
    ground_truth = np.asarray(ground_truth, dtype=np.int64)
    if scores.shape[0] != ground_truth.shape[0]:
        raise ValueError("ground truth length must equal the number of source nodes")
    predictions = scores.argmax(axis=1)
    return float((predictions == ground_truth).mean())


__all__ = [
    "mutual_nearest_neighbors",
    "greedy_match",
    "top_k_indices",
    "alignment_accuracy",
]
