"""Memory-bounded (chunked) similarity scoring and matching kernels.

Every scoring path in this package conceptually produces an ``(n_s, n_t)``
score matrix — Pearson/cosine similarity, optionally hubness-corrected (LISI
or CSLS).  For the paper-scale sweeps that matrix (×13 orbit views) is the
peak-memory driver, yet most consumers only reduce it: mutual nearest
neighbours, greedy matching and top-``k`` retrieval all need a handful of
per-row/per-column statistics.

This module streams the score matrix in *row chunks* instead:

* :func:`chunked_score_matrix` assembles the full matrix while bounding the
  temporary working set to one chunk (for callers that do need the matrix),
* :func:`chunked_mutual_nearest_neighbors`, :func:`chunked_greedy_match` and
  :func:`chunked_top_k_indices` never materialise it at all —
  ``O(chunk_rows × n_t)`` peak instead of ``O(n_s × n_t)``,
* :func:`streaming_hubness_degrees` computes the LISI/CSLS hubness terms from
  a running per-column top-``m`` buffer.

**Bit-identity.**  All results are bit-identical to the dense path.  Two
mechanisms guarantee this:

1. every GEMM is issued over the same absolute-aligned
   :data:`~repro.similarity.measures.BLOCK_ROWS` windows as the dense
   kernels (chunk sizes are rounded up to a multiple of the window), so each
   output element is produced by the exact same floating-point operations;
2. the per-column top-``m`` means are computed from a *sorted* top block in
   both paths (:func:`repro.similarity.lisi._column_top_mean`), so the
   summation order depends only on the selected values, not on whether they
   were found by a full partition or a running accumulator.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.backend.precision import PolicyLike, resolve_policy
from repro.similarity.lisi import (
    _apply_hubness_correction,
    _column_top_mean,
    _row_hubness,
)
from repro.similarity.matching import _greedy_core, top_k_indices
from repro.similarity.measures import (
    BLOCK_ROWS,
    _cosine_factors,
    _pearson_factors,
    _validate_embeddings,
    _windowed_product,
)

#: Supported base similarity measures.
MEASURES = ("pearson", "cosine")

#: Supported hubness corrections (``None`` = raw similarity).
CORRECTIONS = (None, "lisi", "csls")

#: Default streaming chunk (rows); a multiple of :data:`BLOCK_ROWS`.
DEFAULT_CHUNK_ROWS = 4 * BLOCK_ROWS


def resolve_chunk_rows(chunk_rows: Optional[int], n_rows: int) -> int:
    """Normalise a user chunk size to an aligned, positive row count.

    Chunk boundaries must fall on multiples of :data:`BLOCK_ROWS` so the
    chunked GEMM calls coincide with the dense path's aligned windows (the
    bit-identity requirement); arbitrary values are rounded up.
    """
    if chunk_rows is None:
        chunk_rows = DEFAULT_CHUNK_ROWS
    if chunk_rows < 1:
        raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
    aligned = ((chunk_rows + BLOCK_ROWS - 1) // BLOCK_ROWS) * BLOCK_ROWS
    return max(BLOCK_ROWS, min(aligned, max(n_rows, BLOCK_ROWS)))


class ChunkedScorer:
    """Streams aligned row blocks of the (corrected) score matrix.

    Parameters
    ----------
    source_embeddings, target_embeddings:
        ``(n_s, d)`` and ``(n_t, d)`` embedding matrices.
    measure:
        ``"pearson"`` or ``"cosine"``.
    correction:
        ``None`` (raw similarity), ``"lisi"`` or ``"csls"`` (both apply
        ``2·sim − D_s − D_t``; they differ only in their conventional base
        measure).
    n_neighbors:
        Hubness neighbourhood size (ignored without a correction).
    chunk_rows:
        Streaming granularity; rounded up to a multiple of
        :data:`~repro.similarity.measures.BLOCK_ROWS`.
    policy, backend:
        Precision policy and compute backend (see :mod:`repro.backend`).
        Blocks and factors are held in the policy's compute dtype; the
        hubness vectors are always float64 (reduction statistics accumulate
        in ``accum_dtype``).  The float64 default is bit-identical to the
        historical scorer.

    Only ``O(n·d)`` factor matrices and ``O(chunk_rows × n_t)`` block
    buffers are held at any time.
    """

    def __init__(
        self,
        source_embeddings: np.ndarray,
        target_embeddings: np.ndarray,
        *,
        measure: str = "pearson",
        correction: Optional[str] = None,
        n_neighbors: int = 10,
        chunk_rows: Optional[int] = None,
        policy: PolicyLike = None,
        backend: Optional[str] = None,
    ) -> None:
        if measure not in MEASURES:
            raise ValueError(f"measure must be one of {MEASURES}, got {measure!r}")
        if correction not in CORRECTIONS:
            raise ValueError(
                f"correction must be one of {CORRECTIONS}, got {correction!r}"
            )
        self.policy = resolve_policy(policy)
        self.backend = backend
        source, target = _validate_embeddings(source_embeddings, target_embeddings)
        factorize = _pearson_factors if measure == "pearson" else _cosine_factors
        self._source_factor, self._target_factor = factorize(
            source, target, self.policy
        )
        self.n_source = source.shape[0]
        self.n_target = target.shape[0]
        self.measure = measure
        self.correction = correction
        self.n_neighbors = n_neighbors
        self.chunk_rows = resolve_chunk_rows(chunk_rows, self.n_source)
        self._source_hubness: Optional[np.ndarray] = None
        self._target_hubness: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # raw similarity blocks
    # ------------------------------------------------------------------
    def raw_block(
        self, start: int, stop: int, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Rows ``[start, stop)`` of the *uncorrected* similarity matrix."""
        if out is None:
            out = self.policy.empty((stop - start, self.n_target))
        return _windowed_product(
            self._source_factor[start:stop],
            self._target_factor,
            out,
            row_offset=start,
            backend=self.backend,
        )

    def _chunk_bounds(self) -> Iterator[Tuple[int, int]]:
        for start in range(0, self.n_source, self.chunk_rows):
            yield start, min(self.n_source, start + self.chunk_rows)

    # ------------------------------------------------------------------
    # hubness (pass 1)
    # ------------------------------------------------------------------
    def hubness(self) -> Tuple[np.ndarray, np.ndarray]:
        """The (source, target) hubness degree vectors, computed streaming."""
        if self._source_hubness is None:
            self._source_hubness, self._target_hubness = (
                self._streaming_hubness()
            )
        return self._source_hubness, self._target_hubness

    def _streaming_hubness(
        self, out: Optional[np.ndarray] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One streaming pass computing both hubness vectors.

        With ``out`` given, the raw similarity blocks are additionally
        written into it (so :meth:`full_matrix` pays for the GEMMs once).
        """
        if self.n_neighbors < 1:
            raise ValueError(f"n_neighbors must be >= 1, got {self.n_neighbors}")
        m_source = min(self.n_neighbors, self.n_target)
        m_target = min(self.n_neighbors, self.n_source)
        source_hubness = np.zeros(self.n_source, dtype=np.float64)
        column_top: Optional[np.ndarray] = None
        for start, stop in self._chunk_bounds():
            block = self.raw_block(
                start, stop, out=None if out is None else out[start:stop]
            )
            source_hubness[start:stop] = _row_hubness(block, m_source)
            if m_target == 0 or self.n_target == 0:
                continue
            stacked = (
                block if column_top is None else np.vstack([column_top, block])
            )
            if stacked.shape[0] > m_target:
                kth = stacked.shape[0] - m_target
                column_top = np.partition(stacked, kth, axis=0)[kth:]
            else:
                # Copy: ``stacked`` may alias ``block`` (a view into ``out``
                # or a buffer the next iteration reuses).
                column_top = stacked.copy()
        if column_top is None:
            target_hubness = np.zeros(self.n_target, dtype=np.float64)
        else:
            target_hubness = _column_top_mean(column_top)
        return source_hubness, target_hubness

    # ------------------------------------------------------------------
    # corrected blocks / rows (pass 2)
    # ------------------------------------------------------------------
    def _apply_correction(self, block: np.ndarray, start: int) -> np.ndarray:
        source_hubness, target_hubness = self.hubness()
        return _apply_hubness_correction(
            block,
            source_hubness[start : start + block.shape[0]],
            target_hubness,
            out=block,
        )

    def block(
        self, start: int, stop: int, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Rows ``[start, stop)`` of the final (corrected) score matrix.

        ``start`` must be a multiple of ``BLOCK_ROWS`` for the result to be
        bit-identical to the dense matrix (the iterators guarantee this).
        """
        block = self.raw_block(start, stop, out=out)
        if self.correction is not None:
            block = self._apply_correction(block, start)
        return block

    def iter_blocks(self) -> Iterator[Tuple[int, int, np.ndarray]]:
        """Yield ``(start, stop, block)`` row chunks of the score matrix."""
        if self.correction is not None:
            self.hubness()  # pass 1 before the first block is emitted
        for start, stop in self._chunk_bounds():
            yield start, stop, self.block(start, stop)

    def row(self, i: int) -> np.ndarray:
        """One score row, bit-identical to ``dense_matrix[i]``.

        Recomputes the aligned window containing ``i`` so the GEMM shape
        matches the dense path exactly.
        """
        window_start = (i // BLOCK_ROWS) * BLOCK_ROWS
        window_stop = min(self.n_source, window_start + BLOCK_ROWS)
        return self.block(window_start, window_stop)[i - window_start]

    def full_matrix(self, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Assemble the full score matrix chunk by chunk into ``out``.

        Peak temporary memory beyond the output buffer itself is one factor
        pair plus the hubness accumulators — no second ``(n_s, n_t)`` array.
        """
        if out is None:
            out = self.policy.empty((self.n_source, self.n_target))
        else:
            # Dtype-policy-aware validation: the error names the active
            # policy instead of hard-rejecting anything non-float64.
            self.policy.validate_out(out, (self.n_source, self.n_target))
        if self.correction is None:
            for start, stop in self._chunk_bounds():
                self.raw_block(start, stop, out=out[start:stop])
            return out
        # Fill raw similarity first, reusing it for the hubness pass so the
        # similarity GEMMs run once, then correct in place chunk by chunk.
        if self._source_hubness is None:
            self._source_hubness, self._target_hubness = (
                self._streaming_hubness(out=out)
            )
        else:
            for start, stop in self._chunk_bounds():
                self.raw_block(start, stop, out=out[start:stop])
        for start, stop in self._chunk_bounds():
            self._apply_correction(out[start:stop], start)
        return out


# ----------------------------------------------------------------------
# public convenience kernels
# ----------------------------------------------------------------------
def chunked_score_matrix(
    source_embeddings: np.ndarray,
    target_embeddings: np.ndarray,
    *,
    measure: str = "pearson",
    correction: Optional[str] = None,
    n_neighbors: int = 10,
    chunk_rows: Optional[int] = None,
    out: Optional[np.ndarray] = None,
    policy: PolicyLike = None,
    backend: Optional[str] = None,
) -> np.ndarray:
    """Full (corrected) score matrix assembled with bounded temporaries."""
    scorer = ChunkedScorer(
        source_embeddings,
        target_embeddings,
        measure=measure,
        correction=correction,
        n_neighbors=n_neighbors,
        chunk_rows=chunk_rows,
        policy=policy,
        backend=backend,
    )
    return scorer.full_matrix(out=out)


def streaming_hubness_degrees(
    source_embeddings: np.ndarray,
    target_embeddings: np.ndarray,
    n_neighbors: int,
    *,
    measure: str = "pearson",
    chunk_rows: Optional[int] = None,
    policy: PolicyLike = None,
    backend: Optional[str] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Hubness degree vectors without materialising the similarity matrix.

    The vectors are float64 under every policy (reduction statistics
    accumulate in ``accum_dtype``).
    """
    scorer = ChunkedScorer(
        source_embeddings,
        target_embeddings,
        measure=measure,
        correction="lisi",
        n_neighbors=n_neighbors,
        chunk_rows=chunk_rows,
        policy=policy,
        backend=backend,
    )
    return scorer.hubness()


def chunked_mutual_nearest_neighbors(
    source_embeddings: np.ndarray,
    target_embeddings: np.ndarray,
    *,
    measure: str = "pearson",
    correction: Optional[str] = "lisi",
    n_neighbors: int = 10,
    chunk_rows: Optional[int] = None,
    policy: PolicyLike = None,
    backend: Optional[str] = None,
) -> List[Tuple[int, int]]:
    """Trusted pairs (mutual argmaxes) in ``O(chunk_rows × n_t)`` memory.

    Bit-identical to running
    :func:`repro.similarity.matching.mutual_nearest_neighbors` on the dense
    score matrix of the same policy, including argmax tie behaviour (lowest
    index wins on both axes).
    """
    scorer = ChunkedScorer(
        source_embeddings,
        target_embeddings,
        measure=measure,
        correction=correction,
        n_neighbors=n_neighbors,
        chunk_rows=chunk_rows,
        policy=policy,
        backend=backend,
    )
    if scorer.n_source == 0 or scorer.n_target == 0:
        return []
    best_target = np.zeros(scorer.n_source, dtype=np.intp)
    best_column_value = np.full(scorer.n_target, -np.inf)
    best_source = np.zeros(scorer.n_target, dtype=np.intp)
    for start, _stop, block in scorer.iter_blocks():
        best_target[start : start + block.shape[0]] = block.argmax(axis=1)
        block_max = block.max(axis=0)
        improved = block_max > best_column_value
        best_source[improved] = block.argmax(axis=0)[improved] + start
        best_column_value[improved] = block_max[improved]
    return [
        (int(i), int(j))
        for i, j in enumerate(best_target)
        if best_source[j] == i
    ]


def chunked_top_k_indices(
    source_embeddings: np.ndarray,
    target_embeddings: np.ndarray,
    k: int,
    *,
    measure: str = "pearson",
    correction: Optional[str] = None,
    n_neighbors: int = 10,
    chunk_rows: Optional[int] = None,
    policy: PolicyLike = None,
    backend: Optional[str] = None,
) -> np.ndarray:
    """Per-row top-``k`` target indices without the full score matrix."""
    scorer = ChunkedScorer(
        source_embeddings,
        target_embeddings,
        measure=measure,
        correction=correction,
        n_neighbors=n_neighbors,
        chunk_rows=chunk_rows,
        policy=policy,
        backend=backend,
    )
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    effective_k = min(k, scorer.n_target)
    result = np.empty((scorer.n_source, effective_k), dtype=np.intp)
    if effective_k == 0:
        return result
    for start, stop, block in scorer.iter_blocks():
        result[start:stop] = top_k_indices(block, k)
    return result


def chunked_greedy_match(
    source_embeddings: np.ndarray,
    target_embeddings: np.ndarray,
    *,
    measure: str = "pearson",
    correction: Optional[str] = None,
    n_neighbors: int = 10,
    chunk_rows: Optional[int] = None,
    policy: PolicyLike = None,
    backend: Optional[str] = None,
) -> List[Tuple[int, int]]:
    """Greedy one-to-one matching in ``O(chunk_rows × n_t)`` memory.

    Runs the same lazy heap algorithm as
    :func:`repro.similarity.matching.greedy_match`; rows whose candidate was
    taken are recomputed from their aligned GEMM window, so the produced
    matching is identical to the dense one.
    """
    scorer = ChunkedScorer(
        source_embeddings,
        target_embeddings,
        measure=measure,
        correction=correction,
        n_neighbors=n_neighbors,
        chunk_rows=chunk_rows,
        policy=policy,
        backend=backend,
    )
    if scorer.n_source == 0 or scorer.n_target == 0:
        return []
    heap: List[Tuple[float, int, int]] = []
    for start, _stop, block in scorer.iter_blocks():
        maxima = block.max(axis=1)
        argmaxima = block.argmax(axis=1)
        heap.extend(
            (-float(maxima[r]), start + r, int(argmaxima[r]))
            for r in range(block.shape[0])
        )
    return _greedy_core(heap, scorer.row, scorer.n_source, scorer.n_target)


__all__ = [
    "MEASURES",
    "CORRECTIONS",
    "DEFAULT_CHUNK_ROWS",
    "resolve_chunk_rows",
    "ChunkedScorer",
    "chunked_score_matrix",
    "streaming_hubness_degrees",
    "chunked_mutual_nearest_neighbors",
    "chunked_top_k_indices",
    "chunked_greedy_match",
]
