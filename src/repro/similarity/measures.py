"""Pairwise similarity matrices between two embedding sets."""

from __future__ import annotations

import numpy as np


def _validate_embeddings(source: np.ndarray, target: np.ndarray) -> tuple:
    source = np.asarray(source, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if source.ndim != 2 or target.ndim != 2:
        raise ValueError("embeddings must be 2-D arrays")
    if source.shape[1] != target.shape[1]:
        raise ValueError(
            f"embedding dimensions differ: {source.shape[1]} vs {target.shape[1]}"
        )
    return source, target


def pearson_similarity(source: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Pearson correlation between every source row and every target row.

    The paper (Eq. 9) uses Pearson correlation because of its translation and
    scale invariance.  Rows with zero variance are mapped to zero correlation
    with everything.
    """
    source, target = _validate_embeddings(source, target)
    source_centered = source - source.mean(axis=1, keepdims=True)
    target_centered = target - target.mean(axis=1, keepdims=True)
    source_norm = np.linalg.norm(source_centered, axis=1, keepdims=True)
    target_norm = np.linalg.norm(target_centered, axis=1, keepdims=True)
    source_norm[source_norm == 0] = 1.0
    target_norm[target_norm == 0] = 1.0
    correlation = (source_centered / source_norm) @ (target_centered / target_norm).T
    return np.clip(correlation, -1.0, 1.0)


def cosine_similarity(source: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Cosine similarity between every source row and every target row."""
    source, target = _validate_embeddings(source, target)
    source_norm = np.linalg.norm(source, axis=1, keepdims=True)
    target_norm = np.linalg.norm(target, axis=1, keepdims=True)
    source_norm[source_norm == 0] = 1.0
    target_norm[target_norm == 0] = 1.0
    similarity = (source / source_norm) @ (target / target_norm).T
    return np.clip(similarity, -1.0, 1.0)


def euclidean_similarity(source: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Negative squared Euclidean distance (larger = more similar)."""
    source, target = _validate_embeddings(source, target)
    source_sq = (source**2).sum(axis=1, keepdims=True)
    target_sq = (target**2).sum(axis=1, keepdims=True)
    distances = source_sq + target_sq.T - 2.0 * source @ target.T
    return -np.maximum(distances, 0.0)


__all__ = ["pearson_similarity", "cosine_similarity", "euclidean_similarity"]
