"""Pairwise similarity matrices between two embedding sets.

All dense measures compute their score matrix in fixed row *windows* of
:data:`BLOCK_ROWS` rows, aligned to absolute row indices.  The windowing is
invisible to callers (the full matrix comes back either way) but it is what
makes the memory-bounded streaming kernels in :mod:`repro.similarity.chunked`
**bit-identical** to the dense path: BLAS GEMM results depend on the operand
shapes, so ``(a @ b)[s:e]`` and ``a[s:e] @ b`` can differ in the last ulp.
By always issuing the same aligned ``(BLOCK_ROWS, d) x (d, n_t)`` products,
every code path performs the exact same floating-point operations per output
element, regardless of how many rows are materialised at a time.

**Precision and backends.**  Every kernel takes a ``policy``
(:class:`repro.backend.PrecisionPolicy` or a spec like ``"float32"``) and a
``backend`` (a name in the shared compute registry,
:mod:`repro.backend.compute`).  The default — float64 policy, numpy
backend — performs exactly the historical operations and stays
bit-identical; the float32 policy computes the factorisation statistics in
float64 (the accumulation dtype), casts the ``O(n·d)`` factors down once,
and runs the GEMMs and the ``(n_s, n_t)`` score matrix in float32 — half
the peak memory and a measurably faster GEMM
(``benchmarks/bench_precision.py``).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.backend.compute import get_compute_backend
from repro.backend.precision import PolicyLike, PrecisionPolicy, resolve_policy

#: Fixed GEMM window (rows).  Every similarity kernel — dense or chunked —
#: computes score rows in windows of exactly this many rows, aligned to
#: absolute row index, so all paths are bit-identical (see module docstring).
BLOCK_ROWS = 64


def _validate_embeddings(source: np.ndarray, target: np.ndarray) -> tuple:
    source = np.asarray(source, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if source.ndim != 2 or target.ndim != 2:
        raise ValueError("embeddings must be 2-D arrays")
    if source.shape[1] != target.shape[1]:
        raise ValueError(
            f"embedding dimensions differ: {source.shape[1]} vs {target.shape[1]}"
        )
    return source, target


def _pearson_factors(
    source: np.ndarray,
    target: np.ndarray,
    policy: Optional[PrecisionPolicy] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Row-normalised factors whose product is the Pearson matrix.

    Centering and normalisation always run in float64 (the accumulation
    dtype); a non-exact policy only casts the finished ``O(n·d)`` factors,
    so the cheap statistics keep full precision and the expensive GEMM
    runs in the compute dtype.
    """
    source_centered = source - source.mean(axis=1, keepdims=True)
    target_centered = target - target.mean(axis=1, keepdims=True)
    source_norm = np.linalg.norm(source_centered, axis=1, keepdims=True)
    target_norm = np.linalg.norm(target_centered, axis=1, keepdims=True)
    source_norm[source_norm == 0] = 1.0
    target_norm[target_norm == 0] = 1.0
    source_centered /= source_norm
    target_centered /= target_norm
    if policy is not None and not policy.is_exact:
        return policy.cast(source_centered), policy.cast(target_centered)
    return source_centered, target_centered


def _cosine_factors(
    source: np.ndarray,
    target: np.ndarray,
    policy: Optional[PrecisionPolicy] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Row-normalised factors whose product is the cosine matrix."""
    source_norm = np.linalg.norm(source, axis=1, keepdims=True)
    target_norm = np.linalg.norm(target, axis=1, keepdims=True)
    source_norm[source_norm == 0] = 1.0
    target_norm[target_norm == 0] = 1.0
    source_factor = source / source_norm
    target_factor = target / target_norm
    if policy is not None and not policy.is_exact:
        return policy.cast(source_factor), policy.cast(target_factor)
    return source_factor, target_factor


def _windowed_product(
    source_factor: np.ndarray,
    target_factor: np.ndarray,
    out: np.ndarray,
    row_offset: int = 0,
    clip: bool = True,
    backend: Optional[str] = None,
) -> np.ndarray:
    """Fill ``out`` with ``source_factor @ target_factor.T`` window by window.

    ``row_offset`` is the absolute row index of ``source_factor[0]`` in the
    full score matrix; windows are aligned to absolute multiples of
    :data:`BLOCK_ROWS` so that any row chunking whose boundaries are multiples
    of the window produces identical GEMM calls.  The GEMM itself is issued
    through the selected compute backend (numpy by default).
    """
    kernel = get_compute_backend(backend)
    n_rows = source_factor.shape[0]
    target_t = target_factor.T
    start = 0
    while start < n_rows:
        # Align the window end to the next absolute BLOCK_ROWS boundary.
        absolute = row_offset + start
        stop = min(n_rows, start + BLOCK_ROWS - (absolute % BLOCK_ROWS))
        kernel.matmul(source_factor[start:stop], target_t, out[start:stop])
        if clip:
            kernel.clip(out[start:stop], -1.0, 1.0, out[start:stop])
        start = stop
    return out


def _allocate_out(
    out: Optional[np.ndarray],
    shape: Tuple[int, int],
    policy: Optional[PrecisionPolicy] = None,
) -> np.ndarray:
    policy = resolve_policy(policy)
    if out is None:
        return policy.empty(shape)
    return policy.validate_out(out, shape)


def pearson_similarity(
    source: np.ndarray,
    target: np.ndarray,
    *,
    out: Optional[np.ndarray] = None,
    chunk_rows: Optional[int] = None,
    policy: PolicyLike = None,
    backend: Optional[str] = None,
) -> np.ndarray:
    """Pearson correlation between every source row and every target row.

    The paper (Eq. 9) uses Pearson correlation because of its translation and
    scale invariance.  Rows with zero variance are mapped to zero correlation
    with everything.

    ``out`` optionally receives the result in place (one ``(n_s, n_t)``
    allocation is the peak memory either way).  ``chunk_rows`` is accepted for
    signature compatibility with the streaming kernels; the result is
    bit-identical for every value (see :mod:`repro.similarity.chunked` for
    kernels that avoid materialising the matrix altogether).  ``policy`` and
    ``backend`` select the precision policy / compute backend (see the
    module docstring).
    """
    del chunk_rows  # blocking is always window-aligned; results are identical
    policy = resolve_policy(policy)
    source, target = _validate_embeddings(source, target)
    out = _allocate_out(out, (source.shape[0], target.shape[0]), policy)
    source_factor, target_factor = _pearson_factors(source, target, policy)
    return _windowed_product(source_factor, target_factor, out, backend=backend)


def cosine_similarity(
    source: np.ndarray,
    target: np.ndarray,
    *,
    out: Optional[np.ndarray] = None,
    chunk_rows: Optional[int] = None,
    policy: PolicyLike = None,
    backend: Optional[str] = None,
) -> np.ndarray:
    """Cosine similarity between every source row and every target row."""
    del chunk_rows  # blocking is always window-aligned; results are identical
    policy = resolve_policy(policy)
    source, target = _validate_embeddings(source, target)
    out = _allocate_out(out, (source.shape[0], target.shape[0]), policy)
    source_factor, target_factor = _cosine_factors(source, target, policy)
    return _windowed_product(source_factor, target_factor, out, backend=backend)


def euclidean_similarity(source: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Negative squared Euclidean distance (larger = more similar)."""
    source, target = _validate_embeddings(source, target)
    source_sq = (source**2).sum(axis=1, keepdims=True)
    target_sq = (target**2).sum(axis=1, keepdims=True)
    distances = source_sq + target_sq.T - 2.0 * source @ target.T
    return -np.maximum(distances, 0.0)


__all__ = [
    "BLOCK_ROWS",
    "pearson_similarity",
    "cosine_similarity",
    "euclidean_similarity",
]
