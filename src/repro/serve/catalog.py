"""SQLite artifact catalog: query the store without walking directories.

The content-hash-addressed store (:mod:`repro.serve.artifacts`) is great at
integrity and terrible at discovery — finding "the newest float32 douban/HTC
artifact" previously meant reading every ``manifest.json`` under the root.
:class:`ArtifactCatalog` keeps one SQLite database (``catalog.sqlite`` next
to the artifact directories) indexing every artifact by id, content hash,
dataset/method pair, config hash, dtype, kind and creation time, so lookups
are one indexed query.

Write-time registration is automatic: every save path
(:func:`~repro.serve.artifacts.save_artifact`, ``save_index_artifact`` and
therefore the CLI ``export-artifact`` and ``run-suite --emit-artifacts``)
registers the manifest as the artifact lands on disk.  Stores that predate
the catalog (or were written by an older repro) are backfilled with
:meth:`ArtifactCatalog.sync` — exposed as ``repro.cli catalog-sync``.

Concurrency: every public method opens its own short-lived connection with a
busy timeout, so threads (and processes — suite workers emitting artifacts
in parallel) can register and look up concurrently; registration is
idempotent (``INSERT OR REPLACE`` keyed on the artifact id).
"""

from __future__ import annotations

import json
import sqlite3
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.runner.spec import spec_hash

#: Database filename created next to the artifact directories.
CATALOG_FILE = "catalog.sqlite"

#: Catalog schema version (independent of the artifact manifest schema).
CATALOG_SCHEMA_VERSION = 1

_CREATE = """
CREATE TABLE IF NOT EXISTS catalog_meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS artifacts (
    artifact_id    TEXT PRIMARY KEY,
    name           TEXT NOT NULL,
    kind           TEXT NOT NULL,
    content_hash   TEXT,
    dataset        TEXT,
    method         TEXT,
    config_hash    TEXT,
    dtype          TEXT,
    schema_version TEXT,
    n_source       INTEGER,
    n_target       INTEGER,
    index_k        INTEGER,
    created_unix   REAL,
    path           TEXT,
    metadata_json  TEXT
);
CREATE INDEX IF NOT EXISTS idx_artifacts_content ON artifacts (content_hash);
CREATE INDEX IF NOT EXISTS idx_artifacts_pair ON artifacts (dataset, method);
CREATE INDEX IF NOT EXISTS idx_artifacts_created ON artifacts (created_unix);
"""

_COLUMNS = (
    "artifact_id",
    "name",
    "kind",
    "content_hash",
    "dataset",
    "method",
    "config_hash",
    "dtype",
    "schema_version",
    "n_source",
    "n_target",
    "index_k",
    "created_unix",
    "path",
    "metadata_json",
)

#: Equality filters accepted by :meth:`ArtifactCatalog.find`.
FILTER_FIELDS = (
    "name",
    "kind",
    "content_hash",
    "dataset",
    "method",
    "config_hash",
    "dtype",
)


def record_from_manifest(
    manifest: Dict[str, object], path: Optional[Union[str, Path]] = None
) -> Dict[str, object]:
    """Flatten one artifact manifest into a catalog row dict.

    ``config_hash`` is the spec hash of the manifest's config payload (the
    same hashing the runner uses), so artifacts produced by the same config
    collapse to one queryable key even across dataset pairs.
    """
    index_meta = dict(manifest.get("index") or {})
    shape = list(index_meta.get("shape") or [None, None])
    metadata = dict(manifest.get("metadata") or {})
    config = manifest.get("config")
    version = manifest.get("schema_version")
    return {
        "artifact_id": str(manifest["artifact_id"]),
        "name": str(manifest.get("name", "")),
        "kind": str(manifest.get("kind", "alignment")),
        "content_hash": manifest.get("content_hash"),
        "dataset": metadata.get("dataset"),
        "method": metadata.get("method"),
        "config_hash": spec_hash(config) if config is not None else None,
        "dtype": manifest.get("dtype"),
        "schema_version": (
            ".".join(str(x) for x in version)
            if isinstance(version, (list, tuple))
            else (str(version) if version is not None else None)
        ),
        "n_source": shape[0],
        "n_target": shape[1],
        "index_k": index_meta.get("k"),
        "created_unix": manifest.get("created_unix"),
        "path": str(path) if path is not None else None,
        "metadata_json": json.dumps(metadata, sort_keys=True),
    }


def _row_to_record(row: sqlite3.Row) -> Dict[str, object]:
    record = {key: row[key] for key in _COLUMNS if key != "metadata_json"}
    try:
        record["metadata"] = json.loads(row["metadata_json"] or "{}")
    except json.JSONDecodeError:  # pragma: no cover - hand-edited db
        record["metadata"] = {}
    return record


class ArtifactCatalog:
    """One SQLite catalog of the artifacts under a store root."""

    def __init__(self, db_path: Union[str, Path]) -> None:
        self.db_path = Path(db_path)
        self._ensure_schema()

    @classmethod
    def for_store(cls, root: Union[str, Path]) -> "ArtifactCatalog":
        """The catalog living at ``<root>/catalog.sqlite`` (root is created)."""
        root = Path(root)
        root.mkdir(parents=True, exist_ok=True)
        return cls(root / CATALOG_FILE)

    @contextmanager
    def _connect(self) -> Iterator[sqlite3.Connection]:
        connection = sqlite3.connect(str(self.db_path), timeout=30.0)
        connection.row_factory = sqlite3.Row
        try:
            yield connection
            connection.commit()
        finally:
            connection.close()

    def _ensure_schema(self) -> None:
        self.db_path.parent.mkdir(parents=True, exist_ok=True)
        with self._connect() as connection:
            connection.executescript(_CREATE)
            connection.execute(
                "INSERT OR IGNORE INTO catalog_meta (key, value) VALUES (?, ?)",
                ("catalog_schema_version", str(CATALOG_SCHEMA_VERSION)),
            )

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register_manifest(
        self, manifest: Dict[str, object], path: Optional[Union[str, Path]] = None
    ) -> Dict[str, object]:
        """Register (or refresh) one manifest; returns the stored record."""
        record = record_from_manifest(manifest, path)
        with self._connect() as connection:
            connection.execute(
                f"INSERT OR REPLACE INTO artifacts ({', '.join(_COLUMNS)}) "
                f"VALUES ({', '.join('?' for _ in _COLUMNS)})",
                tuple(record[column] for column in _COLUMNS),
            )
        record = dict(record)
        record["metadata"] = json.loads(record.pop("metadata_json"))
        return record

    def remove(self, artifact_id: str) -> bool:
        """Drop one artifact from the catalog (not from disk)."""
        with self._connect() as connection:
            cursor = connection.execute(
                "DELETE FROM artifacts WHERE artifact_id = ?", (artifact_id,)
            )
            return cursor.rowcount > 0

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def get(self, artifact_id: str) -> Optional[Dict[str, object]]:
        """The catalog record of one artifact id, or ``None``."""
        with self._connect() as connection:
            row = connection.execute(
                "SELECT * FROM artifacts WHERE artifact_id = ?", (artifact_id,)
            ).fetchone()
        return _row_to_record(row) if row is not None else None

    @staticmethod
    def _filter_clauses(
        filters: Dict[str, Optional[str]], since: Optional[float]
    ) -> Tuple[List[str], List[object]]:
        """The shared WHERE fragments of :meth:`find` and :meth:`count`."""
        unknown = sorted(set(filters) - set(FILTER_FIELDS))
        if unknown:
            raise ValueError(
                f"unknown catalog filter(s) {unknown}; "
                f"expected any of {list(FILTER_FIELDS)}"
            )
        clauses: List[str] = []
        values: List[object] = []
        for field in FILTER_FIELDS:
            value = filters.get(field)
            if value is not None:
                clauses.append(f"{field} = ?")
                values.append(value)
        if since is not None:
            clauses.append("created_unix >= ?")
            values.append(float(since))
        return clauses, values

    def find(
        self,
        *,
        since: Optional[float] = None,
        limit: Optional[int] = None,
        offset: Optional[int] = None,
        newest_first: bool = True,
        **filters: Optional[str],
    ) -> List[Dict[str, object]]:
        """Records matching the equality ``filters``, newest first.

        Accepted filters: ``name``, ``kind``, ``content_hash``, ``dataset``,
        ``method``, ``config_hash``, ``dtype`` (``None`` values are ignored);
        ``since`` bounds ``created_unix`` from below.

        Ordering is ``(created_unix DESC, artifact_id ASC)`` (creation time
        flipped by ``newest_first=False``); the id tie-break is always
        ascending, so paging with ``limit``/``offset`` is stable even when
        many records share one creation timestamp (e.g. a bulk sync).
        """
        clauses, values = self._filter_clauses(filters, since)
        sql = "SELECT * FROM artifacts"
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        direction = "DESC" if newest_first else "ASC"
        sql += f" ORDER BY created_unix {direction}, artifact_id ASC"
        if limit is not None or offset is not None:
            # SQLite requires a LIMIT clause to accept OFFSET; -1 = no limit.
            sql += " LIMIT ?"
            values.append(-1 if limit is None else int(limit))
        if offset is not None:
            sql += " OFFSET ?"
            values.append(int(offset))
        with self._connect() as connection:
            rows = connection.execute(sql, tuple(values)).fetchall()
        return [_row_to_record(row) for row in rows]

    def latest(self, **filters) -> Optional[Dict[str, object]]:
        """The newest record matching ``filters``, or ``None``."""
        records = self.find(limit=1, **filters)
        return records[0] if records else None

    def ids(self) -> List[str]:
        """Every catalogued artifact id, sorted."""
        with self._connect() as connection:
            rows = connection.execute(
                "SELECT artifact_id FROM artifacts ORDER BY artifact_id"
            ).fetchall()
        return [row["artifact_id"] for row in rows]

    def count(
        self, *, since: Optional[float] = None, **filters: Optional[str]
    ) -> int:
        """Number of catalogued artifacts matching ``filters`` (all when none).

        Takes the same equality filters and ``since`` bound as :meth:`find`,
        so a paginated listing can report the un-paginated ``total``.
        """
        clauses, values = self._filter_clauses(filters, since)
        sql = "SELECT COUNT(*) FROM artifacts"
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        with self._connect() as connection:
            return int(connection.execute(sql, tuple(values)).fetchone()[0])

    # ------------------------------------------------------------------
    # backfill
    # ------------------------------------------------------------------
    def sync(self, root: Union[str, Path]) -> Tuple[int, int]:
        """Backfill from a directory walk; returns ``(registered, seen)``.

        Registers every readable manifest under ``root`` that the catalog
        does not already hold (or holds with a different content hash —
        e.g. after an ``overwrite=True`` re-export), and prunes records
        whose directories vanished.  Pre-catalog stores become fully
        queryable after one sync.
        """
        from repro.serve.artifacts import list_artifacts

        root = Path(root)
        manifests = list_artifacts(root)
        seen_ids = set()
        registered = 0
        for manifest in manifests:
            artifact_id = str(manifest.get("artifact_id"))
            seen_ids.add(artifact_id)
            existing = self.get(artifact_id)
            if (
                existing is not None
                and existing.get("content_hash") == manifest.get("content_hash")
            ):
                continue
            self.register_manifest(manifest, root / artifact_id)
            registered += 1
        for stale in set(self.ids()) - seen_ids:
            if not (root / stale).is_dir():
                self.remove(stale)
        return registered, len(manifests)

    def __repr__(self) -> str:
        return f"ArtifactCatalog({str(self.db_path)!r}, n={self.count()})"


def register_write(
    root: Union[str, Path], manifest: Dict[str, object], path: Union[str, Path]
) -> None:
    """Best-effort write-time registration hook used by the save paths.

    A broken/locked/read-only catalog must never fail an export — the store
    stays the source of truth and ``catalog-sync`` can rebuild the catalog —
    so any error here degrades to a warning.
    """
    import warnings

    try:
        ArtifactCatalog.for_store(root).register_manifest(manifest, path)
    except Exception as error:  # noqa: BLE001 - degrade, never break a save
        warnings.warn(
            f"artifact saved but not catalogued ({type(error).__name__}: "
            f"{error}); run `repro.cli catalog-sync` to backfill",
            RuntimeWarning,
            stacklevel=2,
        )


__all__ = [
    "CATALOG_FILE",
    "CATALOG_SCHEMA_VERSION",
    "FILTER_FIELDS",
    "ArtifactCatalog",
    "record_from_manifest",
    "register_write",
]
