"""Versioned, content-hash-addressed persistence of alignment results.

One artifact is a directory::

    <root>/<artifact_id>/
        manifest.json    # schema version, config, scalars, array index, hashes
        arrays.npz       # every array: result fields + sparse top-k index

``artifact_id`` is ``<name>-<hash12>`` where the hash covers the manifest's
content — the config, the scalar payload and every array's shape/dtype/sha256
— so identical results collapse to one artifact and any change produces a
new id.  The manifest records each array's SHA-256, verified on load.

Format stability:

* ``schema_version`` gates compatibility — loading an artifact written by a
  *newer major* schema raises :class:`ArtifactSchemaError`; unknown manifest
  keys and unknown array names are ignored (forward-compatible load),
* an artifact missing its sparse index arrays (e.g. written by a stripped
  exporter) is still servable: the index is rebuilt from the dense
  alignment matrix on load.

Loading supports two modes: ``"full"`` (rebuild the complete
:class:`~repro.core.result.AlignmentResult`) and ``"serve"`` (load only the
``O(n·k)`` index arrays — the memory-light path the query service uses).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.backend.precision import as_score_matrix
from repro.core.config import HTCConfig
from repro.core.result import AlignmentResult
from repro.runner.spec import canonical_json, spec_hash
from repro.serve.index import DEFAULT_INDEX_K, SparseTopKIndex, build_index
from repro.utils.naming import slugify

#: Current artifact schema.  Major bumps break readers.  1.1 added the
#: top-level ``dtype`` field (the precision policy the scores were computed
#: and stored under); it is required to *load* an artifact — a pre-1.1
#: manifest raises :class:`ArtifactSchemaError` asking for a re-export —
#: but listing/discovery (:func:`list_artifacts`) still surfaces pre-1.1
#: artifacts so the error is reachable instead of the store silently
#: shrinking.
SCHEMA_VERSION = [1, 1]

MANIFEST_FILE = "manifest.json"
ARRAYS_FILE = "arrays.npz"

#: Array names belonging to the sparse index (the ``"serve"`` loading set).
_INDEX_ARRAYS = (
    "index_indices",
    "index_scores",
    "index_reverse_indices",
    "index_reverse_scores",
)


class ArtifactNotFoundError(FileNotFoundError):
    """No artifact with the requested id under the store root."""


class ArtifactSchemaError(ValueError):
    """The artifact was written by an incompatible (newer) schema."""


class ArtifactIntegrityError(ValueError):
    """An array's content does not match its recorded hash."""


def _slug(text: str) -> str:
    return slugify(text, "artifact")


def _array_sha256(array: np.ndarray) -> str:
    digest = hashlib.sha256()
    digest.update(str(array.dtype).encode())
    digest.update(str(array.shape).encode())
    digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()


# ----------------------------------------------------------------------
# config (de)serialization
# ----------------------------------------------------------------------
def serialize_config(config: HTCConfig) -> Dict[str, object]:
    """JSON-safe dict of an :class:`HTCConfig`.

    Non-serialisable runtime handles degrade to their loadable defaults: a
    live cache object becomes ``"memory"``, a ``RandomState``/``Generator``
    seed becomes ``0`` (artifacts describe a *finished* run; the seed is
    informational at serve time).
    """
    payload: Dict[str, object] = {}
    for spec in dataclasses.fields(config):
        value = getattr(config, spec.name)
        if spec.name == "orbit_cache" and not isinstance(value, (bool, str)):
            value = "memory"
        if spec.name == "random_state" and not isinstance(value, (int, type(None))):
            value = 0
        if isinstance(value, tuple):
            value = list(value)
        payload[spec.name] = value
    return payload


def deserialize_config(payload: Dict[str, object]) -> HTCConfig:
    """Rebuild an :class:`HTCConfig`, ignoring unknown fields."""
    known = {spec.name for spec in dataclasses.fields(HTCConfig)}
    kwargs = {k: v for k, v in dict(payload).items() if k in known}
    for name in ("orbits", "diffusion_orders"):
        if isinstance(kwargs.get(name), list):
            kwargs[name] = tuple(kwargs[name])
    return HTCConfig(**kwargs)


# ----------------------------------------------------------------------
# save
# ----------------------------------------------------------------------
@dataclass
class ArtifactInfo:
    """Summary returned by :func:`save_artifact`."""

    artifact_id: str
    path: Path
    manifest: Dict[str, object]
    index: SparseTopKIndex

    @property
    def disk_bytes(self) -> int:
        """Total on-disk size of the artifact directory."""
        return sum(f.stat().st_size for f in self.path.iterdir() if f.is_file())


def _array_meta(arrays: Dict[str, np.ndarray]) -> Dict[str, Dict[str, object]]:
    """Per-array shape/dtype/SHA-256 records for a manifest."""
    return {
        key: {
            "shape": [int(x) for x in value.shape],
            "dtype": str(value.dtype),
            "sha256": _array_sha256(value),
        }
        for key, value in sorted(arrays.items())
    }


def _write_artifact(
    root: Path,
    manifest: Dict[str, object],
    arrays: Dict[str, np.ndarray],
    index: SparseTopKIndex,
    overwrite: bool,
) -> ArtifactInfo:
    """Shared persistence tail of the save paths.

    An existing identical-content artifact skips the array rewrite but
    still refreshes the metadata annotations (they are outside the content
    hash by design); otherwise arrays are written first and the manifest
    last via tmp+rename, so a directory with a manifest always has its
    arrays in place.
    """
    from repro.serve.catalog import register_write

    artifact_id = str(manifest["artifact_id"])
    content_hash = manifest["content_hash"]
    path = root / artifact_id
    if path.is_dir() and not overwrite:
        try:
            existing = _read_manifest(path)
        except (ArtifactNotFoundError, ArtifactIntegrityError, ArtifactSchemaError):
            existing = None  # half-written/corrupt/pre-dtype directory: rewrite
        if existing is not None and existing.get("content_hash") == content_hash:
            if existing.get("metadata") != manifest["metadata"]:
                existing["metadata"] = manifest["metadata"]
                tmp = path / (MANIFEST_FILE + ".tmp")
                tmp.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")
                os.replace(tmp, path / MANIFEST_FILE)
            register_write(root, existing, path)
            return ArtifactInfo(
                artifact_id=artifact_id, path=path, manifest=existing, index=index
            )
    path.mkdir(parents=True, exist_ok=True)
    with open(path / ARRAYS_FILE, "wb") as handle:
        np.savez_compressed(handle, **arrays)
    tmp = path / (MANIFEST_FILE + ".tmp")
    tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path / MANIFEST_FILE)
    register_write(root, manifest, path)
    return ArtifactInfo(
        artifact_id=artifact_id, path=path, manifest=manifest, index=index
    )


def _annotate_orbit_backend(
    metadata: Optional[Dict[str, object]], config
) -> Dict[str, object]:
    """Stamp orbit-backend provenance into the metadata annotations.

    The resolved name of the config's orbit backend (``"auto"`` resolved to
    the concrete default) is recorded so queries can report which counter
    produced the artifact's orbits.  Only applies when a config is supplied
    — config-less exports (bare score matrices, test fixtures) keep their
    metadata untouched.  An explicit ``orbit_backend`` key always wins.
    Metadata is outside the content hash, so artifact ids are unaffected.
    """
    annotations = dict(metadata or {})
    if config is None or "orbit_backend" in annotations:
        return annotations
    selector = str(getattr(config, "orbit_backend", "auto") or "auto")
    if selector == "auto":
        try:
            from repro.orbits.engine import orbit_registry

            selector = orbit_registry().default()
        except Exception:  # pragma: no cover - no orbit backend usable
            pass
    annotations["orbit_backend"] = selector
    return annotations


def save_artifact(
    result: AlignmentResult,
    config: Optional[HTCConfig] = None,
    *,
    root: Union[str, Path],
    name: str = "alignment",
    index_k: int = DEFAULT_INDEX_K,
    reverse_k: Optional[int] = None,
    chunk_rows: Optional[int] = None,
    metadata: Optional[Dict[str, object]] = None,
    overwrite: bool = False,
) -> ArtifactInfo:
    """Persist ``result`` (+ optional ``config``) as one artifact directory.

    Parameters
    ----------
    result:
        The alignment to persist; every array field plus the derived sparse
        top-``index_k`` index is stored.
    config:
        The :class:`HTCConfig` that produced the result (stored in the
        manifest, restored by :func:`load_artifact`).
    root:
        Store root directory (created if missing).
    name:
        Human-readable prefix of the artifact id.
    index_k, reverse_k, chunk_rows:
        Sparse-index parameters (see :func:`repro.serve.index.build_index`).
    metadata:
        Free-form JSON-safe annotations (dataset, method, suite job id ...).
    overwrite:
        Re-write the directory if the identical artifact already exists
        (by default an existing artifact is returned as-is — the store is
        content-addressed, so same id means same bytes).
    """
    root = Path(root)
    index = build_index(
        result.alignment_matrix,
        k=index_k,
        reverse_k=reverse_k,
        chunk_rows=chunk_rows,
    )
    arrays = dict(result.array_payload())
    arrays.update(index.array_payload())

    array_meta = _array_meta(arrays)
    config_payload = serialize_config(config) if config is not None else None
    scalars = result.scalar_payload()
    dtype = str(index.score_dtype)
    content_hash = spec_hash(
        {
            "schema_version": SCHEMA_VERSION,
            "name": name,
            "dtype": dtype,
            "config": config_payload,
            "scalars": scalars,
            "arrays": array_meta,
            "index": index.meta_payload(),
        }
    )
    manifest: Dict[str, object] = {
        "schema_version": SCHEMA_VERSION,
        "artifact_id": f"{_slug(name)}-{content_hash[:12]}",
        "name": name,
        "content_hash": content_hash,
        "created_unix": time.time(),
        "dtype": dtype,
        "config": config_payload,
        "scalars": scalars,
        "arrays": array_meta,
        "index": index.meta_payload(),
        "metadata": _annotate_orbit_backend(metadata, config),
    }
    return _write_artifact(root, manifest, arrays, index, overwrite)


def save_index_artifact(
    index: SparseTopKIndex,
    config: Optional[HTCConfig] = None,
    *,
    root: Union[str, Path],
    name: str = "stitched",
    metadata: Optional[Dict[str, object]] = None,
    overwrite: bool = False,
) -> ArtifactInfo:
    """Persist a bare sparse index as an **index-only** artifact.

    This is the export path for stitched sharded alignments
    (:mod:`repro.shard`), whose whole point is never materialising the dense
    ``(n_s, n_t)`` matrix: the artifact stores only the ``O(n·k)`` index
    arrays.  Index-only artifacts load in ``"serve"`` mode (and through
    :class:`~repro.serve.service.AlignmentService`) exactly like full ones;
    ``"full"`` mode raises :class:`ArtifactSchemaError` because there is no
    dense matrix to rebuild a result from.
    """
    root = Path(root)
    arrays = dict(index.array_payload())
    array_meta = _array_meta(arrays)
    config_payload = serialize_config(config) if config is not None else None
    dtype = str(index.score_dtype)
    content_hash = spec_hash(
        {
            "schema_version": SCHEMA_VERSION,
            "kind": "index",
            "name": name,
            "dtype": dtype,
            "config": config_payload,
            "arrays": array_meta,
            "index": index.meta_payload(),
        }
    )
    manifest: Dict[str, object] = {
        "schema_version": SCHEMA_VERSION,
        "kind": "index",
        "artifact_id": f"{_slug(name)}-{content_hash[:12]}",
        "name": name,
        "content_hash": content_hash,
        "created_unix": time.time(),
        "dtype": dtype,
        "config": config_payload,
        "scalars": {},
        "arrays": array_meta,
        "index": index.meta_payload(),
        "metadata": _annotate_orbit_backend(metadata, config),
    }
    return _write_artifact(root, manifest, arrays, index, overwrite)


def export_result(
    raw_result: object,
    config: Optional[HTCConfig] = None,
    *,
    root: Union[str, Path],
    name: str = "alignment",
    index_k: int = DEFAULT_INDEX_K,
    metadata: Optional[Dict[str, object]] = None,
) -> ArtifactInfo:
    """Persist any aligner output — the shared CLI/runner export path.

    Accepts a full :class:`AlignmentResult` or a bare score matrix (what the
    paper baselines return); bare matrices are wrapped into a minimal result
    so every method's output is servable under the same artifact contract.
    """
    if not isinstance(raw_result, AlignmentResult):
        # Preserve a float32 matrix (the reduced-precision policy); promote
        # everything non-float to float64 as before.
        raw_result = AlignmentResult(alignment_matrix=as_score_matrix(raw_result))
    return save_artifact(
        raw_result,
        config,
        root=root,
        name=name,
        index_k=index_k,
        metadata=metadata,
    )


# ----------------------------------------------------------------------
# load
# ----------------------------------------------------------------------
@dataclass
class Artifact:
    """A loaded artifact: manifest + index, and (in full mode) the result."""

    artifact_id: str
    path: Path
    manifest: Dict[str, object]
    index: SparseTopKIndex
    result: Optional[AlignmentResult] = None
    config: Optional[HTCConfig] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def shape(self):
        """Dense matrix shape served by this artifact."""
        return self.index.shape

    @property
    def dtype(self) -> str:
        """Score dtype recorded in the manifest (``float64``/``float32``)."""
        return str(self.manifest.get("dtype", str(self.index.score_dtype)))


def _read_manifest(path: Path, require_dtype: bool = True) -> Dict[str, object]:
    """Parse and schema-check one manifest.

    ``require_dtype=False`` (listing/discovery) accepts pre-1.1 manifests
    without the ``dtype`` field, so old artifacts stay visible in
    ``serve-stats`` — attempting to *load* one still raises the clear
    re-export error below.
    """
    manifest_path = path / MANIFEST_FILE
    if not manifest_path.is_file():
        raise ArtifactNotFoundError(f"no manifest at {manifest_path}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as error:
        raise ArtifactIntegrityError(
            f"corrupt manifest {manifest_path}: {error}"
        ) from error
    version = manifest.get("schema_version", [0, 0])
    if not isinstance(version, list) or not version:
        raise ArtifactSchemaError(f"malformed schema_version in {manifest_path}")
    if int(version[0]) > SCHEMA_VERSION[0]:
        raise ArtifactSchemaError(
            f"artifact {manifest_path} uses schema {version}, newer than the "
            f"supported {SCHEMA_VERSION}; upgrade repro to read it"
        )
    if require_dtype and "dtype" not in manifest:
        raise ArtifactSchemaError(
            f"artifact {manifest_path} has no 'dtype' field: it was written "
            f"by a pre-1.1 schema that predates precision policies.  "
            "Re-export the artifact (the writer now records whether scores "
            "are float64 or float32)"
        )
    return manifest


def _verify_array(
    name: str, array: np.ndarray, array_meta: Dict[str, object], path: Path
) -> None:
    recorded = array_meta.get(name)
    if recorded is None:
        return
    actual = _array_sha256(array)
    if actual != recorded.get("sha256"):
        raise ArtifactIntegrityError(
            f"array {name!r} in {path} fails its integrity check "
            f"(expected sha256 {recorded.get('sha256')}, got {actual})"
        )


def load_artifact(
    root: Union[str, Path],
    artifact_id: str,
    *,
    mode: str = "full",
    verify: bool = True,
) -> Artifact:
    """Load one artifact from the store.

    Parameters
    ----------
    root, artifact_id:
        Store root and the id returned by :func:`save_artifact`.
    mode:
        ``"full"`` rebuilds the complete :class:`AlignmentResult`;
        ``"serve"`` loads only the sparse index arrays — ``O(n·k)`` resident
        memory, the mode :class:`repro.serve.service.AlignmentService` uses.
    verify:
        Check every loaded array against its recorded SHA-256.
    """
    if mode not in ("full", "serve"):
        raise ValueError(f'mode must be "full" or "serve", got {mode!r}')
    path = Path(root) / artifact_id
    if not path.is_dir():
        raise ArtifactNotFoundError(
            f"artifact {artifact_id!r} not found under {root}"
        )
    manifest = _read_manifest(path)
    arrays_path = path / ARRAYS_FILE
    if not arrays_path.is_file():
        raise ArtifactIntegrityError(f"artifact {artifact_id!r} lost {ARRAYS_FILE}")
    array_meta = dict(manifest.get("arrays", {}))

    with np.load(arrays_path) as archive:
        wanted = (
            [n for n in _INDEX_ARRAYS if n in archive.files]
            if mode == "serve"
            else list(archive.files)
        )
        # "serve" mode with no stored index falls back to the dense matrix.
        if mode == "serve" and len(wanted) < len(_INDEX_ARRAYS):
            wanted = list(archive.files)
        arrays = {name: archive[name] for name in wanted}
    if verify:
        for name, array in arrays.items():
            _verify_array(name, array, array_meta, path)

    index_meta = manifest.get("index")
    try:
        index = SparseTopKIndex.from_payload(arrays, index_meta or {})
    except (KeyError, ValueError, TypeError):
        # Forward compatibility: no (or unreadable) stored index — rebuild
        # from the dense matrix, which save_artifact always records.
        if "alignment_matrix" not in arrays:
            raise ArtifactIntegrityError(
                f"artifact {artifact_id!r} has neither index arrays nor a "
                "dense alignment matrix"
            ) from None
        k = int(dict(index_meta or {}).get("k", DEFAULT_INDEX_K))
        reverse_k = int(dict(index_meta or {}).get("reverse_k", k))
        index = build_index(arrays["alignment_matrix"], k=k, reverse_k=reverse_k)

    result = None
    config = None
    if mode == "full":
        result_arrays = {
            name: array
            for name, array in arrays.items()
            if name not in _INDEX_ARRAYS
        }
        if "alignment_matrix" not in result_arrays:
            raise ArtifactSchemaError(
                f"artifact {artifact_id!r} is index-only (no dense alignment "
                'matrix is stored); load it with mode="serve"'
            )
        result = AlignmentResult.from_payload(
            result_arrays, dict(manifest.get("scalars", {}))
        )
        if manifest.get("config") is not None:
            config = deserialize_config(manifest["config"])
    return Artifact(
        artifact_id=artifact_id,
        path=path,
        manifest=manifest,
        index=index,
        result=result,
        config=config,
        metadata=dict(manifest.get("metadata", {})),
    )


def list_artifacts(root: Union[str, Path]) -> List[Dict[str, object]]:
    """Manifests of every artifact under ``root``, sorted by id.

    Directories without a readable manifest are skipped (e.g. a crashed
    half-written export, which never got its manifest renamed into place).
    Pre-1.1 manifests (no ``dtype`` field) are listed — loading them is
    what raises the re-export schema error — so an upgrade never makes a
    store look silently empty.
    """
    root = Path(root)
    if not root.is_dir():
        return []
    manifests = []
    for entry in sorted(root.iterdir()):
        if not entry.is_dir():
            continue
        try:
            manifests.append(_read_manifest(entry, require_dtype=False))
        except (ArtifactNotFoundError, ArtifactIntegrityError, ArtifactSchemaError):
            continue
    return manifests


def canonical_manifest(manifest: Dict[str, object]) -> str:
    """Stable JSON rendering of a manifest (used in tests and debugging)."""
    return canonical_json(manifest)


__all__ = [
    "SCHEMA_VERSION",
    "ArtifactInfo",
    "Artifact",
    "ArtifactNotFoundError",
    "ArtifactSchemaError",
    "ArtifactIntegrityError",
    "serialize_config",
    "deserialize_config",
    "save_artifact",
    "save_index_artifact",
    "export_result",
    "load_artifact",
    "list_artifacts",
    "canonical_manifest",
]
