"""Sparse top-``k`` index over an alignment-score matrix.

A trained ``(n_s, n_t)`` score matrix answers three query families —
``match`` (argmax per source row), ``top_k`` (best targets per source row)
and their target→source reverses — yet holding the full float64 matrix in a
serving process costs ``O(n_s·n_t)`` memory.  :class:`SparseTopKIndex` keeps
only the ``k`` best ``(score, index)`` entries per row *and* per column:
``O((n_s + n_t)·k)`` memory, typically well over 10× smaller.

**Bit-identity guarantee.**  Every stored row is the prefix of the total
order *(score descending, index ascending)* — exactly the order
:func:`repro.similarity.matching.top_k_indices` produces.  Because the order
is total (index breaks every tie), the top-``k`` prefix is independent of
how the matrix was scanned, so

* ``index.top_k(rows, k')`` equals ``top_k_indices(dense, k')[rows]`` for
  every ``k' <= index.k``, including tie-heavy matrices, and
* ``index.match(rows)`` equals ``dense[rows].argmax(axis=1)`` (numpy's
  argmax also resolves ties to the lowest index).

The builders stream the matrix in row chunks (via the existing chunked
kernels), so an index can be constructed without ever materialising a dense
matrix larger than one chunk.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Optional, Tuple, Union

import numpy as np

from repro.backend.precision import PolicyLike, as_score_matrix
from repro.similarity.chunked import ChunkedScorer, resolve_chunk_rows
from repro.similarity.matching import top_k_indices

#: Default number of stored candidates per row/column.
DEFAULT_INDEX_K = 10


def _topk_block(block: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Per-row top-``k`` (indices, scores) of ``block`` in total order."""
    indices = top_k_indices(block, k) if k > 0 and block.shape[1] else (
        np.empty((block.shape[0], 0), dtype=np.intp)
    )
    scores = np.take_along_axis(block, indices, axis=1)
    return indices, scores


def _merge_columns(
    top_scores: Optional[np.ndarray],
    top_rows: Optional[np.ndarray],
    block: np.ndarray,
    row_start: int,
    k: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Fold a row chunk into the running per-column top-``k`` buffers.

    Both buffers are kept sorted by *(score desc, row asc)* per column.  The
    incoming block's rows are all larger than any row already in the buffer
    and arrive in ascending order, so a stable sort over the stacked
    candidates preserves exactly that total order — making the running
    selection equal to a one-shot top-``k`` over the full column.
    """
    n_rows, n_cols = block.shape
    block_rows = np.broadcast_to(
        row_start + np.arange(n_rows, dtype=np.intp)[:, None], (n_rows, n_cols)
    )
    if top_scores is None:
        cand_scores, cand_rows = block, block_rows
    else:
        cand_scores = np.vstack([top_scores, block])
        cand_rows = np.vstack([top_rows, block_rows])
    order = np.argsort(-cand_scores, axis=0, kind="stable")[:k]
    return (
        np.take_along_axis(cand_scores, order, axis=0),
        np.take_along_axis(cand_rows, order, axis=0),
    )


@dataclass(frozen=True)
class SparseTopKIndex:
    """Immutable sparse top-``k`` view of an ``(n_s, n_t)`` score matrix.

    Attributes
    ----------
    shape:
        The dense matrix shape ``(n_s, n_t)``.
    k, reverse_k:
        Requested candidates per source row / target column; the stored
        widths are clipped to the matrix dimensions.
    indices, scores:
        ``(n_s, min(k, n_t))`` per-row best target indices and their scores,
        best first, ties by lowest index.
    reverse_indices, reverse_scores:
        ``(n_t, min(reverse_k, n_s))`` per-column best source indices and
        scores under the same total order.
    """

    shape: Tuple[int, int]
    k: int
    indices: np.ndarray
    scores: np.ndarray
    reverse_k: int
    reverse_indices: np.ndarray
    reverse_scores: np.ndarray

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _check_nodes(self, nodes: np.ndarray, axis: int) -> np.ndarray:
        nodes = np.atleast_1d(np.asarray(nodes, dtype=np.intp))
        if nodes.ndim != 1:
            raise ValueError("node ids must be a scalar or 1-D sequence")
        if nodes.size and (nodes.min() < 0 or nodes.max() >= self.shape[axis]):
            raise IndexError(
                f"node ids must be in [0, {self.shape[axis]}), "
                f"got range [{nodes.min()}, {nodes.max()}]"
            )
        return nodes

    def match(self, source_nodes) -> np.ndarray:
        """Best target per source node — equals ``dense.argmax(axis=1)``."""
        nodes = self._check_nodes(source_nodes, axis=0)
        if self.indices.shape[1] == 0:
            raise ValueError("cannot match against an empty target side")
        return self.indices[nodes, 0]

    def top_k(self, source_nodes, k: int) -> np.ndarray:
        """Top-``k`` targets per source node, best first (``k <= self.k``)."""
        nodes = self._check_nodes(source_nodes, axis=0)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        effective = min(k, self.shape[1])
        if effective > self.indices.shape[1]:
            raise ValueError(
                f"k={k} exceeds the indexed width {self.indices.shape[1]}; "
                "rebuild the index with a larger k"
            )
        return self.indices[nodes, :effective]

    def top_k_scores(self, source_nodes, k: int) -> np.ndarray:
        """Scores aligned with :meth:`top_k`."""
        nodes = self._check_nodes(source_nodes, axis=0)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        effective = min(k, self.shape[1])
        if effective > self.scores.shape[1]:
            raise ValueError(
                f"k={k} exceeds the indexed width {self.scores.shape[1]}; "
                "rebuild the index with a larger k"
            )
        return self.scores[nodes, :effective]

    def reverse_match(self, target_nodes) -> np.ndarray:
        """Best source per target node — equals ``dense.argmax(axis=0)``."""
        nodes = self._check_nodes(target_nodes, axis=1)
        if self.reverse_indices.shape[1] == 0:
            raise ValueError("cannot reverse-match against an empty source side")
        return self.reverse_indices[nodes, 0]

    def reverse_top_k(self, target_nodes, k: int) -> np.ndarray:
        """Top-``k`` sources per target node (``k <= self.reverse_k``)."""
        nodes = self._check_nodes(target_nodes, axis=1)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        effective = min(k, self.shape[0])
        if effective > self.reverse_indices.shape[1]:
            raise ValueError(
                f"k={k} exceeds the indexed reverse width "
                f"{self.reverse_indices.shape[1]}; rebuild with a larger reverse_k"
            )
        return self.reverse_indices[nodes, :effective]

    # ------------------------------------------------------------------
    # introspection / serialization
    # ------------------------------------------------------------------
    @property
    def score_dtype(self) -> np.dtype:
        """Dtype of the stored scores (the precision policy they carry)."""
        return self.scores.dtype

    @property
    def nbytes(self) -> int:
        """Resident bytes of the four index arrays."""
        return int(
            self.indices.nbytes
            + self.scores.nbytes
            + self.reverse_indices.nbytes
            + self.reverse_scores.nbytes
        )

    @property
    def dense_nbytes(self) -> int:
        """Bytes the equivalent dense matrix (same score dtype) would occupy."""
        return int(self.shape[0]) * int(self.shape[1]) * self.score_dtype.itemsize

    @property
    def compression_ratio(self) -> float:
        """``dense_nbytes / nbytes`` (``inf`` for an empty index)."""
        return self.dense_nbytes / self.nbytes if self.nbytes else float("inf")

    def array_payload(self) -> Dict[str, np.ndarray]:
        """Flat array dict consumed by :mod:`repro.serve.artifacts`."""
        return {
            "index_indices": self.indices,
            "index_scores": self.scores,
            "index_reverse_indices": self.reverse_indices,
            "index_reverse_scores": self.reverse_scores,
        }

    def meta_payload(self) -> Dict[str, object]:
        """JSON-serialisable index parameters for the artifact manifest."""
        return {
            "shape": [int(self.shape[0]), int(self.shape[1])],
            "k": int(self.k),
            "reverse_k": int(self.reverse_k),
            "score_dtype": str(self.score_dtype),
        }

    @classmethod
    def from_payload(
        cls, arrays: Dict[str, np.ndarray], meta: Dict[str, object]
    ) -> "SparseTopKIndex":
        """Rebuild an index from :meth:`array_payload` + :meth:`meta_payload`."""
        missing = [
            name
            for name in (
                "index_indices",
                "index_scores",
                "index_reverse_indices",
                "index_reverse_scores",
            )
            if name not in arrays
        ]
        if missing:
            raise ValueError(f"index payload is missing arrays: {missing}")
        shape = tuple(int(x) for x in meta["shape"])
        # Scores keep their stored dtype (float32 artifacts stay float32);
        # anything non-float is promoted to float64 as before.
        return cls(
            shape=shape,  # type: ignore[arg-type]
            k=int(meta["k"]),
            indices=np.asarray(arrays["index_indices"], dtype=np.intp),
            scores=as_score_matrix(arrays["index_scores"]),
            reverse_k=int(meta["reverse_k"]),
            reverse_indices=np.asarray(
                arrays["index_reverse_indices"], dtype=np.intp
            ),
            reverse_scores=as_score_matrix(arrays["index_reverse_scores"]),
        )


# ----------------------------------------------------------------------
# builders
# ----------------------------------------------------------------------
def _build_from_blocks(
    blocks: Iterable[Tuple[int, np.ndarray]],
    n_source: int,
    n_target: int,
    k: int,
    reverse_k: int,
    score_dtype=np.float64,
) -> SparseTopKIndex:
    """Core builder: fold ``(row_start, block)`` chunks into both indexes.

    ``score_dtype`` is the dtype of the stored score arrays — the incoming
    blocks' compute dtype, so a float32 policy yields a ~2x smaller index.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if reverse_k < 1:
        raise ValueError(f"reverse_k must be >= 1, got {reverse_k}")
    score_dtype = np.dtype(score_dtype)
    k_eff = min(k, n_target)
    rk_eff = min(reverse_k, n_source)
    indices = np.empty((n_source, k_eff), dtype=np.intp)
    scores = np.empty((n_source, k_eff), dtype=score_dtype)
    col_scores: Optional[np.ndarray] = None
    col_rows: Optional[np.ndarray] = None
    for start, block in blocks:
        stop = start + block.shape[0]
        block_indices, block_scores = _topk_block(block, k_eff)
        indices[start:stop] = block_indices
        scores[start:stop] = block_scores
        if rk_eff:
            col_scores, col_rows = _merge_columns(
                col_scores, col_rows, block, start, rk_eff
            )
    if col_scores is None:
        col_scores = np.empty((rk_eff, n_target), dtype=score_dtype)
        col_rows = np.empty((rk_eff, n_target), dtype=np.intp)
    return SparseTopKIndex(
        shape=(n_source, n_target),
        k=k,
        indices=indices,
        scores=scores,
        reverse_k=reverse_k,
        reverse_indices=np.ascontiguousarray(col_rows.T, dtype=np.intp),
        reverse_scores=np.ascontiguousarray(col_scores.T, dtype=score_dtype),
    )


class StreamedIndexAssembler:
    """Assemble one index side row-window by row-window, out of core.

    The streaming stitch (:mod:`repro.shard.streaming`) produces the global
    index in row windows; this assembler receives each window's
    ``(indices, scores)`` block and writes it straight into disk-backed
    arrays (``np.lib.format`` memmaps under ``backing_dir``), so the full
    ``(n_rows, width)`` side is never resident in the assembling process.
    With ``backing_dir=None`` it degrades to ordinary in-memory arrays
    (useful for tests and tiny indexes).

    Windows must be written in ascending, gap-free row order —
    :meth:`finalize` raises if any row was never covered, so a partial
    assembly can't silently become a valid-looking index.
    """

    def __init__(
        self,
        n_rows: int,
        width: int,
        score_dtype=np.float64,
        backing_dir: Optional[Union[str, Path]] = None,
        name: str = "side",
    ) -> None:
        if n_rows < 0 or width < 0:
            raise ValueError(f"invalid assembler shape ({n_rows}, {width})")
        self.n_rows = int(n_rows)
        self.width = int(width)
        self.score_dtype = np.dtype(score_dtype)
        self._next_row = 0
        if backing_dir is None:
            self.indices = np.full((self.n_rows, self.width), -1, dtype=np.intp)
            self.scores = np.full(
                (self.n_rows, self.width), -np.inf, dtype=self.score_dtype
            )
        else:
            backing_dir = Path(backing_dir)
            backing_dir.mkdir(parents=True, exist_ok=True)
            self.indices = np.lib.format.open_memmap(
                backing_dir / f"{name}_indices.npy",
                mode="w+",
                dtype=np.intp,
                shape=(self.n_rows, self.width),
            )
            self.scores = np.lib.format.open_memmap(
                backing_dir / f"{name}_scores.npy",
                mode="w+",
                dtype=self.score_dtype,
                shape=(self.n_rows, self.width),
            )

    def write(
        self, row_start: int, indices_block: np.ndarray, scores_block: np.ndarray
    ) -> None:
        """Write one window's assembled block at ``row_start``."""
        if row_start != self._next_row:
            raise ValueError(
                f"windows must be written in order: expected row {self._next_row}, "
                f"got {row_start}"
            )
        if indices_block.shape != scores_block.shape or (
            indices_block.ndim != 2 or indices_block.shape[1] != self.width
        ):
            raise ValueError(
                f"window block shapes {indices_block.shape}/{scores_block.shape} "
                f"do not fit width {self.width}"
            )
        stop = row_start + indices_block.shape[0]
        if stop > self.n_rows:
            raise ValueError(
                f"window [{row_start}, {stop}) overruns {self.n_rows} rows"
            )
        self.indices[row_start:stop] = indices_block
        self.scores[row_start:stop] = scores_block
        self._next_row = stop

    def finalize(self) -> Tuple[np.ndarray, np.ndarray]:
        """Flush and return the assembled ``(indices, scores)`` arrays."""
        if self._next_row != self.n_rows:
            raise ValueError(
                f"assembly incomplete: rows [{self._next_row}, {self.n_rows}) "
                "were never written"
            )
        for array in (self.indices, self.scores):
            if isinstance(array, np.memmap):
                array.flush()
        return self.indices, self.scores


def build_index(
    score_matrix: np.ndarray,
    k: int = DEFAULT_INDEX_K,
    reverse_k: Optional[int] = None,
    chunk_rows: Optional[int] = None,
) -> SparseTopKIndex:
    """Index a dense score matrix, streaming it in row chunks.

    ``chunk_rows`` bounds the temporary working set; the result is
    independent of the chunking (the selection order is total).  The score
    matrix's float32/float64 dtype is preserved in the stored index.
    """
    scores = as_score_matrix(score_matrix)
    if scores.ndim != 2:
        raise ValueError(f"score_matrix must be 2-D, got shape {scores.shape}")
    n_source, n_target = scores.shape
    chunk = resolve_chunk_rows(chunk_rows, n_source)

    def blocks() -> Iterable[Tuple[int, np.ndarray]]:
        for start in range(0, n_source, chunk):
            yield start, scores[start : start + chunk]

    return _build_from_blocks(
        blocks(),
        n_source,
        n_target,
        k,
        reverse_k if reverse_k is not None else k,
        score_dtype=scores.dtype,
    )


def build_index_from_embeddings(
    source_embeddings: np.ndarray,
    target_embeddings: np.ndarray,
    k: int = DEFAULT_INDEX_K,
    reverse_k: Optional[int] = None,
    *,
    measure: str = "pearson",
    correction: Optional[str] = None,
    n_neighbors: int = 10,
    chunk_rows: Optional[int] = None,
    policy: PolicyLike = None,
    backend: Optional[str] = None,
) -> SparseTopKIndex:
    """Index the (corrected) similarity of two embedding matrices.

    Streams :class:`repro.similarity.chunked.ChunkedScorer` blocks, so the
    dense ``(n_s, n_t)`` matrix is never materialised; each block is
    bit-identical to the corresponding dense rows of the same policy.
    ``policy``/``backend`` select the scoring precision and compute backend
    (:mod:`repro.backend`); the stored score arrays use the policy's
    compute dtype.
    """
    scorer = ChunkedScorer(
        source_embeddings,
        target_embeddings,
        measure=measure,
        correction=correction,
        n_neighbors=n_neighbors,
        chunk_rows=chunk_rows,
        policy=policy,
        backend=backend,
    )
    return _build_from_blocks(
        ((start, block) for start, _stop, block in scorer.iter_blocks()),
        scorer.n_source,
        scorer.n_target,
        k,
        reverse_k if reverse_k is not None else k,
        score_dtype=scorer.policy.compute_dtype,
    )


__all__ = [
    "DEFAULT_INDEX_K",
    "SparseTopKIndex",
    "StreamedIndexAssembler",
    "build_index",
    "build_index_from_embeddings",
]
