"""Persistent alignment artifacts and the high-throughput query service.

Computing an alignment is expensive (orbit counting, multi-orbit training,
fine-tuning); *using* one should not be.  This package turns the in-memory
:class:`~repro.core.result.AlignmentResult` produced by the pipeline into a
servable asset, in three layers:

* :mod:`repro.serve.artifacts` — a versioned, content-hash-addressed on-disk
  store (``arrays.npz`` + ``manifest.json`` per artifact) with per-array
  integrity hashes and forward-compatible loading,
* :mod:`repro.serve.index` — a sparse top-``k`` index holding only the best
  ``k`` scores/indices per source row (plus the reverse target→source view),
  ``O(n·k)`` memory instead of ``O(n_s·n_t)`` while answering every
  ``match`` / ``top_k(k' <= k)`` query bit-identically to the dense matrix,
* :mod:`repro.serve.service` — a thread-safe :class:`AlignmentService`
  hosting many artifacts at once, with batched query APIs, an LRU query
  cache and hit/miss/latency counters.

The CLI exposes the stack as ``export-artifact`` / ``query`` /
``serve-stats``, and ``run-suite --emit-artifacts`` makes every suite job
publish its alignment as an artifact.
"""

from repro.serve.artifacts import (
    ArtifactIntegrityError,
    ArtifactNotFoundError,
    ArtifactSchemaError,
    SCHEMA_VERSION,
    export_result,
    list_artifacts,
    load_artifact,
    save_artifact,
    save_index_artifact,
)
from repro.serve.catalog import ArtifactCatalog
from repro.serve.index import (
    SparseTopKIndex,
    StreamedIndexAssembler,
    build_index,
    build_index_from_embeddings,
)
from repro.serve.service import AlignmentService, check_runtime_schema

__all__ = [
    "SCHEMA_VERSION",
    "ArtifactCatalog",
    "check_runtime_schema",
    "ArtifactIntegrityError",
    "ArtifactNotFoundError",
    "ArtifactSchemaError",
    "save_artifact",
    "save_index_artifact",
    "export_result",
    "load_artifact",
    "list_artifacts",
    "SparseTopKIndex",
    "StreamedIndexAssembler",
    "build_index",
    "build_index_from_embeddings",
    "AlignmentService",
]
