"""Thread-safe, multi-artifact alignment query service.

:class:`AlignmentService` hosts any number of loaded artifacts (keyed by
artifact id) and answers batched ``match`` / ``top_k`` / ``reverse_match``
queries from their sparse indexes — ``O(k)`` per query, no dense matrix in
memory.  A bounded LRU cache short-circuits repeated single-node lookups
(real query traffic is heavily skewed towards hub nodes), and hit/miss/
latency counters expose the service's health.

All public methods are safe to call from many threads: mutable state (the
registry, cache and counters) is guarded by one lock, while the index
arrays themselves are immutable and read without locking.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.serve.artifacts import Artifact, load_artifact
from repro.serve.index import SparseTopKIndex

#: Default maximum number of cached (artifact, op, node, k) entries.
DEFAULT_CACHE_SIZE = 4096


class AlignmentService:
    """Serves matching queries for one or more persisted alignments.

    Parameters
    ----------
    cache_size:
        Maximum number of cached query results (``0`` disables caching).

    Examples
    --------
    >>> service = AlignmentService()
    >>> aid = service.load("artifacts", "douban-ab12cd34ef56")  # doctest: +SKIP
    >>> service.match(aid, [0, 1, 2])                           # doctest: +SKIP
    array([17, 4, 9])
    """

    def __init__(self, cache_size: int = DEFAULT_CACHE_SIZE) -> None:
        if cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {cache_size}")
        self._indexes: Dict[str, SparseTopKIndex] = {}
        self._artifacts: Dict[str, Artifact] = {}
        #: Bumped whenever an artifact id is (re)bound; lets in-flight
        #: queries detect that their index snapshot went stale before they
        #: write answers into the cache.
        self._generations: Dict[str, int] = {}
        self._cache: "OrderedDict[Tuple, object]" = OrderedDict()
        self._cache_size = cache_size
        self._lock = threading.RLock()
        self._counters: Dict[str, float] = {
            "queries": 0,
            "batches": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "total_latency_s": 0.0,
        }
        self._op_counts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # artifact hosting
    # ------------------------------------------------------------------
    def load(
        self,
        root: Union[str, Path],
        artifact_id: str,
        *,
        mode: str = "serve",
        verify: bool = True,
    ) -> str:
        """Load an artifact from a store and host it; returns its id."""
        artifact = load_artifact(root, artifact_id, mode=mode, verify=verify)
        return self.add(artifact)

    def add(self, artifact: Artifact) -> str:
        """Host an already-loaded artifact (replaces a same-id artifact)."""
        with self._lock:
            self._artifacts[artifact.artifact_id] = artifact
            self._indexes[artifact.artifact_id] = artifact.index
            self._bump_generation(artifact.artifact_id)
        return artifact.artifact_id

    def add_index(self, artifact_id: str, index: SparseTopKIndex) -> str:
        """Host a bare index under ``artifact_id`` (no manifest attached)."""
        with self._lock:
            self._artifacts.pop(artifact_id, None)
            self._indexes[artifact_id] = index
            self._bump_generation(artifact_id)
        return artifact_id

    def unload(self, artifact_id: str) -> None:
        """Drop an artifact and its cached queries."""
        with self._lock:
            self._indexes.pop(artifact_id, None)
            self._artifacts.pop(artifact_id, None)
            self._bump_generation(artifact_id)

    def _bump_generation(self, artifact_id: str) -> None:
        """Invalidate cached and in-flight answers (lock must be held)."""
        self._generations[artifact_id] = self._generations.get(artifact_id, 0) + 1
        self._evict_artifact_cache(artifact_id)

    def artifact_ids(self) -> List[str]:
        """Ids currently hosted, sorted."""
        with self._lock:
            return sorted(self._indexes)

    def describe(self, artifact_id: str) -> Dict[str, object]:
        """Shape/index/manifest summary of one hosted artifact."""
        with self._lock:
            index = self._get_index(artifact_id)
            artifact = self._artifacts.get(artifact_id)
        info: Dict[str, object] = {
            "artifact_id": artifact_id,
            "shape": [int(index.shape[0]), int(index.shape[1])],
            "index_k": int(index.k),
            "reverse_k": int(index.reverse_k),
            "index_bytes": index.nbytes,
            "dense_bytes": index.dense_nbytes,
            "compression_ratio": round(index.compression_ratio, 2),
        }
        if artifact is not None:
            info["metadata"] = dict(artifact.metadata)
            info["name"] = artifact.manifest.get("name")
        return info

    def _get_index(self, artifact_id: str) -> SparseTopKIndex:
        try:
            return self._indexes[artifact_id]
        except KeyError:
            raise KeyError(
                f"artifact {artifact_id!r} is not hosted; "
                f"loaded: {sorted(self._indexes)}"
            ) from None

    def _evict_artifact_cache(self, artifact_id: str) -> None:
        """Drop cached entries of one artifact (lock must be held)."""
        stale = [key for key in self._cache if key[0] == artifact_id]
        for key in stale:
            del self._cache[key]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def match(self, artifact_id: str, source_nodes) -> np.ndarray:
        """Best target per source node (batched argmax)."""
        return self._query(artifact_id, "match", source_nodes, None)

    def top_k(self, artifact_id: str, source_nodes, k: int) -> np.ndarray:
        """Top-``k`` targets per source node, best first."""
        return self._query(artifact_id, "top_k", source_nodes, int(k))

    def reverse_match(self, artifact_id: str, target_nodes) -> np.ndarray:
        """Best source per target node (argmax over columns)."""
        return self._query(artifact_id, "reverse_match", target_nodes, None)

    def reverse_top_k(self, artifact_id: str, target_nodes, k: int) -> np.ndarray:
        """Top-``k`` sources per target node, best first."""
        return self._query(artifact_id, "reverse_top_k", target_nodes, int(k))

    def _run_op(
        self, index: SparseTopKIndex, op: str, nodes: np.ndarray, k: Optional[int]
    ) -> np.ndarray:
        if op == "match":
            return index.match(nodes)
        if op == "top_k":
            return index.top_k(nodes, k)
        if op == "reverse_match":
            return index.reverse_match(nodes)
        if op == "reverse_top_k":
            return index.reverse_top_k(nodes, k)
        raise ValueError(f"unknown op {op!r}")  # pragma: no cover

    def _query(
        self, artifact_id: str, op: str, nodes, k: Optional[int]
    ) -> np.ndarray:
        started = time.perf_counter()
        with self._lock:
            index = self._get_index(artifact_id)
            generation = self._generations.get(artifact_id, 0)
        node_array = np.atleast_1d(np.asarray(nodes, dtype=np.intp))

        if self._cache_size == 0 or node_array.size == 0:
            answers = self._run_op(index, op, node_array, k)
            self._note(op, node_array.size, hits=0, started=started)
            return answers

        # Per-node cache probe; misses are answered in one vectorized call.
        keys = [(artifact_id, op, int(node), k) for node in node_array]
        cached: Dict[int, object] = {}
        with self._lock:
            for position, key in enumerate(keys):
                if key in self._cache:
                    self._cache.move_to_end(key)
                    cached[position] = self._cache[key]
        miss_positions = [p for p in range(node_array.size) if p not in cached]
        if miss_positions:
            miss_answers = self._run_op(
                index, op, node_array[miss_positions], k
            )
            with self._lock:
                # Answers computed from a replaced/unloaded index must not
                # poison the cache of its successor.
                insert = self._generations.get(artifact_id, 0) == generation
                for row, position in enumerate(miss_positions):
                    # Copy row slices so cache entries do not pin the whole
                    # batch answer array.
                    value = np.array(miss_answers[row], copy=True)
                    value.setflags(write=False)
                    if insert:
                        self._cache[keys[position]] = value
                        self._cache.move_to_end(keys[position])
                    cached[position] = value
                while len(self._cache) > self._cache_size:
                    self._cache.popitem(last=False)
        answers = np.stack([np.asarray(cached[p]) for p in range(node_array.size)])
        if op in ("match", "reverse_match"):
            answers = answers.reshape(node_array.size)
        self._note(op, node_array.size, hits=len(keys) - len(miss_positions),
                   started=started)
        return answers

    def _note(self, op: str, n_nodes: int, hits: int, started: float) -> None:
        elapsed = time.perf_counter() - started
        with self._lock:
            self._counters["queries"] += n_nodes
            self._counters["batches"] += 1
            self._counters["cache_hits"] += hits
            self._counters["cache_misses"] += n_nodes - hits
            self._counters["total_latency_s"] += elapsed
            self._op_counts[op] = self._op_counts.get(op, 0) + n_nodes

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Counters snapshot: queries, hit rate, latency, hosted artifacts."""
        with self._lock:
            counters = dict(self._counters)
            op_counts = dict(self._op_counts)
            hosted = sorted(self._indexes)
            cache_entries = len(self._cache)
        queries = counters["queries"]
        batches = counters["batches"]
        return {
            "artifacts": hosted,
            "queries": int(queries),
            "batches": int(batches),
            "cache_entries": cache_entries,
            "cache_hits": int(counters["cache_hits"]),
            "cache_misses": int(counters["cache_misses"]),
            "hit_rate": (counters["cache_hits"] / queries) if queries else 0.0,
            "total_latency_s": counters["total_latency_s"],
            "avg_batch_latency_ms": (
                1000.0 * counters["total_latency_s"] / batches if batches else 0.0
            ),
            "queries_per_second": (
                queries / counters["total_latency_s"]
                if counters["total_latency_s"] > 0
                else 0.0
            ),
            "per_op": op_counts,
        }

    def reset_stats(self) -> None:
        """Zero the counters (hosted artifacts and cache are kept)."""
        with self._lock:
            for key in self._counters:
                self._counters[key] = 0 if key != "total_latency_s" else 0.0
            self._op_counts.clear()

    def __repr__(self) -> str:
        with self._lock:
            hosted = len(self._indexes)
        return f"AlignmentService(artifacts={hosted}, cache_size={self._cache_size})"


__all__ = ["AlignmentService", "DEFAULT_CACHE_SIZE"]
