"""Thread-safe, multi-artifact alignment query service.

:class:`AlignmentService` hosts any number of loaded artifacts (keyed by
artifact id) and answers batched ``match`` / ``top_k`` / ``reverse_match``
queries from their sparse indexes — ``O(k)`` per query, no dense matrix in
memory.  A bounded LRU cache short-circuits repeated single-node lookups
(real query traffic is heavily skewed towards hub nodes), and hit/miss/
latency counters expose the service's health.

Every query — the in-process convenience methods, the CLI ``query`` command
and the HTTP endpoints (:mod:`repro.api`) — routes through one shared entry
point, :meth:`AlignmentService.query`, which takes a typed
:class:`~repro.api.models.QueryRequest` and returns a versioned
:class:`~repro.api.models.QueryResponse`.  One validation path, one stats
path: the legacy per-op methods are thin wrappers that unwrap the response
array, so their answers are bit-identical to what an HTTP client receives.

All public methods are safe to call from many threads: mutable state (the
registry and cache) is guarded by one lock, the index arrays themselves are
immutable and read without locking, and the stats live in a per-service
:class:`~repro.obs.metrics.MetricsRegistry` whose metrics carry their own
locks — recording a query never serializes against query execution.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.api.models import (
    API_SCHEMA_VERSION,
    ENGINE_VERSION,
    QUERY_OPS,
    TOP_K_OPS,
    QueryRequest,
    QueryResponse,
    make_query_request,
    make_query_response,
    parse_query_request,
)
from repro.serve.artifacts import (
    SCHEMA_VERSION,
    Artifact,
    ArtifactNotFoundError,
    ArtifactSchemaError,
    load_artifact,
)
from repro.obs.metrics import MetricsRegistry
from repro.serve.index import SparseTopKIndex

#: Default maximum number of cached (artifact, op, node, k) entries.
DEFAULT_CACHE_SIZE = 4096

#: Stage labels of the per-op ``serve_stage_seconds`` histograms.
QUERY_STAGES = ("cache_probe", "index_lookup", "assemble")


class _OpMetrics:
    """The metric handles of one op, resolved once and then lock-free."""

    __slots__ = ("queries", "batches", "batch_seconds", "stage_seconds")

    def __init__(self, registry: MetricsRegistry, op: str) -> None:
        self.queries = registry.counter("serve_queries_total", op=op)
        self.batches = registry.counter("serve_batches_total", op=op)
        self.batch_seconds = registry.histogram("serve_batch_seconds", op=op)
        self.stage_seconds = {
            stage: registry.histogram("serve_stage_seconds", op=op, stage=stage)
            for stage in QUERY_STAGES
        }


def check_runtime_schema(manifest: Mapping) -> None:
    """Runtime-mode guard: refuse artifacts this engine cannot serve.

    Raises :class:`~repro.serve.artifacts.ArtifactSchemaError` naming both
    the artifact's manifest schema version and the engine's supported one,
    so a mixed-version fleet fails loudly at load time instead of serving
    silently wrong payloads.
    """
    version = manifest.get("schema_version")
    if not isinstance(version, (list, tuple)) or not version:
        raise ArtifactSchemaError(
            f"artifact {manifest.get('artifact_id', '?')!r} has a malformed "
            f"manifest schema_version ({version!r}); this engine "
            f"(repro {ENGINE_VERSION}) serves schema {SCHEMA_VERSION}"
        )
    if int(version[0]) > SCHEMA_VERSION[0]:
        raise ArtifactSchemaError(
            f"artifact {manifest.get('artifact_id', '?')!r} was written by "
            f"manifest schema {list(version)}, which this engine "
            f"(repro {ENGINE_VERSION}, supports schema <= {SCHEMA_VERSION}) "
            "cannot serve; upgrade repro or re-export the artifact"
        )


class AlignmentService:
    """Serves matching queries for one or more persisted alignments.

    Parameters
    ----------
    cache_size:
        Maximum number of cached query results (``0`` disables caching).
    cache_budgets:
        Optional per-artifact-id entry caps layered under ``cache_size``:
        an artifact with a budget can never hold more than that many cache
        entries, so one hot artifact cannot evict every neighbour out of
        the shared LRU.  Budget (and capacity) evictions are counted in
        the ``service_cache_evictions_total{artifact=...}`` metric series.

    Examples
    --------
    >>> service = AlignmentService()
    >>> aid = service.load("artifacts", "douban-ab12cd34ef56")  # doctest: +SKIP
    >>> service.match(aid, [0, 1, 2])                           # doctest: +SKIP
    array([17, 4, 9])
    """

    def __init__(
        self,
        cache_size: int = DEFAULT_CACHE_SIZE,
        cache_budgets: Optional[Mapping[str, int]] = None,
    ) -> None:
        if cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {cache_size}")
        self._indexes: Dict[str, SparseTopKIndex] = {}
        self._artifacts: Dict[str, Artifact] = {}
        #: str(index.score_dtype) per artifact — numpy dtype stringification
        #: is measurable on the per-call hot path, so it happens once here.
        self._score_dtypes: Dict[str, str] = {}
        #: Orbit-backend provenance per artifact, read from the manifest
        #: metadata at hosting time ("unknown" for bare indexes and
        #: artifacts exported before the tag existed).
        self._orbit_backends: Dict[str, str] = {}
        #: Bumped whenever an artifact id is (re)bound; lets in-flight
        #: queries detect that their index snapshot went stale before they
        #: write answers into the cache.
        self._generations: Dict[str, int] = {}
        self._cache: "OrderedDict[Tuple, object]" = OrderedDict()
        self._cache_size = cache_size
        #: Per-artifact entry caps and the live per-artifact entry counts
        #: (kept incrementally — the cache can hold thousands of entries).
        self._cache_budgets: Dict[str, int] = {}
        self._cache_counts: Dict[str, int] = {}
        self._eviction_counts: Dict[str, int] = {}
        self._lock = threading.RLock()
        #: Per-service metrics.  Every metric carries its own lock, so the
        #: service-wide ``_lock`` (which also guards index access) is never
        #: taken to record stats; ``_stats_lock`` only guards creation of
        #: the cached per-op handle bundles.
        self.metrics = MetricsRegistry("serve")
        self._stats_lock = threading.Lock()
        self._op_metrics: Dict[str, _OpMetrics] = {}
        self._m_cache_hits = self.metrics.counter("serve_cache_hits_total")
        self._m_cache_misses = self.metrics.counter("serve_cache_misses_total")
        for artifact_id, budget in (cache_budgets or {}).items():
            self.set_cache_budget(artifact_id, budget)

    # ------------------------------------------------------------------
    # artifact hosting
    # ------------------------------------------------------------------
    def load(
        self,
        root: Union[str, Path],
        artifact_id: str,
        *,
        mode: str = "serve",
        verify: bool = True,
    ) -> str:
        """Load an artifact from a store and host it; returns its id."""
        artifact = load_artifact(root, artifact_id, mode=mode, verify=verify)
        return self.add(artifact)

    def load_matching(
        self,
        root: Union[str, Path],
        *,
        mode: str = "serve",
        verify: bool = True,
        **filters,
    ) -> str:
        """Load the newest artifact matching a catalog query.

        Resolves through the SQLite catalog (``<root>/catalog.sqlite``, see
        :mod:`repro.serve.catalog`) instead of a directory walk: ``filters``
        are the catalog's equality filters (``dataset=``, ``method=``,
        ``dtype=``, ``name=``, ``content_hash=``, ``config_hash=``,
        ``kind=``).  Raises
        :class:`~repro.serve.artifacts.ArtifactNotFoundError` when nothing
        matches.
        """
        from repro.serve.catalog import ArtifactCatalog

        record = ArtifactCatalog.for_store(root).latest(**filters)
        if record is None:
            described = {k: v for k, v in filters.items() if v is not None}
            raise ArtifactNotFoundError(
                f"no catalogued artifact under {root} matches {described}; "
                "run `repro.cli catalog-sync` if the store predates the catalog"
            )
        return self.load(
            root, str(record["artifact_id"]), mode=mode, verify=verify
        )

    def add(self, artifact: Artifact) -> str:
        """Host an already-loaded artifact (replaces a same-id artifact).

        The runtime-mode guard runs here (the choke point of every hosting
        path): an artifact whose manifest schema this engine does not
        support is refused with an error naming both versions.
        """
        check_runtime_schema(artifact.manifest)
        with self._lock:
            self._artifacts[artifact.artifact_id] = artifact
            self._indexes[artifact.artifact_id] = artifact.index
            self._score_dtypes[artifact.artifact_id] = str(
                artifact.index.score_dtype
            )
            self._orbit_backends[artifact.artifact_id] = str(
                artifact.metadata.get("orbit_backend", "unknown")
            )
            self._bump_generation(artifact.artifact_id)
        return artifact.artifact_id

    def add_index(self, artifact_id: str, index: SparseTopKIndex) -> str:
        """Host a bare index under ``artifact_id`` (no manifest attached)."""
        with self._lock:
            self._artifacts.pop(artifact_id, None)
            self._indexes[artifact_id] = index
            self._score_dtypes[artifact_id] = str(index.score_dtype)
            self._orbit_backends[artifact_id] = "unknown"
            self._bump_generation(artifact_id)
        return artifact_id

    def unload(self, artifact_id: str) -> None:
        """Drop an artifact and its cached queries."""
        with self._lock:
            self._indexes.pop(artifact_id, None)
            self._artifacts.pop(artifact_id, None)
            self._score_dtypes.pop(artifact_id, None)
            self._orbit_backends.pop(artifact_id, None)
            self._bump_generation(artifact_id)

    def _bump_generation(self, artifact_id: str) -> None:
        """Invalidate cached and in-flight answers (lock must be held)."""
        self._generations[artifact_id] = self._generations.get(artifact_id, 0) + 1
        self._evict_artifact_cache(artifact_id)

    def artifact_ids(self) -> List[str]:
        """Ids currently hosted, sorted."""
        with self._lock:
            return sorted(self._indexes)

    def describe(self, artifact_id: str) -> Dict[str, object]:
        """Shape/index/manifest summary of one hosted artifact."""
        with self._lock:
            index = self._get_index(artifact_id)
            artifact = self._artifacts.get(artifact_id)
        info: Dict[str, object] = {
            "artifact_id": artifact_id,
            "schema_version": API_SCHEMA_VERSION,
            "engine_version": ENGINE_VERSION,
            "score_dtype": str(index.score_dtype),
            "shape": [int(index.shape[0]), int(index.shape[1])],
            "index_k": int(index.k),
            "reverse_k": int(index.reverse_k),
            "index_bytes": index.nbytes,
            "dense_bytes": index.dense_nbytes,
            "compression_ratio": round(index.compression_ratio, 2),
            "orbit_backend": self._orbit_backends.get(artifact_id, "unknown"),
        }
        if artifact is not None:
            info["metadata"] = dict(artifact.metadata)
            info["name"] = artifact.manifest.get("name")
            info["artifact_schema_version"] = artifact.manifest.get(
                "schema_version"
            )
        return info

    def _get_index(self, artifact_id: str) -> SparseTopKIndex:
        try:
            return self._indexes[artifact_id]
        except KeyError:
            raise KeyError(
                f"artifact {artifact_id!r} is not hosted; "
                f"loaded: {sorted(self._indexes)}"
            ) from None

    def _evict_artifact_cache(self, artifact_id: str) -> None:
        """Drop cached entries of one artifact (lock must be held).

        Invalidation, not pressure: these drops do not count towards the
        ``service_cache_evictions_total`` series.
        """
        stale = [key for key in self._cache if key[0] == artifact_id]
        for key in stale:
            del self._cache[key]
        self._cache_counts.pop(artifact_id, None)

    # ------------------------------------------------------------------
    # per-artifact cache budgets
    # ------------------------------------------------------------------
    def set_cache_budget(self, artifact_id: str, budget: Optional[int]) -> None:
        """Cap one artifact's share of the query cache to ``budget`` entries.

        ``None`` removes the cap.  A budget below the artifact's current
        entry count trims it immediately (oldest entries first, counted as
        evictions).  Budgets survive artifact reload — they key on the id,
        not the hosted object.
        """
        with self._lock:
            if budget is None:
                self._cache_budgets.pop(artifact_id, None)
                return
            budget = int(budget)
            if budget < 0:
                raise ValueError(f"cache_budget must be >= 0, got {budget}")
            self._cache_budgets[artifact_id] = budget
            self._enforce_budget(artifact_id)

    def cache_budgets(self) -> Dict[str, int]:
        """The per-artifact entry caps currently in force."""
        with self._lock:
            return dict(self._cache_budgets)

    def _count_eviction(self, artifact_id: str) -> None:
        """Tally one capacity/budget eviction (lock must be held)."""
        count = self._cache_counts.get(artifact_id, 0)
        if count > 1:
            self._cache_counts[artifact_id] = count - 1
        else:
            self._cache_counts.pop(artifact_id, None)
        self._eviction_counts[artifact_id] = (
            self._eviction_counts.get(artifact_id, 0) + 1
        )
        self.metrics.counter(
            "service_cache_evictions_total", artifact=artifact_id
        ).inc()

    def _enforce_budget(self, artifact_id: str) -> None:
        """Evict this artifact's oldest entries down to its budget
        (lock must be held)."""
        budget = self._cache_budgets.get(artifact_id)
        if budget is None:
            return
        excess = self._cache_counts.get(artifact_id, 0) - budget
        if excess <= 0:
            return
        stale = []
        for key in self._cache:  # OrderedDict: oldest first
            if key[0] == artifact_id:
                stale.append(key)
                if len(stale) == excess:
                    break
        for key in stale:
            del self._cache[key]
            self._count_eviction(artifact_id)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(
        self, request: Union[QueryRequest, Mapping]
    ) -> QueryResponse:
        """Answer one typed request — the single shared query entry point.

        Accepts a :class:`~repro.api.models.QueryRequest` (trusted,
        in-process construction) or a raw mapping, which is put through the
        same wire validator the HTTP layer uses
        (:func:`~repro.api.models.parse_query_request`).  Semantic failures
        keep their long-standing exception types so existing callers are
        unchanged: unknown artifact → ``KeyError``, node ids out of range →
        ``IndexError``, bad ``op``/``k`` → ``ValueError``.  The response's
        ``results`` stays an ndarray (bit-identical to the wrapper methods);
        :func:`~repro.api.models.response_payload` renders the wire dict.
        """
        if isinstance(request, Mapping):
            request = parse_query_request(request)
        op = request.op
        if op not in QUERY_OPS:
            raise ValueError(f"unknown op {op!r}; expected one of {QUERY_OPS}")
        k: Optional[int] = None
        if op in TOP_K_OPS:
            if request.k is None:
                raise ValueError(f"op {op!r} requires k")
            k = int(request.k)
        answers = self._query(request.artifact_id, op, request.nodes, k)
        # _query just resolved the index; a plain dict read (GIL-atomic) is
        # enough for the dtype tag even if a concurrent unload races us.
        score_dtype = self._score_dtypes.get(request.artifact_id, "unknown")
        orbit_backend = self._orbit_backends.get(request.artifact_id, "unknown")
        return make_query_response(request, answers, score_dtype, orbit_backend)

    def match(self, artifact_id: str, source_nodes) -> np.ndarray:
        """Best target per source node (batched argmax)."""
        return self.query(
            make_query_request(artifact_id, "match", source_nodes)
        ).results

    def top_k(self, artifact_id: str, source_nodes, k: int) -> np.ndarray:
        """Top-``k`` targets per source node, best first."""
        return self.query(
            make_query_request(artifact_id, "top_k", source_nodes, int(k))
        ).results

    def reverse_match(self, artifact_id: str, target_nodes) -> np.ndarray:
        """Best source per target node (argmax over columns)."""
        return self.query(
            make_query_request(artifact_id, "reverse_match", target_nodes)
        ).results

    def reverse_top_k(self, artifact_id: str, target_nodes, k: int) -> np.ndarray:
        """Top-``k`` sources per target node, best first."""
        return self.query(
            make_query_request(artifact_id, "reverse_top_k", target_nodes, int(k))
        ).results

    def _run_op(
        self, index: SparseTopKIndex, op: str, nodes: np.ndarray, k: Optional[int]
    ) -> np.ndarray:
        if op == "match":
            return index.match(nodes)
        if op == "top_k":
            return index.top_k(nodes, k)
        if op == "reverse_match":
            return index.reverse_match(nodes)
        if op == "reverse_top_k":
            return index.reverse_top_k(nodes, k)
        raise ValueError(f"unknown op {op!r}")  # pragma: no cover

    def _query(
        self, artifact_id: str, op: str, nodes, k: Optional[int]
    ) -> np.ndarray:
        started = time.perf_counter()
        with self._lock:
            index = self._get_index(artifact_id)
            generation = self._generations.get(artifact_id, 0)
        node_array = np.atleast_1d(np.asarray(nodes, dtype=np.intp))

        if self._cache_size == 0 or node_array.size == 0:
            lookup_started = time.perf_counter()
            answers = self._run_op(index, op, node_array, k)
            lookup_s = time.perf_counter() - lookup_started
            self._note(op, node_array.size, hits=0, started=started,
                       stages=(("index_lookup", lookup_s),))
            return answers

        # Per-node cache probe; misses are answered in one vectorized call.
        probe_started = time.perf_counter()
        keys = [(artifact_id, op, int(node), k) for node in node_array]
        cached: Dict[int, object] = {}
        with self._lock:
            for position, key in enumerate(keys):
                if key in self._cache:
                    self._cache.move_to_end(key)
                    cached[position] = self._cache[key]
        miss_positions = [p for p in range(node_array.size) if p not in cached]
        lookup_started = time.perf_counter()
        probe_s = lookup_started - probe_started
        if miss_positions:
            miss_answers = self._run_op(
                index, op, node_array[miss_positions], k
            )
            with self._lock:
                # Answers computed from a replaced/unloaded index must not
                # poison the cache of its successor.
                insert = self._generations.get(artifact_id, 0) == generation
                for row, position in enumerate(miss_positions):
                    # Copy row slices so cache entries do not pin the whole
                    # batch answer array.
                    value = np.array(miss_answers[row], copy=True)
                    value.setflags(write=False)
                    if insert:
                        if keys[position] not in self._cache:
                            self._cache_counts[artifact_id] = (
                                self._cache_counts.get(artifact_id, 0) + 1
                            )
                        self._cache[keys[position]] = value
                        self._cache.move_to_end(keys[position])
                    cached[position] = value
                if insert:
                    self._enforce_budget(artifact_id)
                while len(self._cache) > self._cache_size:
                    evicted_key, _ = self._cache.popitem(last=False)
                    self._count_eviction(str(evicted_key[0]))
        assemble_started = time.perf_counter()
        lookup_s = assemble_started - lookup_started
        answers = np.stack([np.asarray(cached[p]) for p in range(node_array.size)])
        if op in ("match", "reverse_match"):
            answers = answers.reshape(node_array.size)
        assemble_s = time.perf_counter() - assemble_started
        self._note(op, node_array.size, hits=len(keys) - len(miss_positions),
                   started=started,
                   stages=(("cache_probe", probe_s),
                           ("index_lookup", lookup_s),
                           ("assemble", assemble_s)))
        return answers

    def _op_handles(self, op: str) -> _OpMetrics:
        handles = self._op_metrics.get(op)  # GIL-atomic read, no lock
        if handles is None:
            with self._stats_lock:
                handles = self._op_metrics.get(op)
                if handles is None:
                    handles = _OpMetrics(self.metrics, op)
                    self._op_metrics[op] = handles
        return handles

    def _note(
        self,
        op: str,
        n_nodes: int,
        hits: int,
        started: float,
        stages: Sequence[Tuple[str, float]] = (),
    ) -> None:
        """Record one answered batch.  Never takes the service-wide lock."""
        elapsed = time.perf_counter() - started
        handles = self._op_handles(op)
        handles.queries.inc(n_nodes)
        handles.batches.inc()
        handles.batch_seconds.observe(elapsed)
        if hits:
            self._m_cache_hits.inc(hits)
        if n_nodes > hits:
            self._m_cache_misses.inc(n_nodes - hits)
        for stage, seconds in stages:
            handles.stage_seconds[stage].observe(seconds)

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Counters snapshot: queries, hit rate, latency, hosted artifacts.

        The flat legacy keys (``queries``, ``total_latency_s``, ``per_op``,
        ...) are derived from the per-op metric series, and the schema-1.1
        ``latency`` key adds per-op batch and per-stage histogram summaries
        (count/sum/min/max and p50/p95/p99 upper bounds).
        """
        with self._lock:
            hosted = sorted(self._indexes)
            cache_entries = len(self._cache)
            cache_budgets = dict(self._cache_budgets)
            cache_evictions = dict(self._eviction_counts)
            orbit_backends = {
                artifact_id: self._orbit_backends.get(artifact_id, "unknown")
                for artifact_id in hosted
            }
        with self._stats_lock:
            op_handles = dict(self._op_metrics)
        queries = 0
        batches = 0
        total_latency = 0.0
        per_op: Dict[str, int] = {}
        latency: Dict[str, object] = {}
        for op in sorted(op_handles):
            handles = op_handles[op]
            op_queries = int(handles.queries.value)
            if op_queries == 0 and handles.batches.value == 0:
                continue  # reset since last use; hide the zeroed series
            queries += op_queries
            batches += int(handles.batches.value)
            total_latency += handles.batch_seconds.sum
            per_op[op] = op_queries
            latency[op] = {
                "batch": handles.batch_seconds.summary(),
                "stages": {
                    stage: histogram.summary()
                    for stage, histogram in sorted(
                        handles.stage_seconds.items()
                    )
                    if histogram.count
                },
            }
        cache_hits = int(self._m_cache_hits.value)
        cache_misses = int(self._m_cache_misses.value)
        return {
            "schema_version": API_SCHEMA_VERSION,
            "engine_version": ENGINE_VERSION,
            "artifacts": hosted,
            "orbit_backend": orbit_backends,
            "queries": queries,
            "batches": batches,
            "cache_entries": cache_entries,
            "cache_budgets": cache_budgets,
            "cache_evictions": cache_evictions,
            "cache_hits": cache_hits,
            "cache_misses": cache_misses,
            "hit_rate": (cache_hits / queries) if queries else 0.0,
            "total_latency_s": total_latency,
            "avg_batch_latency_ms": (
                1000.0 * total_latency / batches if batches else 0.0
            ),
            "queries_per_second": (
                queries / total_latency if total_latency > 0 else 0.0
            ),
            "per_op": per_op,
            "latency": latency,
        }

    def reset_stats(self) -> None:
        """Zero every stats series — counters, histograms and recorded
        spans alike (hosted artifacts and the query cache are kept)."""
        self.metrics.reset()

    def __repr__(self) -> str:
        with self._lock:
            hosted = len(self._indexes)
        return f"AlignmentService(artifacts={hosted}, cache_size={self._cache_size})"


__all__ = [
    "AlignmentService",
    "DEFAULT_CACHE_SIZE",
    "QUERY_STAGES",
    "check_runtime_schema",
]
