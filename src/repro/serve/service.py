"""Thread-safe, multi-artifact alignment query service.

:class:`AlignmentService` hosts any number of loaded artifacts (keyed by
artifact id) and answers batched ``match`` / ``top_k`` / ``reverse_match``
queries from their sparse indexes — ``O(k)`` per query, no dense matrix in
memory.  A bounded LRU cache short-circuits repeated single-node lookups
(real query traffic is heavily skewed towards hub nodes), and hit/miss/
latency counters expose the service's health.

Every query — the in-process convenience methods, the CLI ``query`` command
and the HTTP endpoints (:mod:`repro.api`) — routes through one shared entry
point, :meth:`AlignmentService.query`, which takes a typed
:class:`~repro.api.models.QueryRequest` and returns a versioned
:class:`~repro.api.models.QueryResponse`.  One validation path, one stats
path: the legacy per-op methods are thin wrappers that unwrap the response
array, so their answers are bit-identical to what an HTTP client receives.

All public methods are safe to call from many threads: mutable state (the
registry, cache and counters) is guarded by one lock, while the index
arrays themselves are immutable and read without locking.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.api.models import (
    API_SCHEMA_VERSION,
    ENGINE_VERSION,
    QUERY_OPS,
    TOP_K_OPS,
    QueryRequest,
    QueryResponse,
    make_query_request,
    make_query_response,
    parse_query_request,
)
from repro.serve.artifacts import (
    SCHEMA_VERSION,
    Artifact,
    ArtifactNotFoundError,
    ArtifactSchemaError,
    load_artifact,
)
from repro.serve.index import SparseTopKIndex

#: Default maximum number of cached (artifact, op, node, k) entries.
DEFAULT_CACHE_SIZE = 4096


def check_runtime_schema(manifest: Mapping) -> None:
    """Runtime-mode guard: refuse artifacts this engine cannot serve.

    Raises :class:`~repro.serve.artifacts.ArtifactSchemaError` naming both
    the artifact's manifest schema version and the engine's supported one,
    so a mixed-version fleet fails loudly at load time instead of serving
    silently wrong payloads.
    """
    version = manifest.get("schema_version")
    if not isinstance(version, (list, tuple)) or not version:
        raise ArtifactSchemaError(
            f"artifact {manifest.get('artifact_id', '?')!r} has a malformed "
            f"manifest schema_version ({version!r}); this engine "
            f"(repro {ENGINE_VERSION}) serves schema {SCHEMA_VERSION}"
        )
    if int(version[0]) > SCHEMA_VERSION[0]:
        raise ArtifactSchemaError(
            f"artifact {manifest.get('artifact_id', '?')!r} was written by "
            f"manifest schema {list(version)}, which this engine "
            f"(repro {ENGINE_VERSION}, supports schema <= {SCHEMA_VERSION}) "
            "cannot serve; upgrade repro or re-export the artifact"
        )


class AlignmentService:
    """Serves matching queries for one or more persisted alignments.

    Parameters
    ----------
    cache_size:
        Maximum number of cached query results (``0`` disables caching).

    Examples
    --------
    >>> service = AlignmentService()
    >>> aid = service.load("artifacts", "douban-ab12cd34ef56")  # doctest: +SKIP
    >>> service.match(aid, [0, 1, 2])                           # doctest: +SKIP
    array([17, 4, 9])
    """

    def __init__(self, cache_size: int = DEFAULT_CACHE_SIZE) -> None:
        if cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {cache_size}")
        self._indexes: Dict[str, SparseTopKIndex] = {}
        self._artifacts: Dict[str, Artifact] = {}
        #: str(index.score_dtype) per artifact — numpy dtype stringification
        #: is measurable on the per-call hot path, so it happens once here.
        self._score_dtypes: Dict[str, str] = {}
        #: Bumped whenever an artifact id is (re)bound; lets in-flight
        #: queries detect that their index snapshot went stale before they
        #: write answers into the cache.
        self._generations: Dict[str, int] = {}
        self._cache: "OrderedDict[Tuple, object]" = OrderedDict()
        self._cache_size = cache_size
        self._lock = threading.RLock()
        self._counters: Dict[str, float] = {
            "queries": 0,
            "batches": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "total_latency_s": 0.0,
        }
        self._op_counts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # artifact hosting
    # ------------------------------------------------------------------
    def load(
        self,
        root: Union[str, Path],
        artifact_id: str,
        *,
        mode: str = "serve",
        verify: bool = True,
    ) -> str:
        """Load an artifact from a store and host it; returns its id."""
        artifact = load_artifact(root, artifact_id, mode=mode, verify=verify)
        return self.add(artifact)

    def load_matching(
        self,
        root: Union[str, Path],
        *,
        mode: str = "serve",
        verify: bool = True,
        **filters,
    ) -> str:
        """Load the newest artifact matching a catalog query.

        Resolves through the SQLite catalog (``<root>/catalog.sqlite``, see
        :mod:`repro.serve.catalog`) instead of a directory walk: ``filters``
        are the catalog's equality filters (``dataset=``, ``method=``,
        ``dtype=``, ``name=``, ``content_hash=``, ``config_hash=``,
        ``kind=``).  Raises
        :class:`~repro.serve.artifacts.ArtifactNotFoundError` when nothing
        matches.
        """
        from repro.serve.catalog import ArtifactCatalog

        record = ArtifactCatalog.for_store(root).latest(**filters)
        if record is None:
            described = {k: v for k, v in filters.items() if v is not None}
            raise ArtifactNotFoundError(
                f"no catalogued artifact under {root} matches {described}; "
                "run `repro.cli catalog-sync` if the store predates the catalog"
            )
        return self.load(
            root, str(record["artifact_id"]), mode=mode, verify=verify
        )

    def add(self, artifact: Artifact) -> str:
        """Host an already-loaded artifact (replaces a same-id artifact).

        The runtime-mode guard runs here (the choke point of every hosting
        path): an artifact whose manifest schema this engine does not
        support is refused with an error naming both versions.
        """
        check_runtime_schema(artifact.manifest)
        with self._lock:
            self._artifacts[artifact.artifact_id] = artifact
            self._indexes[artifact.artifact_id] = artifact.index
            self._score_dtypes[artifact.artifact_id] = str(
                artifact.index.score_dtype
            )
            self._bump_generation(artifact.artifact_id)
        return artifact.artifact_id

    def add_index(self, artifact_id: str, index: SparseTopKIndex) -> str:
        """Host a bare index under ``artifact_id`` (no manifest attached)."""
        with self._lock:
            self._artifacts.pop(artifact_id, None)
            self._indexes[artifact_id] = index
            self._score_dtypes[artifact_id] = str(index.score_dtype)
            self._bump_generation(artifact_id)
        return artifact_id

    def unload(self, artifact_id: str) -> None:
        """Drop an artifact and its cached queries."""
        with self._lock:
            self._indexes.pop(artifact_id, None)
            self._artifacts.pop(artifact_id, None)
            self._score_dtypes.pop(artifact_id, None)
            self._bump_generation(artifact_id)

    def _bump_generation(self, artifact_id: str) -> None:
        """Invalidate cached and in-flight answers (lock must be held)."""
        self._generations[artifact_id] = self._generations.get(artifact_id, 0) + 1
        self._evict_artifact_cache(artifact_id)

    def artifact_ids(self) -> List[str]:
        """Ids currently hosted, sorted."""
        with self._lock:
            return sorted(self._indexes)

    def describe(self, artifact_id: str) -> Dict[str, object]:
        """Shape/index/manifest summary of one hosted artifact."""
        with self._lock:
            index = self._get_index(artifact_id)
            artifact = self._artifacts.get(artifact_id)
        info: Dict[str, object] = {
            "artifact_id": artifact_id,
            "schema_version": API_SCHEMA_VERSION,
            "engine_version": ENGINE_VERSION,
            "score_dtype": str(index.score_dtype),
            "shape": [int(index.shape[0]), int(index.shape[1])],
            "index_k": int(index.k),
            "reverse_k": int(index.reverse_k),
            "index_bytes": index.nbytes,
            "dense_bytes": index.dense_nbytes,
            "compression_ratio": round(index.compression_ratio, 2),
        }
        if artifact is not None:
            info["metadata"] = dict(artifact.metadata)
            info["name"] = artifact.manifest.get("name")
            info["artifact_schema_version"] = artifact.manifest.get(
                "schema_version"
            )
        return info

    def _get_index(self, artifact_id: str) -> SparseTopKIndex:
        try:
            return self._indexes[artifact_id]
        except KeyError:
            raise KeyError(
                f"artifact {artifact_id!r} is not hosted; "
                f"loaded: {sorted(self._indexes)}"
            ) from None

    def _evict_artifact_cache(self, artifact_id: str) -> None:
        """Drop cached entries of one artifact (lock must be held)."""
        stale = [key for key in self._cache if key[0] == artifact_id]
        for key in stale:
            del self._cache[key]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(
        self, request: Union[QueryRequest, Mapping]
    ) -> QueryResponse:
        """Answer one typed request — the single shared query entry point.

        Accepts a :class:`~repro.api.models.QueryRequest` (trusted,
        in-process construction) or a raw mapping, which is put through the
        same wire validator the HTTP layer uses
        (:func:`~repro.api.models.parse_query_request`).  Semantic failures
        keep their long-standing exception types so existing callers are
        unchanged: unknown artifact → ``KeyError``, node ids out of range →
        ``IndexError``, bad ``op``/``k`` → ``ValueError``.  The response's
        ``results`` stays an ndarray (bit-identical to the wrapper methods);
        :func:`~repro.api.models.response_payload` renders the wire dict.
        """
        if isinstance(request, Mapping):
            request = parse_query_request(request)
        op = request.op
        if op not in QUERY_OPS:
            raise ValueError(f"unknown op {op!r}; expected one of {QUERY_OPS}")
        k: Optional[int] = None
        if op in TOP_K_OPS:
            if request.k is None:
                raise ValueError(f"op {op!r} requires k")
            k = int(request.k)
        answers = self._query(request.artifact_id, op, request.nodes, k)
        # _query just resolved the index; a plain dict read (GIL-atomic) is
        # enough for the dtype tag even if a concurrent unload races us.
        score_dtype = self._score_dtypes.get(request.artifact_id, "unknown")
        return make_query_response(request, answers, score_dtype)

    def match(self, artifact_id: str, source_nodes) -> np.ndarray:
        """Best target per source node (batched argmax)."""
        return self.query(
            make_query_request(artifact_id, "match", source_nodes)
        ).results

    def top_k(self, artifact_id: str, source_nodes, k: int) -> np.ndarray:
        """Top-``k`` targets per source node, best first."""
        return self.query(
            make_query_request(artifact_id, "top_k", source_nodes, int(k))
        ).results

    def reverse_match(self, artifact_id: str, target_nodes) -> np.ndarray:
        """Best source per target node (argmax over columns)."""
        return self.query(
            make_query_request(artifact_id, "reverse_match", target_nodes)
        ).results

    def reverse_top_k(self, artifact_id: str, target_nodes, k: int) -> np.ndarray:
        """Top-``k`` sources per target node, best first."""
        return self.query(
            make_query_request(artifact_id, "reverse_top_k", target_nodes, int(k))
        ).results

    def _run_op(
        self, index: SparseTopKIndex, op: str, nodes: np.ndarray, k: Optional[int]
    ) -> np.ndarray:
        if op == "match":
            return index.match(nodes)
        if op == "top_k":
            return index.top_k(nodes, k)
        if op == "reverse_match":
            return index.reverse_match(nodes)
        if op == "reverse_top_k":
            return index.reverse_top_k(nodes, k)
        raise ValueError(f"unknown op {op!r}")  # pragma: no cover

    def _query(
        self, artifact_id: str, op: str, nodes, k: Optional[int]
    ) -> np.ndarray:
        started = time.perf_counter()
        with self._lock:
            index = self._get_index(artifact_id)
            generation = self._generations.get(artifact_id, 0)
        node_array = np.atleast_1d(np.asarray(nodes, dtype=np.intp))

        if self._cache_size == 0 or node_array.size == 0:
            answers = self._run_op(index, op, node_array, k)
            self._note(op, node_array.size, hits=0, started=started)
            return answers

        # Per-node cache probe; misses are answered in one vectorized call.
        keys = [(artifact_id, op, int(node), k) for node in node_array]
        cached: Dict[int, object] = {}
        with self._lock:
            for position, key in enumerate(keys):
                if key in self._cache:
                    self._cache.move_to_end(key)
                    cached[position] = self._cache[key]
        miss_positions = [p for p in range(node_array.size) if p not in cached]
        if miss_positions:
            miss_answers = self._run_op(
                index, op, node_array[miss_positions], k
            )
            with self._lock:
                # Answers computed from a replaced/unloaded index must not
                # poison the cache of its successor.
                insert = self._generations.get(artifact_id, 0) == generation
                for row, position in enumerate(miss_positions):
                    # Copy row slices so cache entries do not pin the whole
                    # batch answer array.
                    value = np.array(miss_answers[row], copy=True)
                    value.setflags(write=False)
                    if insert:
                        self._cache[keys[position]] = value
                        self._cache.move_to_end(keys[position])
                    cached[position] = value
                while len(self._cache) > self._cache_size:
                    self._cache.popitem(last=False)
        answers = np.stack([np.asarray(cached[p]) for p in range(node_array.size)])
        if op in ("match", "reverse_match"):
            answers = answers.reshape(node_array.size)
        self._note(op, node_array.size, hits=len(keys) - len(miss_positions),
                   started=started)
        return answers

    def _note(self, op: str, n_nodes: int, hits: int, started: float) -> None:
        elapsed = time.perf_counter() - started
        with self._lock:
            self._counters["queries"] += n_nodes
            self._counters["batches"] += 1
            self._counters["cache_hits"] += hits
            self._counters["cache_misses"] += n_nodes - hits
            self._counters["total_latency_s"] += elapsed
            self._op_counts[op] = self._op_counts.get(op, 0) + n_nodes

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Counters snapshot: queries, hit rate, latency, hosted artifacts."""
        with self._lock:
            counters = dict(self._counters)
            op_counts = dict(self._op_counts)
            hosted = sorted(self._indexes)
            cache_entries = len(self._cache)
        queries = counters["queries"]
        batches = counters["batches"]
        return {
            "schema_version": API_SCHEMA_VERSION,
            "engine_version": ENGINE_VERSION,
            "artifacts": hosted,
            "queries": int(queries),
            "batches": int(batches),
            "cache_entries": cache_entries,
            "cache_hits": int(counters["cache_hits"]),
            "cache_misses": int(counters["cache_misses"]),
            "hit_rate": (counters["cache_hits"] / queries) if queries else 0.0,
            "total_latency_s": counters["total_latency_s"],
            "avg_batch_latency_ms": (
                1000.0 * counters["total_latency_s"] / batches if batches else 0.0
            ),
            "queries_per_second": (
                queries / counters["total_latency_s"]
                if counters["total_latency_s"] > 0
                else 0.0
            ),
            "per_op": op_counts,
        }

    def reset_stats(self) -> None:
        """Zero the counters (hosted artifacts and cache are kept)."""
        with self._lock:
            for key in self._counters:
                self._counters[key] = 0 if key != "total_latency_s" else 0.0
            self._op_counts.clear()

    def __repr__(self) -> str:
        with self._lock:
            hosted = len(self._indexes)
        return f"AlignmentService(artifacts={hosted}, cache_size={self._cache_size})"


__all__ = ["AlignmentService", "DEFAULT_CACHE_SIZE", "check_runtime_schema"]
