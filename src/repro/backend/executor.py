"""The ``"executor"`` backend registry: job-execution strategies.

PR 2 hard-wired suite execution to one local
:class:`~concurrent.futures.ProcessPoolExecutor` with in-worker ``SIGALRM``
timeouts, and ``BENCH_runner.json`` showed the cost: the scheduler itself
overlaps fine (3.4x on sleep jobs) but real numpy-heavy jobs *contend* under
the pool on small machines (0.86x).  This module generalises job execution
behind the same named-registry idiom as the ``"orbit"`` and ``"compute"``
kinds (:mod:`repro.backend.registry`): an :class:`ExecutorBackend` contract
(``submit_jobs(jobs, timeout, on_result) -> results``) with one registered
strategy per execution model:

``"serial"``
    The deterministic zero-overhead reference: jobs run inline, in
    submission order, in the calling process.  Timeouts use the in-process
    ``SIGALRM`` strategy (the job function receives the budget).  A job that
    attempts to kill the interpreter (``SystemExit`` from deep inside a
    worker-style crash) is caught and reported through ``on_crash`` instead
    of taking the suite down.

``"process-pool"``
    The PR-2 behaviour, extracted from ``repro.runner.executor``: a local
    process pool, per-job timeouts enforced *inside* the worker with
    ``SIGALRM``, plus worker-crash recovery — when a worker dies mid-job
    (``BrokenProcessPool``), every job left without a result is retried once
    in an isolated single-worker pool, so the actual crasher is identified
    and marked failed while its innocent neighbours still complete.

``"thread-pool"``
    Jobs run on daemon worker threads in one process.  ``SIGALRM`` cannot
    fire on worker threads (``signal.signal`` is main-thread-only), so the
    timeout strategy moves *outside* the job: the coordinator tracks each
    job's start time and synthesises a timeout result through ``on_timeout``
    once the budget lapses; the abandoned thread keeps running but its late
    result is discarded, and — because the workers are daemons — it can
    never block interpreter exit.  This is the right backend on platforms
    without ``SIGALRM`` and for GIL-releasing numpy jobs (BLAS GEMMs), which
    contend with each other under the process pool but overlap cleanly on
    threads without any fork or pickling cost.

``"process-pool-shm"``
    The process pool plus the zero-copy substrate of
    :mod:`repro.backend.shm`: each worker is warmed by an ``initializer``
    that caps BLAS/OpenMP threads to the fair share
    ``max(1, cpus // workers)`` and installs a per-worker dataset cache,
    and callers that stage job payloads in a :class:`~repro.backend.shm.
    SharedArena` (the suite runner does — graph CSR arrays ship as
    shared-memory handles, attached rather than copied) skip the per-job
    pickle + dataset reload entirely.  Scheduling, crash recovery and
    timeouts are inherited unchanged from ``process-pool``.  The same
    governance is available on the plain pool via
    ``ProcessPoolExecutorBackend(cap_blas_threads=True)``.

``"auto"`` resolves through the registry's priority order to
``process-pool`` when the interpreter supports it (lazy availability
probing — ``multiprocessing.synchronize`` importability), falling back to
``thread-pool`` and then ``serial``; ``process-pool-shm`` is opt-in
(selected by name) until a machine profile proves it the default.

The contract every job callable must honour: it is invoked as
``fn(*args, timeout=..., **kwargs)`` and should *return* its failure state
rather than raise (the runner's :func:`repro.runner.executor.execute_job`
already does).  Backends translate everything that escapes anyway — crashes,
pool breakage, timeouts — into results built by the ``on_crash`` /
``on_timeout`` callbacks, so one bad job can never kill a suite.
"""

from __future__ import annotations

import contextlib
import os
import queue
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.backend.registry import AUTO_BACKEND, BackendRegistry, get_registry
from repro.backend.shm import (
    BLAS_ENV_VARS,
    blas_thread_cap,
    shm_worker_init,
)

#: Registry kind for job-execution backends.
EXECUTOR_KIND = "executor"

#: Registered backend names (the acceptance vocabulary).
SERIAL = "serial"
PROCESS_POOL = "process-pool"
PROCESS_POOL_SHM = "process-pool-shm"
THREAD_POOL = "thread-pool"

#: How often (seconds) the thread-pool coordinator polls for completions
#: and lapsed timeouts.
_POLL_SECONDS = 0.05


@dataclass
class ExecutorJob:
    """One unit of work handed to an executor backend.

    Attributes
    ----------
    key:
        Stable job identity (the runner uses its ``job_id``); results are
        keyed by it and crash/timeout callbacks receive the job carrying it.
    fn:
        The job callable, invoked as ``fn(*args, timeout=..., **kwargs)``.
        Must be a picklable module-level callable for ``process-pool``.
    args, kwargs:
        Positional and keyword payload forwarded to ``fn``.
    """

    key: str
    fn: Callable[..., Dict[str, object]]
    args: Tuple[object, ...] = ()
    kwargs: Dict[str, object] = field(default_factory=dict)


#: Result hooks: ``on_result(key, result)`` streams completions (in
#: completion order); ``on_crash(job, message)`` builds the payload for a
#: job whose execution vehicle died; ``on_timeout(job)`` builds the payload
#: for a job whose budget lapsed under an out-of-worker timeout strategy.
OnResult = Optional[Callable[[str, Dict[str, object]], None]]
OnCrash = Optional[Callable[[ExecutorJob, str], Dict[str, object]]]
OnTimeout = Optional[Callable[[ExecutorJob], Dict[str, object]]]


def _default_crash(job: ExecutorJob, message: str) -> Dict[str, object]:
    return {"key": job.key, "status": "failed", "error": message}


class ExecutorBackend:
    """Base contract of one job-execution strategy.

    Subclasses implement :meth:`submit_jobs`; results come back as a dict
    keyed by :attr:`ExecutorJob.key` and are also streamed through
    ``on_result`` in completion order.  Every job yields exactly one result
    — success, crash, or timeout — regardless of what its execution vehicle
    did, so the caller never has to reason about partial suites.
    """

    name = "base"

    def submit_jobs(
        self,
        jobs: Sequence[ExecutorJob],
        *,
        workers: int = 1,
        timeout: Optional[float] = None,
        on_result: OnResult = None,
        on_crash: OnCrash = None,
        on_timeout: OnTimeout = None,
    ) -> Dict[str, Dict[str, object]]:
        raise NotImplementedError

    # Shared plumbing -------------------------------------------------
    @staticmethod
    def _hooks(on_crash: OnCrash, on_timeout: OnTimeout):
        crash = on_crash if on_crash is not None else _default_crash
        if on_timeout is not None:
            return crash, on_timeout
        return crash, lambda job: crash(job, "job exceeded its wall-clock budget")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class SerialExecutor(ExecutorBackend):
    """Run jobs inline, in order — the deterministic reference backend.

    Matches the historical ``run_suite(jobs=1)`` path exactly: no pool, no
    pickling constraint on the job payload, timeouts via the in-process
    ``SIGALRM`` strategy inside the job function itself.
    """

    name = SERIAL

    def submit_jobs(
        self,
        jobs,
        *,
        workers: int = 1,
        timeout: Optional[float] = None,
        on_result: OnResult = None,
        on_crash: OnCrash = None,
        on_timeout: OnTimeout = None,
    ) -> Dict[str, Dict[str, object]]:
        crash, _ = self._hooks(on_crash, on_timeout)
        results: Dict[str, Dict[str, object]] = {}
        for job in jobs:
            try:
                result = job.fn(*job.args, timeout=timeout, **job.kwargs)
            except KeyboardInterrupt:  # pragma: no cover - interactive only
                raise
            except BaseException as error:  # noqa: BLE001 - crash becomes a result
                # SystemExit included: the in-process analogue of a worker
                # dying (an os._exit call is not interceptable at all).
                result = crash(
                    job, f"job crashed in-process: {type(error).__name__}: {error}"
                )
            results[job.key] = result
            if on_result is not None:
                on_result(job.key, result)
        return results


class ThreadPoolExecutorBackend(ExecutorBackend):
    """Daemon-thread execution with an out-of-worker timeout strategy.

    ``SIGALRM`` cannot be armed on worker threads, so jobs receive
    ``timeout=None`` and the coordinator enforces the budget: once a job's
    wall clock lapses, ``on_timeout`` synthesises its result and the worker
    thread is abandoned (daemon — it cannot block interpreter exit; a late
    result from it is discarded).  Each abandoned worker's slot is released,
    so a stuck job costs one thread, not the suite's concurrency.
    """

    name = THREAD_POOL

    def submit_jobs(
        self,
        jobs,
        *,
        workers: int = 1,
        timeout: Optional[float] = None,
        on_result: OnResult = None,
        on_crash: OnCrash = None,
        on_timeout: OnTimeout = None,
    ) -> Dict[str, Dict[str, object]]:
        crash, lapsed = self._hooks(on_crash, on_timeout)
        workers = max(1, int(workers))
        results: Dict[str, Dict[str, object]] = {}
        done: "queue.Queue[Tuple[str, Dict[str, object]]]" = queue.Queue()
        pending: List[ExecutorJob] = list(jobs)
        active: Dict[str, Tuple[ExecutorJob, float]] = {}

        def _worker(job: ExecutorJob) -> None:
            try:
                result = job.fn(*job.args, timeout=None, **job.kwargs)
            except BaseException as error:  # noqa: BLE001 - crash becomes a result
                result = crash(
                    job, f"job crashed in-process: {type(error).__name__}: {error}"
                )
            done.put((job.key, result))

        def _emit(key: str, result: Dict[str, object]) -> None:
            results[key] = result
            if on_result is not None:
                on_result(key, result)

        while pending or active:
            while pending and len(active) < workers:
                job = pending.pop(0)
                active[job.key] = (job, time.monotonic())
                threading.Thread(target=_worker, args=(job,), daemon=True).start()
            try:
                key, result = done.get(timeout=_POLL_SECONDS)
            except queue.Empty:
                pass
            else:
                if key in active:  # not already timed out
                    del active[key]
                    _emit(key, result)
            if timeout is not None:
                now = time.monotonic()
                for key, (job, started) in list(active.items()):
                    if now - started > timeout:
                        del active[key]  # abandon the runaway daemon thread
                        _emit(key, lapsed(job))
        return results


class ProcessPoolExecutorBackend(ExecutorBackend):
    """The PR-2 process pool, with worker-crash isolation and recovery.

    Timeouts are enforced *inside* each worker (``SIGALRM`` via the job
    function's ``timeout`` argument), so a job stuck in Python code becomes
    a timeout result instead of wedging the pool.  When a worker dies hard
    (``os._exit``, a segfault — surfacing as ``BrokenProcessPool`` on every
    in-flight future), each job left without a result is retried once in an
    isolated single-worker pool: the crasher reproducibly kills its solo
    pool and is marked failed through ``on_crash``; every other job
    completes normally.
    """

    name = PROCESS_POOL

    def __init__(self, *, cap_blas_threads: bool = False) -> None:
        #: Opt-in BLAS thread governance on the plain pool: workers are
        #: initialised with a ``max(1, cpus // workers)`` threadpool cap
        #: so N workers never stack N full-width BLAS pools on one box.
        self.cap_blas_threads = bool(cap_blas_threads)

    # Pool construction is a hook so the shm backend can warm its workers
    # (BLAS cap + per-worker dataset cache) without duplicating the
    # scheduling / crash-recovery machinery below.
    def _make_pool(self, max_workers: int, total_workers: int) -> ProcessPoolExecutor:
        if self.cap_blas_threads:
            cap = blas_thread_cap(total_workers)
            return ProcessPoolExecutor(
                max_workers=max_workers,
                initializer=shm_worker_init,
                initargs=(cap,),
            )
        return ProcessPoolExecutor(max_workers=max_workers)

    @contextlib.contextmanager
    def _pool_env(self, total_workers: int):
        """Export the BLAS cap to the environment while the pool may spawn.

        Spawned workers read these knobs before their BLAS loads — earlier
        than the initializer can run; forked workers are covered by
        :func:`~repro.backend.shm.shm_worker_init` instead (threadpoolctl
        when importable).  The parent's values are restored afterwards.
        """
        if not self.cap_blas_threads:
            yield
            return
        cap = str(blas_thread_cap(total_workers))
        saved = {name: os.environ.get(name) for name in BLAS_ENV_VARS}
        for name in BLAS_ENV_VARS:
            os.environ[name] = cap
        try:
            yield
        finally:
            for name, value in saved.items():
                if value is None:
                    os.environ.pop(name, None)
                else:
                    os.environ[name] = value

    def submit_jobs(
        self,
        jobs,
        *,
        workers: int = 1,
        timeout: Optional[float] = None,
        on_result: OnResult = None,
        on_crash: OnCrash = None,
        on_timeout: OnTimeout = None,
    ) -> Dict[str, Dict[str, object]]:
        with self._pool_env(max(1, int(workers) if workers else 1)):
            return self._submit_jobs_governed(
                jobs,
                workers=workers,
                timeout=timeout,
                on_result=on_result,
                on_crash=on_crash,
                on_timeout=on_timeout,
            )

    def _submit_jobs_governed(
        self,
        jobs,
        *,
        workers: int = 1,
        timeout: Optional[float] = None,
        on_result: OnResult = None,
        on_crash: OnCrash = None,
        on_timeout: OnTimeout = None,
    ) -> Dict[str, Dict[str, object]]:
        crash, _ = self._hooks(on_crash, on_timeout)
        jobs = list(jobs)
        by_key = {job.key: job for job in jobs}
        results: Dict[str, Dict[str, object]] = {}

        def _emit(key: str, result: Dict[str, object]) -> None:
            results[key] = result
            if on_result is not None:
                on_result(key, result)

        requested_workers = max(1, int(workers) if workers else 1)
        max_workers = min(requested_workers, len(jobs) or 1)
        broken = False
        try:
            with self._make_pool(max_workers, requested_workers) as pool:
                futures = {
                    pool.submit(
                        job.fn, *job.args, timeout=timeout, **job.kwargs
                    ): job.key
                    for job in jobs
                }
                remaining = set(futures)
                while remaining:
                    finished, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                    for future in finished:
                        key = futures[future]
                        try:
                            _emit(key, future.result())
                        except BrokenProcessPool:
                            # A worker died; which job killed it is not
                            # attributable here — every unresolved job goes
                            # through the isolation pass below.
                            broken = True
                        except Exception as error:  # pickling/submission faults
                            _emit(
                                key,
                                crash(
                                    by_key[key],
                                    f"worker failed: {type(error).__name__}: {error}",
                                ),
                            )
        except BrokenProcessPool:  # pragma: no cover - raced pool teardown
            broken = True
        if not broken and len(results) == len(jobs):
            return results

        # Isolation pass: one fresh single-worker pool per unresolved job.
        # The crasher kills only its own pool and gets a failure result;
        # innocent neighbours (whose futures merely shared the broken pool)
        # re-run and complete.
        for job in jobs:
            if job.key in results:
                continue
            try:
                # The solo pool keeps the main pool's worker warm-up (BLAS
                # cap sized for the original worker count, dataset cache),
                # and shared segments are still live: only the coordinating
                # arena unlinks, after submit_jobs returns.
                with self._make_pool(1, requested_workers) as solo:
                    result = solo.submit(
                        job.fn, *job.args, timeout=timeout, **job.kwargs
                    ).result()
            except Exception as error:  # noqa: BLE001 - crash becomes a result
                result = crash(
                    job,
                    "worker crashed (process died mid-job): "
                    f"{type(error).__name__}: {error}",
                )
            _emit(job.key, result)
        return results


class SharedMemoryProcessPoolExecutorBackend(ProcessPoolExecutorBackend):
    """The warm zero-copy process pool (``"process-pool-shm"``).

    Identical scheduling, timeout and crash-recovery behaviour to
    ``process-pool`` — same base class, same isolation retries — with the
    per-job overhead removed:

    * every worker runs :func:`repro.backend.shm.shm_worker_init` once at
      start-up, capping its BLAS/OpenMP threadpool to the fair share
      ``max(1, cpus // workers)`` and installing the per-worker dataset
      cache;
    * callers that stage datasets in a :class:`~repro.backend.shm.
      SharedArena` (``run_suite`` does) pass shared-memory handles in the
      job kwargs, so workers attach graph CSR arrays read-only instead of
      unpickling copies, and each dataset is materialised once per worker
      instead of once per job.

    ``supports_shared_datasets`` is the capability flag coordinators key
    on to decide whether staging is worth the parent-side load.
    """

    name = PROCESS_POOL_SHM
    supports_shared_datasets = True

    def __init__(self) -> None:
        super().__init__(cap_blas_threads=True)


def _process_pool_available() -> bool:
    """Lazy probe: process pools need working multiprocessing primitives."""
    try:
        import multiprocessing.synchronize  # noqa: F401
    except ImportError:  # pragma: no cover - sem_open-less platforms
        return False
    return True


def executor_registry() -> BackendRegistry:
    """The shared ``"executor"`` registry, with the built-ins registered.

    Mirrors :func:`repro.orbits.engine.orbit_registry`: each built-in is
    (re-)registered individually if missing, so a test tearing one down can
    never take the others with it for the rest of the process.
    """
    registry = get_registry(EXECUTOR_KIND)
    if SERIAL not in registry.names():
        registry.register(SERIAL, SerialExecutor(), priority=0)
    if THREAD_POOL not in registry.names():
        registry.register(THREAD_POOL, ThreadPoolExecutorBackend(), priority=5)
    if PROCESS_POOL not in registry.names():
        registry.register(
            PROCESS_POOL,
            ProcessPoolExecutorBackend(),
            priority=10,
            available=_process_pool_available,
        )
    if PROCESS_POOL_SHM not in registry.names():
        # Below process-pool: "auto" keeps resolving to the plain pool;
        # the zero-copy pool is selected by name (CLI --executor,
        # SuiteSpec.executor_backend, HTCConfig.executor_backend).
        registry.register(
            PROCESS_POOL_SHM,
            SharedMemoryProcessPoolExecutorBackend(),
            priority=8,
            available=_process_pool_available,
        )
    return registry


def available_executor_backends() -> Tuple[str, ...]:
    """Usable executor backend names (without the ``"auto"`` alias)."""
    return executor_registry().available()


def resolve_executor_backend(name: str = AUTO_BACKEND) -> str:
    """Normalise an executor selector (``"auto"`` → the default)."""
    return executor_registry().resolve(name)


def get_executor_backend(name: Optional[str] = None) -> ExecutorBackend:
    """The :class:`ExecutorBackend` behind ``name`` (default ``"auto"``)."""
    backend = executor_registry().get(AUTO_BACKEND if name is None else name)
    if not isinstance(backend, ExecutorBackend):
        raise TypeError(
            f"executor backend {name!r} is not an ExecutorBackend "
            f"(got {type(backend).__name__}); register execution strategies "
            "via repro.backend.executor.executor_registry()"
        )
    return backend


__all__ = [
    "EXECUTOR_KIND",
    "SERIAL",
    "PROCESS_POOL",
    "PROCESS_POOL_SHM",
    "THREAD_POOL",
    "ExecutorJob",
    "ExecutorBackend",
    "SerialExecutor",
    "ThreadPoolExecutorBackend",
    "ProcessPoolExecutorBackend",
    "SharedMemoryProcessPoolExecutorBackend",
    "executor_registry",
    "available_executor_backends",
    "resolve_executor_backend",
    "get_executor_backend",
]
