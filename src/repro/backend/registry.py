"""Generic named-backend registries with availability and ``"auto"`` resolution.

The orbit-counting engine (PR 1) proved the pattern this module generalises:
several interchangeable implementations of one computational contract, a
string selector stored in the config, an ``"auto"`` alias resolving to the
fastest implementation that is actually usable on the running interpreter,
and a clear error listing the alternatives when a requested backend is
missing.  That selection logic used to be private to
:mod:`repro.orbits.engine`; here it is a reusable component so the
similarity, serve and shard layers (and any future accelerated kernels) can
share it.

One :class:`BackendRegistry` exists per *kind* of pluggable computation —
``"orbit"`` for the orbit counters, ``"compute"`` for the dense linear
algebra kernels (see :mod:`repro.backend.compute`).  Registries are created
on demand by :func:`get_registry` and are process-global: registering a
backend makes it visible to every consumer of that kind.

Availability is evaluated lazily: a backend may be registered with a
predicate (e.g. "NumPy >= 2.0 has ``bitwise_count``") and is simply skipped
by ``"auto"`` when the predicate is false, while asking for it by name
raises a :class:`BackendUnavailableError` that says why the fallback exists.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple, Union

#: Reserved selector resolving to the best available backend of a registry.
AUTO_BACKEND = "auto"


class BackendUnavailableError(ValueError):
    """A backend is registered but cannot run on this interpreter."""


class BackendRegistry:
    """Named implementations of one computational contract.

    Parameters
    ----------
    kind:
        Human-readable registry identity (``"orbit"``, ``"compute"`` ...),
        used in error messages.

    Backends are registered with a ``priority``; ``"auto"`` resolves to the
    highest-priority *available* backend (ties broken alphabetically, so
    resolution is deterministic regardless of registration order).
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._backends: Dict[str, object] = {}
        self._priorities: Dict[str, int] = {}
        self._availability: Dict[str, Union[bool, Callable[[], bool]]] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        implementation: object,
        *,
        priority: int = 0,
        available: Union[bool, Callable[[], bool]] = True,
    ) -> None:
        """Register (or replace) a backend implementation.

        ``available`` may be a bool or a zero-argument predicate evaluated
        at resolution time (so optional dependencies are probed lazily).
        """
        if name == AUTO_BACKEND:
            raise ValueError(
                f"'{AUTO_BACKEND}' is a reserved backend name "
                f"({self.kind} registry)"
            )
        if not name:
            raise ValueError(f"backend name must be non-empty ({self.kind} registry)")
        self._backends[name] = implementation
        self._priorities[name] = int(priority)
        self._availability[name] = available

    def unregister(self, name: str) -> None:
        """Remove a backend (mainly for tests tearing down fakes)."""
        self._backends.pop(name, None)
        self._priorities.pop(name, None)
        self._availability.pop(name, None)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def names(self) -> Tuple[str, ...]:
        """Every registered backend name, sorted (availability ignored)."""
        return tuple(sorted(self._backends))

    def _probe(self, name: str) -> Tuple[bool, Optional[str]]:
        """Evaluate one availability predicate; never raises.

        Returns ``(available, reason)`` where ``reason`` describes a probe
        failure — a predicate that *raises* marks the backend unavailable
        (a broken optional dependency must not take resolution down with
        it; the error surfaces in the message when the backend is asked
        for by name).
        """
        available = self._availability[name]
        if not callable(available):
            return bool(available), None
        try:
            return bool(available()), None
        except Exception as error:
            return False, f"{type(error).__name__}: {error}"

    def is_available(self, name: str) -> bool:
        """Whether ``name`` is registered and currently usable."""
        if name not in self._backends:
            return False
        return self._probe(name)[0]

    def priority(self, name: str) -> int:
        """The registered priority of ``name`` (``"auto"`` prefers higher)."""
        if name not in self._priorities:
            raise ValueError(f"unknown {self.kind} backend {name!r}")
        return self._priorities[name]

    def describe(self) -> Dict[str, Dict[str, object]]:
        """Introspection snapshot: ``name -> {available, priority}``, sorted.

        Availability runs through the lazy predicates only — an unavailable
        backend is reported, never imported.  This is the payload source of
        the API's ``GET /backends``.
        """
        return {
            name: {
                "available": self.is_available(name),
                "priority": self._priorities[name],
            }
            for name in self.names()
        }

    def available(self) -> Tuple[str, ...]:
        """Currently usable backend names, sorted."""
        return tuple(name for name in self.names() if self.is_available(name))

    def default(self) -> str:
        """The backend ``"auto"`` resolves to (highest priority available)."""
        candidates = self.available()
        if not candidates:
            raise BackendUnavailableError(
                f"no {self.kind} backend is available "
                f"(registered: {self.names() or '()'})"
            )
        return max(candidates, key=lambda name: (self._priorities[name], name))

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def resolve(self, name: str = AUTO_BACKEND) -> str:
        """Normalise a selector to a concrete, available backend name."""
        if name == AUTO_BACKEND:
            resolved = self.default()
        elif name not in self._backends:
            raise ValueError(
                f"unknown {self.kind} backend {name!r}; "
                f"expected '{AUTO_BACKEND}' or one of {self.available()}"
            )
        else:
            usable, reason = self._probe(name)
            if not usable:
                message = (
                    f"{self.kind} backend {name!r} is registered but not "
                    f"available on this interpreter; "
                    f"available: {self.available()}"
                )
                if reason:
                    message += f" (availability probe failed: {reason})"
                raise BackendUnavailableError(message)
            resolved = name
        self._note_resolution(resolved)
        return resolved

    def _note_resolution(self, resolved: str) -> None:
        """Count one resolution in the process-global metrics registry.

        Imported lazily: :mod:`repro.obs` is stdlib-only and never imports
        :mod:`repro.backend`, but the local import keeps this module usable
        even mid-bootstrap of a partial install.
        """
        try:
            from repro.obs.metrics import default_registry
        except ImportError:  # pragma: no cover - partial install
            return
        default_registry().counter(
            "backend_resolutions_total", kind=self.kind, backend=resolved
        ).inc()

    def get(self, name: str = AUTO_BACKEND) -> object:
        """The implementation behind ``name`` (after :meth:`resolve`)."""
        return self._backends[self.resolve(name)]


_REGISTRIES: Dict[str, BackendRegistry] = {}


def get_registry(kind: str) -> BackendRegistry:
    """The process-global registry for ``kind``, created on first use."""
    registry = _REGISTRIES.get(kind)
    if registry is None:
        registry = _REGISTRIES[kind] = BackendRegistry(kind)
    return registry


def registered_kinds() -> Tuple[str, ...]:
    """Kinds with a live registry (sorted) — mainly for diagnostics."""
    return tuple(sorted(_REGISTRIES))


def peek_registry(kind: str) -> Optional[BackendRegistry]:
    """The registry for ``kind`` if one exists, without creating it."""
    return _REGISTRIES.get(kind)


__all__ = [
    "AUTO_BACKEND",
    "BackendRegistry",
    "BackendUnavailableError",
    "get_registry",
    "registered_kinds",
    "peek_registry",
]
