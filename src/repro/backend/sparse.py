"""The ``"sparse"`` compute backend: scipy.sparse GEMMs for sparse factors.

Structural score factors built from low-degree graphs (one-hot-ish GDV
blocks, truncated neighbourhood features) are often mostly zeros, but the
dense GEMM in the scoring hot path pays for every zero anyway.  This backend
routes a ``matmul`` through ``scipy.sparse`` CSR products when *both*
operands are sparse enough to win, and falls back to the plain dense product
otherwise — same signature, same ``out``-writing contract as the numpy
backend (:mod:`repro.backend.compute`).

It registers with **negative priority**: sparse float accumulation orders
additions differently from a dense GEMM, so results can differ in the last
ulp and the backend must be opted into explicitly (``backend="sparse"`` /
``HTCConfig.backend``) — ``"auto"`` keeps resolving to ``"numpy"`` and the
locked float64 bit-identity of the default path is untouched.  Availability
is probed lazily via ``importlib.util.find_spec`` like every optional
backend, even though scipy is a hard dependency of the graph layer, so the
registry treats it uniformly.
"""

from __future__ import annotations

import importlib.util
from typing import Optional

import numpy as np

from repro.backend.compute import ComputeBackend

#: Density (fraction of non-zeros) at or below which an operand counts as
#: sparse.  Conservative: CSR GEMM only beats BLAS when most work vanishes.
SPARSE_DENSITY_THRESHOLD = 0.25

#: Minimum operand size worth the CSR conversion overhead.
_MIN_ELEMENTS = 4096

_SCIPY_CHECKED = False
_SCIPY_PRESENT = False


def scipy_available() -> bool:
    """Whether scipy is importable — probed once, without importing it."""
    global _SCIPY_CHECKED, _SCIPY_PRESENT
    if not _SCIPY_CHECKED:
        try:
            _SCIPY_PRESENT = importlib.util.find_spec("scipy.sparse") is not None
        except (ImportError, ValueError):  # pragma: no cover - broken meta_path
            _SCIPY_PRESENT = False
        _SCIPY_CHECKED = True
    return _SCIPY_PRESENT


def _density(array: np.ndarray) -> float:
    if array.size == 0:
        return 0.0
    return float(np.count_nonzero(array)) / float(array.size)


def _use_sparse(a: np.ndarray, b: np.ndarray, threshold: float) -> bool:
    if a.size < _MIN_ELEMENTS or b.size < _MIN_ELEMENTS:
        return False
    return _density(a) <= threshold and _density(b) <= threshold


def sparse_matmul(
    a: np.ndarray,
    b: np.ndarray,
    out: np.ndarray,
    *,
    threshold: Optional[float] = None,
) -> np.ndarray:
    """``a @ b`` into ``out``, via CSR products when both operands qualify."""
    limit = SPARSE_DENSITY_THRESHOLD if threshold is None else float(threshold)
    if not _use_sparse(a, b, limit):
        return np.matmul(a, b, out=out)
    import scipy.sparse as sp

    product = sp.csr_matrix(a) @ sp.csr_matrix(b)
    np.copyto(out, product.toarray())
    return out


def _sparse_clip(a, lo, hi, out):
    return np.clip(a, lo, hi, out=out)


SPARSE_BACKEND = ComputeBackend(
    name="sparse", matmul=sparse_matmul, clip=_sparse_clip
)


__all__ = [
    "SPARSE_BACKEND",
    "SPARSE_DENSITY_THRESHOLD",
    "scipy_available",
    "sparse_matmul",
]
