"""Zero-copy shared-memory job execution: arenas, caches, BLAS governance.

``BENCH_runner.json`` proved the PR-6 scheduler overlaps fine (2.7x on
sleep jobs) while the real 9-job suite ran at 0.60x under the process pool
— the loss is pure per-job overhead: every job re-pickles its payload,
cold-loads its dataset inside the worker, and N workers x unbounded BLAS
threads oversubscribe the box.  This module is the substrate that removes
those three taxes:

:class:`SharedArena`
    Places numpy arrays into :mod:`multiprocessing.shared_memory` segments
    and hands out picklable ``(segment, shape, dtype)``
    :class:`ShmArrayHandle` descriptors instead of pickled buffers.  The
    arena (the parent process) is the single owner of every segment:
    handles are refcounted (``put`` with a repeated ``key`` reuses the
    segment), workers attach *read-only* views, and :meth:`destroy` —
    wired into ``finally`` blocks, the context-manager protocol and an
    ``atexit`` backstop — guarantees unlink even when a worker crashed
    mid-attach (the BrokenProcessPool solo-retry path re-attaches against
    still-live segments because only the parent ever unlinks) or the
    parent took a ``KeyboardInterrupt``.

Graph-pair transport
    :func:`share_pair` decomposes a :class:`~repro.datasets.pair.GraphPair`
    into its CSR/attribute/ground-truth arrays inside an arena and returns
    a :class:`SharedPairHandle` carrying the same content hash the orbit
    cache uses; :func:`attach_pair` rebuilds the pair in a worker as
    zero-copy read-only views over the shared segments (trusted
    ``_from_validated_csr`` rebuild — no symmetrise/clean pass, no copy).

Per-worker dataset cache + BLAS thread governance
    :func:`shm_worker_init` is the process-pool ``initializer``: it caps
    BLAS/OpenMP threads to the fair share ``max(1, cpus // workers)``
    (threadpoolctl when importable, the standard env knobs otherwise) and
    installs a per-worker dataset cache keyed by the pair content hash, so
    a suite touching D datasets attaches each one once per worker instead
    of loading it once per job.
"""

from __future__ import annotations

import atexit
import os
import threading
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Dict, Optional, Tuple

import numpy as np

#: The env knobs every mainstream BLAS/OpenMP build honours at load time.
#: Set in the parent before the pool forks/spawns *and* in each worker's
#: initializer, so both start methods see them as early as possible.
BLAS_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
)

#: Segment name prefix; leak probes look for this in ``/dev/shm``.
SEGMENT_PREFIX = "repro-arena"


def blas_thread_cap(workers: int, cpus: Optional[int] = None) -> int:
    """The fair per-worker BLAS thread budget: ``max(1, cpus // workers)``.

    ``workers`` parallel jobs each spinning up a full-width BLAS threadpool
    oversubscribes the box ``workers``-fold; the fair share keeps the
    total thread count at the CPU count.
    """
    cpus = cpus if cpus is not None else (os.cpu_count() or 1)
    return max(1, int(cpus) // max(1, int(workers)))


def apply_blas_thread_cap(cap: int) -> str:
    """Limit BLAS/OpenMP threadpools to ``cap`` threads; returns the method.

    Prefers :mod:`threadpoolctl` (caps already-loaded pools, so it works
    under the ``fork`` start method where the env is read too late) and
    falls back to the standard env knobs, which cover ``spawn`` workers
    and any library loaded after the initializer ran.
    """
    cap = max(1, int(cap))
    for name in BLAS_ENV_VARS:
        os.environ[name] = str(cap)
    try:
        import threadpoolctl
    except ImportError:
        return "env"
    try:
        threadpoolctl.threadpool_limits(limits=cap)
    except Exception:  # pragma: no cover - defensive: never fail a worker
        return "env"
    return "threadpoolctl"


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker registration.

    On POSIX, ``SharedMemory.__init__`` registers the segment with the
    *attaching* process's resource tracker too, which — under the ``spawn``
    start method, where each worker owns a tracker — unlinks it when that
    worker exits, yanking the memory out from under the parent (the sole
    owner) and every sibling.  CPython 3.13 grew ``track=False`` for
    exactly this; suppressing the registration call is the portable
    equivalent (shared_memory resolves ``resource_tracker.register`` as a
    module attribute at call time).
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


@dataclass(frozen=True)
class ShmArrayHandle:
    """Picklable descriptor of one array living in a shared segment."""

    segment: str
    shape: Tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= int(dim)
        return count * np.dtype(self.dtype).itemsize


@dataclass(frozen=True)
class SharedPairHandle:
    """Picklable descriptor of one :class:`GraphPair` staged in an arena.

    ``content_key`` is the cross-process cache key: the SHA-256 pair of the
    two graphs' adjacency structures (the same
    :func:`repro.orbits.cache.graph_content_hash` digest the orbit cache
    uses) plus the pair name, so two stagings of the same dataset hit the
    same per-worker cache slot.
    """

    content_key: str
    name: str
    source: Dict[str, ShmArrayHandle]
    target: Dict[str, ShmArrayHandle]
    ground_truth: ShmArrayHandle
    source_shape: Tuple[int, int]
    target_shape: Tuple[int, int]

    def handles(self) -> Tuple[ShmArrayHandle, ...]:
        return (
            *self.source.values(),
            *self.target.values(),
            self.ground_truth,
        )


class SharedArena:
    """Refcounted owner of a set of shared-memory segments.

    The arena lives in the coordinating (parent) process.  ``put`` copies
    an array into a fresh segment once per ``key`` — repeated puts under
    the same key bump a refcount and reuse the segment.  Workers never
    own anything: they attach read-only views and close them; the arena
    alone unlinks, in :meth:`destroy`, which is idempotent and registered
    with ``atexit`` as a crash backstop.  Thread-safe: ``run_suite`` may
    stage datasets while a resumed suite streams results on another thread.
    """

    def __init__(self, prefix: str = SEGMENT_PREFIX) -> None:
        self.prefix = prefix
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._refcounts: Dict[str, int] = {}
        self._by_key: Dict[object, ShmArrayHandle] = {}
        self._lock = threading.Lock()
        self._destroyed = False
        self._counter = 0
        atexit.register(self.destroy)

    # ------------------------------------------------------------------
    # parent side: staging
    # ------------------------------------------------------------------
    def _new_segment_name(self) -> str:
        self._counter += 1
        return f"{self.prefix}-{os.getpid()}-{id(self):x}-{self._counter}"

    def put(self, array: np.ndarray, key: object = None) -> ShmArrayHandle:
        """Copy ``array`` into a shared segment; returns its handle.

        With ``key`` given, a repeated put of the same key returns the
        existing handle (refcount bumped) without touching the data — the
        dedup path that lets every job of a dataset share one staging.
        """
        array = np.ascontiguousarray(array)
        with self._lock:
            if self._destroyed:
                raise RuntimeError("SharedArena is destroyed; create a new one")
            if key is not None and key in self._by_key:
                handle = self._by_key[key]
                self._refcounts[handle.segment] += 1
                return handle
            segment = shared_memory.SharedMemory(
                create=True, size=max(1, array.nbytes), name=self._new_segment_name()
            )
            view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
            view[...] = array
            handle = ShmArrayHandle(
                segment=segment.name,
                shape=tuple(int(d) for d in array.shape),
                dtype=str(array.dtype),
            )
            self._segments[segment.name] = segment
            self._refcounts[segment.name] = 1
            if key is not None:
                self._by_key[key] = handle
            return handle

    def decref(self, handle: ShmArrayHandle) -> None:
        """Drop one reference; the segment is unlinked at refcount zero."""
        with self._lock:
            count = self._refcounts.get(handle.segment)
            if count is None:
                return
            if count > 1:
                self._refcounts[handle.segment] = count - 1
                return
            segment = self._segments.pop(handle.segment)
            del self._refcounts[handle.segment]
            self._by_key = {
                key: kept
                for key, kept in self._by_key.items()
                if kept.segment != handle.segment
            }
        self._release(segment)

    @staticmethod
    def _release(segment: shared_memory.SharedMemory) -> None:
        try:
            segment.close()
        finally:
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already reaped
                pass

    def segment_names(self) -> Tuple[str, ...]:
        """Names of the live segments (leak probes check these by name)."""
        with self._lock:
            return tuple(self._segments)

    @property
    def nbytes(self) -> int:
        """Total bytes staged across live segments."""
        with self._lock:
            return sum(segment.size for segment in self._segments.values())

    def destroy(self) -> None:
        """Close and unlink every segment.  Idempotent; safe after crashes."""
        with self._lock:
            segments = list(self._segments.values())
            self._segments.clear()
            self._refcounts.clear()
            self._by_key.clear()
            self._destroyed = True
        for segment in segments:
            self._release(segment)

    def __enter__(self) -> "SharedArena":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.destroy()

    def __del__(self) -> None:  # pragma: no cover - GC timing
        try:
            self.destroy()
        except Exception:
            pass


# ----------------------------------------------------------------------
# worker side: attaching
# ----------------------------------------------------------------------

#: Segments this process attached (closed at exit; never unlinked here).
_ATTACHED: Dict[str, shared_memory.SharedMemory] = {}
_ATTACH_LOCK = threading.Lock()


def _close_attachments() -> None:  # pragma: no cover - exit hook
    with _ATTACH_LOCK:
        segments = list(_ATTACHED.values())
        _ATTACHED.clear()
    for segment in segments:
        try:
            segment.close()
        except Exception:
            pass


atexit.register(_close_attachments)


def attach_array(handle: ShmArrayHandle) -> np.ndarray:
    """A read-only zero-copy view over the shared segment behind ``handle``.

    The attachment is cached per process and closed at interpreter exit;
    the view is marked non-writeable so a job that tries to mutate shared
    graph data fails loudly instead of corrupting its siblings.
    """
    with _ATTACH_LOCK:
        segment = _ATTACHED.get(handle.segment)
        if segment is None:
            segment = _attach_untracked(handle.segment)
            _ATTACHED[handle.segment] = segment
    view = np.ndarray(
        handle.shape, dtype=np.dtype(handle.dtype), buffer=segment.buf
    )
    view.flags.writeable = False
    return view


# ----------------------------------------------------------------------
# graph-pair transport
# ----------------------------------------------------------------------

def _share_graph(arena: SharedArena, graph, key: str) -> Dict[str, ShmArrayHandle]:
    adjacency = graph.adjacency
    if not adjacency.has_sorted_indices:
        adjacency = adjacency.copy()
        adjacency.sort_indices()
    return {
        "indptr": arena.put(adjacency.indptr, key=f"{key}/indptr"),
        "indices": arena.put(adjacency.indices, key=f"{key}/indices"),
        "data": arena.put(adjacency.data, key=f"{key}/data"),
        "attributes": arena.put(graph.attributes, key=f"{key}/attributes"),
    }


def share_pair(arena: SharedArena, pair) -> SharedPairHandle:
    """Stage a :class:`GraphPair`'s arrays in ``arena``; returns its handle.

    The handle's ``content_key`` reuses the orbit cache's structural
    digest (:func:`repro.orbits.cache.graph_content_hash`) for both sides,
    so per-worker caches key on *what the graphs are*, not on where the
    suite loaded them from.
    """
    from repro.orbits.cache import graph_content_hash

    content_key = (
        f"{graph_content_hash(pair.source)}:{graph_content_hash(pair.target)}"
    )
    return SharedPairHandle(
        content_key=content_key,
        name=str(pair.name),
        source=_share_graph(arena, pair.source, f"{content_key}/source"),
        target=_share_graph(arena, pair.target, f"{content_key}/target"),
        ground_truth=arena.put(
            pair.ground_truth, key=f"{content_key}/ground_truth"
        ),
        source_shape=(int(pair.source.n_nodes), int(pair.source.n_nodes)),
        target_shape=(int(pair.target.n_nodes), int(pair.target.n_nodes)),
    )


def _attach_graph(handles: Dict[str, ShmArrayHandle], shape, name: str):
    import scipy.sparse as sp

    from repro.graph.attributed_graph import AttributedGraph

    adjacency = sp.csr_matrix(
        (
            attach_array(handles["data"]),
            attach_array(handles["indices"]),
            attach_array(handles["indptr"]),
        ),
        shape=shape,
        copy=False,
    )
    # The parent staged a canonical CSR (sorted, deduplicated, no explicit
    # zeros); assert that so scipy never tries to re-sort the read-only
    # buffers in place.
    adjacency.has_sorted_indices = True
    adjacency.has_canonical_format = True
    return AttributedGraph._from_validated_csr(
        adjacency, attach_array(handles["attributes"]), name
    )


def attach_pair(handle: SharedPairHandle):
    """Rebuild the :class:`GraphPair` behind ``handle`` as zero-copy views."""
    from repro.datasets.pair import GraphPair

    return GraphPair(
        source=_attach_graph(handle.source, handle.source_shape, handle.name),
        target=_attach_graph(handle.target, handle.target_shape, handle.name),
        ground_truth=attach_array(handle.ground_truth),
        name=handle.name,
    )


# ----------------------------------------------------------------------
# per-worker state (installed by the pool initializer)
# ----------------------------------------------------------------------

@dataclass
class WorkerState:
    """The per-worker-process execution context."""

    blas_thread_cap: Optional[int] = None
    blas_cap_method: Optional[str] = None
    dataset_cache: Dict[str, object] = field(default_factory=dict)
    dataset_cache_hits: int = 0
    dataset_cache_misses: int = 0


_WORKER_STATE = WorkerState()


def worker_state() -> WorkerState:
    """This process's worker context (a fresh default outside pools)."""
    return _WORKER_STATE


def shm_worker_init(blas_cap: Optional[int] = None) -> None:
    """Process-pool ``initializer``: BLAS governance + a clean dataset cache.

    Runs once per worker process, before any job: caps the BLAS/OpenMP
    threadpools to the fair share computed by the parent and resets the
    per-worker dataset cache (a forked worker would otherwise inherit the
    parent's — harmless but misleading for the hit counters).
    """
    global _WORKER_STATE
    _WORKER_STATE = WorkerState()
    if blas_cap is not None:
        _WORKER_STATE.blas_thread_cap = int(blas_cap)
        _WORKER_STATE.blas_cap_method = apply_blas_thread_cap(int(blas_cap))


def cached_attach_pair(handle: SharedPairHandle):
    """Attach ``handle``'s pair through the per-worker dataset cache.

    Returns ``(pair, "hit" | "attach")``; the first job of a dataset in a
    given worker attaches (zero-copy, no load), every later one reuses the
    constructed pair outright.
    """
    state = _WORKER_STATE
    pair = state.dataset_cache.get(handle.content_key)
    if pair is not None:
        state.dataset_cache_hits += 1
        return pair, "hit"
    pair = attach_pair(handle)
    state.dataset_cache[handle.content_key] = pair
    state.dataset_cache_misses += 1
    return pair, "attach"


__all__ = [
    "BLAS_ENV_VARS",
    "SEGMENT_PREFIX",
    "ShmArrayHandle",
    "SharedPairHandle",
    "SharedArena",
    "WorkerState",
    "apply_blas_thread_cap",
    "attach_array",
    "attach_pair",
    "blas_thread_cap",
    "cached_attach_pair",
    "share_pair",
    "shm_worker_init",
    "worker_state",
]
