"""Pluggable compute backends and precision policies.

This package is the shared substrate under every hot numerical path in the
reproduction:

* :mod:`repro.backend.registry` — generic named-backend registries with
  availability probing and ``"auto"`` resolution (generalising the orbit
  engine's private selection logic; :mod:`repro.orbits.engine` now registers
  its ``python``/``numpy`` counters here under the ``"orbit"`` kind),
* :mod:`repro.backend.compute` — the ``"compute"`` registry of dense
  linear-algebra kernels (GEMM, clip); ``numpy`` is the built-in default
  and accelerated implementations plug in via ``compute_registry()``,
* :mod:`repro.backend.executor` — the ``"executor"`` registry of
  job-execution strategies (``serial`` / ``process-pool`` /
  ``thread-pool`` / ``process-pool-shm``) behind the
  :class:`ExecutorBackend` contract; the suite runner and the shard
  pipeline submit their jobs through it,
* :mod:`repro.backend.shm` — the zero-copy shared-memory substrate under
  ``process-pool-shm``: :class:`~repro.backend.shm.SharedArena` segments
  with refcounted handles and guaranteed unlink, graph-pair staging /
  attach helpers, per-worker dataset caches and BLAS thread governance,
* :mod:`repro.backend.precision` — :class:`PrecisionPolicy`, the
  (compute dtype, accumulation dtype) pair threaded through the similarity
  kernels, the serve index/artifacts, the shard stitcher and the core
  aligner.  ``float64`` (default) is bit-identical to the historical code;
  ``float32`` halves score-matrix memory and accumulates reductions in
  float64.

Select both knobs per run via :class:`repro.core.HTCConfig`
(``compute_dtype=...``, ``backend=...``, ``executor_backend=...``) or the
CLI (``--dtype``, ``--backend``, ``--executor``).
"""

from repro.backend.compute import (
    ComputeBackend,
    available_compute_backends,
    compute_registry,
    get_compute_backend,
    resolve_compute_backend,
)
from repro.backend.executor import (
    EXECUTOR_KIND,
    ExecutorBackend,
    ExecutorJob,
    available_executor_backends,
    executor_registry,
    get_executor_backend,
    resolve_executor_backend,
)
from repro.backend.precision import (
    FLOAT32,
    FLOAT64,
    PRECISIONS,
    PrecisionPolicy,
    as_score_matrix,
    resolve_policy,
    score_dtype,
)
from repro.backend.shm import (
    SharedArena,
    SharedPairHandle,
    ShmArrayHandle,
    attach_pair,
    blas_thread_cap,
    share_pair,
)
from repro.backend.registry import (
    AUTO_BACKEND,
    BackendRegistry,
    BackendUnavailableError,
    get_registry,
    peek_registry,
    registered_kinds,
)

__all__ = [
    "AUTO_BACKEND",
    "BackendRegistry",
    "BackendUnavailableError",
    "get_registry",
    "peek_registry",
    "registered_kinds",
    "ComputeBackend",
    "compute_registry",
    "available_compute_backends",
    "resolve_compute_backend",
    "get_compute_backend",
    "EXECUTOR_KIND",
    "ExecutorBackend",
    "ExecutorJob",
    "executor_registry",
    "available_executor_backends",
    "resolve_executor_backend",
    "get_executor_backend",
    "SharedArena",
    "SharedPairHandle",
    "ShmArrayHandle",
    "share_pair",
    "attach_pair",
    "blas_thread_cap",
    "PRECISIONS",
    "PrecisionPolicy",
    "FLOAT64",
    "FLOAT32",
    "resolve_policy",
    "score_dtype",
    "as_score_matrix",
]
