"""Precision policies: which dtype the hot paths compute and accumulate in.

Every GEMM, hubness pass and top-``k`` selection in the similarity, serve
and shard layers used to hard-code ``np.float64``.  A
:class:`PrecisionPolicy` makes the choice explicit and threads it through
the kernels as one object:

* ``float64`` (the default) — exact mode.  Every operation is performed in
  double precision, **bit-identical** to the pre-policy code paths; the
  regression-gated identity tests run in this mode.
* ``float32`` — compute mode.  Score matrices, GEMM operands and index
  score arrays are ``float32`` (half the memory, and measurably faster
  GEMMs on typical BLAS builds — see ``benchmarks/bench_precision.py``),
  while **reductions accumulate in float64**: hubness means, weighted
  integration sums and similar statistics are produced with a float64
  accumulator (``accum_dtype``) so error does not grow with the reduction
  length.  Results carry documented tolerances rather than bit-identity.

Policies are immutable value objects; ``resolve_policy`` accepts a policy,
a dtype-like spec (``"float32"``, ``np.float32`` ...) or ``None`` (the
float64 default), so call sites can expose a permissive ``policy=`` kwarg.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

import numpy as np

#: Precision names accepted by :func:`resolve_policy` and ``--dtype``.
PRECISIONS = ("float64", "float32")


@dataclass(frozen=True)
class PrecisionPolicy:
    """An immutable (compute dtype, accumulation dtype) pair.

    Attributes
    ----------
    name:
        ``"float64"`` or ``"float32"`` — the user-facing policy name.
    compute_dtype:
        Dtype of score matrices, GEMM operands/outputs and stored index
        scores.
    accum_dtype:
        Dtype reductions accumulate in; always ``float64`` so the float32
        policy keeps full-precision statistics (hubness vectors, weighted
        sums).
    """

    name: str
    compute_dtype: np.dtype
    accum_dtype: np.dtype

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    @property
    def is_exact(self) -> bool:
        """True for the bit-identical float64 policy."""
        return self.compute_dtype == np.dtype(np.float64)

    @property
    def itemsize(self) -> int:
        """Bytes per score element under this policy."""
        return int(self.compute_dtype.itemsize)

    # ------------------------------------------------------------------
    # array helpers
    # ------------------------------------------------------------------
    def asarray(self, array) -> np.ndarray:
        """``np.asarray`` in the compute dtype (no copy when already right)."""
        return np.asarray(array, dtype=self.compute_dtype)

    def empty(self, shape) -> np.ndarray:
        return np.empty(shape, dtype=self.compute_dtype)

    def zeros(self, shape) -> np.ndarray:
        return np.zeros(shape, dtype=self.compute_dtype)

    def cast(self, array: np.ndarray) -> np.ndarray:
        """Cast to the compute dtype, returning the input unchanged if it
        already matches (the float64 policy never copies float64 data)."""
        array = np.asarray(array)
        if array.dtype == self.compute_dtype:
            return array
        return array.astype(self.compute_dtype)

    def validate_out(self, out: np.ndarray, shape: Tuple[int, ...], *,
                     context: str = "out") -> np.ndarray:
        """Check a pre-allocated output buffer against this policy.

        The error names the active policy so callers who allocated a buffer
        under one dtype and scored under another see exactly which knob
        disagrees (the old check hard-rejected anything non-float64).
        """
        if out.shape != tuple(shape) or out.dtype != self.compute_dtype:
            raise ValueError(
                f"{context} must be a {self.compute_dtype.name} array of shape "
                f"{tuple(shape)} under the active precision policy "
                f"{self.name!r}, got {out.dtype} {out.shape}"
            )
        return out

    # ------------------------------------------------------------------
    # reductions (float64 accumulation)
    # ------------------------------------------------------------------
    def mean(self, array: np.ndarray, axis: int) -> np.ndarray:
        """Mean along ``axis`` accumulated in ``accum_dtype``.

        Under the float64 policy this is bit-identical to a plain
        ``array.mean(axis=axis)`` (NumPy already accumulates float64 input
        in float64); under float32 it is the policy's documented
        compute-low/accumulate-high behaviour.
        """
        return array.mean(axis=axis, dtype=self.accum_dtype)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PrecisionPolicy({self.name!r}, compute={self.compute_dtype.name}, "
            f"accum={self.accum_dtype.name})"
        )


#: The exact (bit-identical, default) policy.
FLOAT64 = PrecisionPolicy(
    name="float64",
    compute_dtype=np.dtype(np.float64),
    accum_dtype=np.dtype(np.float64),
)

#: The reduced-memory policy: float32 compute, float64 accumulation.
FLOAT32 = PrecisionPolicy(
    name="float32",
    compute_dtype=np.dtype(np.float32),
    accum_dtype=np.dtype(np.float64),
)

_POLICIES = {"float64": FLOAT64, "float32": FLOAT32}

PolicyLike = Union[None, str, np.dtype, type, PrecisionPolicy]


def resolve_policy(policy: PolicyLike = None) -> PrecisionPolicy:
    """Normalise a policy spec to a :class:`PrecisionPolicy`.

    Accepts ``None`` (→ the float64 default), a policy name, a dtype-like
    (``np.float32``, ``"float32"``, ``np.dtype("float32")``) or an existing
    policy (returned as-is).
    """
    if policy is None:
        return FLOAT64
    if isinstance(policy, PrecisionPolicy):
        return policy
    try:
        name = np.dtype(policy).name
    except TypeError:
        name = str(policy)
    resolved = _POLICIES.get(name)
    if resolved is None:
        raise ValueError(
            f"unknown precision policy {policy!r}; expected one of {PRECISIONS}"
        )
    return resolved


def score_dtype(array_or_dtype) -> np.dtype:
    """The policy-legal dtype a score container should use for ``array``.

    Float32 and float64 data keep their dtype; anything else (ints, bools,
    float16 ...) is promoted to float64 — exactly the historical coercion,
    minus the silent float32 upcast.
    """
    dtype = getattr(array_or_dtype, "dtype", None)
    if dtype is None:
        dtype = np.dtype(array_or_dtype)
    if dtype in (np.dtype(np.float32), np.dtype(np.float64)):
        return dtype
    return np.dtype(np.float64)


def as_score_matrix(array) -> np.ndarray:
    """Coerce to a policy-legal score array (see :func:`score_dtype`)."""
    array = np.asarray(array)
    wanted = score_dtype(array)
    if array.dtype == wanted:
        return array
    return array.astype(wanted)


__all__ = [
    "PRECISIONS",
    "PrecisionPolicy",
    "FLOAT64",
    "FLOAT32",
    "resolve_policy",
    "score_dtype",
    "as_score_matrix",
]
