"""The ``"compute"`` backend registry: dense linear-algebra kernels.

A compute backend supplies the handful of array primitives the hot scoring
paths are written against — today a GEMM (``matmul``) and the score clip.
The similarity kernels call these through the registry instead of
``np.matmul`` directly, so an accelerated implementation (a GPU library, a
tuned C extension) can be dropped in by registering a backend, without
touching the kernels:

>>> from repro.backend import compute_registry, ComputeBackend
>>> compute_registry().register(
...     "my-accel", ComputeBackend(name="my-accel", matmul=my_gemm),
...     priority=10, available=my_probe)

``"numpy"`` is the built-in default.  The numpy backend forwards to
``np.matmul``/``np.clip`` unchanged, so routing through the registry keeps
the float64 path bit-identical to the pre-registry code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from repro.backend.registry import AUTO_BACKEND, BackendRegistry, get_registry

#: Registry kind for dense compute backends.
COMPUTE_KIND = "compute"


@dataclass(frozen=True)
class ComputeBackend:
    """Array primitives one compute backend provides.

    Attributes
    ----------
    name:
        Backend identity (matches its registry name).
    matmul:
        ``matmul(a, b, out) -> out`` — a GEMM writing into ``out``; operand
        dtypes follow the active precision policy.
    clip:
        ``clip(a, lo, hi, out) -> out`` — elementwise clamp (defaults to
        ``np.clip``).
    """

    name: str
    matmul: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray]
    clip: Callable[[np.ndarray, float, float, np.ndarray], np.ndarray] = np.clip


def _numpy_matmul(a: np.ndarray, b: np.ndarray, out: np.ndarray) -> np.ndarray:
    return np.matmul(a, b, out=out)


def _numpy_clip(a, lo, hi, out):
    return np.clip(a, lo, hi, out=out)


NUMPY_BACKEND = ComputeBackend(name="numpy", matmul=_numpy_matmul, clip=_numpy_clip)


def compute_registry() -> BackendRegistry:
    """The process-global compute registry.

    ``"numpy"`` is the built-in default; ``"sparse"``
    (:mod:`repro.backend.sparse`) registers with negative priority so that
    ``"auto"`` never picks it implicitly — sparse GEMM accumulation order
    can differ from dense in the last float ulp, so it is opt-in only.
    """
    registry = get_registry(COMPUTE_KIND)
    if "numpy" not in registry.names():
        registry.register("numpy", NUMPY_BACKEND, priority=0)
    if "sparse" not in registry.names():
        from repro.backend.sparse import SPARSE_BACKEND, scipy_available

        registry.register(
            "sparse", SPARSE_BACKEND, priority=-10, available=scipy_available
        )
    return registry


def available_compute_backends() -> Tuple[str, ...]:
    """Usable compute backend names (without the ``"auto"`` alias)."""
    return compute_registry().available()


def resolve_compute_backend(name: str = AUTO_BACKEND) -> str:
    """Normalise a compute-backend selector (``"auto"`` → the default)."""
    return compute_registry().resolve(name)


def get_compute_backend(name: Optional[str] = None) -> ComputeBackend:
    """The :class:`ComputeBackend` behind ``name`` (default ``"auto"``)."""
    return compute_registry().get(AUTO_BACKEND if name is None else name)


__all__ = [
    "COMPUTE_KIND",
    "ComputeBackend",
    "NUMPY_BACKEND",
    "compute_registry",
    "available_compute_backends",
    "resolve_compute_backend",
    "get_compute_backend",
]
