"""Declarative multi-pair experiment suites and their parallel executor.

The runner turns the one-shot ``HTCAligner.align`` reproduction into a batch
service: a :class:`~repro.runner.spec.SuiteSpec` declares a grid of dataset
pairs × methods × config overrides, :func:`~repro.runner.executor.run_suite`
executes the expanded jobs on a process pool with per-job timeouts, writes
one JSON artifact per job plus a suite manifest, skips jobs whose artifact
already matches the spec hash (``--resume``), and
:mod:`repro.runner.aggregate` folds the artifacts back into the
:mod:`repro.eval.reporting` tables.
"""

from repro.runner.aggregate import (
    format_suite_table,
    load_artifacts,
    load_manifest,
    to_method_results,
)
from repro.runner.executor import SuiteRunReport, resolve_method, run_suite
from repro.runner.spec import JobSpec, SuiteSpec, spec_hash

__all__ = [
    "JobSpec",
    "SuiteSpec",
    "spec_hash",
    "run_suite",
    "resolve_method",
    "SuiteRunReport",
    "load_artifacts",
    "load_manifest",
    "format_suite_table",
    "to_method_results",
]
