"""Suite execution over the pluggable ``"executor"`` backend layer.

``run_suite`` expands a :class:`~repro.runner.spec.SuiteSpec` into jobs and
submits them through an :class:`repro.backend.executor.ExecutorBackend` —
``serial`` (inline, deterministic), ``process-pool`` (the historical local
pool), ``thread-pool`` (daemon threads, external timeout enforcement) or
``process-pool-shm`` (warm workers attaching datasets zero-copy from a
shared-memory arena, BLAS threads capped per worker) — selected via
``SuiteSpec.executor_backend``, the ``executor`` argument or ``"auto"``
resolution.  Parallel backends receive their jobs longest-expected-first:
per-job ``wall_seconds`` from a prior manifest of the same suite feed a
cost model (grid-size heuristic fallback), shrinking the straggler tail
without touching the manifest's deterministic row order.  Every job produces one JSON artifact under
``<output_dir>/<suite>/jobs/``; the suite manifest (``manifest.json``)
records the job statuses, the executor that produced the run and the wall
clock.  With ``resume=True``, jobs whose artifact already exists, carries
the current spec hash and finished successfully are skipped — so an
interrupted sweep restarts from where it stopped, and editing any job knob
re-runs exactly the affected jobs.  The executor choice never enters the
job specs, so spec hashes (and therefore ``--resume`` and artifact
identity) are invariant across backends.

Under ``serial`` and ``process-pool``, per-job timeouts are enforced
*inside* the job with ``SIGALRM`` (Unix), so a job stuck in Python code
turns into a ``timeout`` artifact instead of wedging the pool.  Caveat: the
alarm is delivered between bytecodes, so a job blocked inside one long
native call (a huge BLAS GEMM, a scipy solver) is only interrupted when
that call returns.  Under ``thread-pool`` the budget is enforced outside
the job (``SIGALRM`` is main-thread-only), which also covers platforms
without ``SIGALRM``.
"""

from __future__ import annotations

import json
import os
import signal
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.backend.executor import (
    SERIAL,
    ExecutorJob,
    get_executor_backend,
    resolve_executor_backend,
)
from repro.backend.registry import AUTO_BACKEND
from repro.backend.shm import (
    SharedArena,
    SharedPairHandle,
    blas_thread_cap,
    cached_attach_pair,
    share_pair,
    worker_state,
)
from repro.runner.spec import JobSpec, SuiteSpec
from repro.utils.logging import get_logger

logger = get_logger(__name__)

#: Artifact status values.
STATUS_DONE = "done"
STATUS_FAILED = "failed"
STATUS_TIMEOUT = "timeout"
STATUS_CACHED = "cached"


class JobTimeout(Exception):
    """Raised inside a worker when a job exceeds its wall-clock budget."""


def _htc_variant_names() -> tuple:
    from repro.core.variants import ABLATION_VARIANTS, EXTRA_ABLATION_VARIANTS

    return ("HTC",) + tuple(ABLATION_VARIANTS) + tuple(EXTRA_ABLATION_VARIANTS)


def known_method_names() -> tuple:
    """Every method name :func:`resolve_method` accepts (for help/docs)."""
    from repro.baselines import PAPER_BASELINES

    return _htc_variant_names() + tuple(PAPER_BASELINES) + ("Degree", "Attribute")


def resolve_method(name: str, config) -> object:
    """Instantiate a method by name: HTC, an ablation variant, or a baseline.

    The single source of the method vocabulary, shared by the CLI and the
    suite runner.  An HTC config with ``shard_count`` set routes through the
    partition–align–stitch subsystem (:mod:`repro.shard`) transparently.
    """
    from repro.baselines import make_baseline
    from repro.core import HTCAligner
    from repro.core.variants import make_variant

    if name == "HTC":
        if getattr(config, "shard_count", None):
            from repro.shard.executor import ShardedAligner

            stitch = str(getattr(config, "extra", {}).get("stitch", "memory"))
            return ShardedAligner(config, stitch=stitch)
        return HTCAligner(config)
    if name in _htc_variant_names():
        return make_variant(name, config)
    return make_baseline(name)


def _alarm_handler(signum, frame):  # pragma: no cover - trivial
    raise JobTimeout()


def execute_job(
    job_payload: Dict[str, object],
    timeout: Optional[float] = None,
    method_resolver: Optional[Callable[[str, object], object]] = None,
    emit_artifacts_dir: Optional[str] = None,
    dataset_shm: Optional[SharedPairHandle] = None,
) -> Dict[str, object]:
    """Run one job to completion and return its artifact payload.

    Runs in a worker process (but is equally callable inline).  Never raises:
    failures and timeouts are captured into the artifact's ``status`` /
    ``error`` fields so one bad cell cannot take down a sweep.

    With ``emit_artifacts_dir`` set, the job's final alignment (the last
    run's raw ``align`` output) is additionally persisted as a serve
    artifact under that directory (see :mod:`repro.serve.artifacts`); the
    job payload then records its ``serve_artifact`` id and path.

    With ``dataset_shm`` set (the ``process-pool-shm`` executor), the
    dataset is *attached* from the coordinator's shared-memory arena
    through the per-worker cache instead of being re-loaded — zero-copy
    read-only CSR views, one materialisation per dataset per worker.  The
    transport is recorded under the artifact's transient
    ``_executor_detail`` key, which the coordinator pops into the suite
    manifest — job artifacts on disk stay byte-identical across executors.

    When span tracing is on (``REPRO_TRACE=1`` /
    :func:`repro.obs.enable_tracing`), the job's per-phase spans
    (``runner.job/load_dataset`` etc.) are recorded into a job-local
    registry and attached as ``artifact["observability"]`` — a mergeable
    snapshot that :func:`run_suite` folds into the suite manifest.  The
    key is absent when tracing is off, so cached artifacts and manifests
    stay byte-stable for the executor-parity checks.
    """
    from repro.core import HTCConfig
    from repro.datasets import load_dataset
    from repro.eval.protocol import run_method
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracing import span, tracing_enabled

    from repro import __version__

    job = JobSpec.from_dict(job_payload)
    artifact: Dict[str, object] = {
        "job_id": job.job_id,
        "spec": job.to_dict(),
        "spec_hash": job.hash,
        "repro_version": __version__,
        "status": STATUS_FAILED,
        "result": None,
        "error": None,
    }
    use_alarm = timeout is not None and hasattr(signal, "SIGALRM")
    previous_handler = None
    if use_alarm:
        previous_handler = signal.signal(signal.SIGALRM, _alarm_handler)
        signal.setitimer(signal.ITIMER_REAL, float(timeout))
    obs_registry = MetricsRegistry(job.job_id) if tracing_enabled() else None
    transport: Optional[str] = None
    started = time.perf_counter()
    try:
        with span("runner.job", obs_registry):
            config_overrides = dict(job.config)
            config_overrides.setdefault("random_state", job.seed)
            config = HTCConfig(**config_overrides)
            resolver = (
                method_resolver if method_resolver is not None else resolve_method
            )
            method = resolver(job.method, config)
            with span("load_dataset", obs_registry):
                if dataset_shm is not None:
                    pair, transport = cached_attach_pair(dataset_shm)
                else:
                    pair = load_dataset(job.dataset, **dict(job.dataset_params))
                    transport = "load"
            last_alignment: List[object] = []
            on_result = last_alignment.append if emit_artifacts_dir else None
            with span("align", obs_registry):
                result = run_method(
                    method,
                    pair,
                    train_ratio=job.train_ratio,
                    n_runs=job.n_runs,
                    random_state=job.seed,
                    on_result=on_result,
                )
            artifact["status"] = STATUS_DONE
            artifact["result"] = result.to_dict()
            if emit_artifacts_dir and last_alignment:
                with span("emit_artifact", obs_registry):
                    artifact["serve_artifact"] = _emit_serve_artifact(
                        last_alignment[-1], config, job, emit_artifacts_dir
                    )
    except JobTimeout:
        artifact["status"] = STATUS_TIMEOUT
        artifact["error"] = f"job exceeded the {timeout}s wall-clock budget"
    except Exception as error:  # noqa: BLE001 - artifact carries the failure
        artifact["status"] = STATUS_FAILED
        artifact["error"] = (
            f"{type(error).__name__}: {error}\n{traceback.format_exc()}"
        )
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous_handler)
    artifact["wall_seconds"] = time.perf_counter() - started
    if obs_registry is not None and len(obs_registry):
        artifact["observability"] = obs_registry.snapshot()
    state = worker_state()
    if dataset_shm is not None or state.blas_thread_cap is not None:
        # Transient coordination metadata: popped (never written to disk)
        # by run_suite and aggregated into manifest["executor_detail"], so
        # job artifacts and spec hashes stay executor-invariant.
        artifact["_executor_detail"] = {
            "dataset_transport": transport,
            "blas_thread_cap": state.blas_thread_cap,
            "blas_cap_method": state.blas_cap_method,
        }
    return artifact


def _emit_serve_artifact(
    raw_result: object,
    config,
    job: JobSpec,
    artifacts_dir: str,
) -> Dict[str, object]:
    """Persist one job's alignment as a serve artifact; returns its summary."""
    from repro.serve.artifacts import export_result

    info = export_result(
        raw_result,
        config,
        root=artifacts_dir,
        name=job.job_id,
        metadata={
            "dataset": job.dataset,
            "method": job.method,
            "job_id": job.job_id,
            "spec_hash": job.hash,
        },
    )
    return {
        "artifact_id": info.artifact_id,
        "path": str(info.path),
        "disk_bytes": info.disk_bytes,
        "compression_ratio": round(info.index.compression_ratio, 2),
    }


def _write_json(path: Path, payload: Dict[str, object]) -> None:
    """Atomic JSON write (tmp file + rename)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    # Insertion order is kept (no key sorting) so round-tripped metric
    # columns render in the same order as a fresh run.
    tmp.write_text(json.dumps(payload, indent=2) + "\n")
    os.replace(tmp, path)


def _load_cached_artifact(path: Path, job: JobSpec) -> Optional[Dict[str, object]]:
    """The existing artifact for ``job`` if it is valid and complete."""
    if not path.is_file():
        return None
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if payload.get("spec_hash") != job.hash:
        return None
    if payload.get("status") != STATUS_DONE:
        return None
    return payload


#: Methods whose jobs are near-instant (no training loop); the cost model
#: weighs them far below the trained methods when no prior timing exists.
_CHEAP_METHODS = ("Degree", "Attribute")


def _prior_wall_seconds(manifest_path: Path) -> Dict[str, float]:
    """Per-job ``wall_seconds`` from a previous manifest of this suite.

    The resume machinery already parses these manifests; here they feed the
    cost model — a job that took 40s last night is submitted before one
    that took 2s, shrinking the straggler tail.  Missing or unreadable
    manifests simply yield no priors.
    """
    try:
        payload = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError):
        return {}
    prior: Dict[str, float] = {}
    for row in payload.get("jobs") or []:
        if not isinstance(row, dict):
            continue
        try:
            seconds = float(row.get("wall_seconds", 0.0))
        except (TypeError, ValueError):
            continue
        if seconds > 0.0:
            prior[str(row.get("job_id"))] = seconds
    return prior


def _heuristic_cost(job: JobSpec) -> float:
    """Grid-size cost estimate for jobs with no recorded prior timing.

    Dimensionless: dataset scale enters quadratically (score matrices are
    ``O(n^2)``), training epochs linearly, and the un-trained baselines are
    weighted down to almost nothing.
    """

    def _float(value, default: float) -> float:
        try:
            return float(value)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return default

    scale = _float(dict(job.dataset_params).get("scale"), 1.0)
    epochs = _float(dict(job.config).get("epochs"), 40.0)
    weight = 0.05 if job.method in _CHEAP_METHODS else 1.0
    return weight * max(scale, 1e-3) ** 2 * max(epochs, 1.0) * max(1, job.n_runs)


def order_longest_first(
    pending: List[JobSpec], prior: Dict[str, float]
) -> List[JobSpec]:
    """Longest-expected-first submission order (deterministic, stable ties).

    Jobs with a recorded prior ``wall_seconds`` use it directly; the rest
    fall back to :func:`_heuristic_cost`, calibrated into seconds via the
    median prior/heuristic ratio when any priors exist so the two cost
    sources sort on one axis.
    """
    heuristics = [_heuristic_cost(job) for job in pending]
    known = [
        (prior[job.job_id], heuristics[i])
        for i, job in enumerate(pending)
        if prior.get(job.job_id, 0.0) > 0.0
    ]
    calibration = 1.0
    if known:
        seconds = sorted(s for s, _ in known)[len(known) // 2]
        units = sorted(u for _, u in known)[len(known) // 2]
        if units > 0.0:
            calibration = seconds / units

    def _cost(position: int) -> float:
        recorded = prior.get(pending[position].job_id, 0.0)
        return recorded if recorded > 0.0 else heuristics[position] * calibration

    order = sorted(range(len(pending)), key=lambda i: (-_cost(i), i))
    return [pending[i] for i in order]


@dataclass
class SuiteRunReport:
    """Outcome of one :func:`run_suite` invocation."""

    suite: SuiteSpec
    suite_dir: Path
    manifest_path: Path
    artifacts: List[Dict[str, object]] = field(default_factory=list)
    wall_clock_seconds: float = 0.0
    jobs_requested: int = 0
    workers: int = 1
    executor: str = SERIAL
    #: Execution-layer telemetry (BLAS caps, dataset-cache hit counts) when
    #: the executor reports any; mirrored in ``manifest["executor_detail"]``
    #: — always outside the job specs, so spec hashes stay invariant.
    executor_detail: Optional[Dict[str, object]] = None

    @property
    def counts(self) -> Dict[str, int]:
        """Job tally per status (``cached`` = skipped by ``resume``)."""
        tally: Dict[str, int] = {}
        for artifact in self.artifacts:
            status = str(artifact.get("status"))
            tally[status] = tally.get(status, 0) + 1
        return tally

    def rows(self) -> List[Dict[str, object]]:
        """Flatten the artifacts into report rows (see ``aggregate``)."""
        from repro.runner.aggregate import artifact_rows

        return artifact_rows(self.artifacts)

    def table(self, title: str = "") -> str:
        """Render the suite results with :func:`repro.eval.reporting.format_table`."""
        from repro.eval.reporting import format_table

        return format_table(self.rows(), title=title or f"suite {self.suite.name}")


def run_suite(
    suite: SuiteSpec,
    output_dir,
    jobs: int = 1,
    resume: bool = False,
    timeout: Optional[float] = None,
    method_resolver: Optional[Callable[[str, object], object]] = None,
    on_job_done: Optional[Callable[[Dict[str, object]], None]] = None,
    emit_artifacts: bool = False,
    executor: Optional[str] = None,
) -> SuiteRunReport:
    """Execute every job of ``suite`` and return the run report.

    Parameters
    ----------
    suite:
        The declarative suite specification.
    output_dir:
        Root artifact directory; this run writes under
        ``<output_dir>/<suite.name>/``.
    jobs:
        Worker slots (processes or threads, per the executor backend).
        ``1`` runs inline under ``"auto"``; ``<= 0`` uses the CPU count.
    resume:
        Skip jobs whose artifact exists, matches the current spec hash, and
        completed successfully.
    timeout:
        Per-job wall-clock limit in seconds; overrides ``suite.timeout``
        when given.
    method_resolver:
        Optional replacement for :func:`resolve_method` (must be a picklable
        module-level callable under the ``process-pool`` executor).
    on_job_done:
        Optional callback invoked with each artifact as it completes.
    emit_artifacts:
        Additionally persist every job's alignment as a serve artifact
        under ``<suite_dir>/serve_artifacts/`` (queryable via
        :class:`repro.serve.service.AlignmentService` and the ``query``
        CLI subcommand).
    executor:
        Executor backend name (``"serial"`` / ``"process-pool"`` /
        ``"thread-pool"`` / ``"auto"``); overrides
        ``suite.executor_backend`` when given.  Under ``"auto"``, a run
        with one worker or at most one pending job resolves to ``serial``
        (the historical inline path — also what keeps non-picklable
        ``method_resolver`` callables working), anything larger to the
        registry default.  The choice is recorded in the manifest but never
        in the job specs, so spec hashes match across executors.
    """
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    timeout = timeout if timeout is not None else suite.timeout
    suite_dir = Path(output_dir) / suite.name
    jobs_dir = suite_dir / "jobs"
    serve_dir = str(suite_dir / "serve_artifacts") if emit_artifacts else None
    job_specs = suite.jobs()

    from repro import __version__

    started = time.perf_counter()
    artifacts: List[Dict[str, object]] = []
    pending: List[JobSpec] = []
    for job in job_specs:
        artifact_path = jobs_dir / f"{job.job_id}.json"
        cached = _load_cached_artifact(artifact_path, job) if resume else None
        if cached is not None and emit_artifacts and "serve_artifact" not in cached:
            # The cached run predates artifact emission; re-run the job so
            # --emit-artifacts is honoured rather than silently skipped.
            cached = None
        if cached is not None:
            cached = dict(cached)
            cached_version = cached.get("repro_version")
            if cached_version != __version__:
                # Same spec hash, different writer version: the artifact is
                # still reusable (the spec is what defines the job), but the
                # user should know results may mix code generations.
                logger.warning(
                    "job %s: resuming from an artifact written by repro %s "
                    "(current %s); spec hash matches, reusing it",
                    job.job_id,
                    cached_version or "<unrecorded>",
                    __version__,
                )
            cached["status"] = STATUS_CACHED
            artifacts.append(cached)
            if on_job_done is not None:
                on_job_done(cached)
        else:
            pending.append(job)

    # Execution-layer telemetry accumulated across job artifacts.  The
    # per-job ``_executor_detail`` key is transient: popped here before the
    # artifact hits disk, so job JSONs stay byte-identical across executors.
    transport_counts: Dict[str, int] = {}
    observed_caps: set = set()
    observed_cap_methods: set = set()

    def _record(artifact: Dict[str, object]) -> None:
        detail = artifact.pop("_executor_detail", None)
        if isinstance(detail, dict):
            transport = str(detail.get("dataset_transport"))
            transport_counts[transport] = transport_counts.get(transport, 0) + 1
            if detail.get("blas_thread_cap") is not None:
                observed_caps.add(int(detail["blas_thread_cap"]))
            if detail.get("blas_cap_method"):
                observed_cap_methods.add(str(detail["blas_cap_method"]))
        artifact_path = jobs_dir / f"{artifact['job_id']}.json"
        _write_json(artifact_path, artifact)
        artifacts.append(artifact)
        if on_job_done is not None:
            on_job_done(artifact)
        logger.info(
            "job %s finished: %s (%.2fs)",
            artifact["job_id"],
            artifact["status"],
            artifact.get("wall_seconds", 0.0),
        )

    requested = executor if executor is not None else suite.executor_backend
    if requested in (None, "", AUTO_BACKEND) and (jobs == 1 or len(pending) <= 1):
        # The historical inline path: deterministic, zero overhead, and the
        # only mode where a non-picklable method_resolver is usable.
        resolved_executor = SERIAL
    else:
        resolved_executor = resolve_executor_backend(requested or AUTO_BACKEND)
    backend = get_executor_backend(resolved_executor)

    by_key = {job.job_id: job for job in pending}

    def _skeleton(job: JobSpec, status: str, error: str) -> Dict[str, object]:
        return {
            "job_id": job.job_id,
            "spec": job.to_dict(),
            "spec_hash": job.hash,
            "repro_version": __version__,
            "status": status,
            "result": None,
            "error": error,
            "wall_seconds": 0.0,
        }

    # Cost-model scheduling: under a parallel backend, submit the
    # longest-expected jobs first so the pool's stragglers start early and
    # the tail shrinks.  Serial runs keep the suite's declared order.
    submission = pending
    if resolved_executor != SERIAL and len(pending) > 1:
        submission = order_longest_first(
            pending, _prior_wall_seconds(suite_dir / "manifest.json")
        )

    # Zero-copy dataset staging: for executors that advertise
    # ``supports_shared_datasets``, the coordinator loads each unique
    # (dataset, params) cell once into a shared-memory arena and ships
    # handles instead of pickled CSR buffers.  A dataset that fails to
    # stage (exotic dtypes, load error) falls back to in-worker loading
    # for just its jobs.  ``finally: arena.destroy()`` guarantees the
    # segments are unlinked even on KeyboardInterrupt or a pool crash.
    arena: Optional[SharedArena] = None
    shm_handles: Dict[tuple, Optional[SharedPairHandle]] = {}
    shared_bytes = 0
    supports_shm = bool(getattr(backend, "supports_shared_datasets", False))
    if supports_shm and pending:
        from repro.datasets import load_dataset

        arena = SharedArena()
        for job in submission:
            dataset_key = (job.dataset, job.dataset_params)
            if dataset_key in shm_handles:
                continue
            try:
                staged = load_dataset(job.dataset, **dict(job.dataset_params))
                shm_handles[dataset_key] = share_pair(arena, staged)
            except Exception as error:  # noqa: BLE001 - staging is best-effort
                logger.warning(
                    "dataset %s%s not stageable to shared memory (%s: %s); "
                    "its jobs will load it in-worker",
                    job.dataset,
                    dict(job.dataset_params) or "",
                    type(error).__name__,
                    error,
                )
                shm_handles[dataset_key] = None
        shared_bytes = arena.nbytes

    try:
        backend.submit_jobs(
            [
                ExecutorJob(
                    key=job.job_id,
                    fn=execute_job,
                    args=(job.to_dict(),),
                    kwargs={
                        "method_resolver": method_resolver,
                        "emit_artifacts_dir": serve_dir,
                        "dataset_shm": shm_handles.get(
                            (job.dataset, job.dataset_params)
                        ),
                    },
                )
                for job in submission
            ],
            workers=jobs,
            timeout=timeout,
            on_result=lambda key, artifact: _record(artifact),
            on_crash=lambda exec_job, message: _skeleton(
                by_key[exec_job.key], STATUS_FAILED, f"worker crashed: {message}"
            ),
            on_timeout=lambda exec_job: _skeleton(
                by_key[exec_job.key],
                STATUS_TIMEOUT,
                f"job exceeded the {timeout}s wall-clock budget",
            ),
        )
    finally:
        if arena is not None:
            arena.destroy()

    wall_clock = time.perf_counter() - started
    # Keep manifest rows in the suite's deterministic job order.
    by_id = {str(a["job_id"]): a for a in artifacts}
    ordered = [by_id[job.job_id] for job in job_specs if job.job_id in by_id]
    manifest = {
        "suite": suite.to_dict(),
        "repro_version": __version__,
        "workers": jobs,
        "executor": resolved_executor,
        "resume": resume,
        "emit_artifacts": emit_artifacts,
        "timeout": timeout,
        "wall_clock_seconds": wall_clock,
        "created_unix": time.time(),
        "jobs": [
            {
                "job_id": a["job_id"],
                "status": a["status"],
                "spec_hash": a["spec_hash"],
                "artifact": f"jobs/{a['job_id']}.json",
                "wall_seconds": a.get("wall_seconds", 0.0),
                **(
                    {"serve_artifact": a["serve_artifact"]["artifact_id"]}
                    if isinstance(a.get("serve_artifact"), dict)
                    else {}
                ),
            }
            for a in ordered
        ],
    }
    # Execution-layer telemetry: manifest-level only (jobs above carry no
    # trace of it), so spec hashes and job artifacts stay
    # executor-invariant and --resume keeps working across backends.
    executor_detail: Optional[Dict[str, object]] = None
    if supports_shm:
        executor_detail = {
            "executor": resolved_executor,
            "workers": jobs,
            "cpus": os.cpu_count() or 1,
            "blas_thread_cap": blas_thread_cap(jobs),
            "blas_cap_method": (
                sorted(observed_cap_methods)[0] if observed_cap_methods else None
            ),
            "datasets_staged": sum(
                1 for handle in shm_handles.values() if handle is not None
            ),
            "shared_bytes": shared_bytes,
            "dataset_cache": {
                "hits": transport_counts.get("hit", 0),
                "attaches": transport_counts.get("attach", 0),
                "worker_loads": transport_counts.get("load", 0),
            },
        }
        if observed_caps:
            executor_detail["observed_blas_caps"] = sorted(observed_caps)
        manifest["executor_detail"] = executor_detail
    # Cross-process span aggregation: jobs traced in worker processes ship
    # their registry snapshots home in the artifact payload; merging them is
    # exact because every histogram shares one bucket scheme.  The key is
    # absent when no job carried spans (tracing off), keeping manifests
    # stable for the executor-parity CI check.
    job_snapshots = [
        a["observability"]
        for a in ordered
        if isinstance(a.get("observability"), dict)
    ]
    if job_snapshots:
        from repro.obs.metrics import MetricsRegistry

        merged = MetricsRegistry("suite")
        for snapshot in job_snapshots:
            merged.merge_snapshot(snapshot)
        manifest["observability"] = merged.snapshot()
    manifest_path = suite_dir / "manifest.json"
    _write_json(manifest_path, manifest)
    return SuiteRunReport(
        suite=suite,
        suite_dir=suite_dir,
        manifest_path=manifest_path,
        artifacts=ordered,
        wall_clock_seconds=wall_clock,
        jobs_requested=len(job_specs),
        workers=jobs,
        executor=resolved_executor,
        executor_detail=executor_detail,
    )


__all__ = [
    "run_suite",
    "execute_job",
    "order_longest_first",
    "resolve_method",
    "SuiteRunReport",
    "JobTimeout",
    "STATUS_DONE",
    "STATUS_FAILED",
    "STATUS_TIMEOUT",
    "STATUS_CACHED",
]
