"""Suite execution over the pluggable ``"executor"`` backend layer.

``run_suite`` expands a :class:`~repro.runner.spec.SuiteSpec` into jobs and
submits them through an :class:`repro.backend.executor.ExecutorBackend` —
``serial`` (inline, deterministic), ``process-pool`` (the historical local
pool) or ``thread-pool`` (daemon threads, external timeout enforcement) —
selected via ``SuiteSpec.executor_backend``, the ``executor`` argument or
``"auto"`` resolution.  Every job produces one JSON artifact under
``<output_dir>/<suite>/jobs/``; the suite manifest (``manifest.json``)
records the job statuses, the executor that produced the run and the wall
clock.  With ``resume=True``, jobs whose artifact already exists, carries
the current spec hash and finished successfully are skipped — so an
interrupted sweep restarts from where it stopped, and editing any job knob
re-runs exactly the affected jobs.  The executor choice never enters the
job specs, so spec hashes (and therefore ``--resume`` and artifact
identity) are invariant across backends.

Under ``serial`` and ``process-pool``, per-job timeouts are enforced
*inside* the job with ``SIGALRM`` (Unix), so a job stuck in Python code
turns into a ``timeout`` artifact instead of wedging the pool.  Caveat: the
alarm is delivered between bytecodes, so a job blocked inside one long
native call (a huge BLAS GEMM, a scipy solver) is only interrupted when
that call returns.  Under ``thread-pool`` the budget is enforced outside
the job (``SIGALRM`` is main-thread-only), which also covers platforms
without ``SIGALRM``.
"""

from __future__ import annotations

import json
import os
import signal
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.backend.executor import (
    SERIAL,
    ExecutorJob,
    get_executor_backend,
    resolve_executor_backend,
)
from repro.backend.registry import AUTO_BACKEND
from repro.runner.spec import JobSpec, SuiteSpec
from repro.utils.logging import get_logger

logger = get_logger(__name__)

#: Artifact status values.
STATUS_DONE = "done"
STATUS_FAILED = "failed"
STATUS_TIMEOUT = "timeout"
STATUS_CACHED = "cached"


class JobTimeout(Exception):
    """Raised inside a worker when a job exceeds its wall-clock budget."""


def _htc_variant_names() -> tuple:
    from repro.core.variants import ABLATION_VARIANTS, EXTRA_ABLATION_VARIANTS

    return ("HTC",) + tuple(ABLATION_VARIANTS) + tuple(EXTRA_ABLATION_VARIANTS)


def known_method_names() -> tuple:
    """Every method name :func:`resolve_method` accepts (for help/docs)."""
    from repro.baselines import PAPER_BASELINES

    return _htc_variant_names() + tuple(PAPER_BASELINES) + ("Degree", "Attribute")


def resolve_method(name: str, config) -> object:
    """Instantiate a method by name: HTC, an ablation variant, or a baseline.

    The single source of the method vocabulary, shared by the CLI and the
    suite runner.  An HTC config with ``shard_count`` set routes through the
    partition–align–stitch subsystem (:mod:`repro.shard`) transparently.
    """
    from repro.baselines import make_baseline
    from repro.core import HTCAligner
    from repro.core.variants import make_variant

    if name == "HTC":
        if getattr(config, "shard_count", None):
            from repro.shard.executor import ShardedAligner

            stitch = str(getattr(config, "extra", {}).get("stitch", "memory"))
            return ShardedAligner(config, stitch=stitch)
        return HTCAligner(config)
    if name in _htc_variant_names():
        return make_variant(name, config)
    return make_baseline(name)


def _alarm_handler(signum, frame):  # pragma: no cover - trivial
    raise JobTimeout()


def execute_job(
    job_payload: Dict[str, object],
    timeout: Optional[float] = None,
    method_resolver: Optional[Callable[[str, object], object]] = None,
    emit_artifacts_dir: Optional[str] = None,
) -> Dict[str, object]:
    """Run one job to completion and return its artifact payload.

    Runs in a worker process (but is equally callable inline).  Never raises:
    failures and timeouts are captured into the artifact's ``status`` /
    ``error`` fields so one bad cell cannot take down a sweep.

    With ``emit_artifacts_dir`` set, the job's final alignment (the last
    run's raw ``align`` output) is additionally persisted as a serve
    artifact under that directory (see :mod:`repro.serve.artifacts`); the
    job payload then records its ``serve_artifact`` id and path.

    When span tracing is on (``REPRO_TRACE=1`` /
    :func:`repro.obs.enable_tracing`), the job's per-phase spans
    (``runner.job/load_dataset`` etc.) are recorded into a job-local
    registry and attached as ``artifact["observability"]`` — a mergeable
    snapshot that :func:`run_suite` folds into the suite manifest.  The
    key is absent when tracing is off, so cached artifacts and manifests
    stay byte-stable for the executor-parity checks.
    """
    from repro.core import HTCConfig
    from repro.datasets import load_dataset
    from repro.eval.protocol import run_method
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracing import span, tracing_enabled

    from repro import __version__

    job = JobSpec.from_dict(job_payload)
    artifact: Dict[str, object] = {
        "job_id": job.job_id,
        "spec": job.to_dict(),
        "spec_hash": job.hash,
        "repro_version": __version__,
        "status": STATUS_FAILED,
        "result": None,
        "error": None,
    }
    use_alarm = timeout is not None and hasattr(signal, "SIGALRM")
    previous_handler = None
    if use_alarm:
        previous_handler = signal.signal(signal.SIGALRM, _alarm_handler)
        signal.setitimer(signal.ITIMER_REAL, float(timeout))
    obs_registry = MetricsRegistry(job.job_id) if tracing_enabled() else None
    started = time.perf_counter()
    try:
        with span("runner.job", obs_registry):
            config_overrides = dict(job.config)
            config_overrides.setdefault("random_state", job.seed)
            config = HTCConfig(**config_overrides)
            resolver = (
                method_resolver if method_resolver is not None else resolve_method
            )
            method = resolver(job.method, config)
            with span("load_dataset", obs_registry):
                pair = load_dataset(job.dataset, **dict(job.dataset_params))
            last_alignment: List[object] = []
            on_result = last_alignment.append if emit_artifacts_dir else None
            with span("align", obs_registry):
                result = run_method(
                    method,
                    pair,
                    train_ratio=job.train_ratio,
                    n_runs=job.n_runs,
                    random_state=job.seed,
                    on_result=on_result,
                )
            artifact["status"] = STATUS_DONE
            artifact["result"] = result.to_dict()
            if emit_artifacts_dir and last_alignment:
                with span("emit_artifact", obs_registry):
                    artifact["serve_artifact"] = _emit_serve_artifact(
                        last_alignment[-1], config, job, emit_artifacts_dir
                    )
    except JobTimeout:
        artifact["status"] = STATUS_TIMEOUT
        artifact["error"] = f"job exceeded the {timeout}s wall-clock budget"
    except Exception as error:  # noqa: BLE001 - artifact carries the failure
        artifact["status"] = STATUS_FAILED
        artifact["error"] = (
            f"{type(error).__name__}: {error}\n{traceback.format_exc()}"
        )
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous_handler)
    artifact["wall_seconds"] = time.perf_counter() - started
    if obs_registry is not None and len(obs_registry):
        artifact["observability"] = obs_registry.snapshot()
    return artifact


def _emit_serve_artifact(
    raw_result: object,
    config,
    job: JobSpec,
    artifacts_dir: str,
) -> Dict[str, object]:
    """Persist one job's alignment as a serve artifact; returns its summary."""
    from repro.serve.artifacts import export_result

    info = export_result(
        raw_result,
        config,
        root=artifacts_dir,
        name=job.job_id,
        metadata={
            "dataset": job.dataset,
            "method": job.method,
            "job_id": job.job_id,
            "spec_hash": job.hash,
        },
    )
    return {
        "artifact_id": info.artifact_id,
        "path": str(info.path),
        "disk_bytes": info.disk_bytes,
        "compression_ratio": round(info.index.compression_ratio, 2),
    }


def _write_json(path: Path, payload: Dict[str, object]) -> None:
    """Atomic JSON write (tmp file + rename)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    # Insertion order is kept (no key sorting) so round-tripped metric
    # columns render in the same order as a fresh run.
    tmp.write_text(json.dumps(payload, indent=2) + "\n")
    os.replace(tmp, path)


def _load_cached_artifact(path: Path, job: JobSpec) -> Optional[Dict[str, object]]:
    """The existing artifact for ``job`` if it is valid and complete."""
    if not path.is_file():
        return None
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if payload.get("spec_hash") != job.hash:
        return None
    if payload.get("status") != STATUS_DONE:
        return None
    return payload


@dataclass
class SuiteRunReport:
    """Outcome of one :func:`run_suite` invocation."""

    suite: SuiteSpec
    suite_dir: Path
    manifest_path: Path
    artifacts: List[Dict[str, object]] = field(default_factory=list)
    wall_clock_seconds: float = 0.0
    jobs_requested: int = 0
    workers: int = 1
    executor: str = SERIAL

    @property
    def counts(self) -> Dict[str, int]:
        """Job tally per status (``cached`` = skipped by ``resume``)."""
        tally: Dict[str, int] = {}
        for artifact in self.artifacts:
            status = str(artifact.get("status"))
            tally[status] = tally.get(status, 0) + 1
        return tally

    def rows(self) -> List[Dict[str, object]]:
        """Flatten the artifacts into report rows (see ``aggregate``)."""
        from repro.runner.aggregate import artifact_rows

        return artifact_rows(self.artifacts)

    def table(self, title: str = "") -> str:
        """Render the suite results with :func:`repro.eval.reporting.format_table`."""
        from repro.eval.reporting import format_table

        return format_table(self.rows(), title=title or f"suite {self.suite.name}")


def run_suite(
    suite: SuiteSpec,
    output_dir,
    jobs: int = 1,
    resume: bool = False,
    timeout: Optional[float] = None,
    method_resolver: Optional[Callable[[str, object], object]] = None,
    on_job_done: Optional[Callable[[Dict[str, object]], None]] = None,
    emit_artifacts: bool = False,
    executor: Optional[str] = None,
) -> SuiteRunReport:
    """Execute every job of ``suite`` and return the run report.

    Parameters
    ----------
    suite:
        The declarative suite specification.
    output_dir:
        Root artifact directory; this run writes under
        ``<output_dir>/<suite.name>/``.
    jobs:
        Worker slots (processes or threads, per the executor backend).
        ``1`` runs inline under ``"auto"``; ``<= 0`` uses the CPU count.
    resume:
        Skip jobs whose artifact exists, matches the current spec hash, and
        completed successfully.
    timeout:
        Per-job wall-clock limit in seconds; overrides ``suite.timeout``
        when given.
    method_resolver:
        Optional replacement for :func:`resolve_method` (must be a picklable
        module-level callable under the ``process-pool`` executor).
    on_job_done:
        Optional callback invoked with each artifact as it completes.
    emit_artifacts:
        Additionally persist every job's alignment as a serve artifact
        under ``<suite_dir>/serve_artifacts/`` (queryable via
        :class:`repro.serve.service.AlignmentService` and the ``query``
        CLI subcommand).
    executor:
        Executor backend name (``"serial"`` / ``"process-pool"`` /
        ``"thread-pool"`` / ``"auto"``); overrides
        ``suite.executor_backend`` when given.  Under ``"auto"``, a run
        with one worker or at most one pending job resolves to ``serial``
        (the historical inline path — also what keeps non-picklable
        ``method_resolver`` callables working), anything larger to the
        registry default.  The choice is recorded in the manifest but never
        in the job specs, so spec hashes match across executors.
    """
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    timeout = timeout if timeout is not None else suite.timeout
    suite_dir = Path(output_dir) / suite.name
    jobs_dir = suite_dir / "jobs"
    serve_dir = str(suite_dir / "serve_artifacts") if emit_artifacts else None
    job_specs = suite.jobs()

    from repro import __version__

    started = time.perf_counter()
    artifacts: List[Dict[str, object]] = []
    pending: List[JobSpec] = []
    for job in job_specs:
        artifact_path = jobs_dir / f"{job.job_id}.json"
        cached = _load_cached_artifact(artifact_path, job) if resume else None
        if cached is not None and emit_artifacts and "serve_artifact" not in cached:
            # The cached run predates artifact emission; re-run the job so
            # --emit-artifacts is honoured rather than silently skipped.
            cached = None
        if cached is not None:
            cached = dict(cached)
            cached_version = cached.get("repro_version")
            if cached_version != __version__:
                # Same spec hash, different writer version: the artifact is
                # still reusable (the spec is what defines the job), but the
                # user should know results may mix code generations.
                logger.warning(
                    "job %s: resuming from an artifact written by repro %s "
                    "(current %s); spec hash matches, reusing it",
                    job.job_id,
                    cached_version or "<unrecorded>",
                    __version__,
                )
            cached["status"] = STATUS_CACHED
            artifacts.append(cached)
            if on_job_done is not None:
                on_job_done(cached)
        else:
            pending.append(job)

    def _record(artifact: Dict[str, object]) -> None:
        artifact_path = jobs_dir / f"{artifact['job_id']}.json"
        _write_json(artifact_path, artifact)
        artifacts.append(artifact)
        if on_job_done is not None:
            on_job_done(artifact)
        logger.info(
            "job %s finished: %s (%.2fs)",
            artifact["job_id"],
            artifact["status"],
            artifact.get("wall_seconds", 0.0),
        )

    requested = executor if executor is not None else suite.executor_backend
    if requested in (None, "", AUTO_BACKEND) and (jobs == 1 or len(pending) <= 1):
        # The historical inline path: deterministic, zero overhead, and the
        # only mode where a non-picklable method_resolver is usable.
        resolved_executor = SERIAL
    else:
        resolved_executor = resolve_executor_backend(requested or AUTO_BACKEND)
    backend = get_executor_backend(resolved_executor)

    by_key = {job.job_id: job for job in pending}

    def _skeleton(job: JobSpec, status: str, error: str) -> Dict[str, object]:
        return {
            "job_id": job.job_id,
            "spec": job.to_dict(),
            "spec_hash": job.hash,
            "repro_version": __version__,
            "status": status,
            "result": None,
            "error": error,
            "wall_seconds": 0.0,
        }

    backend.submit_jobs(
        [
            ExecutorJob(
                key=job.job_id,
                fn=execute_job,
                args=(job.to_dict(),),
                kwargs={
                    "method_resolver": method_resolver,
                    "emit_artifacts_dir": serve_dir,
                },
            )
            for job in pending
        ],
        workers=jobs,
        timeout=timeout,
        on_result=lambda key, artifact: _record(artifact),
        on_crash=lambda exec_job, message: _skeleton(
            by_key[exec_job.key], STATUS_FAILED, f"worker crashed: {message}"
        ),
        on_timeout=lambda exec_job: _skeleton(
            by_key[exec_job.key],
            STATUS_TIMEOUT,
            f"job exceeded the {timeout}s wall-clock budget",
        ),
    )

    wall_clock = time.perf_counter() - started
    # Keep manifest rows in the suite's deterministic job order.
    by_id = {str(a["job_id"]): a for a in artifacts}
    ordered = [by_id[job.job_id] for job in job_specs if job.job_id in by_id]
    manifest = {
        "suite": suite.to_dict(),
        "repro_version": __version__,
        "workers": jobs,
        "executor": resolved_executor,
        "resume": resume,
        "emit_artifacts": emit_artifacts,
        "timeout": timeout,
        "wall_clock_seconds": wall_clock,
        "created_unix": time.time(),
        "jobs": [
            {
                "job_id": a["job_id"],
                "status": a["status"],
                "spec_hash": a["spec_hash"],
                "artifact": f"jobs/{a['job_id']}.json",
                "wall_seconds": a.get("wall_seconds", 0.0),
                **(
                    {"serve_artifact": a["serve_artifact"]["artifact_id"]}
                    if isinstance(a.get("serve_artifact"), dict)
                    else {}
                ),
            }
            for a in ordered
        ],
    }
    # Cross-process span aggregation: jobs traced in worker processes ship
    # their registry snapshots home in the artifact payload; merging them is
    # exact because every histogram shares one bucket scheme.  The key is
    # absent when no job carried spans (tracing off), keeping manifests
    # stable for the executor-parity CI check.
    job_snapshots = [
        a["observability"]
        for a in ordered
        if isinstance(a.get("observability"), dict)
    ]
    if job_snapshots:
        from repro.obs.metrics import MetricsRegistry

        merged = MetricsRegistry("suite")
        for snapshot in job_snapshots:
            merged.merge_snapshot(snapshot)
        manifest["observability"] = merged.snapshot()
    manifest_path = suite_dir / "manifest.json"
    _write_json(manifest_path, manifest)
    return SuiteRunReport(
        suite=suite,
        suite_dir=suite_dir,
        manifest_path=manifest_path,
        artifacts=ordered,
        wall_clock_seconds=wall_clock,
        jobs_requested=len(job_specs),
        workers=jobs,
        executor=resolved_executor,
    )


__all__ = [
    "run_suite",
    "execute_job",
    "resolve_method",
    "SuiteRunReport",
    "JobTimeout",
    "STATUS_DONE",
    "STATUS_FAILED",
    "STATUS_TIMEOUT",
    "STATUS_CACHED",
]
