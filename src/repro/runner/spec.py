"""Declarative experiment-suite specifications.

A suite is a small, JSON-serialisable description of a sweep::

    {
      "name": "fig9-robustness",
      "datasets": [
        {"name": "econ", "params": {"scale": 0.3}},
        {"name": "bn", "params": {"scale": 0.3, "edge_removal_ratio": 0.2}}
      ],
      "methods": ["HTC", "GAlign", "IsoRank"],
      "config": {"epochs": 40, "embedding_dim": 32},
      "grid": {"n_neighbors": [5, 10]},
      "n_runs": 1,
      "timeout": 600
    }

``SuiteSpec.jobs()`` expands the cross product datasets × methods × grid into
:class:`JobSpec` objects.  Every job has a deterministic ``job_id`` (a slug
plus a short content hash) and a full ``spec_hash``; the executor uses the
hash to decide whether an on-disk artifact is still valid when resuming, so
editing any knob of a job invalidates exactly that job's artifact.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.utils.naming import slugify


def canonical_json(payload: object) -> str:
    """Stable JSON encoding (sorted keys, no whitespace drift)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def spec_hash(payload: object) -> str:
    """Content hash of a JSON-serialisable spec."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def _slug(text: str) -> str:
    return slugify(text, "job")


@dataclass(frozen=True)
class JobSpec:
    """One (dataset, method, config) cell of a suite."""

    dataset: str
    method: str
    dataset_params: Tuple[Tuple[str, object], ...] = ()
    config: Tuple[Tuple[str, object], ...] = ()
    n_runs: int = 1
    train_ratio: float = 0.1
    seed: int = 0

    @classmethod
    def create(
        cls,
        dataset: str,
        method: str,
        dataset_params: Optional[Dict[str, object]] = None,
        config: Optional[Dict[str, object]] = None,
        n_runs: int = 1,
        train_ratio: float = 0.1,
        seed: int = 0,
    ) -> "JobSpec":
        """Build a job from plain dicts (stored as sorted item tuples)."""
        return cls(
            dataset=dataset,
            method=method,
            dataset_params=tuple(sorted((dataset_params or {}).items())),
            config=tuple(sorted((config or {}).items())),
            n_runs=n_runs,
            train_ratio=train_ratio,
            seed=seed,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "dataset": self.dataset,
            "method": self.method,
            "dataset_params": dict(self.dataset_params),
            "config": dict(self.config),
            "n_runs": self.n_runs,
            "train_ratio": self.train_ratio,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "JobSpec":
        return cls.create(
            dataset=str(payload["dataset"]),
            method=str(payload["method"]),
            dataset_params=dict(payload.get("dataset_params", {})),
            config=dict(payload.get("config", {})),
            n_runs=int(payload.get("n_runs", 1)),
            train_ratio=float(payload.get("train_ratio", 0.1)),
            seed=int(payload.get("seed", 0)),
        )

    @property
    def hash(self) -> str:
        """Full content hash; artifacts carrying a different hash are stale."""
        return spec_hash(self.to_dict())

    @property
    def job_id(self) -> str:
        """Deterministic, filesystem-safe identifier."""
        return f"{_slug(self.dataset)}__{_slug(self.method)}__{self.hash[:10]}"


@dataclass
class SuiteSpec:
    """A sweep of dataset pairs × methods × configuration grid.

    Attributes
    ----------
    name:
        Suite name; artifacts land in ``<output_dir>/<name>/``.
    datasets:
        Dataset entries: a dataset name, or a ``{"name": ..., "params":
        {...}}`` dict forwarded to :func:`repro.datasets.load_dataset`.
    methods:
        Method names resolvable by
        :func:`repro.runner.executor.resolve_method` (HTC, its ablation
        variants, or any paper baseline).
    config:
        Shared :class:`~repro.core.config.HTCConfig` overrides.
    grid:
        Parameter grid, e.g. ``{"n_neighbors": [5, 10]}``; jobs are expanded
        for every combination, layered over ``config``.
    n_runs, train_ratio, seed:
        Forwarded to :func:`repro.eval.protocol.run_method`.
    timeout:
        Per-job wall-clock limit in seconds (``None`` = unlimited).
    executor_backend:
        Job-execution strategy for the whole suite (a name registered
        under the ``"executor"`` kind — ``serial`` / ``process-pool`` /
        ``thread-pool`` — or ``"auto"``).  Deliberately *not* part of any
        :class:`JobSpec`: the executor changes how jobs run, never what
        they compute, so spec hashes and ``--resume`` artifacts stay valid
        when switching backends.
    """

    name: str
    datasets: List[object] = field(default_factory=list)
    methods: List[str] = field(default_factory=list)
    config: Dict[str, object] = field(default_factory=dict)
    grid: Dict[str, List[object]] = field(default_factory=dict)
    n_runs: int = 1
    train_ratio: float = 0.1
    seed: int = 0
    timeout: Optional[float] = None
    executor_backend: str = "auto"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("suite name must be non-empty")
        if not self.datasets:
            raise ValueError("suite needs at least one dataset")
        if not self.methods:
            raise ValueError("suite needs at least one method")
        if self.n_runs < 1:
            raise ValueError(f"n_runs must be >= 1, got {self.n_runs}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")

    # ------------------------------------------------------------------
    # expansion
    # ------------------------------------------------------------------
    def _dataset_entries(self) -> Iterable[Tuple[str, Dict[str, object]]]:
        for entry in self.datasets:
            if isinstance(entry, str):
                yield entry, {}
            elif isinstance(entry, dict):
                yield str(entry["name"]), dict(entry.get("params", {}))
            else:
                raise TypeError(
                    f"dataset entries must be names or dicts, got {entry!r}"
                )

    def _grid_combinations(self) -> Iterable[Dict[str, object]]:
        if not self.grid:
            yield {}
            return
        keys = sorted(self.grid)
        for values in itertools.product(*(self.grid[k] for k in keys)):
            yield dict(zip(keys, values))

    def jobs(self) -> List[JobSpec]:
        """Expand the suite into its job list (deterministic order).

        Identical cells (e.g. a repeated method name or grid value) collapse
        to one job — they would share a ``job_id`` and artifact anyway.
        """
        expanded: List[JobSpec] = []
        seen = set()
        for dataset, params in self._dataset_entries():
            for method in self.methods:
                for overrides in self._grid_combinations():
                    config = dict(self.config)
                    config.update(overrides)
                    job = JobSpec.create(
                        dataset=dataset,
                        method=method,
                        dataset_params=params,
                        config=config,
                        n_runs=self.n_runs,
                        train_ratio=self.train_ratio,
                        seed=self.seed,
                    )
                    if job.job_id not in seen:
                        seen.add(job.job_id)
                        expanded.append(job)
        return expanded

    # ------------------------------------------------------------------
    # (de)serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "datasets": list(self.datasets),
            "methods": list(self.methods),
            "config": dict(self.config),
            "grid": {k: list(v) for k, v in self.grid.items()},
            "n_runs": self.n_runs,
            "train_ratio": self.train_ratio,
            "seed": self.seed,
            "timeout": self.timeout,
            "executor_backend": self.executor_backend,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SuiteSpec":
        return cls(
            name=str(payload["name"]),
            datasets=list(payload.get("datasets", [])),
            methods=[str(m) for m in payload.get("methods", [])],
            config=dict(payload.get("config", {})),
            grid={
                str(k): list(v) for k, v in dict(payload.get("grid", {})).items()
            },
            n_runs=int(payload.get("n_runs", 1)),
            train_ratio=float(payload.get("train_ratio", 0.1)),
            seed=int(payload.get("seed", 0)),
            timeout=(
                None
                if payload.get("timeout") is None
                else float(payload["timeout"])
            ),
            executor_backend=str(payload.get("executor_backend", "auto")),
        )

    @classmethod
    def from_json_file(cls, path) -> "SuiteSpec":
        """Load a suite from a JSON file."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


__all__ = ["JobSpec", "SuiteSpec", "spec_hash", "canonical_json"]
