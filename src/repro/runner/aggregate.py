"""Fold suite artifacts back into the :mod:`repro.eval.reporting` tables."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

from repro.eval.protocol import MethodResult
from repro.eval.reporting import format_table, save_rows


def load_manifest(suite_dir) -> Dict[str, object]:
    """Read a suite's ``manifest.json``."""
    path = Path(suite_dir) / "manifest.json"
    return json.loads(path.read_text())


def load_artifacts(suite_dir) -> List[Dict[str, object]]:
    """Load every job artifact of a suite, in manifest order.

    Falls back to directory order (sorted by job id) when the manifest is
    missing — e.g. for a sweep that was interrupted before completion.
    """
    suite_dir = Path(suite_dir)
    jobs_dir = suite_dir / "jobs"
    ordered_paths: List[Path] = []
    manifest_path = suite_dir / "manifest.json"
    if manifest_path.is_file():
        manifest = json.loads(manifest_path.read_text())
        ordered_paths = [
            suite_dir / str(entry["artifact"]) for entry in manifest.get("jobs", [])
        ]
    else:
        ordered_paths = sorted(jobs_dir.glob("*.json"))
    artifacts = []
    for path in ordered_paths:
        if path.is_file():
            artifacts.append(json.loads(path.read_text()))
    return artifacts


def artifact_rows(artifacts: List[Dict[str, object]]) -> List[Dict[str, object]]:
    """Flatten artifacts into table rows (one per job).

    Successful jobs contribute their metrics; failed/timed-out jobs keep
    their status visible so a sweep's holes are explicit in the report.
    """
    rows: List[Dict[str, object]] = []
    for artifact in artifacts:
        spec = dict(artifact.get("spec", {}))
        result = artifact.get("result")
        if result:
            row = MethodResult.from_dict(result).as_row()
        else:
            row = {
                "method": spec.get("method", "?"),
                "dataset": spec.get("dataset", "?"),
            }
        config = dict(spec.get("config", {}))
        if config:
            row["config"] = ",".join(f"{k}={v}" for k, v in sorted(config.items()))
        row["status"] = artifact.get("status", "?")
        rows.append(row)
    return rows


def format_suite_table(artifacts: List[Dict[str, object]], title: str = "") -> str:
    """Render artifacts as the familiar plain-text comparison table."""
    return format_table(artifact_rows(artifacts), title=title)


def to_method_results(artifacts: List[Dict[str, object]]) -> List[MethodResult]:
    """Successful artifacts as :class:`~repro.eval.protocol.MethodResult`."""
    results = []
    for artifact in artifacts:
        payload = artifact.get("result")
        if payload:
            results.append(MethodResult.from_dict(payload))
    return results


def export_rows(artifacts: List[Dict[str, object]], path) -> None:
    """Write the flattened rows to CSV/JSON-lines via ``eval.reporting``."""
    save_rows(artifact_rows(artifacts), path)


__all__ = [
    "load_manifest",
    "load_artifacts",
    "artifact_rows",
    "format_suite_table",
    "to_method_results",
    "export_rows",
]
