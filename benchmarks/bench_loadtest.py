"""Load harness: open-loop arrival against the HTTP API, SLO-gated.

Where :mod:`bench_api` measures *capacity* (closed-loop clients that issue
the next request the moment the previous answer lands), this harness
measures *service under offered load*:

1. **Capacity probe** — a short closed-loop burst establishes what the
   server can absorb on this machine.
2. **Open-loop phase** — N keep-alive clients issue ``POST /match``
   requests on a fixed arrival schedule at ~60% of the probed capacity.
   Latency is measured from the *scheduled* send time, not the actual one,
   so queueing delay when the server falls behind is charged to the
   measurement (no coordinated omission).  Reported as sustained
   node-queries/second plus p50/p99 latency — the two numbers
   ``check_regression.py`` enforces as first-class SLOs (QPS floor, p99
   ceiling).
3. **Metrics agreement** — ``/metrics`` is scraped before, during and
   after the load.  Mid-load scrapes must parse and be monotone; the
   before/after deltas of ``api_requests_total`` and
   ``serve_queries_total`` must agree *exactly* with the client-side
   request and node counts.  The exposition page is only trustworthy if
   what the server says happened is what the clients measured.
4. **Instrumentation overhead** — the same in-process workload with stats
   recording active vs stubbed out, so the cost of the observability layer
   is a committed number, not a guess.

Results land in ``BENCH_loadtest.json`` at the repo root plus a readable
table under ``benchmarks/results/``.

Run with::

    python benchmarks/bench_loadtest.py            # full size
    python benchmarks/bench_loadtest.py --quick    # smaller, CI-friendly
"""

from __future__ import annotations

import argparse
import http.client
import json
import shutil
import socket
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api.core import ApiState  # noqa: E402
from repro.api.http import BackgroundServer  # noqa: E402
from repro.obs.exposition import parse_prometheus_text  # noqa: E402
from repro.obs.metrics import MetricsRegistry  # noqa: E402
from repro.serve import AlignmentService, export_result  # noqa: E402

JSON_PATH = REPO_ROOT / "BENCH_loadtest.json"
REPORT_PATH = REPO_ROOT / "benchmarks" / "results" / "bench_loadtest.txt"

INDEX_K = 10
BATCH = 64
#: Fraction of probed capacity offered during the open-loop phase.
OFFERED_FRACTION = 0.6

MATCH_2XX = 'api_requests_total{endpoint="/match",status="2xx"}'
SERVE_MATCH = 'serve_queries_total{op="match"}'


def make_matrix(n_s: int, n_t: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    scores = rng.standard_normal((n_s, n_t))
    hubs = rng.choice(n_t, size=max(1, n_t // 50), replace=False)
    scores[:, hubs] += 1.5
    return scores


def _post(connection: http.client.HTTPConnection, path: str, body: dict):
    connection.request(
        "POST", path, json.dumps(body), {"Content-Type": "application/json"}
    )
    response = connection.getresponse()
    return response.status, json.loads(response.read())


def _connect(server) -> http.client.HTTPConnection:
    connection = http.client.HTTPConnection(server.host, server.port, timeout=60)
    connection.connect()
    connection.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return connection


def scrape(server) -> dict:
    """One parsed ``/metrics`` scrape: ``{family: {series: value}}``."""
    connection = _connect(server)
    try:
        connection.request("GET", "/metrics")
        response = connection.getresponse()
        assert response.status == 200, f"/metrics returned {response.status}"
        content_type = response.headers.get("Content-Type", "")
        assert content_type.startswith("text/plain"), content_type
        return parse_prometheus_text(response.read().decode())
    finally:
        connection.close()


def _series(parsed: dict, family: str, series: str) -> float:
    return float(parsed.get(family, {}).get(series, 0.0))


def closed_loop(server, artifact_id: str, n_s: int, clients: int,
                requests_per_client: int) -> dict:
    """Capacity probe: every client fires as fast as answers come back."""
    latencies_per_client = [[] for _ in range(clients)]
    bodies = [
        {
            "artifact_id": artifact_id,
            "nodes": np.random.default_rng(100 + i)
            .integers(0, n_s, size=BATCH)
            .tolist(),
        }
        for i in range(clients)
    ]
    barrier = threading.Barrier(clients + 1)
    failures = []
    sent = [0] * clients

    def run_client(index: int) -> None:
        connection = _connect(server)
        latencies = latencies_per_client[index]
        try:
            _post(connection, "/match", bodies[index])  # warm the connection
            sent[index] += 1
            barrier.wait()
            for _ in range(requests_per_client):
                started = time.perf_counter()
                status, _ = _post(connection, "/match", bodies[index])
                latencies.append(time.perf_counter() - started)
                sent[index] += 1
                if status != 200:
                    failures.append(status)
        except Exception as error:  # noqa: BLE001 - recorded, fails the bench
            failures.append(repr(error))
        finally:
            connection.close()

    threads = [
        threading.Thread(target=run_client, args=(i,)) for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started

    latencies = np.array(sorted(sum(latencies_per_client, [])))
    measured = clients * requests_per_client
    return {
        "backend": "stdlib",
        "clients": clients,
        "requests": measured,
        "requests_sent": int(sum(sent)),
        "batch": BATCH,
        "elapsed_s": elapsed,
        "requests_per_second": measured / elapsed,
        "sustained_qps": measured * BATCH / elapsed,
        "p50_ms": float(np.percentile(latencies, 50) * 1000),
        "p99_ms": float(np.percentile(latencies, 99) * 1000),
        "failures": len(failures),
    }


def open_loop(server, artifact_id: str, n_s: int, clients: int,
              target_qps: float, duration_s: float) -> dict:
    """Fixed arrival schedule at ``target_qps``; latency from scheduled time.

    Each client sends on an evenly spaced schedule (clients phase-offset
    against each other).  A client that falls behind sends immediately and
    the backlog shows up as latency — the open-loop analogue of queueing
    delay, which closed-loop benchmarks structurally cannot see.
    """
    target_rps = target_qps / BATCH
    interval = clients / target_rps
    per_client = max(1, int(round(duration_s * target_rps / clients)))
    latencies_per_client = [[] for _ in range(clients)]
    bodies = [
        {
            "artifact_id": artifact_id,
            "nodes": np.random.default_rng(300 + i)
            .integers(0, n_s, size=BATCH)
            .tolist(),
        }
        for i in range(clients)
    ]
    barrier = threading.Barrier(clients + 1)
    failures = []
    sent = [0] * clients

    def run_client(index: int) -> None:
        connection = _connect(server)
        latencies = latencies_per_client[index]
        try:
            _post(connection, "/match", bodies[index])  # warm the connection
            sent[index] += 1
            barrier.wait()
            epoch = time.perf_counter() + 0.05
            offset = (index / clients) * interval
            for j in range(per_client):
                scheduled = epoch + offset + j * interval
                now = time.perf_counter()
                if scheduled > now:
                    time.sleep(scheduled - now)
                status, _ = _post(connection, "/match", bodies[index])
                latencies.append(time.perf_counter() - scheduled)
                sent[index] += 1
                if status != 200:
                    failures.append(status)
        except Exception as error:  # noqa: BLE001 - recorded, fails the bench
            failures.append(repr(error))
        finally:
            connection.close()

    threads = [
        threading.Thread(target=run_client, args=(i,)) for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started

    latencies = np.array(sorted(sum(latencies_per_client, [])))
    measured = clients * per_client
    achieved_qps = measured * BATCH / elapsed
    return {
        "backend": "stdlib",
        "clients": clients,
        "requests": measured,
        "requests_sent": int(sum(sent)),
        "batch": BATCH,
        "elapsed_s": elapsed,
        "target_qps": target_qps,
        "offered_fraction": OFFERED_FRACTION,
        "sustained_qps": achieved_qps,
        "achieved_fraction": achieved_qps / target_qps,
        "p50_ms": float(np.percentile(latencies, 50) * 1000),
        "p99_ms": float(np.percentile(latencies, 99) * 1000),
        "failures": len(failures),
        "no_failures": len(failures) == 0,
    }


def bench_overhead(store, artifact_id: str, n_s: int, n_batches: int) -> dict:
    """In-process match throughput with stats recording active vs stubbed."""
    service = AlignmentService(cache_size=0)
    service.load(store, artifact_id, mode="serve")
    batches = [
        np.random.default_rng(500 + i).integers(0, n_s, size=BATCH)
        for i in range(n_batches)
    ]

    def measure() -> float:
        best = 0.0
        for _ in range(3):
            started = time.perf_counter()
            for nodes in batches:
                service.match(artifact_id, nodes)
            best = max(best, n_batches * BATCH / (time.perf_counter() - started))
        return best

    instrumented_qps = measure()
    original_note = AlignmentService._note
    AlignmentService._note = lambda self, *args, **kwargs: None
    try:
        bare_qps = measure()
    finally:
        AlignmentService._note = original_note
    overhead_pct = max(0.0, 100.0 * (1.0 - instrumented_qps / bare_qps))
    return {
        "requests": n_batches,
        "batch": BATCH,
        "instrumented_qps": instrumented_qps,
        "bare_qps": bare_qps,
        "overhead_pct": overhead_pct,
    }


class MidLoadScraper:
    """Polls ``/metrics`` while load runs; checks parse + monotonicity."""

    def __init__(self, server, period_s: float = 0.25):
        self.server = server
        self.period_s = period_s
        self.samples = []
        self.errors = []
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                parsed = scrape(self.server)
                self.samples.append(_series(parsed, "api_requests_total", MATCH_2XX))
            except Exception as error:  # noqa: BLE001 - recorded, fails check
                self.errors.append(repr(error))
            self._stop.wait(self.period_s)

    def __enter__(self) -> "MidLoadScraper":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=10)

    def verdict(self) -> dict:
        monotone = all(
            later >= earlier
            for earlier, later in zip(self.samples, self.samples[1:])
        )
        return {
            "scrapes": len(self.samples),
            "scrape_errors": len(self.errors),
            "monotone": monotone,
            "ok": monotone and not self.errors and len(self.samples) >= 2,
        }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="smaller sizes")
    args = parser.parse_args(argv)

    n_s, n_t = (800, 800) if args.quick else (1500, 1200)
    clients = 4 if args.quick else 8
    probe_requests = 60 if args.quick else 250
    duration_s = 3.0 if args.quick else 10.0
    overhead_batches = 200 if args.quick else 1000
    matrix = make_matrix(n_s, n_t)

    store = Path(tempfile.mkdtemp(prefix="bench_loadtest_"))
    try:
        info = export_result(matrix, root=store, name="loadtest", index_k=INDEX_K)
        artifact_id = info.artifact_id
        state = ApiState(root=store, metrics=MetricsRegistry("loadtest"))
        state.preload()
        with BackgroundServer(state) as server:
            # Baseline scrape before any counted traffic; the exposition
            # endpoint is un-instrumented, so scrapes never shift deltas.
            before = scrape(server)
            capacity = closed_loop(
                server, artifact_id, n_s, clients, probe_requests
            )
            target_qps = capacity["sustained_qps"] * OFFERED_FRACTION
            with MidLoadScraper(server) as scraper:
                open_stats = open_loop(
                    server, artifact_id, n_s, clients, target_qps, duration_s
                )
            under_load = scraper.verdict()
            after = scrape(server)

        client_requests = capacity["requests_sent"] + open_stats["requests_sent"]
        client_nodes = client_requests * BATCH
        server_requests = _series(after, "api_requests_total", MATCH_2XX) - _series(
            before, "api_requests_total", MATCH_2XX
        )
        server_nodes = _series(after, "serve_queries_total", SERVE_MATCH) - _series(
            before, "serve_queries_total", SERVE_MATCH
        )
        required_series = {
            "api_request_seconds": 'api_request_seconds_count{endpoint="/match"}',
            "serve_batch_seconds": 'serve_batch_seconds_count{op="match"}',
            "serve_stage_seconds": (
                'serve_stage_seconds_count{op="match",stage="index_lookup"}'
            ),
        }
        series_present = {
            family: series in after.get(family, {})
            for family, series in required_series.items()
        }
        metrics_checks = {
            "client_requests": client_requests,
            "server_requests": int(server_requests),
            "client_nodes": client_nodes,
            "server_nodes": int(server_nodes),
            "requests_match": int(server_requests) == client_requests,
            "nodes_match": int(server_nodes) == client_nodes,
            "required_series_present": series_present,
            "scrape_under_load": under_load,
        }
        metrics_agree = bool(
            metrics_checks["requests_match"]
            and metrics_checks["nodes_match"]
            and all(series_present.values())
            and under_load["ok"]
        )

        overhead = bench_overhead(store, artifact_id, n_s, overhead_batches)
    finally:
        shutil.rmtree(store, ignore_errors=True)

    lines = [
        "Open-loop load harness: SLOs and metrics agreement",
        "=" * 58,
        "",
        f"[1] capacity probe ({clients} closed-loop clients, batches of "
        f"{BATCH}):",
        f"    sustained  {capacity['sustained_qps']:12.0f} node-queries/s",
        f"    latency    p50 {capacity['p50_ms']:7.2f} ms   "
        f"p99 {capacity['p99_ms']:7.2f} ms",
        "",
        f"[2] open loop at {OFFERED_FRACTION:.0%} of capacity "
        f"({open_stats['target_qps']:.0f} node-q/s offered, "
        f"{open_stats['elapsed_s']:.1f}s):",
        f"    sustained  {open_stats['sustained_qps']:12.0f} node-queries/s "
        f"({open_stats['achieved_fraction']:.2f}x offered)",
        f"    latency    p50 {open_stats['p50_ms']:7.2f} ms   "
        f"p99 {open_stats['p99_ms']:7.2f} ms   (from scheduled send)",
        f"    failures   {open_stats['failures']}",
        "",
        f"[3] /metrics vs client-side counts: "
        f"requests {metrics_checks['server_requests']} == "
        f"{metrics_checks['client_requests']}, "
        f"nodes {metrics_checks['server_nodes']} == "
        f"{metrics_checks['client_nodes']} -> agree={metrics_agree}",
        f"    mid-load scrapes: {under_load['scrapes']} "
        f"(monotone={under_load['monotone']}, "
        f"errors={under_load['scrape_errors']})",
        "",
        f"[4] instrumentation overhead (in-process, cache off): "
        f"{overhead['instrumented_qps']:.0f} vs {overhead['bare_qps']:.0f} "
        f"node-q/s = {overhead['overhead_pct']:.1f}%",
    ]
    text = "\n".join(lines)
    print(text)

    payload = {
        "benchmark": "api_loadtest",
        "command": "python benchmarks/bench_loadtest.py"
        + (" --quick" if args.quick else ""),
        "shape": [n_s, n_t],
        "index_k": INDEX_K,
        "capacity": capacity,
        "open_loop": open_stats,
        "metrics_agree": metrics_agree,
        "metrics_checks": metrics_checks,
        "instrumentation_overhead": overhead,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    REPORT_PATH.parent.mkdir(parents=True, exist_ok=True)
    REPORT_PATH.write_text(text + "\n")
    print(f"\n[written to {JSON_PATH} and {REPORT_PATH}]")

    ok = (
        metrics_agree
        and open_stats["failures"] == 0
        and capacity["failures"] == 0
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
