"""Benchmark: suite-runner parallelism and memory-bounded scoring kernels.

Three measurements back the ``repro.runner`` subsystem and the chunked
similarity path:

1. **Suite wall-clock per executor backend.**  A real sweep (3 dataset
   pairs × 3 methods) through ``run_suite`` once under the ``serial``
   reference executor and once per pooled backend (``process-pool``,
   ``thread-pool``, ``process-pool-shm``, ``jobs=4`` each), recording each
   backend's wall clock and real-job speedup over serial.  The zero-copy
   ``process-pool-shm`` run additionally lands a top-level ``shm`` section:
   its speedup, a bit-identical comparison of every job artifact against
   the serial run (timing fields stripped), and the warm-pool telemetry
   (BLAS thread cap, dataset-cache hit counts) from the suite manifest.  On a multi-core machine the pooled
   runs win roughly linearly; on a 1-CPU container CPU-bound jobs cannot
   speed up, so the report also includes a *scheduler overlap* run with
   I/O-bound stand-in jobs (each sleeps a fixed interval), which isolates
   what the pool itself buys: N sleeping jobs complete in ~1/N of the
   serial wall-clock even on one core.
2. **Dense vs chunked peak memory.**  ``tracemalloc``-traced peaks of the
   LISI → mutual-nearest-neighbour pipeline: dense (materialise the full
   score matrix) vs :func:`repro.similarity.chunked.chunked_mutual_nearest_neighbors`
   (stream row chunks).
3. **Greedy matching memory.**  The former ``argsort(scores, axis=None)``
   selection vs the new lazy-heap ``greedy_match`` on the same matrix.

Results land in ``BENCH_runner.json`` at the repo root plus a readable table
under ``benchmarks/results/``.

Run with::

    python benchmarks/bench_runner.py            # full sweep
    python benchmarks/bench_runner.py --quick    # smaller sizes
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
import tracemalloc
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.runner import SuiteSpec, run_suite  # noqa: E402
from repro.similarity.chunked import chunked_mutual_nearest_neighbors  # noqa: E402
from repro.similarity.lisi import lisi_matrix  # noqa: E402
from repro.similarity.matching import greedy_match, mutual_nearest_neighbors  # noqa: E402

JSON_PATH = REPO_ROOT / "BENCH_runner.json"
REPORT_PATH = REPO_ROOT / "benchmarks" / "results" / "bench_runner.txt"

SLEEP_SECONDS = 0.5


def _sleep_resolver(name: str, config) -> object:
    """Stand-in method whose jobs are pure wall-clock (no CPU) — isolates the
    scheduler's concurrency from the machine's core count."""

    class _SleepAligner:
        name = "Sleep"
        requires_supervision = False

        def align(self, pair, train_anchors=None):
            time.sleep(SLEEP_SECONDS)
            n_s, n_t = pair.source.n_nodes, pair.target.n_nodes
            return np.zeros((n_s, n_t))

    return _SleepAligner()


def _real_suite(quick: bool) -> SuiteSpec:
    scale = 0.2 if quick else 0.3
    return SuiteSpec(
        name="bench",
        datasets=[
            "tiny",
            {"name": "econ", "params": {"scale": scale}},
            {"name": "bn", "params": {"scale": scale}},
        ],
        methods=["HTC", "IsoRank", "Degree"],
        config={
            "epochs": 10 if quick else 20,
            "embedding_dim": 16,
            "orbit_cache": "off",
        },
    )


def _run_suite_timed(suite, jobs, resolver=None, executor=None):
    workdir = Path(tempfile.mkdtemp(prefix="bench-runner-"))
    try:
        start = time.perf_counter()
        report = run_suite(
            suite, workdir, jobs=jobs, method_resolver=resolver, executor=executor
        )
        elapsed = time.perf_counter() - start
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return elapsed, report


#: Per-job fields that legitimately differ between executors (timing only);
#: the shm bit-identical gate compares everything else.
_TIMING_FIELDS = {"wall_seconds", "time_seconds", "stage_times"}


def _strip_timing(value):
    if isinstance(value, dict):
        return {
            key: _strip_timing(inner)
            for key, inner in value.items()
            if key not in _TIMING_FIELDS
        }
    if isinstance(value, list):
        return [_strip_timing(inner) for inner in value]
    return value


def _artifacts_identical(left, right) -> bool:
    """Whether two runs' job artifacts match after dropping timing fields."""
    by_id_left = {a["job_id"]: _strip_timing(a) for a in left}
    by_id_right = {a["job_id"]: _strip_timing(a) for a in right}
    return by_id_left == by_id_right


def bench_suite(quick: bool) -> dict:
    """Measurement 1: real-job wall-clock per executor backend."""
    suite = _real_suite(quick)
    n_jobs = len(suite.jobs())
    serial_s, serial_report = _run_suite_timed(suite, jobs=1, executor="serial")
    executors = {
        "serial": {
            "executor": "serial",
            "workers": 1,
            "wall_s": serial_s,
            "speedup_vs_serial": 1.0,
            "all_done": serial_report.counts == {"done": n_jobs},
        }
    }
    shm = None
    for name in ("process-pool", "thread-pool", "process-pool-shm"):
        wall_s, report = _run_suite_timed(suite, jobs=4, executor=name)
        executors[name] = {
            "executor": report.executor,
            "workers": 4,
            "wall_s": wall_s,
            "speedup_vs_serial": serial_s / wall_s if wall_s else float("nan"),
            "all_done": report.counts == {"done": n_jobs},
        }
        if name == "process-pool-shm":
            # The zero-copy substrate's section: speedup, the bit-identical
            # gate against serial, and the warm-pool telemetry run_suite
            # aggregated into the manifest.
            detail = report.executor_detail or {}
            shm = {
                "executor": report.executor,
                "workers": 4,
                "cpus": os.cpu_count() or 1,
                "wall_s": wall_s,
                "speedup_vs_serial": executors[name]["speedup_vs_serial"],
                "bit_identical": _artifacts_identical(
                    serial_report.artifacts, report.artifacts
                ),
                "blas_thread_cap": detail.get("blas_thread_cap"),
                "blas_cap_method": detail.get("blas_cap_method"),
                "datasets_staged": detail.get("datasets_staged"),
                "shared_bytes": detail.get("shared_bytes"),
                "dataset_cache": detail.get("dataset_cache"),
            }

    # Four *distinct* jobs (the grid keeps their spec hashes apart) whose
    # work is pure sleeping, so overlap is observable even on one core.
    sleep_suite = SuiteSpec(
        name="bench-sleep",
        datasets=["tiny"],
        methods=["Sleep"],
        grid={"n_neighbors": [5, 6, 7, 8]},
    )
    sleep_serial_s, _ = _run_suite_timed(
        sleep_suite, jobs=1, resolver=_sleep_resolver, executor="serial"
    )
    sleep_parallel_s, sleep_report = _run_suite_timed(
        sleep_suite, jobs=4, resolver=_sleep_resolver, executor="process-pool"
    )
    return {
        "n_jobs": n_jobs,
        "serial_s": serial_s,
        "executors": executors,
        "all_done": all(entry["all_done"] for entry in executors.values()),
        "shm": shm,
        "scheduler_overlap": {
            "executor": sleep_report.executor,
            "n_jobs": 4,
            "sleep_per_job_s": SLEEP_SECONDS,
            "serial_s": sleep_serial_s,
            "parallel4_s": sleep_parallel_s,
            "speedup": sleep_serial_s / sleep_parallel_s,
        },
    }


def _traced_peak(function) -> tuple:
    """(result, peak traced bytes) of ``function()``."""
    tracemalloc.start()
    tracemalloc.reset_peak()
    try:
        result = function()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, peak


def bench_kernel_memory(quick: bool) -> dict:
    """Measurement 2: dense vs chunked LISI → MNN peak memory."""
    n_source, n_target, dim = (1200, 1000, 24) if quick else (3000, 2500, 32)
    chunk = 256
    rng = np.random.default_rng(0)
    source = rng.standard_normal((n_source, dim))
    target = rng.standard_normal((n_target, dim))

    def dense():
        return mutual_nearest_neighbors(lisi_matrix(source, target, 10))

    def chunked():
        return chunked_mutual_nearest_neighbors(
            source, target, correction="lisi", n_neighbors=10, chunk_rows=chunk
        )

    start = time.perf_counter()
    dense_pairs, dense_peak = _traced_peak(dense)
    dense_s = time.perf_counter() - start
    start = time.perf_counter()
    chunked_pairs, chunked_peak = _traced_peak(chunked)
    chunked_s = time.perf_counter() - start
    return {
        "shape": [n_source, n_target, dim],
        "chunk_rows": chunk,
        "dense_peak_mb": dense_peak / 1e6,
        "chunked_peak_mb": chunked_peak / 1e6,
        "memory_ratio": dense_peak / chunked_peak,
        "dense_s": dense_s,
        "chunked_s": chunked_s,
        "identical": dense_pairs == chunked_pairs,
    }


def bench_greedy_memory(quick: bool) -> dict:
    """Measurement 3: old argsort greedy vs new heap greedy."""
    n_source, n_target = (600, 500) if quick else (1500, 1200)
    rng = np.random.default_rng(1)
    scores = rng.standard_normal((n_source, n_target))

    def argsort_greedy():
        # The pre-PR implementation, kept here as the measurement baseline.
        order = np.argsort(scores, axis=None)[::-1]
        used_source = np.zeros(n_source, dtype=bool)
        used_target = np.zeros(n_target, dtype=bool)
        pairs = []
        limit = min(n_source, n_target)
        for flat_index in order:
            i, j = divmod(int(flat_index), n_target)
            if used_source[i] or used_target[j]:
                continue
            pairs.append((i, j))
            used_source[i] = True
            used_target[j] = True
            if len(pairs) == limit:
                break
        return pairs

    start = time.perf_counter()
    old_pairs, old_peak = _traced_peak(argsort_greedy)
    old_s = time.perf_counter() - start
    start = time.perf_counter()
    new_pairs, new_peak = _traced_peak(lambda: greedy_match(scores))
    new_s = time.perf_counter() - start
    return {
        "shape": [n_source, n_target],
        "argsort_peak_mb": old_peak / 1e6,
        "heap_peak_mb": new_peak / 1e6,
        "memory_ratio": old_peak / new_peak,
        "argsort_s": old_s,
        "heap_s": new_s,
        "identical": old_pairs == new_pairs,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="smaller sizes")
    args = parser.parse_args(argv)

    cpus = os.cpu_count() or 1
    suite = bench_suite(args.quick)
    shm = suite.pop("shm")
    kernels = bench_kernel_memory(args.quick)
    greedy = bench_greedy_memory(args.quick)

    overlap = suite["scheduler_overlap"]
    executor_lines = [
        f"    {name:<16} wall {entry['wall_s']:6.2f}s  "
        f"speedup {entry['speedup_vs_serial']:.2f}x  all done: {entry['all_done']}"
        for name, entry in suite["executors"].items()
    ]
    cache = (shm or {}).get("dataset_cache") or {}
    shm_lines = [
        f"    process-pool-shm: bit-identical to serial: {shm['bit_identical']},"
        f" BLAS cap {shm['blas_thread_cap']} thread(s)/worker"
        f" ({shm['blas_cap_method']}),"
        f" {shm['datasets_staged']} dataset(s) / {shm['shared_bytes']} B staged,"
        f" cache hits {cache.get('hits', 0)} / attaches {cache.get('attaches', 0)}",
    ] if shm else []
    lines = [
        f"Suite runner and chunked kernels (cpus={cpus})",
        "",
        f"[1] suite of {suite['n_jobs']} jobs (3 datasets x 3 methods) "
        "per executor backend:",
        *executor_lines,
        *shm_lines,
        f"    scheduler overlap (4 x {overlap['sleep_per_job_s']}s sleep jobs,"
        f" {overlap['executor']}):"
        f" jobs=1 {overlap['serial_s']:.2f}s, jobs=4 {overlap['parallel4_s']:.2f}s"
        f" -> {overlap['speedup']:.2f}x",
        "",
        f"[2] LISI->MNN peak memory, shape {kernels['shape']}"
        f" (chunk_rows={kernels['chunk_rows']}):",
        f"    dense {kernels['dense_peak_mb']:.1f} MB vs chunked"
        f" {kernels['chunked_peak_mb']:.1f} MB"
        f"  ({kernels['memory_ratio']:.1f}x less, identical:"
        f" {kernels['identical']})",
        f"    time: dense {kernels['dense_s']:.2f}s, chunked {kernels['chunked_s']:.2f}s",
        "",
        f"[3] greedy_match peak memory, shape {greedy['shape']}:",
        f"    argsort {greedy['argsort_peak_mb']:.1f} MB vs heap"
        f" {greedy['heap_peak_mb']:.3f} MB  ({greedy['memory_ratio']:.0f}x less,"
        f" identical: {greedy['identical']})",
        f"    time: argsort {greedy['argsort_s']:.2f}s, heap {greedy['heap_s']:.2f}s",
    ]
    text = "\n".join(lines)
    print(text)

    payload = {
        "benchmark": "suite_runner_and_chunked_kernels",
        "command": "python benchmarks/bench_runner.py"
        + (" --quick" if args.quick else ""),
        "cpus": cpus,
        "suite": suite,
        "shm": shm,
        "kernel_memory": kernels,
        "greedy_memory": greedy,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    REPORT_PATH.parent.mkdir(parents=True, exist_ok=True)
    REPORT_PATH.write_text(text + "\n")
    print(f"\n[written to {JSON_PATH} and {REPORT_PATH}]")

    ok = (
        suite["all_done"]
        and kernels["identical"]
        and greedy["identical"]
        and (shm is None or shm["bit_identical"])
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
