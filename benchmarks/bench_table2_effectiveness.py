"""Experiment E1 — Table II: overall effectiveness on the three real-world pairs.

Regenerates the paper's Table II layout: p@1, p@10, MRR and wall-clock time
for HTC and the six baselines on the Allmovie–Imdb, Douban On/Off, and
Flickr–Myspace stand-ins.  The qualitative claims being reproduced:

* HTC attains the best p@1 on every pair,
* GAlign is the strongest baseline,
* every method collapses on the consistency-violating Flickr–Myspace pair.
"""

from __future__ import annotations

import pytest

from repro.datasets import load_dataset
from repro.eval.protocol import run_comparison
from repro.eval.reporting import format_table

from _common import DATASET_SCALE, N_RUNS, make_all_methods, write_report

DATASETS = ("allmovie_imdb", "douban", "flickr_myspace")


def _run_table2():
    pairs = [
        load_dataset(name, scale=DATASET_SCALE, random_state=index)
        for index, name in enumerate(DATASETS)
    ]
    results = run_comparison(
        make_all_methods(), pairs, train_ratio=0.1, n_runs=N_RUNS, random_state=0
    )
    return pairs, results


@pytest.mark.benchmark(group="table2")
def test_table2_effectiveness(benchmark):
    pairs, results = benchmark.pedantic(_run_table2, rounds=1, iterations=1)

    sections = ["Table II — overall effectiveness (stand-in datasets)"]
    for pair in pairs:
        rows = [r.as_row() for r in results if r.dataset == pair.name]
        sections.append(format_table(rows, title=f"[{pair.name}] {pair.summary()}"))
    write_report("table2_effectiveness", sections)

    by_key = {(r.dataset, r.method): r for r in results}
    for pair in pairs[:2]:  # the two pairs where alignment is feasible
        htc = by_key[(pair.name, "HTC")]
        for method in ("IsoRank", "REGAL", "PALE"):
            assert htc.metrics["p@1"] >= by_key[(pair.name, method)].metrics["p@1"]
    # Flickr–Myspace: everything is poor (consistency violated).
    flickr = [r for r in results if r.dataset == pairs[2].name]
    assert max(r.metrics["p@1"] for r in flickr) < 0.5
