"""Experiment E11 — Fig. 11: t-SNE visualisation of anchor embeddings.

The paper samples anchor nodes from Douban Online/Offline, embeds them with
t-SNE before and after HTC alignment, and observes that the source and target
clouds overlap much more after alignment.  Without a plotting backend the
bench reports the same evidence numerically: 2-D t-SNE coordinates are
computed for both conditions and the anchor-overlap statistics (matched vs
random cross-graph distances) are compared.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import HTCAligner
from repro.core.encoder import build_topology_views, make_encoder
from repro.datasets import load_dataset
from repro.eval.reporting import format_table
from repro.viz.embedding_stats import anchor_overlap_statistics
from repro.viz.tsne import tsne

from _common import DATASET_SCALE, HTC_CONFIG, write_report

N_SAMPLED_ANCHORS = 80
ORBITS_TO_VISUALISE = (0, 1, 3, 5, 7)


def _run_tsne_analysis():
    pair = load_dataset("douban", scale=DATASET_SCALE, random_state=1)
    anchors = pair.anchor_links[:N_SAMPLED_ANCHORS]

    # "Before": no alignment has taken place, so each graph is embedded by its
    # own independently initialised encoder (no parameter sharing) — the two
    # embedding clouds live in unrelated spaces, as in the paper's upper row.
    config = HTC_CONFIG.updated(orbits=ORBITS_TO_VISUALISE)
    source_encoder = make_encoder(pair.source.n_attributes, config.updated(random_state=11))
    target_encoder = make_encoder(pair.target.n_attributes, config.updated(random_state=23))
    source_views = build_topology_views(pair.source, config)
    target_views = build_topology_views(pair.target, config)

    before_stats = {}
    for orbit in ORBITS_TO_VISUALISE:
        source_embedding = source_encoder(
            source_views[orbit], pair.source.attributes
        ).numpy()
        target_embedding = target_encoder(
            target_views[orbit], pair.target.attributes
        ).numpy()
        before_stats[orbit] = anchor_overlap_statistics(
            source_embedding, target_embedding, anchors, random_state=0
        )

    # "After": embeddings produced by the full HTC pipeline.
    result = HTCAligner(config).align(pair)
    after_stats = {}
    tsne_shapes = {}
    for orbit in ORBITS_TO_VISUALISE:
        source_embedding = result.source_embeddings[orbit]
        target_embedding = result.target_embeddings[orbit]
        after_stats[orbit] = anchor_overlap_statistics(
            source_embedding, target_embedding, anchors, random_state=0
        )
        stacked = np.vstack(
            [
                source_embedding[[i for i, _ in anchors]],
                target_embedding[[j for _, j in anchors]],
            ]
        )
        coordinates = tsne(stacked, n_iterations=150, random_state=0)
        tsne_shapes[orbit] = coordinates.shape
    return before_stats, after_stats, tsne_shapes


@pytest.mark.benchmark(group="fig11")
def test_fig11_tsne_overlap(benchmark):
    before_stats, after_stats, tsne_shapes = benchmark.pedantic(
        _run_tsne_analysis, rounds=1, iterations=1
    )

    rows = []
    for orbit in before_stats:
        rows.append(
            {
                "orbit": orbit,
                "overlap_before": round(before_stats[orbit]["overlap_ratio"], 3),
                "overlap_after": round(after_stats[orbit]["overlap_ratio"], 3),
                "tsne_points": tsne_shapes[orbit][0],
            }
        )
    write_report(
        "fig11_tsne",
        [
            "Fig. 11 — anchor-embedding overlap before/after HTC "
            "(overlap_ratio = random-pair distance / matched-pair distance)",
            format_table(rows),
        ],
    )

    # After alignment, matched anchors are clearly closer than random pairs on
    # the majority of the visualised orbits, and overall overlap improves.
    improved = sum(
        after_stats[orbit]["overlap_ratio"] >= before_stats[orbit]["overlap_ratio"]
        for orbit in after_stats
    )
    assert improved >= len(after_stats) // 2
    assert np.mean([s["overlap_ratio"] for s in after_stats.values()]) > 1.2
