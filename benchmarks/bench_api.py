"""Benchmark: the HTTP alignment API — sustained QPS and tail latency.

Three measurements back the :mod:`repro.api` subsystem:

1. **Sustained throughput.**  N concurrent clients hammer ``POST /match``
   with batches of 64 node ids over persistent connections against the
   bundled stdlib server; reported as node-queries/second (``sustained_qps``)
   and requests/second, with p50/p99 per-request latency.
2. **Parity.**  Every op (``match``, ``top_k``, ``reverse_match``,
   ``reverse_top_k``) answered over HTTP is checked identical to the direct
   in-process :class:`~repro.serve.service.AlignmentService` answer, and the
   in-process batched throughput is recorded alongside for the overhead
   ratio.
3. **Structured errors.**  Out-of-range nodes, wrong-dtype nodes and
   unknown artifacts must come back as structured 400/422/404 JSON bodies.

The serving stack is recorded in the payload (``http.backend``) because QPS
is not comparable between the stdlib server and uvicorn — the regression
gate only compares same-backend runs.

Results land in ``BENCH_api.json`` at the repo root plus a readable table
under ``benchmarks/results/``.

Run with::

    python benchmarks/bench_api.py            # full size
    python benchmarks/bench_api.py --quick    # smaller, CI-friendly
"""

from __future__ import annotations

import argparse
import http.client
import json
import shutil
import socket
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api.core import ApiState  # noqa: E402
from repro.api.http import BackgroundServer  # noqa: E402
from repro.serve import AlignmentService, export_result  # noqa: E402

JSON_PATH = REPO_ROOT / "BENCH_api.json"
REPORT_PATH = REPO_ROOT / "benchmarks" / "results" / "bench_api.txt"

INDEX_K = 10
QUERY_K = 5
BATCH = 64


def make_matrix(n_s: int, n_t: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    scores = rng.standard_normal((n_s, n_t))
    hubs = rng.choice(n_t, size=max(1, n_t // 50), replace=False)
    scores[:, hubs] += 1.5
    return scores


def _post(connection: http.client.HTTPConnection, path: str, body: dict):
    connection.request(
        "POST", path, json.dumps(body), {"Content-Type": "application/json"}
    )
    response = connection.getresponse()
    return response.status, json.loads(response.read())


def check_parity(server, service, artifact_id: str, n_s: int, n_t: int) -> bool:
    """All four ops over HTTP vs the direct in-process service."""
    rng = np.random.default_rng(2)
    forward = rng.integers(0, n_s, size=32).tolist()
    reverse = rng.integers(0, n_t, size=32).tolist()
    connection = http.client.HTTPConnection(server.host, server.port, timeout=30)
    try:
        ok = True
        for op, nodes, k in [
            ("match", forward, None),
            ("top_k", forward, QUERY_K),
            ("reverse_match", reverse, None),
            ("reverse_top_k", reverse, QUERY_K),
        ]:
            body = {"artifact_id": artifact_id, "op": op, "nodes": nodes}
            if k is not None:
                body["k"] = k
            status, payload = _post(connection, "/query", body)
            direct = (
                getattr(service, op)(artifact_id, nodes)
                if k is None
                else getattr(service, op)(artifact_id, nodes, k)
            )
            ok &= status == 200
            ok &= payload.get("results") == np.asarray(direct).tolist()
        return bool(ok)
    finally:
        connection.close()


def check_structured_errors(server, artifact_id: str, n_s: int) -> bool:
    """Bad requests must return versioned JSON error bodies, not stack traces."""
    connection = http.client.HTTPConnection(server.host, server.port, timeout=30)
    try:
        cases = [
            ({"artifact_id": artifact_id, "nodes": [n_s + 50]}, 400, "bad_request"),
            ({"artifact_id": artifact_id, "nodes": [0.5]}, 422, "validation_error"),
            ({"artifact_id": "no-such-artifact", "nodes": [0]}, 404, "not_found"),
        ]
        ok = True
        for body, status, code in cases:
            got_status, payload = _post(connection, "/match", body)
            error = payload.get("error") or {}
            ok &= got_status == status and error.get("code") == code
            ok &= "schema_version" in payload
        return bool(ok)
    finally:
        connection.close()


def bench_http(
    server, artifact_id: str, n_s: int, clients: int, requests_per_client: int
) -> dict:
    """N clients, persistent connections, batched /match — QPS and latency."""
    latencies_per_client = [[] for _ in range(clients)]
    batches = [
        np.random.default_rng(100 + i).integers(0, n_s, size=BATCH).tolist()
        for i in range(clients)
    ]
    barrier = threading.Barrier(clients + 1)
    failures = []

    def run_client(index: int) -> None:
        connection = http.client.HTTPConnection(server.host, server.port, timeout=60)
        body = {"artifact_id": artifact_id, "nodes": batches[index]}
        latencies = latencies_per_client[index]
        try:
            _post(connection, "/match", body)  # warm the connection
            # http.client writes headers and body separately; without
            # TCP_NODELAY Nagle holds the body back ~40ms per request.
            connection.sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
            barrier.wait()
            for _ in range(requests_per_client):
                started = time.perf_counter()
                status, _ = _post(connection, "/match", body)
                latencies.append(time.perf_counter() - started)
                if status != 200:
                    failures.append(status)
        except Exception as error:  # noqa: BLE001 - recorded, fails the bench
            failures.append(repr(error))
        finally:
            connection.close()

    threads = [
        threading.Thread(target=run_client, args=(i,)) for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started

    latencies = np.array(sorted(sum(latencies_per_client, [])))
    total_requests = clients * requests_per_client
    return {
        "backend": "stdlib",
        "clients": clients,
        "requests": total_requests,
        "batch": BATCH,
        "elapsed_s": elapsed,
        "requests_per_second": total_requests / elapsed,
        "sustained_qps": total_requests * BATCH / elapsed,
        "p50_ms": float(np.percentile(latencies, 50) * 1000),
        "p99_ms": float(np.percentile(latencies, 99) * 1000),
        "failures": len(failures),
    }


def bench_in_process(service, artifact_id: str, n_s: int, n_batches: int) -> dict:
    """The same batched workload without HTTP, for the overhead ratio."""
    batches = [
        np.random.default_rng(200 + i).integers(0, n_s, size=BATCH)
        for i in range(n_batches)
    ]
    started = time.perf_counter()
    for nodes in batches:
        service.match(artifact_id, nodes)
    elapsed = time.perf_counter() - started
    return {
        "requests": n_batches,
        "batch": BATCH,
        "batch_qps": n_batches * BATCH / elapsed,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="smaller sizes")
    args = parser.parse_args(argv)

    n_s, n_t = (800, 800) if args.quick else (1500, 1200)
    clients = 4 if args.quick else 8
    requests_per_client = 60 if args.quick else 300
    matrix = make_matrix(n_s, n_t)

    store = Path(tempfile.mkdtemp(prefix="bench_api_"))
    try:
        info = export_result(matrix, root=store, name="bench", index_k=INDEX_K)
        artifact_id = info.artifact_id
        direct = AlignmentService(cache_size=0)
        direct.load(store, artifact_id, mode="serve")
        state = ApiState(root=store)
        state.preload()
        with BackgroundServer(state) as server:
            parity = check_parity(server, direct, artifact_id, n_s, n_t)
            structured = check_structured_errors(server, artifact_id, n_s)
            http_stats = bench_http(
                server, artifact_id, n_s, clients, requests_per_client
            )
        in_process = bench_in_process(
            direct, artifact_id, n_s, n_batches=200 if args.quick else 1000
        )
    finally:
        shutil.rmtree(store, ignore_errors=True)

    overhead = in_process["batch_qps"] / http_stats["sustained_qps"]
    lines = [
        "HTTP alignment API: sustained throughput and tail latency",
        "=" * 58,
        "",
        f"[1] POST /match, {http_stats['clients']} concurrent clients x "
        f"{requests_per_client} requests, batches of {BATCH} "
        f"({http_stats['backend']} server):",
        f"    sustained  {http_stats['sustained_qps']:12.0f} node-queries/s",
        f"    requests   {http_stats['requests_per_second']:12.0f} req/s",
        f"    latency    p50 {http_stats['p50_ms']:7.2f} ms   "
        f"p99 {http_stats['p99_ms']:7.2f} ms",
        f"    failures   {http_stats['failures']}",
        "",
        f"[2] same workload in-process: {in_process['batch_qps']:12.0f} "
        f"node-queries/s ({overhead:.0f}x the HTTP path)",
        "",
        f"[3] HTTP/direct parity over all 4 ops: {parity}",
        f"    structured 400/422/404 error bodies: {structured}",
    ]
    text = "\n".join(lines)
    print(text)

    payload = {
        "benchmark": "api_http_service",
        "command": "python benchmarks/bench_api.py"
        + (" --quick" if args.quick else ""),
        "shape": [n_s, n_t],
        "index_k": INDEX_K,
        "http": http_stats,
        "in_process": in_process,
        "parity_with_direct": parity,
        "structured_errors": structured,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    REPORT_PATH.parent.mkdir(parents=True, exist_ok=True)
    REPORT_PATH.write_text(text + "\n")
    print(f"\n[written to {JSON_PATH} and {REPORT_PATH}]")

    return 0 if parity and structured and http_stats["failures"] == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
