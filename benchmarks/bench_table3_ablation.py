"""Experiment E6 — Table III: ablation study of HTC's components.

Rows: HTC-L (low-order, no fine-tuning), HTC-H (higher-order, no
fine-tuning), HTC-LT (low-order + fine-tuning), HTC-DT (diffusion matrices +
fine-tuning), HTC (full), plus the extra design ablations called out in
DESIGN.md §6 (binary GOMs, raw Pearson instead of LISI).

Reproduced claims: HTC > HTC-H > HTC-L, fine-tuning helps (HTC-LT >= HTC-L),
and diffusion matrices are no substitute for GOMs (HTC > HTC-DT).
"""

from __future__ import annotations

import pytest

from repro.core.variants import ABLATION_VARIANTS, EXTRA_ABLATION_VARIANTS
from repro.datasets import load_dataset
from repro.eval.ablation import run_ablation
from repro.eval.reporting import format_table

from _common import DATASET_SCALE, HTC_CONFIG, write_report

DATASETS = ("douban", "allmovie_imdb")


def _run_ablation():
    pairs = [
        load_dataset(name, scale=DATASET_SCALE, random_state=index)
        for index, name in enumerate(DATASETS)
    ]
    variants = tuple(ABLATION_VARIANTS) + tuple(EXTRA_ABLATION_VARIANTS)
    results = run_ablation(
        pairs, variants=variants, base_config=HTC_CONFIG, random_state=0
    )
    return results


@pytest.mark.benchmark(group="table3")
def test_table3_ablation(benchmark):
    results = benchmark.pedantic(_run_ablation, rounds=1, iterations=1)

    rows = [r.as_row() for r in results]
    write_report(
        "table3_ablation",
        ["Table III — ablation study (plus extra design ablations)", format_table(rows)],
    )

    scores = {(r.dataset, r.method): r.metrics["p@1"] for r in results}
    for dataset in {r.dataset for r in results}:
        # Higher-order consistency is the main contributor...
        assert scores[(dataset, "HTC-H")] >= scores[(dataset, "HTC-L")]
        # ...and the full model beats the purely low-order variant by a margin.
        assert scores[(dataset, "HTC")] > scores[(dataset, "HTC-L")]
    # GOMs outperform diffusion matrices on the dense, motif-rich pair.  (On
    # the very sparse scaled-down Douban stand-in, higher-order orbits are too
    # rare to dominate diffusion — see EXPERIMENTS.md for the discussion.)
    dense = [d for d in {r.dataset for r in results} if d.startswith("allmovie")][0]
    assert scores[(dense, "HTC")] > scores[(dense, "HTC-DT")]
    assert scores[(dense, "HTC")] >= scores[(dense, "HTC-binary")]
    assert scores[(dense, "HTC")] >= scores[(dense, "HTC-cosine")]
