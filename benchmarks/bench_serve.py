"""Benchmark: serve artifacts — index compression and query throughput.

Three measurements back the ``repro.serve`` subsystem:

1. **Index size vs dense matrix.**  Resident bytes of the sparse top-k
   index (forward + reverse arrays) against the ``(n_s, n_t)`` float64
   matrix it replaces, plus the on-disk artifact size.  The acceptance bar
   is a >=10x memory reduction at n >= 1500.
2. **Query throughput.**  Queries/second through a loaded
   :class:`~repro.serve.service.AlignmentService` (serve mode — only the
   index in memory) for single and batched ``match`` / ``top_k`` queries,
   cache-cold and cache-hot.
3. **Parity.**  Every sampled query is checked bit-identical against the
   dense matrix answers (``argmax`` / ``top_k_indices``).

Results land in ``BENCH_serve.json`` at the repo root plus a readable table
under ``benchmarks/results/``.

Run with::

    python benchmarks/bench_serve.py            # full size (n=2000)
    python benchmarks/bench_serve.py --quick    # smaller, CI-friendly
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.result import AlignmentResult  # noqa: E402
from repro.serve import AlignmentService, load_artifact, save_artifact  # noqa: E402
from repro.similarity.matching import top_k_indices  # noqa: E402

JSON_PATH = REPO_ROOT / "BENCH_serve.json"
REPORT_PATH = REPO_ROOT / "benchmarks" / "results" / "bench_serve.txt"

INDEX_K = 10
QUERY_K = 5
N_SINGLE = 2000
N_BATCHED = 100
BATCH = 64


def make_matrix(n_s: int, n_t: int, seed: int = 0) -> np.ndarray:
    """A dense score matrix with hub structure (some columns dominate)."""
    rng = np.random.default_rng(seed)
    scores = rng.standard_normal((n_s, n_t))
    hubs = rng.choice(n_t, size=max(1, n_t // 50), replace=False)
    scores[:, hubs] += 1.5
    return scores


def bench_compression(matrix: np.ndarray, store: Path) -> dict:
    started = time.perf_counter()
    info = save_artifact(
        AlignmentResult(alignment_matrix=matrix),
        root=store,
        name="bench",
        index_k=INDEX_K,
    )
    save_s = time.perf_counter() - started

    started = time.perf_counter()
    artifact = load_artifact(store, info.artifact_id, mode="serve")
    load_s = time.perf_counter() - started

    index = artifact.index
    return {
        "artifact_id": info.artifact_id,
        "shape": [int(matrix.shape[0]), int(matrix.shape[1])],
        "index_k": INDEX_K,
        "dense_bytes": index.dense_nbytes,
        "index_bytes": index.nbytes,
        "memory_ratio": index.dense_nbytes / index.nbytes,
        "disk_bytes": info.disk_bytes,
        "save_s": save_s,
        "serve_load_s": load_s,
    }


def bench_queries(service: AlignmentService, aid: str, n_s: int) -> dict:
    rng = np.random.default_rng(1)
    timings = {}

    # single-node match, cache-cold then repeated (cache-hot)
    cold_nodes = rng.permutation(n_s)[: min(N_SINGLE, n_s)]
    started = time.perf_counter()
    for node in cold_nodes:
        service.match(aid, int(node))
    timings["match_single_cold_qps"] = len(cold_nodes) / (
        time.perf_counter() - started
    )
    started = time.perf_counter()
    for node in cold_nodes:
        service.match(aid, int(node))
    timings["match_single_hot_qps"] = len(cold_nodes) / (
        time.perf_counter() - started
    )

    # batched match / top-k (fresh nodes each call to avoid the cache)
    batches = [rng.integers(0, n_s, size=BATCH) for _ in range(N_BATCHED)]
    service_uncached = AlignmentService(cache_size=0)
    service_uncached.add_index(aid, service._indexes[aid])
    started = time.perf_counter()
    for nodes in batches:
        service_uncached.match(aid, nodes)
    timings["match_batch_qps"] = N_BATCHED * BATCH / (time.perf_counter() - started)
    started = time.perf_counter()
    for nodes in batches:
        service_uncached.top_k(aid, nodes, QUERY_K)
    timings["topk_batch_qps"] = N_BATCHED * BATCH / (time.perf_counter() - started)
    return timings


def check_parity(
    service: AlignmentService, aid: str, matrix: np.ndarray, n_checks: int = 1000
) -> bool:
    rng = np.random.default_rng(2)
    rows = rng.integers(0, matrix.shape[0], size=n_checks)
    cols = rng.integers(0, matrix.shape[1], size=n_checks)
    ok = np.array_equal(service.match(aid, rows), matrix.argmax(axis=1)[rows])
    ok &= np.array_equal(
        service.top_k(aid, rows, QUERY_K), top_k_indices(matrix, QUERY_K)[rows]
    )
    ok &= np.array_equal(
        service.reverse_match(aid, cols), matrix.argmax(axis=0)[cols]
    )
    return bool(ok)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="smaller sizes")
    args = parser.parse_args(argv)

    n_s, n_t = (1500, 1500) if args.quick else (2000, 1600)
    matrix = make_matrix(n_s, n_t)

    store = Path(tempfile.mkdtemp(prefix="bench_serve_"))
    try:
        compression = bench_compression(matrix, store)
        service = AlignmentService()
        aid = service.load(store, compression["artifact_id"], mode="serve")
        parity = check_parity(service, aid, matrix)
        service.reset_stats()
        queries = bench_queries(service, aid, n_s)
        stats = service.stats()
    finally:
        shutil.rmtree(store, ignore_errors=True)

    lines = [
        "Serve artifacts: compression and query throughput",
        "=" * 52,
        "",
        f"[1] sparse top-{INDEX_K} index vs dense {n_s}x{n_t} float64 matrix:",
        f"    dense  {compression['dense_bytes'] / 1e6:8.2f} MB",
        f"    index  {compression['index_bytes'] / 1e6:8.2f} MB"
        f"  ({compression['memory_ratio']:.1f}x smaller)",
        f"    disk   {compression['disk_bytes'] / 1e6:8.2f} MB (npz, full artifact)",
        f"    save {compression['save_s']:.2f}s,"
        f" serve-mode load {compression['serve_load_s']:.3f}s",
        "",
        f"[2] query throughput (k={QUERY_K}):",
        f"    match, single node, cache-cold: "
        f"{queries['match_single_cold_qps']:10.0f} q/s",
        f"    match, single node, cache-hot:  "
        f"{queries['match_single_hot_qps']:10.0f} q/s",
        f"    match, batches of {BATCH}:        "
        f"{queries['match_batch_qps']:10.0f} q/s",
        f"    top-k, batches of {BATCH}:        "
        f"{queries['topk_batch_qps']:10.0f} q/s",
        "",
        f"[3] parity with dense argmax/top-k over 1000 sampled nodes: {parity}",
    ]
    text = "\n".join(lines)
    print(text)

    payload = {
        "benchmark": "serve_artifacts_and_query_service",
        "command": "python benchmarks/bench_serve.py"
        + (" --quick" if args.quick else ""),
        "compression": compression,
        "queries_per_second": queries,
        "service_stats": {
            "queries": stats["queries"],
            "hit_rate": round(stats["hit_rate"], 4),
        },
        "parity_with_dense": parity,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    REPORT_PATH.parent.mkdir(parents=True, exist_ok=True)
    REPORT_PATH.write_text(text + "\n")
    print(f"\n[written to {JSON_PATH} and {REPORT_PATH}]")

    return 0 if parity and compression["memory_ratio"] >= 10.0 else 1


if __name__ == "__main__":
    sys.exit(main())
