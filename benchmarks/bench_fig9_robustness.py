"""Experiment E5 — Fig. 9: robustness to structural noise on Econ and BN.

The target network is the source with 10%–50% of edges removed.  Reproduced
claims: every method degrades as noise grows; HTC (and GAlign) degrade far
less than PALE/REGAL/IsoRank and stay on top across the sweep.
"""

from __future__ import annotations

import pytest

from repro.datasets.synthetic import bn, econ
from repro.eval.reporting import format_series
from repro.eval.robustness import degradation, run_robustness

from _common import DATASET_SCALE, make_all_methods, write_report

NOISE_RATIOS = (0.1, 0.2, 0.3, 0.4, 0.5)


def _run_robustness():
    all_points = {}
    for name, factory in (("econ", econ), ("bn", bn)):
        all_points[name] = run_robustness(
            make_all_methods(),
            factory,
            noise_ratios=NOISE_RATIOS,
            scale=DATASET_SCALE,
            random_state=0,
        )
    return all_points


@pytest.mark.benchmark(group="fig9")
def test_fig9_robustness(benchmark):
    all_points = benchmark.pedantic(_run_robustness, rounds=1, iterations=1)

    sections = ["Fig. 9 — robustness to edge-removal noise (p@1 vs ratio)"]
    for dataset, points in all_points.items():
        series = {}
        for point in points:
            series.setdefault(point.method, []).append(
                (point.noise_ratio, point.metrics["p@1"])
            )
        sections.append(
            format_series(series, x_label="removal", y_label="p@1", title=f"[{dataset}]")
        )
        drops = {
            method: round(degradation(points, method), 4) for method in series
        }
        sections.append(f"  degradation (p@1 at 10% minus at 50%): {drops}")
    write_report("fig9_robustness", sections)

    for dataset, points in all_points.items():
        by_method = {}
        for point in points:
            by_method.setdefault(point.method, {})[point.noise_ratio] = point.metrics["p@1"]
        # HTC is the most accurate method at the lowest noise level...
        best_at_low_noise = max(by_method, key=lambda m: by_method[m][0.1])
        assert best_at_low_noise == "HTC"
        # ...and stays above the structure-fragile baselines at the highest level.
        assert by_method["HTC"][0.5] >= by_method["PALE"][0.5]
        assert by_method["HTC"][0.5] >= by_method["REGAL"][0.5]
        # Noise hurts: accuracy at 50% removal is not higher than at 10%.
        assert by_method["HTC"][0.5] <= by_method["HTC"][0.1] + 1e-9
