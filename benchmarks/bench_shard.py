"""Benchmark: partition–align–stitch vs single-shot alignment.

Three measurements back the ``repro.shard`` subsystem:

1. **Peak memory.**  ``tracemalloc`` peak of a full sharded alignment
   (partition + per-shard HTC jobs + stitch + refine) against the
   single-shot ``HTCAligner.align`` on the same pair.  Sharding bounds the
   quadratic scoring/refinement stages by the shard size, so the peak drops
   roughly with the square of the shard count.
2. **Wall clock.**  End-to-end seconds for both paths (single CPU; the
   speedup is algorithmic — smaller quadratic stages — not parallelism).
3. **Accuracy.**  p@1 of the stitched sparse alignment against the
   single-shot dense matrix; the acceptance bar is a drop of at most
   ``P1_TOLERANCE``.

Results land in ``BENCH_shard.json`` at the repo root plus a readable table
under ``benchmarks/results/``.

Run with::

    python benchmarks/bench_shard.py            # ~4k-node pair
    python benchmarks/bench_shard.py --quick    # ~1k-node pair, CI-friendly
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import tracemalloc
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import HTCAligner, HTCConfig  # noqa: E402
from repro.datasets.synthetic import tiny_pair  # noqa: E402
from repro.shard import align_sharded  # noqa: E402

JSON_PATH = REPO_ROOT / "BENCH_shard.json"
REPORT_PATH = REPO_ROOT / "benchmarks" / "results" / "bench_shard.txt"

SHARD_COUNT = 4
SHARD_OVERLAP = 1
INDEX_K = 10

#: Maximum tolerated p@1 drop of sharded vs single-shot (documented in the
#: README "Scaling" section; the bench fails if it is exceeded).
P1_TOLERANCE = 0.10


def make_config() -> HTCConfig:
    """A reduced HTC config sized so the single-shot baseline stays runnable.

    The knobs only shrink the constant factors (orbits, epochs, refinement
    iterations); both paths share the exact same config, so the comparison
    is apples to apples.
    """
    return HTCConfig(
        embedding_dim=16,
        n_layers=2,
        epochs=5,
        orbits=range(4),
        n_neighbors=10,
        max_refinement_iterations=2,
        orbit_backend="auto",
        orbit_cache="off",  # no cross-run reuse: each path pays its own way
        score_chunk_size=256,
        random_state=0,
    )


def _measure(label: str, fn):
    """(result, peak_mb, seconds) of ``fn()`` under tracemalloc."""
    tracemalloc.start()
    started = time.perf_counter()
    result = fn()
    seconds = time.perf_counter() - started
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    print(f"  {label}: {seconds:.1f}s, peak {peak / 1e6:.1f} MB")
    return result, peak / 1e6, seconds


def precision_at_1(predictions: np.ndarray, ground_truth: np.ndarray) -> float:
    mask = ground_truth >= 0
    return float((predictions[mask] == ground_truth[mask]).mean())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="smaller pair")
    parser.add_argument("--shards", type=int, default=SHARD_COUNT, help="shard count")
    args = parser.parse_args(argv)

    n_nodes = 1000 if args.quick else 4000
    pair = tiny_pair(n_nodes=n_nodes, random_state=0)
    config = make_config()
    print(
        f"pair: {pair.source.n_nodes}+{pair.target.n_nodes} nodes, "
        f"{pair.source.n_edges}+{pair.target.n_edges} edges, "
        f"{args.shards} shards"
    )

    single_result, single_peak_mb, single_s = _measure(
        "single-shot", lambda: HTCAligner(config).align(pair)
    )
    single_p1 = precision_at_1(
        single_result.alignment_matrix.argmax(axis=1), pair.ground_truth
    )
    del single_result

    stitched, sharded_peak_mb, sharded_s = _measure(
        "sharded",
        lambda: align_sharded(
            pair,
            config,
            shard_count=args.shards,
            shard_overlap=SHARD_OVERLAP,
            index_k=INDEX_K,
            refine_iterations=3,
        ),
    )
    sharded_p1 = precision_at_1(
        stitched.match(np.arange(pair.source.n_nodes)), pair.ground_truth
    )

    memory_ratio = single_peak_mb / sharded_peak_mb
    speedup = single_s / sharded_s
    p1_drop = single_p1 - sharded_p1
    within_tolerance = p1_drop <= P1_TOLERANCE

    lines = [
        "Partition-align-stitch vs single-shot alignment",
        "=" * 52,
        "",
        f"pair: {n_nodes} nodes/side, {args.shards} shards "
        f"(overlap {SHARD_OVERLAP} hop), index k={INDEX_K}",
        "",
        "[1] peak memory (tracemalloc):",
        f"    single-shot {single_peak_mb:8.1f} MB",
        f"    sharded     {sharded_peak_mb:8.1f} MB  ({memory_ratio:.1f}x smaller)",
        "",
        "[2] wall clock:",
        f"    single-shot {single_s:8.1f} s",
        f"    sharded     {sharded_s:8.1f} s  ({speedup:.1f}x faster)",
        "    sharded stages: "
        + ", ".join(f"{k} {v:.1f}s" for k, v in stitched.stage_times.items()),
        "",
        "[3] accuracy (p@1 on ground truth):",
        f"    single-shot {single_p1:.4f}",
        f"    sharded     {sharded_p1:.4f}  "
        f"(drop {p1_drop:+.4f}, tolerance {P1_TOLERANCE})",
        f"    conflicts resolved: {stitched.conflicts_resolved}, "
        f"multi-shard sources: {stitched.multi_shard_sources}",
    ]
    text = "\n".join(lines)
    print("\n" + text)

    payload = {
        "benchmark": "partition_align_stitch",
        "command": "python benchmarks/bench_shard.py"
        + (" --quick" if args.quick else ""),
        "n_nodes": n_nodes,
        "shard_count": args.shards,
        "shard_overlap": SHARD_OVERLAP,
        "index_k": INDEX_K,
        "single_shot": {
            "peak_mb": single_peak_mb,
            "wall_s": single_s,
            "p_at_1": single_p1,
        },
        "sharded": {
            "peak_mb": sharded_peak_mb,
            "wall_s": sharded_s,
            "p_at_1": sharded_p1,
            "stage_times": {k: round(v, 3) for k, v in stitched.stage_times.items()},
            "conflicts_resolved": stitched.conflicts_resolved,
            "multi_shard_sources": stitched.multi_shard_sources,
        },
        "memory_ratio": memory_ratio,
        "speedup": speedup,
        "p1_drop": p1_drop,
        "p1_tolerance": P1_TOLERANCE,
        "within_tolerance": within_tolerance,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    REPORT_PATH.parent.mkdir(parents=True, exist_ok=True)
    REPORT_PATH.write_text(text + "\n")
    print(f"\n[written to {JSON_PATH} and {REPORT_PATH}]")

    return 0 if within_tolerance and memory_ratio > 1.0 else 1


if __name__ == "__main__":
    sys.exit(main())
