"""Benchmark: partition–align–stitch vs single-shot alignment.

Three measurements back the ``repro.shard`` subsystem:

1. **Peak memory.**  ``tracemalloc`` peak of a full sharded alignment
   (partition + per-shard HTC jobs + stitch + refine) against the
   single-shot ``HTCAligner.align`` on the same pair.  Sharding bounds the
   quadratic scoring/refinement stages by the shard size, so the peak drops
   roughly with the square of the shard count.
2. **Wall clock.**  End-to-end seconds for both paths (single CPU; the
   speedup is algorithmic — smaller quadratic stages — not parallelism).
3. **Accuracy.**  p@1 of the stitched sparse alignment against the
   single-shot dense matrix; the acceptance bar is a drop of at most
   ``P1_TOLERANCE``.
4. **Stitch-phase memory.**  ``tracemalloc`` peak of the in-memory
   :func:`~repro.shard.stitch.stitch_alignments` merge (all shard
   candidates concatenated at once) against the out-of-core
   :func:`~repro.shard.streaming.stitch_alignments_streaming` merge over
   the same per-shard serve indexes; the acceptance bar is a streaming
   peak below the size of the materialised global top-k index, with a
   bit-identical result.

Results land in ``BENCH_shard.json`` at the repo root plus a readable table
under ``benchmarks/results/``.

Run with::

    python benchmarks/bench_shard.py            # ~4k-node pair
    python benchmarks/bench_shard.py --quick    # ~1k-node pair, CI-friendly
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
import tracemalloc
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import HTCAligner, HTCConfig  # noqa: E402
from repro.datasets.synthetic import tiny_pair  # noqa: E402
from repro.serve.index import SparseTopKIndex, build_index  # noqa: E402
from repro.shard import (  # noqa: E402
    align_sharded,
    build_shard_plan,
    stitch_alignments,
    stitch_alignments_streaming,
)

JSON_PATH = REPO_ROOT / "BENCH_shard.json"
REPORT_PATH = REPO_ROOT / "benchmarks" / "results" / "bench_shard.txt"

SHARD_COUNT = 4
SHARD_OVERLAP = 1
INDEX_K = 10

# Stitch-phase (measurement 4) workload: sized so the materialised global
# index dwarfs the streaming merge's constant working set (see
# ``bench_stitch_phase``); 16 shards keep the overlap multiplicity low.
STITCH_NODES_QUICK = 6000
STITCH_NODES_FULL = 8000
STITCH_SHARDS = 16
STITCH_K = 48
STITCH_ROW_WINDOW = 64

#: Maximum tolerated p@1 drop of sharded vs single-shot (documented in the
#: README "Scaling" section; the bench fails if it is exceeded).
P1_TOLERANCE = 0.10


def make_config() -> HTCConfig:
    """A reduced HTC config sized so the single-shot baseline stays runnable.

    The knobs only shrink the constant factors (orbits, epochs, refinement
    iterations); both paths share the exact same config, so the comparison
    is apples to apples.
    """
    return HTCConfig(
        embedding_dim=16,
        n_layers=2,
        epochs=5,
        orbits=range(4),
        n_neighbors=10,
        max_refinement_iterations=2,
        orbit_backend="auto",
        orbit_cache="off",  # no cross-run reuse: each path pays its own way
        score_chunk_size=256,
        random_state=0,
    )


def _measure(label: str, fn):
    """(result, peak_mb, seconds) of ``fn()`` under tracemalloc."""
    tracemalloc.start()
    started = time.perf_counter()
    result = fn()
    seconds = time.perf_counter() - started
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    print(f"  {label}: {seconds:.1f}s, peak {peak / 1e6:.1f} MB")
    return result, peak / 1e6, seconds


def precision_at_1(predictions: np.ndarray, ground_truth: np.ndarray) -> float:
    mask = ground_truth >= 0
    return float((predictions[mask] == ground_truth[mask]).mean())


def bench_stitch_phase(quick: bool) -> dict:
    """Measurement 4: in-memory vs streaming stitch-phase peak memory.

    Both paths merge the same per-shard scores (synthetic matrices — the
    stitch is score-agnostic) into the same global top-k index.  The
    matrices are allocated *before* tracing starts, so each peak covers
    only the merge's own working set: the in-memory path concatenates
    every shard's candidate triples at once, while the streaming path
    reloads one spilled shard index at a time and merges window by window
    into memmap-backed outputs.

    The workload is sized independently of the alignment measurements:
    the streaming working set is bounded by ``row_window × k × shard
    membership`` (hub rows sit in many overlap rings), a constant in the
    node count, so a pair large enough to dominate fixed costs is needed
    before "peak below the materialised index size" is observable.
    """
    n_nodes = STITCH_NODES_QUICK if quick else STITCH_NODES_FULL
    pair = tiny_pair(n_nodes=n_nodes, random_state=0)
    plan = build_shard_plan(pair, STITCH_SHARDS, overlap=SHARD_OVERLAP)
    n_source, n_target = pair.source.n_nodes, pair.target.n_nodes
    matrices = []
    for shard_pair in plan.pairs:
        rng = np.random.default_rng(1000 + shard_pair.index)
        matrices.append(
            rng.standard_normal(
                (shard_pair.source_nodes.size, shard_pair.target_nodes.size)
            ).astype(np.float32)
        )

    stitched_memory, in_memory_peak_mb, memory_s = _measure(
        "stitch (in-memory)",
        lambda: stitch_alignments(plan, matrices, n_source, n_target, k=STITCH_K),
    )
    index_mb = stitched_memory.index.nbytes / 1e6

    # Spill per-shard serve indexes to disk first; the streaming stitch then
    # pulls them back one at a time through lazy callables, so at most one
    # shard index is resident at any point of the merge.
    spool = Path(tempfile.mkdtemp(prefix="bench-stitch-"))
    try:
        spilled = []
        for shard_pair, matrix in zip(plan.pairs, matrices):
            index = build_index(matrix, k=STITCH_K, reverse_k=STITCH_K)
            path = spool / f"shard_{shard_pair.index:03d}.npz"
            np.savez(path, **index.array_payload())
            spilled.append((path, index.meta_payload()))
        matrices.clear()

        def loader(path, meta):
            def load():
                with np.load(path) as data:
                    arrays = {name: data[name] for name in data.files}
                return SparseTopKIndex.from_payload(arrays, meta)

            return load

        sources = [loader(path, meta) for path, meta in spilled]
        stitched_streaming, streaming_peak_mb, streaming_s = _measure(
            "stitch (streaming)",
            lambda: stitch_alignments_streaming(
                plan,
                sources,
                n_source,
                n_target,
                k=STITCH_K,
                workdir=spool / "stream",
                row_window=STITCH_ROW_WINDOW,
            ),
        )
        mem_index = stitched_memory.index
        stream_index = stitched_streaming.index
        identical = (
            np.array_equal(mem_index.indices, stream_index.indices)
            and np.array_equal(mem_index.scores, stream_index.scores)
            and np.array_equal(mem_index.reverse_indices, stream_index.reverse_indices)
            and np.array_equal(mem_index.reverse_scores, stream_index.reverse_scores)
        )
        sources_all = np.arange(n_source)
        p1_memory = precision_at_1(stitched_memory.match(sources_all), pair.ground_truth)
        p1_streaming = precision_at_1(
            stitched_streaming.match(sources_all), pair.ground_truth
        )
        del stitched_streaming, stream_index
    finally:
        shutil.rmtree(spool, ignore_errors=True)

    return {
        "n_nodes": n_nodes,
        "n_shards": len(plan.pairs),
        "index_k": STITCH_K,
        "row_window": STITCH_ROW_WINDOW,
        "index_mb": index_mb,
        "in_memory_peak_mb": in_memory_peak_mb,
        "streaming_peak_mb": streaming_peak_mb,
        "memory_ratio": in_memory_peak_mb / streaming_peak_mb,
        "streaming_below_index": streaming_peak_mb < index_mb,
        "in_memory_s": memory_s,
        "streaming_s": streaming_s,
        "p_at_1_in_memory": p1_memory,
        "p_at_1_streaming": p1_streaming,
        "identical": identical and p1_memory == p1_streaming,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="smaller pair")
    parser.add_argument("--shards", type=int, default=SHARD_COUNT, help="shard count")
    args = parser.parse_args(argv)

    n_nodes = 1000 if args.quick else 4000
    pair = tiny_pair(n_nodes=n_nodes, random_state=0)
    config = make_config()
    print(
        f"pair: {pair.source.n_nodes}+{pair.target.n_nodes} nodes, "
        f"{pair.source.n_edges}+{pair.target.n_edges} edges, "
        f"{args.shards} shards"
    )

    single_result, single_peak_mb, single_s = _measure(
        "single-shot", lambda: HTCAligner(config).align(pair)
    )
    single_p1 = precision_at_1(
        single_result.alignment_matrix.argmax(axis=1), pair.ground_truth
    )
    del single_result

    stitched, sharded_peak_mb, sharded_s = _measure(
        "sharded",
        lambda: align_sharded(
            pair,
            config,
            shard_count=args.shards,
            shard_overlap=SHARD_OVERLAP,
            index_k=INDEX_K,
            refine_iterations=3,
        ),
    )
    sharded_p1 = precision_at_1(
        stitched.match(np.arange(pair.source.n_nodes)), pair.ground_truth
    )

    memory_ratio = single_peak_mb / sharded_peak_mb
    speedup = single_s / sharded_s
    p1_drop = single_p1 - sharded_p1
    within_tolerance = p1_drop <= P1_TOLERANCE

    stitch = bench_stitch_phase(args.quick)

    lines = [
        "Partition-align-stitch vs single-shot alignment",
        "=" * 52,
        "",
        f"pair: {n_nodes} nodes/side, {args.shards} shards "
        f"(overlap {SHARD_OVERLAP} hop), index k={INDEX_K}",
        "",
        "[1] peak memory (tracemalloc):",
        f"    single-shot {single_peak_mb:8.1f} MB",
        f"    sharded     {sharded_peak_mb:8.1f} MB  ({memory_ratio:.1f}x smaller)",
        "",
        "[2] wall clock:",
        f"    single-shot {single_s:8.1f} s",
        f"    sharded     {sharded_s:8.1f} s  ({speedup:.1f}x faster)",
        "    sharded stages: "
        + ", ".join(f"{k} {v:.1f}s" for k, v in stitched.stage_times.items()),
        "",
        "[3] accuracy (p@1 on ground truth):",
        f"    single-shot {single_p1:.4f}",
        f"    sharded     {sharded_p1:.4f}  "
        f"(drop {p1_drop:+.4f}, tolerance {P1_TOLERANCE})",
        f"    conflicts resolved: {stitched.conflicts_resolved}, "
        f"multi-shard sources: {stitched.multi_shard_sources}",
        "",
        "[4] stitch phase: in-memory vs streaming merge (tracemalloc,"
        f" {stitch['n_nodes']} nodes/side, {stitch['n_shards']} shards,"
        f" k={stitch['index_k']}, row window {stitch['row_window']}):",
        f"    global index size {stitch['index_mb']:8.1f} MB",
        f"    in-memory peak    {stitch['in_memory_peak_mb']:8.1f} MB",
        f"    streaming peak    {stitch['streaming_peak_mb']:8.1f} MB  "
        f"({stitch['memory_ratio']:.1f}x smaller, below index size: "
        f"{stitch['streaming_below_index']})",
        f"    identical result: {stitch['identical']} "
        f"(p@1 {stitch['p_at_1_streaming']:.4f} both paths)",
    ]
    text = "\n".join(lines)
    print("\n" + text)

    payload = {
        "benchmark": "partition_align_stitch",
        "command": "python benchmarks/bench_shard.py"
        + (" --quick" if args.quick else ""),
        "n_nodes": n_nodes,
        "shard_count": args.shards,
        "shard_overlap": SHARD_OVERLAP,
        "index_k": INDEX_K,
        "single_shot": {
            "peak_mb": single_peak_mb,
            "wall_s": single_s,
            "p_at_1": single_p1,
        },
        "sharded": {
            "peak_mb": sharded_peak_mb,
            "wall_s": sharded_s,
            "p_at_1": sharded_p1,
            "stage_times": {k: round(v, 3) for k, v in stitched.stage_times.items()},
            "conflicts_resolved": stitched.conflicts_resolved,
            "multi_shard_sources": stitched.multi_shard_sources,
        },
        "stitch_phase": stitch,
        "memory_ratio": memory_ratio,
        "speedup": speedup,
        "p1_drop": p1_drop,
        "p1_tolerance": P1_TOLERANCE,
        "within_tolerance": within_tolerance,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    REPORT_PATH.parent.mkdir(parents=True, exist_ok=True)
    REPORT_PATH.write_text(text + "\n")
    print(f"\n[written to {JSON_PATH} and {REPORT_PATH}]")

    ok = (
        within_tolerance
        and memory_ratio > 1.0
        and stitch["streaming_below_index"]
        and stitch["identical"]
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
