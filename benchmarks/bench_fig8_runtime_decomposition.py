"""Experiment E4 — Fig. 8: decomposition of HTC's runtime into pipeline stages.

The paper splits HTC's total time into orbit counting, Laplacian matrix
construction, multi-orbit-aware training, trusted-pair fine-tuning, weighted
integration, and other operations, and observes that counting/Laplacian/
integration are cheap while training and fine-tuning dominate.
"""

from __future__ import annotations

import pytest

from repro.core import HTCAligner
from repro.datasets import load_dataset
from repro.eval.reporting import format_table

from _common import DATASET_SCALE, HTC_CONFIG, write_report

DATASETS = ("allmovie_imdb", "douban", "flickr_myspace")


def _run_decomposition():
    # The decomposition must time the counting stage doing real work, so it
    # opts out of the shared orbit cache (another benchmark in the same
    # session may already have counted these exact graphs).
    config = HTC_CONFIG.updated(orbit_cache="off")
    decompositions = {}
    for index, name in enumerate(DATASETS):
        pair = load_dataset(name, scale=DATASET_SCALE, random_state=index)
        result = HTCAligner(config).align(pair)
        decompositions[name] = dict(result.stage_times)
    return decompositions


@pytest.mark.benchmark(group="fig8")
def test_fig8_runtime_decomposition(benchmark):
    decompositions = benchmark.pedantic(_run_decomposition, rounds=1, iterations=1)

    rows = []
    for dataset, stages in decompositions.items():
        row = {"dataset": dataset}
        row.update({stage: round(seconds, 3) for stage, seconds in stages.items()})
        row["total_s"] = round(sum(stages.values()), 3)
        rows.append(row)
    write_report(
        "fig8_runtime_decomposition",
        ["Fig. 8 — HTC runtime decomposition (seconds)", format_table(rows)],
    )

    for stages in decompositions.values():
        total = sum(stages.values())
        # Training + fine-tuning dominate; bookkeeping stages are cheap.
        heavy = stages["multi_orbit_training"] + stages["trusted_pair_fine_tuning"]
        assert heavy > 0.5 * total
        assert stages["weighted_integration"] < 0.2 * total
