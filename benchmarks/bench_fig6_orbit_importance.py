"""Experiment E2 — Fig. 6: per-orbit importance (γ) on the three dataset pairs.

The paper's finding: the γ distribution adapts to the network — dense,
motif-rich pairs spread importance across many higher-order orbits, while the
sparse pair concentrates it on a few low-order orbits; orbit 0 (the trivial
edge pattern) is not dominant on the dense pairs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.eval.reporting import format_importance_ranking

from _common import DATASET_SCALE, make_htc, write_report

DATASETS = ("allmovie_imdb", "douban", "flickr_myspace")


def _run_orbit_importance():
    importances = {}
    for index, name in enumerate(DATASETS):
        pair = load_dataset(name, scale=DATASET_SCALE, random_state=index)
        result = make_htc().align(pair)
        importances[name] = result.orbit_importance
    return importances


@pytest.mark.benchmark(group="fig6")
def test_fig6_orbit_importance(benchmark):
    importances = benchmark.pedantic(_run_orbit_importance, rounds=1, iterations=1)

    sections = ["Fig. 6 — orbit importance (gamma) per dataset"]
    for name, importance in importances.items():
        sections.append(format_importance_ranking(importance, title=f"[{name}]"))
        variance = float(np.var(list(importance.values())))
        sections.append(f"  gamma variance on {name}: {variance:.6f}")
    write_report("fig6_orbit_importance", sections)

    for name, importance in importances.items():
        assert abs(sum(importance.values()) - 1.0) < 1e-9
    # Dense pair: higher-order orbits carry the majority of the mass.
    dense = importances["allmovie_imdb"]
    assert sum(gamma for orbit, gamma in dense.items() if orbit != 0) > 0.5
    # The paper's Fig. 6 observation: the dense pair's gamma distribution is
    # flatter (smaller variance) than the sparse pair's.
    dense_var = np.var(list(importances["allmovie_imdb"].values()))
    sparse_var = np.var(list(importances["flickr_myspace"].values()))
    assert dense_var <= sparse_var * 1.5
