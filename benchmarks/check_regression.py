"""Compare fresh benchmark JSONs against committed baselines (the CI gate).

Each ``BENCH_*.json`` at the repo root is a committed baseline.  CI copies
them aside, re-runs the quick benchmark modes, and calls this script to
compare the fresh numbers against the baselines:

* **boolean invariants** (parity with dense, bit-identical kernels, suite
  completion, accuracy-within-tolerance) must hold in the fresh run,
  unconditionally;
* **ratio metrics** (memory reductions, speedups) must clear an absolute
  floor, unconditionally;
* **relative checks** — no timing more than ``2x`` slower and no
  rate/ratio less than half the baseline — apply only when the fresh run
  and the baseline were produced by the same benchmark mode (both quick or
  both full, detected from the recorded ``command``), because absolute
  numbers are not comparable across problem sizes.  The nightly full-mode
  run compares apples to apples; quick-mode PR runs still enforce every
  invariant and floor.  The same guard applies to the recorded backend:
  a relative check whose subtree names an ``executor``/``backend`` is
  skipped when the baseline and the fresh run resolved different ones
  (e.g. ``auto`` picking another executor on a different machine).

A committed baseline that is missing a checked value is *schema-stale*
(the benchmark script changed without regenerating its baseline); the
gate fails with the exact regeneration command instead of silently
skipping.

Exit status 0 = no regression, 1 = at least one failed check.

Run with::

    python benchmarks/check_regression.py --baseline-dir baselines --fresh-dir .
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Relative slowdown that fails the gate (fresh > 2x baseline seconds).
#: The committed baselines are recorded on whatever machine regenerated
#: them; the 2x margin is deliberately coarse so ordinary hardware
#: differences between that machine and the CI runner do not trip it —
#: this catches algorithmic blowups, not percent-level drift.
MAX_SLOWDOWN = 2.0

#: Relative collapse that fails the gate for rates and ratios
#: (fresh < 0.5x baseline).
MAX_COLLAPSE = 0.5

# Check kinds:
#   "true"   — fresh value must be truthy (always enforced)
#   "floor"  — fresh value must be >= the given floor (always enforced)
#   "ceil"   — fresh value must be <= the given ceiling (always enforced);
#              the SLO counterpart of "floor" for tail latency and overhead
#   "true?"  — like "true" but skipped when the fresh value is null: the
#              benchmark recorded the metric as not measurable on this
#              machine (an optional accelerator that is not installed).
#              A *missing* value still fails as schema-stale.
#   "floor?" — like "floor" with the same null-skip rule
#   "time"   — fresh must be <= MAX_SLOWDOWN * baseline (same mode only)
#   "rate"   — fresh must be >= MAX_COLLAPSE * baseline (same mode only)
#   "pfloor" / "ptime" / "prate" — the parallel-speedup variants: identical
#              semantics, but skipped (naming the check and the recorded
#              cpu counts) when the run was produced on a box with fewer
#              than 2 cpus — a single-cpu container cannot demonstrate a
#              parallel speedup, and comparing its wall times against a
#              multi-cpu baseline is noise, not signal.  "pfloor" guards on
#              the fresh run's cpus; the relative kinds guard on both.
CHECKS = {
    "BENCH_orbits.json": [
        ("results.0.identical", "true", None),
        ("results.0.speedup_total", "floor", 2.0),
        ("results.0.backends.numpy.total_s", "time", None),
        # The numba JIT backend is optional: its subtree records null
        # metrics where numba is absent (the numba CI leg measures them).
        # results.1 is er_2k_edges — the acceptance-criterion graph,
        # present in both quick and full modes.
        ("results.1.jit.identical", "true?", None),
        ("results.1.jit.speedup_edge", "floor?", 2.0),
        # Delta recounting runs everywhere: a 1% edge-mutation batch must
        # patch bit-identically (including the cache re-entry) and beat a
        # from-scratch recount by 5x.
        ("results.1.delta.identical", "true", None),
        ("results.1.delta.speedup", "floor", 5.0),
    ],
    "BENCH_runner.json": [
        ("suite.all_done", "true", None),
        ("suite.executors.serial.wall_s", "time", None),
        ("suite.executors.process-pool.wall_s", "ptime", None),
        ("suite.executors.thread-pool.wall_s", "ptime", None),
        ("suite.executors.process-pool-shm.wall_s", "ptime", None),
        # Guarded by the backend check: only compared when both runs
        # overlapped their sleep jobs through the same executor.
        ("suite.scheduler_overlap.speedup", "prate", None),
        # The zero-copy pool must return byte-identical results to serial
        # everywhere; its 1.3x speedup floor is a parallel property, so it
        # auto-skips (by name, with the cpu counts) on boxes below 2 cpus.
        ("shm.bit_identical", "true", None),
        ("shm.speedup_vs_serial", "pfloor", 1.3),
        ("kernel_memory.identical", "true", None),
        ("kernel_memory.memory_ratio", "floor", 2.0),
        ("kernel_memory.chunked_s", "time", None),
        ("greedy_memory.identical", "true", None),
        ("greedy_memory.memory_ratio", "floor", 5.0),
        ("greedy_memory.heap_s", "time", None),
    ],
    "BENCH_serve.json": [
        ("parity_with_dense", "true", None),
        ("compression.memory_ratio", "floor", 10.0),
        ("queries_per_second.match_batch_qps", "rate", None),
        ("queries_per_second.topk_batch_qps", "rate", None),
        ("compression.save_s", "time", None),
    ],
    "BENCH_precision.json": [
        ("float64_bit_identical", "true", None),
        ("accuracy.within_tolerance", "true", None),
        ("memory.memory_ratio", "floor", 1.8),
        # GEMM gains depend on the BLAS build; 1.1 is the "measurable
        # speedup" floor, the same-mode rate check catches collapses.
        ("gemm.speedup", "floor", 1.1),
        ("gemm.float32_s", "time", None),
    ],
    "BENCH_api.json": [
        ("parity_with_direct", "true", None),
        ("structured_errors", "true", None),
        # Calibrated far below the in-container measurement (~180k quick);
        # the subtree records "backend": "stdlib" so runs fronted by a
        # different server stack skip the relative checks.
        ("http.sustained_qps", "floor", 15000.0),
        ("http.sustained_qps", "rate", None),
        ("http.p99_ms", "time", None),
    ],
    "BENCH_loadtest.json": [
        # The server's own /metrics must agree exactly with what the
        # clients measured — the observability layer is gated like a
        # correctness property, not a nice-to-have.
        ("metrics_agree", "true", None),
        ("open_loop.no_failures", "true", None),
        # First-class SLOs (always enforced, both modes): sustained
        # open-loop throughput floor and p99 ceiling.  The ceiling is far
        # above the recorded ~21ms because open-loop latency charges
        # queueing delay to the measurement — a slow CI runner shifts it,
        # a server that stops keeping up explodes it to seconds.
        ("open_loop.sustained_qps", "floor", 15000.0),
        ("open_loop.p99_ms", "ceil", 250.0),
        # The stats path must stay cheap: recording a batch is ~2µs next
        # to a ~11µs in-process match, so >60% would mean a lock or
        # allocation regression in the metrics core.
        ("instrumentation_overhead.overhead_pct", "ceil", 60.0),
        ("open_loop.sustained_qps", "rate", None),
        ("capacity.sustained_qps", "rate", None),
    ],
    "BENCH_shard.json": [
        ("within_tolerance", "true", None),
        ("memory_ratio", "floor", 1.5),
        # Sharding's wall-clock win is a large-pair property (fixed per-shard
        # overheads dominate at quick size), so speedup is a same-mode
        # relative check: the nightly full-size run enforces it.
        ("speedup", "rate", None),
        ("sharded.wall_s", "time", None),
        ("stitch_phase.identical", "true", None),
        ("stitch_phase.streaming_below_index", "true", None),
        ("stitch_phase.memory_ratio", "floor", 2.0),
        ("stitch_phase.streaming_s", "time", None),
    ],
}

#: How to rebuild each committed baseline (printed when one is missing or
#: schema-stale; append ``--quick`` only for local smoke checks — committed
#: baselines are full-mode).
REGEN_COMMANDS = {
    "BENCH_orbits.json": "python benchmarks/bench_orbit_counting.py",
    "BENCH_runner.json": "python benchmarks/bench_runner.py",
    "BENCH_serve.json": "python benchmarks/bench_serve.py",
    "BENCH_api.json": "python benchmarks/bench_api.py",
    "BENCH_loadtest.json": "python benchmarks/bench_loadtest.py",
    "BENCH_precision.json": "python benchmarks/bench_precision.py",
    "BENCH_shard.json": "python benchmarks/bench_shard.py",
}


def lookup(payload, dotted_path):
    """Resolve ``a.b.0.c`` style paths through dicts and lists."""
    value = payload
    for part in dotted_path.split("."):
        if isinstance(value, list):
            value = value[int(part)]
        else:
            value = value[part]
    return value


def same_mode(baseline: dict, fresh: dict) -> bool:
    """Whether both payloads came from the same benchmark mode."""
    baseline_cmd = str(baseline.get("command", ""))
    fresh_cmd = str(fresh.get("command", ""))
    return ("--quick" in baseline_cmd) == ("--quick" in fresh_cmd)


def backend_context(payload, dotted_path):
    """The innermost ``executor``/``backend`` name recorded along a path.

    The backend analogue of :func:`same_mode`: a relative check under a
    subtree that records which backend produced it (``"executor": ...`` or
    ``"backend": ...``) is only comparable when the baseline and the fresh
    run resolved the *same* one.  Returns ``None`` when no backend is
    recorded anywhere along the path.
    """
    context = None
    value = payload
    for part in dotted_path.split(".") + [None]:
        if isinstance(value, dict):
            for key in ("executor", "backend"):
                recorded = value.get(key)
                if isinstance(recorded, str):
                    context = recorded
        if part is None:
            break
        try:
            value = value[int(part)] if isinstance(value, list) else value[part]
        except (KeyError, IndexError, TypeError, ValueError):
            break
    return context


def recorded_cpus(payload: dict):
    """The cpu count a benchmark payload recorded, or ``None`` if absent."""
    cpus = payload.get("cpus")
    try:
        return int(cpus)
    except (TypeError, ValueError):
        return None


#: Parallel-speedup check kinds and the plain kind each reduces to once the
#: cpu guard passes.
PARALLEL_KINDS = {"pfloor": "floor", "ptime": "time", "prate": "rate"}


def check_file(name: str, baseline: dict, fresh: dict) -> list:
    """Run every check for one benchmark file; returns failure strings."""
    failures = []
    comparable = same_mode(baseline, fresh)
    regen = REGEN_COMMANDS.get(name, f"the benchmark that writes {name}")
    for path, kind, floor in CHECKS[name]:
        try:
            fresh_value = lookup(fresh, path)
        except (KeyError, IndexError, TypeError, ValueError):
            failures.append(
                f"{name}:{path}: missing from the fresh run "
                f"(stale benchmark output? regenerate with `{regen}`)"
            )
            print(f"  [FAIL] {path}: missing from the fresh run")
            continue
        if kind in PARALLEL_KINDS:
            fresh_cpus = recorded_cpus(fresh)
            baseline_cpus = recorded_cpus(baseline)
            guarded = [("fresh", fresh_cpus)]
            if kind != "pfloor":  # floors never read the baseline value
                guarded.append(("baseline", baseline_cpus))
            if any(cpus is not None and cpus < 2 for _, cpus in guarded):
                print(
                    f"  [SKIP] {path}: parallel-speedup check needs >= 2 "
                    f"cpus (baseline recorded {baseline_cpus} cpu(s), "
                    f"fresh {fresh_cpus})"
                )
                continue
            kind = PARALLEL_KINDS[kind]
        if kind in ("true?", "floor?"):
            if fresh_value is None:
                print(f"  [SKIP] {path}: recorded as not measurable here")
                continue
            kind = kind[:-1]
        if kind == "true":
            status = "OK" if fresh_value else "FAIL"
            if not fresh_value:
                failures.append(f"{name}:{path}: expected truthy, got {fresh_value!r}")
            print(f"  [{status}] {path} = {fresh_value!r} (must hold)")
            continue
        if kind == "floor":
            ok = float(fresh_value) >= floor
            if not ok:
                failures.append(
                    f"{name}:{path}: {float(fresh_value):.3g} below floor {floor}"
                )
            print(
                f"  [{'OK' if ok else 'FAIL'}] {path} = "
                f"{float(fresh_value):.3g} (floor {floor})"
            )
            continue
        if kind == "ceil":
            ok = float(fresh_value) <= floor
            if not ok:
                failures.append(
                    f"{name}:{path}: {float(fresh_value):.3g} above ceiling {floor}"
                )
            print(
                f"  [{'OK' if ok else 'FAIL'}] {path} = "
                f"{float(fresh_value):.3g} (ceiling {floor})"
            )
            continue
        # Relative checks need a comparable baseline value.
        try:
            baseline_value = float(lookup(baseline, path))
        except (KeyError, IndexError, TypeError, ValueError):
            if baseline:
                failures.append(
                    f"{name}:{path}: committed baseline is schema-stale "
                    f"(missing this value); regenerate it with `{regen}` "
                    f"and commit the refreshed {name}"
                )
                print(f"  [FAIL] {path}: baseline is schema-stale")
            else:
                print(f"  [SKIP] {path}: no baseline value")
            continue
        if not comparable:
            print(f"  [SKIP] {path}: baseline ran a different mode")
            continue
        baseline_backend = backend_context(baseline, path)
        fresh_backend = backend_context(fresh, path)
        if baseline_backend != fresh_backend:
            print(
                f"  [SKIP] {path}: baseline ran a different backend "
                f"({baseline_backend} vs {fresh_backend})"
            )
            continue
        fresh_value = float(fresh_value)
        if kind == "time":
            ok = fresh_value <= MAX_SLOWDOWN * baseline_value
            detail = f"{fresh_value:.3g}s vs baseline {baseline_value:.3g}s"
            if not ok:
                failures.append(f"{name}:{path}: {detail} (> {MAX_SLOWDOWN}x slowdown)")
        elif kind == "rate":
            ok = fresh_value >= MAX_COLLAPSE * baseline_value
            detail = f"{fresh_value:.3g} vs baseline {baseline_value:.3g}"
            if not ok:
                failures.append(
                    f"{name}:{path}: {detail} (< {MAX_COLLAPSE}x of baseline)"
                )
        else:  # pragma: no cover - spec table typo guard
            raise ValueError(f"unknown check kind {kind!r}")
        print(f"  [{'OK' if ok else 'FAIL'}] {path}: {detail}")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline-dir",
        default="baselines",
        metavar="DIR",
        help="directory holding the committed BENCH_*.json baselines",
    )
    parser.add_argument(
        "--fresh-dir",
        default=".",
        metavar="DIR",
        help="directory holding the freshly generated BENCH_*.json files",
    )
    parser.add_argument(
        "--files",
        nargs="+",
        default=sorted(CHECKS),
        choices=sorted(CHECKS),
        help="benchmark files to compare (default: all known)",
    )
    args = parser.parse_args(argv)

    baseline_dir = Path(args.baseline_dir)
    fresh_dir = Path(args.fresh_dir)
    failures = []
    for name in args.files:
        fresh_path = fresh_dir / name
        baseline_path = baseline_dir / name
        regen = REGEN_COMMANDS.get(name, f"the benchmark that writes {name}")
        print(f"{name}:")
        if not fresh_path.is_file():
            failures.append(
                f"{name}: fresh results missing at {fresh_path}; "
                f"generate them with `{regen}` (use --quick for a smoke run)"
            )
            print(f"  [FAIL] missing fresh results at {fresh_path}")
            continue
        fresh = json.loads(fresh_path.read_text())
        baseline = (
            json.loads(baseline_path.read_text())
            if baseline_path.is_file()
            else {}
        )
        if not baseline:
            print(
                "  [note] no committed baseline; floors/invariants only — "
                f"regenerate with `{regen}` and commit {name} to restore "
                "relative checks"
            )
        failures.extend(check_file(name, baseline, fresh))

    print()
    if failures:
        print(f"REGRESSION GATE FAILED ({len(failures)} problem(s)):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
