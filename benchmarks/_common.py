"""Shared configuration and reporting helpers for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper's
evaluation section (see DESIGN.md §5 for the experiment index).  The
stand-in datasets are scaled down (``DATASET_SCALE``) so the whole harness
runs on CPU in minutes; the *shape* of the results (method ordering, trends,
crossovers) is what is being reproduced, not the absolute numbers.

Each benchmark prints its table/series and also writes it to
``benchmarks/results/<name>.txt`` so the output survives pytest's capture.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List

from repro.baselines import CENALP, FINAL, PALE, REGAL, GAlign, IsoRank
from repro.core import HTCAligner, HTCConfig

#: Scale factor applied to every paper dataset stand-in.
DATASET_SCALE = 0.3

#: Number of repetitions per (method, dataset) cell.  The paper averages over
#: 20 runs; one run per cell keeps the harness fast while remaining
#: representative (the generators and models are seeded).
N_RUNS = 1

#: Shared HTC configuration for all benchmarks (paper §V-A scaled down:
#: 2 GCN layers, Adam lr=0.01, beta=1.1, all 13 orbits).  Orbit counting uses
#: the vectorized backend with the shared in-memory cache, so benchmarks that
#: re-align the same pair (Fig. 7/8 runtime, robustness and hyper-parameter
#: sweeps) pay the counting stage once per distinct graph.
HTC_CONFIG = HTCConfig(
    embedding_dim=32,
    n_layers=2,
    epochs=40,
    learning_rate=0.01,
    n_neighbors=10,
    reinforcement_rate=1.1,
    orbit_backend="auto",
    orbit_cache="memory",
    random_state=0,
)

RESULTS_DIR = Path(__file__).parent / "results"


def make_htc() -> HTCAligner:
    """The full HTC model with the shared benchmark configuration."""
    return HTCAligner(HTC_CONFIG)


def make_paper_baselines() -> List:
    """The six baselines of the paper's Table II, in table order."""
    return [
        GAlign(embedding_dim=32, epochs=40, random_state=0),
        FINAL(n_iterations=25),
        PALE(embedding_dim=32, epochs=150, random_state=0),
        CENALP(embedding_dim=32, n_rounds=4, random_state=0),
        IsoRank(n_iterations=25),
        REGAL(n_landmarks=60, random_state=0),
    ]


def make_all_methods() -> List:
    """HTC followed by every baseline."""
    return [make_htc(), *make_paper_baselines()]


def write_report(name: str, sections: Iterable[str]) -> Path:
    """Print ``sections`` and persist them under ``benchmarks/results/``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    text = "\n\n".join(sections) + "\n"
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text)
    print(f"\n{text}")
    print(f"[report written to {path}]")
    return path
