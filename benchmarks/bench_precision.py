"""Benchmark: precision policies — float32 vs float64 hot paths.

Backs the ``repro.backend`` precision layer with four measurements:

1. **Bit-identity of the float64 policy.**  Every scoring kernel called
   with an explicit ``policy="float64"`` must return exactly the bytes of
   the policy-less call (the refactor must not perturb the exact path).
2. **Peak scoring memory.**  ``tracemalloc``-traced peaks of the full
   LISI scoring + top-k pipeline under each policy; the acceptance floor
   is a >= 1.8x reduction for float32.
3. **GEMM throughput.**  Repeated Pearson GEMMs under each policy; float32
   must show a measurable speedup on the BLAS build in use.
4. **Accuracy.**  p@1 on a seeded well-separated pair under both policies
   (tolerance: |Δ p@1| <= 0.02), argmax agreement, max elementwise error,
   and top-k prefix overlap — the documented float32 envelope.

Results land in ``BENCH_precision.json`` at the repo root plus a readable
table under ``benchmarks/results/``; CI re-runs ``--quick`` and gates on
the JSON via ``benchmarks/check_regression.py``.

Run with::

    python benchmarks/bench_precision.py            # full size
    python benchmarks/bench_precision.py --quick    # smaller, CI-friendly
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import tracemalloc
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve.index import build_index_from_embeddings  # noqa: E402
from repro.similarity import (  # noqa: E402
    chunked_score_matrix,
    lisi_matrix,
    pearson_similarity,
    top_k_indices,
)

JSON_PATH = REPO_ROOT / "BENCH_precision.json"
REPORT_PATH = REPO_ROOT / "benchmarks" / "results" / "bench_precision.txt"

#: Documented float32 accuracy envelope on p@1.
P_AT_1_TOLERANCE = 0.02

TOP_K = 10


def make_pair(n_source: int, n_target: int, dim: int, seed: int = 0):
    """A well-separated pair whose ground truth is the identity prefix."""
    rng = np.random.default_rng(seed)
    base = rng.standard_normal((max(n_source, n_target), dim))
    source = base[:n_source] + 0.05 * rng.standard_normal((n_source, dim))
    target = base[:n_target] + 0.05 * rng.standard_normal((n_target, dim))
    return source, target


def _traced_peak(function) -> tuple:
    """(result, peak traced bytes) of ``function()``."""
    tracemalloc.start()
    tracemalloc.reset_peak()
    try:
        result = function()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, peak


def bench_bit_identity(source, target) -> bool:
    """Measurement 1: explicit float64 policy == historical kernels."""
    checks = [
        np.array_equal(
            pearson_similarity(source, target),
            pearson_similarity(source, target, policy="float64"),
        ),
        np.array_equal(
            lisi_matrix(source, target, n_neighbors=10),
            lisi_matrix(source, target, n_neighbors=10, policy="float64"),
        ),
        np.array_equal(
            chunked_score_matrix(source, target, correction="lisi", chunk_rows=256),
            chunked_score_matrix(
                source,
                target,
                correction="lisi",
                chunk_rows=256,
                policy="float64",
            ),
        ),
    ]
    return all(checks)


def bench_memory(source, target) -> dict:
    """Measurement 2: peak traced memory of the scoring stage per policy.

    The gated ratio covers the scoring kernel itself (the dense LISI matrix
    the refinement loop recomputes every iteration — the aligner's
    peak-memory driver).  The serve-index build is reported as a secondary
    ungated ratio: its ``intp`` index arrays and argsort temporaries are
    dtype-independent, so its reduction is structurally smaller.
    """
    scores64, peak64 = _traced_peak(
        lambda: lisi_matrix(source, target, n_neighbors=10, policy="float64")
    )
    scores32, peak32 = _traced_peak(
        lambda: lisi_matrix(source, target, n_neighbors=10, policy="float32")
    )

    def index_build(policy):
        return lambda: build_index_from_embeddings(
            source, target, k=TOP_K, correction="lisi", chunk_rows=256,
            policy=policy,
        )

    index64, index_peak64 = _traced_peak(index_build("float64"))
    index32, index_peak32 = _traced_peak(index_build("float32"))
    return {
        "shape": [int(source.shape[0]), int(target.shape[0]), int(source.shape[1])],
        "float64_peak_mb": peak64 / 1e6,
        "float32_peak_mb": peak32 / 1e6,
        "memory_ratio": peak64 / peak32,
        "max_abs_error": float(np.abs(scores64 - scores32).max()),
        "serve_index": {
            "float64_peak_mb": index_peak64 / 1e6,
            "float32_peak_mb": index_peak32 / 1e6,
            "memory_ratio": index_peak64 / index_peak32,
            "stored_bytes_ratio": index64.nbytes / index32.nbytes,
        },
    }


def bench_gemm(source, target, repeats: int) -> dict:
    """Measurement 3: repeated Pearson GEMMs per policy."""
    timings = {}
    for policy in ("float64", "float32"):
        out = pearson_similarity(source, target, policy=policy)  # warm-up
        started = time.perf_counter()
        for _ in range(repeats):
            pearson_similarity(source, target, out=out, policy=policy)
        timings[policy] = (time.perf_counter() - started) / repeats
    return {
        "repeats": repeats,
        "float64_s": timings["float64"],
        "float32_s": timings["float32"],
        "speedup": timings["float64"] / timings["float32"],
    }


def bench_accuracy(source, target) -> dict:
    """Measurement 4: p@1 / top-k agreement between the policies."""
    scores64 = lisi_matrix(source, target, n_neighbors=10)
    scores32 = lisi_matrix(source, target, n_neighbors=10, policy="float32")
    truth = np.arange(source.shape[0])
    match64 = scores64.argmax(axis=1)
    match32 = scores32.argmax(axis=1)
    p1_64 = float((match64 == truth).mean())
    p1_32 = float((match32 == truth).mean())
    top64 = top_k_indices(scores64, TOP_K)
    top32 = top_k_indices(scores32, TOP_K)
    overlap = float(
        np.mean(
            [
                len(np.intersect1d(top64[i], top32[i])) / TOP_K
                for i in range(top64.shape[0])
            ]
        )
    )
    delta = abs(p1_64 - p1_32)
    return {
        "p_at_1_float64": p1_64,
        "p_at_1_float32": p1_32,
        "p_at_1_delta": delta,
        "tolerance": P_AT_1_TOLERANCE,
        "within_tolerance": bool(delta <= P_AT_1_TOLERANCE),
        "argmax_agreement": float((match64 == match32).mean()),
        "top_k_overlap": overlap,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="smaller sizes")
    args = parser.parse_args(argv)

    n_source, n_target, dim = (1200, 1000, 48) if args.quick else (3000, 2500, 64)
    repeats = 5 if args.quick else 10
    source, target = make_pair(n_source, n_target, dim)

    identical = bench_bit_identity(source, target)
    memory = bench_memory(source, target)
    gemm = bench_gemm(source, target, repeats)
    accuracy = bench_accuracy(source, target)

    lines = [
        f"Precision policies, shape {memory['shape']}",
        "",
        f"[1] float64 policy bit-identical to historical kernels: {identical}",
        "",
        "[2] peak scoring memory (dense LISI):",
        f"    float64 {memory['float64_peak_mb']:.1f} MB vs float32"
        f" {memory['float32_peak_mb']:.1f} MB"
        f"  ({memory['memory_ratio']:.2f}x less)",
        f"    max |error| {memory['max_abs_error']:.2e}",
        f"    serve-index build: {memory['serve_index']['float64_peak_mb']:.1f} MB"
        f" vs {memory['serve_index']['float32_peak_mb']:.1f} MB"
        f" ({memory['serve_index']['memory_ratio']:.2f}x), stored arrays"
        f" {memory['serve_index']['stored_bytes_ratio']:.2f}x smaller",
        "",
        f"[3] Pearson GEMM ({gemm['repeats']} repeats):",
        f"    float64 {gemm['float64_s'] * 1000:.1f} ms vs float32"
        f" {gemm['float32_s'] * 1000:.1f} ms  ({gemm['speedup']:.2f}x faster)",
        "",
        "[4] accuracy:",
        f"    p@1 float64 {accuracy['p_at_1_float64']:.4f} vs float32"
        f" {accuracy['p_at_1_float32']:.4f}"
        f"  (delta {accuracy['p_at_1_delta']:.4f} <= {P_AT_1_TOLERANCE}:"
        f" {accuracy['within_tolerance']})",
        f"    argmax agreement {accuracy['argmax_agreement']:.4f},"
        f" top-{TOP_K} overlap {accuracy['top_k_overlap']:.4f}",
    ]
    text = "\n".join(lines)
    print(text)

    payload = {
        "benchmark": "precision_policies",
        "command": "python benchmarks/bench_precision.py"
        + (" --quick" if args.quick else ""),
        "float64_bit_identical": identical,
        "memory": memory,
        "gemm": gemm,
        "accuracy": accuracy,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    REPORT_PATH.parent.mkdir(parents=True, exist_ok=True)
    REPORT_PATH.write_text(text + "\n")
    print(f"\n[written to {JSON_PATH} and {REPORT_PATH}]")

    ok = identical and accuracy["within_tolerance"] and memory["memory_ratio"] >= 1.8
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
