"""Micro-benchmark: orbit-counting backends across graph sizes.

Times the ``python`` (reference) and ``numpy`` (vectorized) backends of the
orbit engine — edge orbits, node orbits, and a warm-cache pass — on ER and
power-law synthetic graphs of increasing size, verifies the backends stay
bit-identical, and records the results in ``BENCH_orbits.json`` at the repo
root (plus a readable table under ``benchmarks/results/``).  This file is the
perf trajectory for the counting stage: future PRs should not regress the
recorded speedups.

Two accelerated paths ride along:

* the ``numba`` JIT backend is timed when numba is importable; otherwise
  the ``jit`` subtree records ``"available": false`` with null metrics so
  the regression gate can skip its floor instead of failing (the numba CI
  leg fills the numbers in);
* delta recounting (``repro.orbits.delta``) is always timed: a 1% edge
  mutation batch is patched and compared — bit-identically, including the
  cache re-entry under the mutated graph's hash — against a from-scratch
  recount of the mutated graph.

Run with::

    python benchmarks/bench_orbit_counting.py            # full sweep
    python benchmarks/bench_orbit_counting.py --quick    # small graphs only
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.graph.generators import erdos_renyi_graph, powerlaw_cluster_graph  # noqa: E402
from repro.orbits import engine  # noqa: E402
from repro.orbits.cache import OrbitCache, graph_content_hash  # noqa: E402
from repro.orbits.delta import apply_edge_batch, delta_count_node_orbits  # noqa: E402

#: (name, factory) per benchmark graph; the 2k-edge ER case is the
#: acceptance-criterion configuration.
GRAPH_SPECS = (
    ("er_small", lambda: erdos_renyi_graph(150, 6.0, random_state=0)),
    ("er_2k_edges", lambda: erdos_renyi_graph(500, 8.0, random_state=7)),
    ("er_large", lambda: erdos_renyi_graph(1200, 10.0, random_state=1)),
    ("powerlaw_2k_edges", lambda: powerlaw_cluster_graph(700, 3, 0.5, random_state=2)),
)
QUICK_SPECS = GRAPH_SPECS[:2]

JSON_PATH = REPO_ROOT / "BENCH_orbits.json"
REPORT_PATH = REPO_ROOT / "benchmarks" / "results" / "bench_orbit_counting.txt"


def _time(function, repeats: int) -> float:
    """Best-of-``repeats`` wall-clock seconds for ``function()``."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def _mutation_batch(graph, rng, n_changes):
    """A disjoint (additions, removals) batch of ``n_changes`` edges each."""
    edge_list = graph.edge_list()
    present = set(edge_list)
    picks = rng.permutation(len(edge_list)).tolist()[:n_changes]
    removals = [edge_list[i] for i in picks]
    additions = []
    n = graph.n_nodes
    while len(additions) < n_changes:
        u, v = int(rng.integers(n)), int(rng.integers(n))
        if u == v:
            continue
        edge = (min(u, v), max(u, v))
        if edge in present or edge in additions:
            continue
        additions.append(edge)
    return additions, removals


def bench_jit(graph, python_timings: dict, repeats: int) -> dict:
    """Time the numba JIT backend against the recorded reference timings.

    Returns ``{"available": False, ...null metrics...}`` when numba is not
    importable so the JSON schema is stable either way and the regression
    gate can tell "not measured here" from "missing".
    """
    if "numba" not in engine.available_backends():
        return {
            "available": False,
            "edge_s": None,
            "node_s": None,
            "total_s": None,
            "speedup_edge": None,
            "speedup_total": None,
            "identical": None,
        }
    # Warm-up compiles the kernel outside the timed region.
    engine.count_edge_orbits(graph, backend="numba")
    timings = {
        "available": True,
        "edge_s": _time(
            lambda: engine.count_edge_orbits(graph, backend="numba"), repeats
        ),
        "node_s": _time(
            lambda: engine.count_node_orbits(graph, backend="numba"), repeats
        ),
    }
    timings["total_s"] = timings["edge_s"] + timings["node_s"]
    timings["speedup_edge"] = python_timings["edge_s"] / timings["edge_s"]
    timings["speedup_total"] = python_timings["total_s"] / timings["total_s"]
    reference = engine.count_edge_orbits(graph, backend="numpy")
    fast = engine.count_edge_orbits(graph, backend="numba")
    timings["identical"] = bool(
        reference.edges == fast.edges
        and np.array_equal(reference.counts, fast.counts)
        and np.array_equal(
            engine.count_node_orbits(graph, backend="numpy"),
            engine.count_node_orbits(graph, backend="numba"),
        )
    )
    return timings


def bench_delta(graph, repeats: int) -> dict:
    """Delta-recount a 1% edge-mutation batch vs. a from-scratch recount."""
    n_changes = max(1, graph.n_edges // 100 // 2)
    rng = np.random.default_rng(42)
    additions, removals = _mutation_batch(graph, rng, n_changes)
    mutated = apply_edge_batch(
        graph, add_edges=additions, remove_edges=removals
    )
    base = engine.count_node_orbits(graph, backend="numpy")

    full_s = _time(
        lambda: engine.count_node_orbits(mutated, backend="numpy"), repeats
    )
    delta_s = _time(
        lambda: delta_count_node_orbits(
            graph,
            add_edges=additions,
            remove_edges=removals,
            node_orbits=base,
        ),
        repeats,
    )

    # Correctness: the patched matrix is bit-identical to the recount, and
    # the cache re-entry lands under the mutated graph's content hash.
    cache = OrbitCache()
    engine.count_node_orbits(graph, backend="numpy", cache=cache)
    result = delta_count_node_orbits(
        graph, add_edges=additions, remove_edges=removals, cache=cache
    )
    full = engine.count_node_orbits(mutated, backend="numpy")
    cached = cache.get_node_orbits(graph_content_hash(result.graph))
    identical = bool(
        np.array_equal(result.node_orbits, full)
        and cached is not None
        and np.array_equal(cached, full)
    )
    return {
        "n_changed": len(additions) + len(removals),
        "full_s": full_s,
        "delta_s": delta_s,
        "speedup": full_s / delta_s,
        "identical": identical,
    }


def bench_graph(name: str, factory, repeats: int) -> dict:
    """Benchmark both backends (and the cache) on one graph."""
    graph = factory()
    record = {"graph": name, "n_nodes": graph.n_nodes, "n_edges": graph.n_edges}

    timings = {}
    for backend in ("python", "numpy"):
        timings[backend] = {
            "edge_s": _time(lambda: engine.count_edge_orbits(graph, backend=backend),
                            repeats if backend == "numpy" else 1),
            "node_s": _time(lambda: engine.count_node_orbits(graph, backend=backend),
                            repeats if backend == "numpy" else 1),
        }
        timings[backend]["total_s"] = (
            timings[backend]["edge_s"] + timings[backend]["node_s"]
        )
    record["backends"] = timings
    record["speedup_edge"] = timings["python"]["edge_s"] / timings["numpy"]["edge_s"]
    record["speedup_node"] = timings["python"]["node_s"] / timings["numpy"]["node_s"]
    record["speedup_total"] = timings["python"]["total_s"] / timings["numpy"]["total_s"]

    # Warm-cache pass: the second lookup must skip counting entirely.
    cache = OrbitCache()
    engine.count_edge_orbits(graph, cache=cache)
    record["cached_edge_s"] = _time(
        lambda: engine.count_edge_orbits(graph, cache=cache), repeats
    )
    assert cache.stats()["hits"] >= 1

    reference = engine.count_edge_orbits(graph, backend="python")
    fast = engine.count_edge_orbits(graph, backend="numpy")
    record["identical"] = bool(
        reference.edges == fast.edges
        and np.array_equal(reference.counts, fast.counts)
        and np.array_equal(
            engine.count_node_orbits(graph, backend="python"),
            engine.count_node_orbits(graph, backend="numpy"),
        )
    )

    record["jit"] = bench_jit(graph, timings["python"], repeats)
    record["delta"] = bench_delta(graph, repeats)
    return record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small graphs only")
    parser.add_argument("--repeats", type=int, default=3, help="best-of repeats")
    args = parser.parse_args(argv)

    if "numpy" not in engine.available_backends():
        print(
            "vectorized backend unavailable (needs numpy >= 2.0 for "
            "np.bitwise_count); nothing to compare",
            file=sys.stderr,
        )
        return 0

    specs = QUICK_SPECS if args.quick else GRAPH_SPECS
    records = []
    lines = [
        "Orbit-counting backends (best-of-%d, seconds)" % args.repeats,
        f"{'graph':<20}{'nodes':>7}{'edges':>7}{'python':>10}{'numpy':>10}"
        f"{'speedup':>9}{'jit':>10}{'delta':>9}{'identical':>11}",
    ]
    for name, factory in specs:
        record = bench_graph(name, factory, args.repeats)
        records.append(record)
        jit = record["jit"]
        jit_cell = (
            f"{jit['speedup_total']:>9.1f}x" if jit["available"] else f"{'n/a':>10}"
        )
        identical = record["identical"] and record["delta"]["identical"] and (
            jit["identical"] is not False
        )
        lines.append(
            f"{record['graph']:<20}{record['n_nodes']:>7}{record['n_edges']:>7}"
            f"{record['backends']['python']['total_s']:>10.3f}"
            f"{record['backends']['numpy']['total_s']:>10.3f}"
            f"{record['speedup_total']:>8.1f}x"
            f"{jit_cell}"
            f"{record['delta']['speedup']:>8.1f}x"
            f"{str(identical):>11}"
        )
        print(lines[-1])

    payload = {
        "benchmark": "orbit_counting_backends",
        "command": "python benchmarks/bench_orbit_counting.py"
        + (" --quick" if args.quick else ""),
        "repeats": args.repeats,
        "results": records,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    REPORT_PATH.parent.mkdir(parents=True, exist_ok=True)
    REPORT_PATH.write_text("\n".join(lines) + "\n")
    print(f"\n[written to {JSON_PATH} and {REPORT_PATH}]")

    failures = [
        r["graph"]
        for r in records
        if not r["identical"]
        or not r["delta"]["identical"]
        or r["jit"]["identical"] is False
    ]
    if failures:
        print(f"BACKEND MISMATCH on: {failures}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
