"""Experiment E3 — Fig. 7: runtime comparison between HTC and the baselines.

The paper's claim: HTC's wall-clock time is the smallest or comparable to the
baselines on every pair (it is far cheaper than PALE/CENALP and in the same
range as GAlign).  The harness reports seconds per (method, dataset) cell.
"""

from __future__ import annotations

import pytest

from repro.datasets import load_dataset
from repro.eval.protocol import run_comparison
from repro.eval.reporting import format_table

from repro.core import HTCAligner

from _common import DATASET_SCALE, HTC_CONFIG, make_paper_baselines, write_report

DATASETS = ("allmovie_imdb", "douban", "flickr_myspace")


def _run_runtime_comparison():
    pairs = [
        load_dataset(name, scale=DATASET_SCALE, random_state=index)
        for index, name in enumerate(DATASETS)
    ]
    # A fair runtime table must time HTC doing the full pipeline: opt out of
    # the shared orbit cache, which an earlier benchmark in the same session
    # (e.g. Fig. 6, same pairs) may already have warmed.
    methods = [HTCAligner(HTC_CONFIG.updated(orbit_cache="off"))]
    methods += make_paper_baselines()
    results = run_comparison(methods, pairs, train_ratio=0.1, n_runs=1, random_state=0)
    return results


@pytest.mark.benchmark(group="fig7")
def test_fig7_runtime_comparison(benchmark):
    results = benchmark.pedantic(_run_runtime_comparison, rounds=1, iterations=1)

    rows = [
        {
            "dataset": r.dataset,
            "method": r.method,
            "time_s": round(r.time_seconds, 3),
            "p@1": round(r.metrics["p@1"], 4),
        }
        for r in results
    ]
    write_report(
        "fig7_runtime",
        ["Fig. 7 — runtime comparison (seconds per run)", format_table(rows)],
    )

    # NOTE on fidelity: at this reduced scale, and with the heavyweight
    # baselines (PALE/CENALP) simplified to closed-form embeddings, the
    # paper's runtime *ranking* does not transfer — HTC's constant factors
    # dominate on ~100-node graphs.  The bench therefore only checks that all
    # methods complete in bounded time and reports the table; see
    # EXPERIMENTS.md for the discussion.
    for result in results:
        assert result.time_seconds >= 0.0
        assert result.time_seconds < 120.0
