"""Experiments E7–E10 — Fig. 10: hyper-parameter sensitivity of HTC.

Four sweeps on the Douban and Allmovie–Imdb stand-ins:

* (a) number of orbits K — precision rises steeply for small K then plateaus,
* (b) embedding dimension d — rises then saturates,
* (c) LISI neighbourhood size m — flat plateau with mild extremes,
* (d) reinforcement rate β — smaller is better (large β over-commits).
"""

from __future__ import annotations

import pytest

from repro.datasets import load_dataset
from repro.eval.hyperparameter import sweep_hyperparameter
from repro.eval.reporting import format_series

from _common import DATASET_SCALE, HTC_CONFIG, write_report

DATASETS = ("douban", "allmovie_imdb")

SWEEPS = {
    "n_orbits": (1, 3, 5, 7, 9, 11, 13),
    "embedding_dim": (4, 8, 16, 32, 64),
    "n_neighbors": (2, 5, 10, 20, 40),
    "reinforcement_rate": (1.1, 1.3, 1.5, 1.7, 2.0),
}


def _run_sweeps():
    pairs = {
        name: load_dataset(name, scale=DATASET_SCALE, random_state=index)
        for index, name in enumerate(DATASETS)
    }
    all_points = {}
    for parameter, values in SWEEPS.items():
        for name, pair in pairs.items():
            points = sweep_hyperparameter(
                parameter, values, pair, base_config=HTC_CONFIG, random_state=0
            )
            all_points[(parameter, name)] = points
    return all_points


@pytest.mark.benchmark(group="fig10")
def test_fig10_hyperparameters(benchmark):
    all_points = benchmark.pedantic(_run_sweeps, rounds=1, iterations=1)

    sections = ["Fig. 10 — hyper-parameter sensitivity (p@1)"]
    for (parameter, dataset), points in all_points.items():
        series = {f"{dataset}": [(p.value, p.metrics["p@1"]) for p in points]}
        sections.append(
            format_series(series, x_label=parameter, y_label="p@1", title=f"({parameter})")
        )
    write_report("fig10_hyperparameters", sections)

    # Fig. 10a claim: using many orbits clearly beats using only one.
    for dataset in DATASETS:
        orbit_points = {p.value: p.metrics["p@1"] for p in all_points[("n_orbits", dataset)]}
        assert max(orbit_points[k] for k in orbit_points if k >= 5) >= orbit_points[1]
    # Fig. 10b claim: a very small dimension underperforms the larger ones.
    for dataset in DATASETS:
        dim_points = {p.value: p.metrics["p@1"] for p in all_points[("embedding_dim", dataset)]}
        assert max(dim_points[32], dim_points[64]) >= dim_points[4]
