"""Social-network user alignment: HTC versus supervised and unsupervised baselines.

Scenario (the paper's motivating application): the same users appear on two
social platforms — a dense "online" network and a sparser "offline" network
that only covers a subset of them.  The goal is to link user accounts across
the platforms so that friend suggestion and recommendation can be transferred.

The script:

1. builds the Douban-Online/Offline stand-in (community-structured SBM with
   profile-like attributes, partial node overlap),
2. runs HTC and a spread of baselines (unsupervised GAlign/REGAL, supervised
   FINAL/IsoRank/PALE with 10% of the ground truth),
3. prints the Table-II style comparison and HTC's orbit-importance profile.

Run with::

    python examples/social_network_alignment.py
"""

from __future__ import annotations

from repro import HTCAligner, HTCConfig, load_dataset
from repro.baselines import FINAL, PALE, REGAL, GAlign, IsoRank
from repro.eval.protocol import run_comparison
from repro.eval.reporting import format_importance_ranking, format_table


def main() -> None:
    pair = load_dataset("douban", scale=0.5, random_state=1)
    print("Social-network alignment task:", pair.summary())
    print(
        f"\nOnly {pair.target.n_nodes} of the {pair.source.n_nodes} online users "
        "exist in the offline network; the aligner must still rank the right "
        "counterpart first for each of them.\n"
    )

    config = HTCConfig(
        embedding_dim=32,
        epochs=40,
        n_neighbors=10,
        random_state=0,
    )
    methods = [
        HTCAligner(config),
        GAlign(embedding_dim=32, epochs=40, random_state=0),
        REGAL(n_landmarks=60, random_state=0),
        FINAL(n_iterations=25),
        IsoRank(n_iterations=25),
        PALE(embedding_dim=32, epochs=150, random_state=0),
    ]

    results = run_comparison(methods, [pair], train_ratio=0.1, random_state=0)
    rows = [r.as_row() for r in results]
    print(format_table(rows, title="User alignment on the Douban stand-in"))

    htc_result = methods[0].last_result_
    print("\nWhich topological patterns mattered (HTC orbit importance):")
    print(format_importance_ranking(htc_result.orbit_importance))

    best = max(results, key=lambda r: r.metrics["p@1"])
    print(f"\nBest precision@1: {best.method} ({best.metrics['p@1']:.4f})")


if __name__ == "__main__":
    main()
