"""Quickstart: align two networks with HTC in a dozen lines.

Run with::

    python examples/quickstart.py

The script builds a small synthetic alignment task (a noisy, permuted copy of
a power-law network), runs the full HTC pipeline, and reports the paper's
metrics (precision@1, precision@10, MRR) together with the orbit-importance
ranking and the runtime decomposition.
"""

from __future__ import annotations

from repro import HTCAligner, HTCConfig, evaluate_alignment, load_dataset
from repro.eval.reporting import format_importance_ranking


def main() -> None:
    # 1. Load an alignment task: a source network, a noisy permuted target
    #    network, and (for evaluation only) the ground-truth anchor links.
    pair = load_dataset("tiny", n_nodes=80, noise=0.08, random_state=0)
    print("Task:", pair.summary())

    # 2. Configure HTC.  The defaults follow the paper; here we shrink the
    #    model a little so the example runs in a few seconds on any laptop.
    config = HTCConfig(
        orbits=range(8),       # use the first 8 edge orbits
        embedding_dim=32,      # d
        epochs=40,             # training epochs for the shared GCN encoder
        n_neighbors=10,        # m, the LISI neighbourhood size
        reinforcement_rate=1.1,  # beta
        random_state=0,
    )

    # 3. Align.  HTC is fully unsupervised: it never sees the ground truth.
    aligner = HTCAligner(config)
    result = aligner.align(pair)

    # 4. Evaluate against the held-out ground truth.
    metrics = evaluate_alignment(result.alignment_matrix, pair.ground_truth)
    print("\nAlignment quality:")
    for name, value in metrics.items():
        print(f"  {name:>5}: {value:.4f}")

    # 5. Inspect what the model learned.
    print("\nOrbit importance (posterior weights gamma):")
    print(format_importance_ranking(result.orbit_importance))

    print("\nRuntime decomposition (seconds):")
    for stage, seconds in result.stage_times.items():
        print(f"  {stage:>28}: {seconds:.3f}")

    # 6. Use the alignment: the best target candidate for a few source nodes.
    print("\nTop-3 candidates for the first five source nodes:")
    top = result.top_candidates(3)
    for source_node in range(5):
        truth = pair.ground_truth[source_node]
        print(f"  source {source_node:>3} -> {top[source_node].tolist()} (truth: {truth})")


if __name__ == "__main__":
    main()
