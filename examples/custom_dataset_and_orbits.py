"""Working with your own graphs: orbit analysis and a custom alignment task.

This example shows the lower-level API a downstream user needs when they are
not using the bundled datasets:

1. build :class:`AttributedGraph` objects from raw edge lists (or networkx),
2. inspect edge orbits and Graphlet Orbit Matrices directly,
3. assemble a :class:`GraphPair` with a known ground truth,
4. register the dataset so the evaluation harness can use it by name,
5. run HTC and save/reload the pair from disk.

Run with::

    python examples/custom_dataset_and_orbits.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import HTCAligner, HTCConfig, evaluate_alignment
from repro.datasets import GraphPair, load_pair, save_pair
from repro.datasets.registry import load_dataset, register_dataset
from repro.graph import from_edge_list
from repro.graph.perturbation import make_noisy_copy
from repro.orbits import build_orbit_matrices, count_edge_orbits
from repro.orbits.graphlets import EDGE_ORBIT_NAMES


def build_collaboration_graph():
    """A small hand-made collaboration network with group-membership attributes."""
    edges = [
        # research group A (a clique of four)
        (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3),
        # research group B (a ring of five)
        (4, 5), (5, 6), (6, 7), (7, 8), (4, 8),
        # bridges between the groups
        (3, 4), (2, 6),
        # a few peripheral collaborators
        (8, 9), (9, 10), (10, 11), (9, 11), (0, 12), (12, 13),
    ]
    n_nodes = 14
    group = np.array([0, 0, 0, 0, 1, 1, 1, 1, 1, 2, 2, 2, 3, 3])
    attributes = np.zeros((n_nodes, 4))
    attributes[np.arange(n_nodes), group] = 1.0
    return from_edge_list(edges, n_nodes=n_nodes, attributes=attributes, name="collab")


def main() -> None:
    graph = build_collaboration_graph()
    print("Custom graph:", graph)

    # --- orbit analysis ---------------------------------------------------
    counts = count_edge_orbits(graph)
    print("\nEdge-orbit profile of the bridge edge (3, 4) vs a clique edge (0, 1):")
    profile = counts.as_dict()
    for edge in [(3, 4), (0, 1)]:
        nonzero = {
            f"orbit {k} ({EDGE_ORBIT_NAMES[k].split(' of')[0]})": int(v)
            for k, v in enumerate(profile[edge])
            if v > 0
        }
        print(f"  {edge}: {nonzero}")

    gom = build_orbit_matrices(graph, orbits=[2])[0]
    print(f"\nTriangle GOM has {gom.nnz // 2} weighted edges "
          f"(out of {graph.n_edges} edges in total).")

    # --- build an alignment task around the custom graph -------------------
    target, mapping = make_noisy_copy(graph, edge_removal_ratio=0.1, random_state=0)
    pair = GraphPair(source=graph, target=target, ground_truth=mapping, name="collab")
    register_dataset("collab", lambda **kwargs: pair)
    print("\nRegistered custom dataset:", load_dataset("collab").summary())

    # --- align ------------------------------------------------------------
    config = HTCConfig(
        orbits=range(6), embedding_dim=16, epochs=40, n_neighbors=3, random_state=0
    )
    result = HTCAligner(config).align(pair)
    metrics = evaluate_alignment(result.alignment_matrix, pair.ground_truth)
    print("\nHTC on the custom pair:", {k: round(v, 3) for k, v in metrics.items()})

    # --- persistence ------------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        directory = save_pair(pair, Path(tmp) / "collab")
        reloaded = load_pair(directory)
        print(f"\nRound-tripped the dataset through {directory}; "
              f"{reloaded.n_anchors} anchors preserved.")


if __name__ == "__main__":
    main()
