"""Robustness study: how alignment accuracy degrades with structural noise.

Reproduces the shape of the paper's Fig. 9 interactively: the Econ stand-in's
target network is rebuilt with 10%-50% of its edges removed, and HTC is
compared against a fast subset of baselines at every noise level.  The
script also reports each method's degradation (accuracy at 10% minus accuracy
at 50%), the quantity the paper uses to argue HTC's noise robustness.

Run with::

    python examples/robustness_study.py
"""

from __future__ import annotations

from repro import HTCAligner, HTCConfig
from repro.baselines import FINAL, REGAL, GAlign, IsoRank
from repro.datasets.synthetic import econ
from repro.eval.reporting import format_series
from repro.eval.robustness import degradation, run_robustness


def main() -> None:
    config = HTCConfig(embedding_dim=32, epochs=40, n_neighbors=10, random_state=0)
    methods = [
        HTCAligner(config),
        GAlign(embedding_dim=32, epochs=40, random_state=0),
        FINAL(n_iterations=25),
        REGAL(n_landmarks=60, random_state=0),
        IsoRank(n_iterations=25),
    ]
    noise_ratios = (0.1, 0.2, 0.3, 0.4, 0.5)

    print("Sweeping edge-removal noise on the Econ stand-in...")
    points = run_robustness(
        methods,
        econ,
        noise_ratios=noise_ratios,
        scale=0.4,
        random_state=0,
    )

    series = {}
    for point in points:
        series.setdefault(point.method, []).append(
            (point.noise_ratio, point.metrics["p@1"])
        )
    print(format_series(series, x_label="removal ratio", y_label="p@1"))

    print("\nDegradation (p@1 at 10% noise minus p@1 at 50% noise):")
    for method in series:
        print(f"  {method:>8}: {degradation(points, method):.4f}")

    at_low = {method: values[0][1] for method, values in series.items()}
    at_high = {method: values[-1][1] for method, values in series.items()}
    print(
        f"\nAt 10% noise HTC is the most accurate method ({at_low['HTC']:.3f}); "
        f"at 50% noise it still reaches {at_high['HTC']:.3f} "
        f"(best baseline there: {max(v for m, v in at_high.items() if m != 'HTC'):.3f})."
    )


if __name__ == "__main__":
    main()
