"""Protein-interaction network alignment with structure-only information.

Scenario: protein-protein interaction (PPI) networks of two related species
must be aligned to transfer functional annotations (the classic IsoRank /
H-GRAAL use case referenced in the paper's introduction).  Unlike social
networks, PPI networks carry almost no node attributes — alignment must rely
on topology, which is exactly where higher-order consistency matters.

The script:

1. simulates a PPI-like source network (power-law degree distribution, high
   clustering) and an evolutionarily diverged target (edge loss + partial
   protein coverage),
2. strips the attributes down to a single constant feature so only structure
   is informative,
3. compares HTC against the structure-capable baselines and a graphlet-degree
   -vector matcher, and reports how much the higher-order orbits contribute.

Run with::

    python examples/protein_network_alignment.py
"""

from __future__ import annotations

import numpy as np

from repro import HTCAligner, HTCConfig
from repro.baselines import REGAL, GAlign, IsoRank
from repro.baselines.naive import GDVAligner
from repro.datasets.synthetic import synthetic_pair
from repro.eval.protocol import run_comparison
from repro.eval.reporting import format_importance_ranking, format_table
from repro.graph.generators import powerlaw_cluster_graph


def build_ppi_pair():
    """A PPI-like alignment task with structure-only node information."""
    species_a = powerlaw_cluster_graph(
        n_nodes=150,
        edges_per_node=4,
        triangle_prob=0.7,       # PPI networks are highly clustered
        n_attributes=4,
        random_state=7,
        name="species_a",
    )
    # Remove attribute information: every protein looks identical up front.
    species_a = species_a.with_attributes(np.ones((species_a.n_nodes, 1)))
    return synthetic_pair(
        species_a,
        edge_removal_ratio=0.15,     # interactions lost by divergence / assay noise
        target_node_fraction=0.85,   # orthologs missing in the second species
        name="ppi",
        random_state=7,
    )


def main() -> None:
    pair = build_ppi_pair()
    print("PPI alignment task:", pair.summary())
    print("(a single constant attribute: only topology can drive the alignment)\n")

    config = HTCConfig(
        embedding_dim=32,
        epochs=50,
        n_neighbors=10,
        random_state=0,
    )
    methods = [
        HTCAligner(config),
        GAlign(embedding_dim=32, epochs=50, random_state=0),
        REGAL(n_landmarks=60, attribute_weight=0.0, random_state=0),
        IsoRank(n_iterations=25),
        GDVAligner(use_attributes=False),
    ]
    results = run_comparison(methods, [pair], train_ratio=0.1, random_state=0)
    print(format_table([r.as_row() for r in results], title="Structure-only alignment"))

    htc_result = methods[0].last_result_
    print("\nOrbit importance without attributes (higher-order structure carries the signal):")
    print(format_importance_ranking(htc_result.orbit_importance))

    higher_order_mass = sum(
        gamma for orbit, gamma in htc_result.orbit_importance.items() if orbit > 0
    )
    print(f"\nShare of importance on higher-order orbits: {higher_order_mass:.2%}")


if __name__ == "__main__":
    main()
