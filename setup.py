"""Setuptools shim.

All project metadata lives in ``pyproject.toml``; this file exists so the
package can be installed in editable mode in fully offline environments where
the ``wheel`` package (required by PEP 660 editable builds) is unavailable.
"""

from setuptools import setup

setup()
