"""Root conftest: make ``src`` importable without exporting PYTHONPATH.

The package uses a src-layout; inserting ``src`` here means a clean checkout
can run ``python -m pytest`` (the tier-1 command) without any environment
setup.  The insertion is idempotent and keeps an already-exported PYTHONPATH
entry ahead of it.
"""

from __future__ import annotations

import sys
from pathlib import Path

_SRC = str(Path(__file__).resolve().parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
