"""Tests for the baseline aligners.

Each baseline must (1) produce a correctly shaped score matrix, (2) be usable
through the common protocol, and (3) clearly beat random guessing on an easy,
nearly-isomorphic pair — the paper's qualitative floor.
"""

import numpy as np
import pytest

from repro.baselines import (
    CENALP,
    FINAL,
    PALE,
    REGAL,
    AttributeAligner,
    DegreeAligner,
    GAlign,
    IsoRank,
    make_baseline,
)
from repro.baselines.base import BaseAligner
from repro.baselines.embedding import spectral_embedding
from repro.baselines.naive import GDVAligner
from repro.datasets.synthetic import tiny_pair
from repro.eval.metrics import precision_at_q


@pytest.fixture(scope="module")
def easy_pair():
    """A nearly isomorphic pair every sensible method should do well on."""
    return tiny_pair(n_nodes=50, random_state=3, noise=0.02)


def _fast_instances():
    return [
        IsoRank(n_iterations=15),
        FINAL(n_iterations=15),
        REGAL(n_landmarks=30),
        PALE(embedding_dim=16, epochs=60),
        CENALP(embedding_dim=16, n_rounds=3),
        GAlign(embedding_dim=16, epochs=40),
        DegreeAligner(),
        AttributeAligner(),
        GDVAligner(),
    ]


class TestCommonInterface:
    @pytest.mark.parametrize("aligner", _fast_instances(), ids=lambda a: a.name)
    def test_output_shape(self, aligner, easy_pair):
        train = easy_pair.split_anchors(0.1, random_state=0)[0]
        anchors = train if aligner.requires_supervision else None
        matrix = aligner.align(easy_pair, train_anchors=anchors)
        assert matrix.shape == (easy_pair.source.n_nodes, easy_pair.target.n_nodes)
        assert np.isfinite(matrix).all()

    def test_base_class_abstract(self, easy_pair):
        with pytest.raises(NotImplementedError):
            BaseAligner().align(easy_pair)

    def test_make_baseline_by_name(self):
        assert isinstance(make_baseline("IsoRank"), IsoRank)
        assert isinstance(make_baseline("GAlign", epochs=5), GAlign)

    def test_make_baseline_unknown(self):
        with pytest.raises(KeyError):
            make_baseline("SuperAligner")

    def test_supervision_flags(self):
        assert IsoRank().requires_supervision
        assert FINAL().requires_supervision
        assert PALE().requires_supervision
        assert CENALP().requires_supervision
        assert not REGAL().requires_supervision
        assert not GAlign().requires_supervision


class TestAlignmentQualityFloor:
    @pytest.mark.parametrize(
        "aligner",
        [
            FINAL(n_iterations=15),
            REGAL(n_landmarks=30),
            GAlign(embedding_dim=16, epochs=40),
            GDVAligner(),
        ],
        ids=lambda a: a.name,
    )
    def test_beats_random_clearly(self, aligner, easy_pair):
        train = easy_pair.split_anchors(0.1, random_state=0)[0]
        anchors = train if aligner.requires_supervision else None
        matrix = aligner.align(easy_pair, train_anchors=anchors)
        p1 = precision_at_q(matrix, easy_pair.ground_truth, 1)
        assert p1 > 5.0 / easy_pair.target.n_nodes

    def test_supervised_isorank_better_than_blind_prior(self, easy_pair):
        aligner = IsoRank(n_iterations=15)
        train = easy_pair.split_anchors(0.2, random_state=0)[0]
        with_prior = precision_at_q(
            aligner.align(easy_pair, train_anchors=train), easy_pair.ground_truth, 1
        )
        without_prior = precision_at_q(
            aligner.align(easy_pair, train_anchors=None), easy_pair.ground_truth, 1
        )
        assert with_prior >= without_prior

    def test_pale_mapping_helps_over_unsupervised_fallback(self, easy_pair):
        aligner = PALE(embedding_dim=16, epochs=80, random_state=0)
        train = easy_pair.split_anchors(0.3, random_state=0)[0]
        supervised = precision_at_q(
            aligner.align(easy_pair, train_anchors=train), easy_pair.ground_truth, 10
        )
        unsupervised = precision_at_q(
            aligner.align(easy_pair, train_anchors=None), easy_pair.ground_truth, 10
        )
        assert supervised >= unsupervised


class TestParameterValidation:
    def test_isorank_invalid_alpha(self):
        with pytest.raises(ValueError):
            IsoRank(alpha=1.5)

    def test_final_invalid_iterations(self):
        with pytest.raises(ValueError):
            FINAL(n_iterations=0)

    def test_regal_invalid_hop(self):
        with pytest.raises(ValueError):
            REGAL(max_hop=0)
        with pytest.raises(ValueError):
            REGAL(hop_discount=0.0)
        with pytest.raises(ValueError):
            REGAL(n_landmarks=1)

    def test_pale_invalid_dims(self):
        with pytest.raises(ValueError):
            PALE(embedding_dim=0)

    def test_cenalp_invalid_rounds(self):
        with pytest.raises(ValueError):
            CENALP(n_rounds=0)

    def test_galign_invalid_settings(self):
        with pytest.raises(ValueError):
            GAlign(n_layers=0)
        with pytest.raises(ValueError):
            GAlign(augment_ratio=1.0)


class TestSpectralEmbedding:
    def test_shape(self, easy_pair):
        embedding = spectral_embedding(easy_pair.source, dim=10)
        assert embedding.shape == (easy_pair.source.n_nodes, 10)

    def test_attributes_concatenated(self, easy_pair):
        embedding = spectral_embedding(easy_pair.source, dim=10, use_attributes=True)
        assert embedding.shape[1] == 10 + easy_pair.source.n_attributes

    def test_dim_larger_than_graph_padded(self):
        pair = tiny_pair(n_nodes=12, random_state=0)
        embedding = spectral_embedding(pair.source, dim=50)
        assert embedding.shape == (12, 50)

    def test_invalid_dim(self, easy_pair):
        with pytest.raises(ValueError):
            spectral_embedding(easy_pair.source, dim=0)

    def test_finite(self, easy_pair):
        assert np.isfinite(spectral_embedding(easy_pair.source, dim=8)).all()
