"""Tests for repro.graph.builders."""

import networkx as nx
import numpy as np
import pytest

from repro.graph.builders import from_edge_list, from_networkx, to_networkx


class TestFromEdgeList:
    def test_infers_node_count(self):
        graph = from_edge_list([(0, 4)])
        assert graph.n_nodes == 5

    def test_explicit_node_count(self):
        graph = from_edge_list([(0, 1)], n_nodes=10)
        assert graph.n_nodes == 10

    def test_empty_edges_need_node_count(self):
        with pytest.raises(ValueError):
            from_edge_list([])

    def test_duplicate_edges_collapse_to_weight_one(self):
        graph = from_edge_list([(0, 1), (0, 1), (1, 0)], n_nodes=2)
        assert graph.n_edges == 1
        assert graph.adjacency[0, 1] == 1.0

    def test_attributes_attached(self):
        attrs = np.eye(3)
        graph = from_edge_list([(0, 1), (1, 2)], n_nodes=3, attributes=attrs)
        np.testing.assert_array_equal(graph.attributes, attrs)


class TestFromNetworkx:
    def test_roundtrip_edge_set(self):
        nx_graph = nx.cycle_graph(5)
        graph = from_networkx(nx_graph)
        assert graph.n_nodes == 5
        assert graph.n_edges == 5

    def test_non_integer_labels_relabelled(self):
        nx_graph = nx.Graph()
        nx_graph.add_edges_from([("a", "b"), ("b", "c")])
        graph = from_networkx(nx_graph)
        assert graph.n_nodes == 3
        assert graph.n_edges == 2

    def test_attribute_keys(self):
        nx_graph = nx.Graph()
        nx_graph.add_node(0, age=10.0)
        nx_graph.add_node(1, age=20.0)
        nx_graph.add_edge(0, 1)
        graph = from_networkx(nx_graph, attribute_keys=["age"])
        np.testing.assert_array_equal(graph.attributes.ravel(), [10.0, 20.0])

    def test_directed_graph_converted(self):
        directed = nx.DiGraph([(0, 1), (1, 2)])
        graph = from_networkx(directed)
        assert graph.has_edge(1, 0)

    def test_graph_without_edges(self):
        nx_graph = nx.empty_graph(4)
        graph = from_networkx(nx_graph)
        assert graph.n_nodes == 4
        assert graph.n_edges == 0

    def test_self_loops_dropped(self):
        nx_graph = nx.Graph([(0, 0), (0, 1)])
        graph = from_networkx(nx_graph)
        assert graph.n_edges == 1


class TestToNetworkx:
    def test_roundtrip(self, triangle_graph):
        nx_graph = to_networkx(triangle_graph)
        assert set(nx_graph.edges()) == {(0, 1), (0, 2), (1, 2)}

    def test_includes_attributes_when_requested(self, attributed_graph):
        nx_graph = to_networkx(attributed_graph, include_attributes=True)
        np.testing.assert_array_equal(
            nx_graph.nodes[0]["x"], attributed_graph.attributes[0]
        )

    def test_node_count_preserved_with_isolated_nodes(self):
        graph = from_edge_list([(0, 1)], n_nodes=5)
        assert to_networkx(graph).number_of_nodes() == 5
