"""Tests for the CSLS alternative hubness correction."""

import numpy as np
import pytest

from repro.similarity.csls import csls_matrix
from repro.similarity.lisi import hubness_degrees
from repro.similarity.matching import mutual_nearest_neighbors
from repro.similarity.measures import cosine_similarity


class TestCSLS:
    def test_shape(self):
        rng = np.random.default_rng(0)
        out = csls_matrix(rng.normal(size=(5, 8)), rng.normal(size=(7, 8)), 3)
        assert out.shape == (5, 7)

    def test_formula(self):
        rng = np.random.default_rng(1)
        source = rng.normal(size=(6, 5))
        target = rng.normal(size=(4, 5))
        similarity = cosine_similarity(source, target)
        source_h, target_h = hubness_degrees(similarity, 2)
        expected = 2 * similarity - source_h[:, None] - target_h[None, :]
        np.testing.assert_allclose(csls_matrix(source, target, 2), expected)

    def test_precomputed_similarity(self):
        rng = np.random.default_rng(2)
        source = rng.normal(size=(6, 5))
        target = rng.normal(size=(4, 5))
        similarity = cosine_similarity(source, target)
        np.testing.assert_allclose(
            csls_matrix(source, target, 3),
            csls_matrix(source, target, 3, similarity=similarity),
        )

    def test_penalises_hub_targets(self):
        rng = np.random.default_rng(3)
        source = rng.normal(size=(12, 6))
        target = rng.normal(size=(12, 6))
        target[0] = source.mean(axis=0)  # a hub: close to every source
        raw_wins = int((cosine_similarity(source, target).argmax(axis=1) == 0).sum())
        csls_wins = int((csls_matrix(source, target, 3).argmax(axis=1) == 0).sum())
        assert csls_wins <= raw_wins

    def test_identity_embeddings_give_diagonal_mutual_matches(self):
        rng = np.random.default_rng(4)
        embeddings = rng.normal(size=(10, 6))
        scores = csls_matrix(embeddings, embeddings, 3)
        pairs = mutual_nearest_neighbors(scores)
        assert set(pairs) == {(i, i) for i in range(10)}

    def test_invalid_neighbors(self):
        with pytest.raises(ValueError):
            csls_matrix(np.zeros((3, 2)), np.zeros((3, 2)), 0)
