"""Integration tests for the end-to-end HTCAligner pipeline."""

import numpy as np
import pytest

from repro.core import HTCAligner, HTCConfig
from repro.core.aligner import (
    STAGE_FINE_TUNING,
    STAGE_INTEGRATION,
    STAGE_LAPLACIAN,
    STAGE_ORBIT_COUNTING,
    STAGE_TRAINING,
)
from repro.eval.metrics import precision_at_q


class TestAlignmentResultContents:
    def test_matrix_shape(self, small_pair, trained_result):
        assert trained_result.alignment_matrix.shape == (
            small_pair.source.n_nodes,
            small_pair.target.n_nodes,
        )

    def test_orbit_matrices_and_importance_keys_match(self, trained_result):
        assert set(trained_result.orbit_matrices) == set(trained_result.orbit_importance)
        assert set(trained_result.orbit_matrices) == set(
            trained_result.trusted_pair_counts
        )

    def test_importance_normalised(self, trained_result):
        assert sum(trained_result.orbit_importance.values()) == pytest.approx(1.0)

    def test_all_stages_timed(self, trained_result):
        stages = set(trained_result.stage_times)
        assert {
            STAGE_ORBIT_COUNTING,
            STAGE_LAPLACIAN,
            STAGE_TRAINING,
            STAGE_FINE_TUNING,
            STAGE_INTEGRATION,
        } <= stages
        assert trained_result.total_time > 0

    def test_training_losses_recorded(self, trained_result, fast_config):
        assert len(trained_result.training_losses) == fast_config.epochs

    def test_embeddings_stored_per_orbit(self, trained_result, small_pair):
        for embedding in trained_result.source_embeddings.values():
            assert embedding.shape[0] == small_pair.source.n_nodes

    def test_ranked_orbits_sorted(self, trained_result):
        ranked = trained_result.ranked_orbits()
        gammas = [gamma for _, gamma in ranked]
        assert gammas == sorted(gammas, reverse=True)

    def test_predicted_anchors_one_to_one(self, trained_result, small_pair):
        anchors = trained_result.predicted_anchors()
        assert len(anchors) == min(
            small_pair.source.n_nodes, small_pair.target.n_nodes
        )
        assert len({i for i, _ in anchors}) == len(anchors)

    def test_top_candidates_shape(self, trained_result, small_pair):
        top = trained_result.top_candidates(5)
        assert top.shape == (small_pair.source.n_nodes, 5)

    def test_best_match_bounds(self, trained_result):
        assert 0 <= trained_result.best_match(0)
        with pytest.raises(IndexError):
            trained_result.best_match(10_000)


class TestAlignmentQuality:
    def test_beats_random_by_far(self, small_pair, trained_result):
        p1 = precision_at_q(trained_result.alignment_matrix, small_pair.ground_truth, 1)
        random_level = 1.0 / small_pair.target.n_nodes
        assert p1 > 10 * random_level

    def test_near_perfect_on_clean_pair(self, clean_pair, fast_config):
        result = HTCAligner(fast_config).align(clean_pair)
        p1 = precision_at_q(result.alignment_matrix, clean_pair.ground_truth, 1)
        assert p1 >= 0.9

    def test_precision_at_10_at_least_precision_at_1(self, small_pair, trained_result):
        p1 = precision_at_q(trained_result.alignment_matrix, small_pair.ground_truth, 1)
        p10 = precision_at_q(trained_result.alignment_matrix, small_pair.ground_truth, 10)
        assert p10 >= p1


class TestAlignerInterface:
    def test_attribute_space_mismatch_rejected(self, small_pair):
        aligner = HTCAligner(HTCConfig(epochs=1, embedding_dim=4, orbits=[0]))
        bad_target = small_pair.target.with_attributes(
            np.ones((small_pair.target.n_nodes, 99))
        )
        with pytest.raises(ValueError):
            aligner.align_graphs(small_pair.source, bad_target)

    def test_train_anchors_argument_ignored(self, clean_pair, fast_config):
        aligner = HTCAligner(fast_config.updated(epochs=3))
        result = aligner.align(clean_pair, train_anchors=[(0, 0)])
        assert result.alignment_matrix.shape[0] == clean_pair.source.n_nodes

    def test_alignment_matrix_shortcut(self, clean_pair, fast_config):
        aligner = HTCAligner(fast_config.updated(epochs=3))
        matrix = aligner.alignment_matrix(clean_pair)
        assert matrix.shape == (clean_pair.source.n_nodes, clean_pair.target.n_nodes)

    def test_default_config_used_when_none(self):
        aligner = HTCAligner()
        assert aligner.config.topology_mode == "orbit"

    def test_last_result_cached(self, small_pair, fast_config):
        aligner = HTCAligner(fast_config.updated(epochs=2, orbits=[0]))
        result = aligner.align(small_pair)
        assert aligner.last_result_ is result

    def test_deterministic_given_seed(self, clean_pair):
        config = HTCConfig(
            epochs=5, embedding_dim=8, orbits=[0, 1], n_neighbors=5, random_state=7
        )
        a = HTCAligner(config).align(clean_pair).alignment_matrix
        b = HTCAligner(config).align(clean_pair).alignment_matrix
        np.testing.assert_allclose(a, b)


class TestPartialOverlapPair:
    def test_handles_different_graph_sizes(self):
        from repro.datasets.synthetic import douban

        pair = douban(scale=0.3, random_state=0)
        assert pair.source.n_nodes != pair.target.n_nodes
        config = HTCConfig(
            epochs=5, embedding_dim=8, orbits=[0, 1], n_neighbors=5, random_state=0
        )
        result = HTCAligner(config).align(pair)
        assert result.alignment_matrix.shape == (
            pair.source.n_nodes,
            pair.target.n_nodes,
        )
