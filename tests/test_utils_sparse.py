"""Tests for repro.utils.sparse."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.sparse import (
    is_symmetric,
    row_normalize,
    safe_inverse_sqrt,
    sparse_from_edges,
    symmetrize,
    to_csr,
)


class TestToCsr:
    def test_from_dense(self):
        dense = np.array([[0.0, 1.0], [2.0, 0.0]])
        csr = to_csr(dense)
        assert sp.isspmatrix_csr(csr)
        np.testing.assert_array_equal(csr.toarray(), dense)

    def test_from_sparse(self):
        coo = sp.coo_matrix(np.eye(3))
        assert sp.isspmatrix_csr(to_csr(coo))

    def test_eliminates_explicit_zeros(self):
        matrix = sp.csr_matrix(np.array([[0.0, 0.0], [1.0, 0.0]]))
        matrix.data = np.array([0.0, 1.0]) if matrix.nnz == 2 else matrix.data
        assert to_csr(matrix).nnz == np.count_nonzero(matrix.toarray())

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            to_csr(np.zeros(3))


class TestSparseFromEdges:
    def test_symmetric_by_default(self):
        matrix = sparse_from_edges([(0, 1)], 3)
        assert matrix[0, 1] == 1.0
        assert matrix[1, 0] == 1.0

    def test_directed_when_requested(self):
        matrix = sparse_from_edges([(0, 1)], 3, symmetric=False)
        assert matrix[0, 1] == 1.0
        assert matrix[1, 0] == 0.0

    def test_weights(self):
        matrix = sparse_from_edges([(0, 1), (1, 2)], 3, weights=[2.0, 3.0])
        assert matrix[0, 1] == 2.0
        assert matrix[2, 1] == 3.0

    def test_weight_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            sparse_from_edges([(0, 1)], 3, weights=[1.0, 2.0])

    def test_out_of_range_edge_raises(self):
        with pytest.raises(ValueError):
            sparse_from_edges([(0, 5)], 3)

    def test_shape(self):
        assert sparse_from_edges([(0, 1)], 7).shape == (7, 7)


class TestSymmetrize:
    def test_makes_directed_symmetric(self):
        directed = sp.csr_matrix(np.array([[0.0, 2.0], [0.0, 0.0]]))
        symmetric = symmetrize(directed)
        assert symmetric[1, 0] == 2.0
        assert is_symmetric(symmetric)

    def test_idempotent_on_symmetric(self):
        matrix = sparse_from_edges([(0, 1), (1, 2)], 3)
        np.testing.assert_array_equal(symmetrize(matrix).toarray(), matrix.toarray())


class TestIsSymmetric:
    def test_true_for_symmetric(self):
        assert is_symmetric(np.array([[0, 1], [1, 0]]))

    def test_false_for_asymmetric(self):
        assert not is_symmetric(np.array([[0, 1], [0, 0]]))

    def test_tolerance(self):
        matrix = np.array([[0.0, 1.0], [1.0 + 1e-12, 0.0]])
        assert is_symmetric(matrix, tol=1e-10)


class TestRowNormalize:
    def test_rows_sum_to_one(self):
        matrix = sparse_from_edges([(0, 1), (0, 2), (1, 2)], 3)
        normalized = row_normalize(matrix)
        sums = np.asarray(normalized.sum(axis=1)).ravel()
        np.testing.assert_allclose(sums, np.ones(3))

    def test_zero_rows_stay_zero(self):
        matrix = sp.csr_matrix((3, 3))
        normalized = row_normalize(matrix)
        assert normalized.nnz == 0


class TestSafeInverseSqrt:
    def test_positive_values(self):
        np.testing.assert_allclose(safe_inverse_sqrt(np.array([4.0])), [0.5])

    def test_zero_maps_to_zero(self):
        assert safe_inverse_sqrt(np.array([0.0]))[0] == 0.0

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=20))
    @settings(max_examples=25, deadline=None)
    def test_never_produces_inf_or_nan(self, values):
        out = safe_inverse_sqrt(np.array(values))
        assert np.isfinite(out).all()
