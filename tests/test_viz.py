"""Tests for the visualisation utilities (t-SNE and overlap statistics)."""

import numpy as np
import pytest

from repro.viz.embedding_stats import anchor_overlap_statistics
from repro.viz.tsne import tsne


class TestTSNE:
    def test_output_shape(self):
        points = np.random.default_rng(0).normal(size=(40, 10))
        embedded = tsne(points, n_components=2, n_iterations=60, random_state=0)
        assert embedded.shape == (40, 2)
        assert np.isfinite(embedded).all()

    def test_separates_well_separated_clusters(self):
        rng = np.random.default_rng(0)
        cluster_a = rng.normal(0.0, 0.1, size=(20, 8))
        cluster_b = rng.normal(8.0, 0.1, size=(20, 8))
        points = np.vstack([cluster_a, cluster_b])
        embedded = tsne(points, n_iterations=200, random_state=0)
        center_a = embedded[:20].mean(axis=0)
        center_b = embedded[20:].mean(axis=0)
        within_a = np.linalg.norm(embedded[:20] - center_a, axis=1).mean()
        between = np.linalg.norm(center_a - center_b)
        assert between > 2 * within_a

    def test_deterministic_given_seed(self):
        points = np.random.default_rng(1).normal(size=(15, 5))
        a = tsne(points, n_iterations=50, random_state=3)
        b = tsne(points, n_iterations=50, random_state=3)
        np.testing.assert_allclose(a, b)

    def test_centering(self):
        points = np.random.default_rng(2).normal(size=(20, 6))
        embedded = tsne(points, n_iterations=50, random_state=0)
        np.testing.assert_allclose(embedded.mean(axis=0), np.zeros(2), atol=1e-8)

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            tsne(np.zeros((2, 3)))

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            tsne(np.zeros(10))


class TestAnchorOverlapStatistics:
    def test_perfectly_aligned_embeddings(self):
        rng = np.random.default_rng(0)
        source = rng.normal(size=(30, 8))
        anchors = [(i, i) for i in range(30)]
        stats = anchor_overlap_statistics(source, source.copy(), anchors, random_state=0)
        assert stats["mean_anchor_distance"] == pytest.approx(0.0)
        assert stats["overlap_ratio"] > 1.0

    def test_random_embeddings_have_ratio_near_one(self):
        rng = np.random.default_rng(1)
        source = rng.normal(size=(50, 8))
        target = rng.normal(size=(50, 8))
        anchors = [(i, i) for i in range(50)]
        stats = anchor_overlap_statistics(source, target, anchors, random_state=0)
        assert 0.5 < stats["overlap_ratio"] < 1.5

    def test_empty_anchors_rejected(self):
        with pytest.raises(ValueError):
            anchor_overlap_statistics(np.zeros((3, 2)), np.zeros((3, 2)), [])

    def test_reports_anchor_count(self):
        stats = anchor_overlap_statistics(
            np.zeros((5, 2)), np.zeros((5, 2)), [(0, 0), (1, 1)], random_state=0
        )
        assert stats["n_anchors"] == 2.0
