"""Tests for the orbit-counting engine: backend equivalence and selection.

The central property: the ``"numpy"`` backend must be *bit-identical* to the
``"python"`` reference on every graph, including disconnected and
triangle-free edge cases.  The cross-validation sweep covers 50+ random
ER/BA-style graphs spanning sparse (disconnected), dense, and clustered
regimes, plus deterministic structured graphs.
"""

import networkx as nx
import numpy as np
import pytest

from repro.graph.builders import from_edge_list, from_networkx
from repro.graph.generators import erdos_renyi_graph, powerlaw_cluster_graph
from repro.orbits import engine
from repro.orbits.brute_force import brute_force_edge_orbits, brute_force_node_orbits
from repro.orbits.cache import OrbitCache
from repro.orbits.edge_orbits import EdgeOrbitCounts
from repro.orbits.graphlets import EDGE_ORBIT_COUNT, NODE_ORBIT_COUNT

# The vectorized backend needs numpy >= 2.0 (np.bitwise_count); the whole
# module is about cross-validating it against the reference.
pytestmark = pytest.mark.skipif(
    "numpy" not in engine.available_backends(),
    reason="vectorized orbit backend unavailable (numpy < 2.0)",
)


def _assert_backends_identical(graph):
    reference = engine.count_edge_orbits(graph, backend="python")
    fast = engine.count_edge_orbits(graph, backend="numpy")
    assert reference.edges == fast.edges
    np.testing.assert_array_equal(reference.counts, fast.counts)
    assert fast.counts.dtype == np.int64

    reference_gdv = engine.count_node_orbits(graph, backend="python")
    fast_gdv = engine.count_node_orbits(graph, backend="numpy")
    np.testing.assert_array_equal(reference_gdv, fast_gdv)
    assert fast_gdv.dtype == np.int64


class TestCrossValidation:
    """numpy backend == python backend, bit for bit."""

    # 30 ER graphs sweeping density from sub-critical (many components,
    # almost no triangles) to dense, plus 20 power-law cluster (BA-style)
    # graphs with heavy triangle density: 50 random graphs total.
    @pytest.mark.parametrize("seed", range(30))
    def test_erdos_renyi(self, seed):
        graph = erdos_renyi_graph(
            20 + 2 * seed, 0.5 + 0.25 * seed, random_state=seed
        )
        _assert_backends_identical(graph)

    @pytest.mark.parametrize("seed", range(20))
    def test_powerlaw_cluster(self, seed):
        graph = powerlaw_cluster_graph(
            15 + 2 * seed, 2 + seed % 3, 0.7, random_state=seed
        )
        _assert_backends_identical(graph)

    @pytest.mark.parametrize(
        "fixture_name",
        ["triangle_graph", "path_graph", "star_graph", "clique_graph",
         "paw_graph", "diamond_graph", "figure5_graph"],
    )
    def test_structured_fixtures(self, fixture_name, request):
        _assert_backends_identical(request.getfixturevalue(fixture_name))

    def test_triangle_free_bipartite(self):
        graph = from_networkx(nx.complete_bipartite_graph(4, 5))
        fast = engine.count_edge_orbits(graph, backend="numpy")
        assert fast.orbit_total(2) == 0  # no triangle edges
        _assert_backends_identical(graph)

    def test_tree(self):
        graph = from_networkx(nx.random_labeled_tree(24, seed=3))
        _assert_backends_identical(graph)

    def test_disconnected_components(self):
        # Two separate triangles plus two isolated nodes.
        edges = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]
        graph = from_edge_list(edges, n_nodes=8)
        _assert_backends_identical(graph)
        gdv = engine.count_node_orbits(graph, backend="numpy")
        np.testing.assert_array_equal(gdv[6], np.zeros(NODE_ORBIT_COUNT))

    def test_empty_graph(self):
        graph = from_edge_list([], n_nodes=5)
        fast = engine.count_edge_orbits(graph, backend="numpy")
        assert fast.n_edges == 0
        assert fast.counts.shape == (0, EDGE_ORBIT_COUNT)
        _assert_backends_identical(graph)

    def test_single_edge(self):
        _assert_backends_identical(from_edge_list([(0, 1)], n_nodes=2))

    def test_matches_brute_force(self):
        graph = erdos_renyi_graph(14, 3.5, random_state=11)
        fast = engine.count_edge_orbits(graph, backend="numpy")
        brute = brute_force_edge_orbits(graph)
        assert fast.edges == brute.edges
        np.testing.assert_array_equal(fast.counts, brute.counts)
        np.testing.assert_array_equal(
            engine.count_node_orbits(graph, backend="numpy"),
            brute_force_node_orbits(graph),
        )


class TestBackendSelection:
    def test_auto_resolves_to_default(self):
        assert engine.resolve_backend("auto") == engine.DEFAULT_BACKEND

    def test_explicit_backends_resolve_to_themselves(self):
        for name in engine.available_backends():
            assert engine.resolve_backend(name) == name

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown orbit backend"):
            engine.resolve_backend("fortran")
        graph = from_edge_list([(0, 1)], n_nodes=2)
        with pytest.raises(ValueError):
            engine.count_edge_orbits(graph, backend="fortran")

    def test_available_backends(self):
        assert set(engine.available_backends()) >= {"python", "numpy"}

    def test_register_backend(self):
        def fake_edge(graph):
            return EdgeOrbitCounts(
                edges=graph.edge_list(),
                counts=np.zeros((graph.n_edges, EDGE_ORBIT_COUNT), dtype=np.int64),
            )

        def fake_node(graph):
            return np.zeros((graph.n_nodes, NODE_ORBIT_COUNT), dtype=np.int64)

        engine.register_backend("fake", fake_edge, fake_node)
        try:
            graph = from_edge_list([(0, 1), (1, 2)], n_nodes=3)
            counts = engine.count_edge_orbits(graph, backend="fake")
            assert counts.counts.sum() == 0
            assert "fake" in engine.available_backends()
            # Unverified backends never share cache records with verified
            # ones: the fake backend's zeros must not be served from (or
            # leak into) the python backend's entry.
            cache = OrbitCache()
            reference = engine.count_edge_orbits(graph, backend="python", cache=cache)
            assert reference.counts.sum() > 0
            assert engine.count_edge_orbits(graph, backend="fake", cache=cache).counts.sum() == 0
            assert engine.count_edge_orbits(graph, backend="python", cache=cache).counts.sum() > 0
        finally:
            engine.orbit_registry().unregister("fake")

    def test_register_auto_rejected(self):
        with pytest.raises(ValueError, match="reserved"):
            engine.register_backend("auto", None, None)

    def test_package_level_exports(self):
        from repro.orbits import count_edge_orbits, count_node_orbits

        graph = from_edge_list([(0, 1), (1, 2), (0, 2)], n_nodes=3)
        counts = count_edge_orbits(graph, backend="numpy")
        assert counts.orbit_total(2) == 3
        gdv = count_node_orbits(graph, backend="numpy")
        np.testing.assert_array_equal(gdv[:, 3], [1, 1, 1])


class TestGraphletDegreeVectors:
    def test_log_scale_matches_reference(self):
        graph = erdos_renyi_graph(25, 4.0, random_state=2)
        from repro.orbits.node_orbits import graphlet_degree_vectors as reference

        np.testing.assert_allclose(
            engine.graphlet_degree_vectors(graph, backend="numpy"),
            reference(graph, log_scale=True),
        )

    def test_uses_cache(self):
        graph = erdos_renyi_graph(20, 3.0, random_state=4)
        cache = OrbitCache()
        first = engine.graphlet_degree_vectors(graph, cache=cache)
        second = engine.graphlet_degree_vectors(graph, cache=cache)
        np.testing.assert_allclose(first, second)
        assert cache.stats()["hits"] == 1
