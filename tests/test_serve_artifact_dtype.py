"""Serve-artifact precision tests: dtype round-trip and schema gating."""

import json

import numpy as np
import pytest

from repro.core.result import AlignmentResult
from repro.serve import (
    AlignmentService,
    ArtifactSchemaError,
    load_artifact,
    save_artifact,
    save_index_artifact,
)
from repro.serve.index import build_index
from repro.similarity.matching import top_k_indices


@pytest.fixture
def float32_matrix():
    rng = np.random.default_rng(11)
    return rng.standard_normal((80, 60)).astype(np.float32)


class TestDtypeRoundTrip:
    def test_manifest_records_dtype(self, tmp_path, float32_matrix):
        info = save_artifact(
            AlignmentResult(alignment_matrix=float32_matrix),
            root=tmp_path,
            name="f32",
        )
        assert info.manifest["dtype"] == "float32"
        assert info.manifest["index"]["score_dtype"] == "float32"
        info64 = save_artifact(
            AlignmentResult(alignment_matrix=float32_matrix.astype(np.float64)),
            root=tmp_path,
            name="f64",
        )
        assert info64.manifest["dtype"] == "float64"

    def test_full_load_preserves_float32(self, tmp_path, float32_matrix):
        info = save_artifact(
            AlignmentResult(alignment_matrix=float32_matrix),
            root=tmp_path,
            name="f32",
        )
        artifact = load_artifact(tmp_path, info.artifact_id, mode="full")
        assert artifact.dtype == "float32"
        assert artifact.result.alignment_matrix.dtype == np.float32
        assert np.array_equal(artifact.result.alignment_matrix, float32_matrix)
        assert artifact.index.score_dtype == np.float32

    def test_serve_mode_query_parity(self, tmp_path, float32_matrix):
        info = save_artifact(
            AlignmentResult(alignment_matrix=float32_matrix),
            root=tmp_path,
            name="f32",
        )
        service = AlignmentService()
        artifact_id = service.load(tmp_path, info.artifact_id)
        rows = np.arange(float32_matrix.shape[0])
        assert np.array_equal(
            service.match(artifact_id, rows), float32_matrix.argmax(axis=1)
        )
        assert np.array_equal(
            service.top_k(artifact_id, rows, 5),
            top_k_indices(float32_matrix, 5),
        )
        assert np.array_equal(
            service.reverse_match(artifact_id, np.arange(float32_matrix.shape[1])),
            float32_matrix.argmax(axis=0),
        )

    def test_float32_artifact_is_smaller(self, tmp_path, float32_matrix):
        info32 = save_artifact(
            AlignmentResult(alignment_matrix=float32_matrix),
            root=tmp_path,
            name="small",
        )
        info64 = save_artifact(
            AlignmentResult(alignment_matrix=float32_matrix.astype(np.float64)),
            root=tmp_path,
            name="large",
        )
        # Score arrays (forward + reverse) halve; int index arrays do not.
        assert info32.index.scores.nbytes * 2 == info64.index.scores.nbytes
        assert info32.index.nbytes < info64.index.nbytes
        assert info32.disk_bytes < info64.disk_bytes

    def test_integrity_hash_is_dtype_aware(self, tmp_path, float32_matrix):
        # The same values at different dtypes must hash to different
        # artifacts (the sha256 covers dtype + shape + bytes).
        info32 = save_artifact(
            AlignmentResult(alignment_matrix=float32_matrix),
            root=tmp_path,
            name="pair",
        )
        info64 = save_artifact(
            AlignmentResult(alignment_matrix=float32_matrix.astype(np.float64)),
            root=tmp_path,
            name="pair",
        )
        assert info32.artifact_id != info64.artifact_id

    def test_index_only_artifact_dtype(self, tmp_path, float32_matrix):
        index = build_index(float32_matrix, k=6)
        info = save_index_artifact(index, root=tmp_path, name="stitched-f32")
        assert info.manifest["dtype"] == "float32"
        artifact = load_artifact(tmp_path, info.artifact_id, mode="serve")
        assert artifact.index.score_dtype == np.float32
        assert np.array_equal(artifact.index.indices, index.indices)


class TestMissingDtypeSchemaError:
    def _strip_dtype(self, info):
        manifest_path = info.path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        del manifest["dtype"]
        manifest_path.write_text(json.dumps(manifest, indent=2))

    def test_old_manifest_raises_clear_schema_error(self, tmp_path, float32_matrix):
        info = save_artifact(
            AlignmentResult(alignment_matrix=float32_matrix),
            root=tmp_path,
            name="old",
        )
        self._strip_dtype(info)
        with pytest.raises(ArtifactSchemaError, match="no 'dtype' field"):
            load_artifact(tmp_path, info.artifact_id)
        with pytest.raises(ArtifactSchemaError, match="Re-export"):
            load_artifact(tmp_path, info.artifact_id, mode="serve")

    def test_service_surfaces_schema_error(self, tmp_path, float32_matrix):
        info = save_artifact(
            AlignmentResult(alignment_matrix=float32_matrix),
            root=tmp_path,
            name="old",
        )
        self._strip_dtype(info)
        with pytest.raises(ArtifactSchemaError):
            AlignmentService().load(tmp_path, info.artifact_id)

    def test_pre_dtype_artifact_stays_discoverable(self, tmp_path, float32_matrix):
        from repro.serve import list_artifacts

        info = save_artifact(
            AlignmentResult(alignment_matrix=float32_matrix),
            root=tmp_path,
            name="old",
        )
        self._strip_dtype(info)
        # Listing must still surface the pre-1.1 artifact (so the operator
        # can find the id whose load raises the re-export error) ...
        listed = list_artifacts(tmp_path)
        assert [m["artifact_id"] for m in listed] == [info.artifact_id]
        assert "dtype" not in listed[0]
        # ... while loading it is what fails.
        with pytest.raises(ArtifactSchemaError):
            load_artifact(tmp_path, info.artifact_id)

    def test_resave_over_pre_dtype_artifact_rewrites(self, tmp_path, float32_matrix):
        result = AlignmentResult(alignment_matrix=float32_matrix)
        info = save_artifact(result, root=tmp_path, name="old")
        self._strip_dtype(info)
        # Saving the same content again must repair the directory rather
        # than trip over the unreadable pre-dtype manifest.
        repaired = save_artifact(result, root=tmp_path, name="old")
        assert repaired.artifact_id == info.artifact_id
        assert load_artifact(tmp_path, info.artifact_id).dtype == "float32"
